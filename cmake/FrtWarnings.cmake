# Warning configuration shared by every FRT target.
#
# frt_target_warnings(<target>) applies the project warning set, promoting
# warnings to errors when -DFRT_WERROR=ON.

function(frt_target_warnings target)
  if(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(FRT_WERROR)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  else()
    target_compile_options(${target} PRIVATE -Wall -Wextra)
    if(FRT_WERROR)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  endif()
endfunction()
