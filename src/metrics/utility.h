// Utility-preservation metrics of the paper's evaluation (§V-A):
//
//   INF — point-based information loss: the fraction of original point
//         occurrences (by location identity) that the anonymized counterpart
//         no longer contains.
//   DE  — Jensen-Shannon divergence of the trajectory-diameter distribution.
//   TE  — Jensen-Shannon divergence of the trip (start cell, end cell)
//         distribution.
//   FFP — F-measure between the top frequent sequential patterns mined from
//         the original and the anonymized datasets.
//   MI  — normalized mutual information between original and anonymized
//         location streams of the same user (privacy-side metric; smaller
//         means the outputs reveal less about the inputs).

#ifndef FRT_METRICS_UTILITY_H_
#define FRT_METRICS_UTILITY_H_

#include "geo/bbox.h"
#include "geo/grid.h"
#include "traj/dataset.h"

namespace frt {

/// Tuning of the utility metrics.
struct UtilityConfig {
  /// Location identity for INF (matches the pipeline's snap grid).
  int snap_levels = 11;
  /// Cell granularity for patterns and MI (2^level per side).
  int coarse_level = 5;
  /// Cell granularity for the trip distribution.
  int trip_level = 3;
  /// Bins of the diameter histogram.
  size_t diameter_bins = 24;
  /// Number of frequent patterns kept per side for FFP.
  size_t top_patterns = 100;
  /// Pattern lengths mined (2 .. max_pattern_len cells).
  int max_pattern_len = 3;
};

/// All five scores of one comparison.
struct UtilityScores {
  double inf = 0.0;
  double de = 0.0;
  double te = 0.0;
  double ffp = 0.0;
  double mi = 0.0;
};

/// \brief Computes the §V utility metrics between an original dataset and
/// an anonymized output.
///
/// Trajectories are paired by id when the anonymized dataset preserves ids
/// (record-level methods); otherwise by position. Generative outputs with
/// unrelated content simply score poorly, as intended.
class UtilityEvaluator {
 public:
  /// \param region spatial extent shared by both datasets.
  explicit UtilityEvaluator(const BBox& region, UtilityConfig config = {});

  double InformationLoss(const Dataset& original,
                         const Dataset& anonymized) const;
  double DiameterDivergence(const Dataset& original,
                            const Dataset& anonymized) const;
  double TripDivergence(const Dataset& original,
                        const Dataset& anonymized) const;
  double FrequentPatternF(const Dataset& original,
                          const Dataset& anonymized) const;
  double MutualInformation(const Dataset& original,
                           const Dataset& anonymized) const;

  /// All five at once.
  UtilityScores EvaluateAll(const Dataset& original,
                            const Dataset& anonymized) const;

 private:
  /// The anonymized trajectory paired with original index `i` (id match
  /// first, position fallback); nullptr when none exists.
  static const Trajectory* Counterpart(const Dataset& original, size_t i,
                                       const Dataset& anonymized);

  BBox region_;
  UtilityConfig config_;
  GridSpec coarse_grid_;
  GridSpec trip_grid_;
};

}  // namespace frt

#endif  // FRT_METRICS_UTILITY_H_
