#include "metrics/distribution.h"

#include <algorithm>
#include <cmath>

namespace frt {
namespace {

constexpr double kEpsilonMass = 1e-12;

double Log2(double v) { return std::log2(v); }

}  // namespace

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(std::max<size_t>(1, bins), 0.0) {}

void Histogram::Add(double v, double weight) {
  const size_t n = counts_.size();
  double t = (v - lo_) / std::max(hi_ - lo_, 1e-300);
  t = std::clamp(t, 0.0, 1.0);
  size_t bin = static_cast<size_t>(t * static_cast<double>(n));
  if (bin >= n) bin = n - 1;
  counts_[bin] += weight;
  total_ += weight;
}

std::vector<double> Histogram::Probabilities() const {
  return NormalizeToProbabilities(counts_);
}

std::vector<double> NormalizeToProbabilities(const std::vector<double>& w) {
  double total = 0.0;
  for (const double v : w) total += v;
  std::vector<double> p(w.size(), 0.0);
  if (total <= 0.0) return p;
  for (size_t i = 0; i < w.size(); ++i) p[i] = w[i] / total;
  return p;
}

double ShannonEntropy(const std::vector<double>& p) {
  double h = 0.0;
  for (const double v : p) {
    if (v > 0.0) h -= v * Log2(v);
  }
  return h;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  double d = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    d += p[i] * Log2(p[i] / std::max(q[i], kEpsilonMass));
  }
  return d;
}

double JensenShannonDivergence(const std::vector<double>& p,
                               const std::vector<double>& q) {
  std::vector<double> m(p.size());
  for (size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
}

double SparseJensenShannon(const std::unordered_map<uint64_t, double>& a,
                           const std::unordered_map<uint64_t, double>& b) {
  // Collect the union support deterministically.
  std::vector<uint64_t> keys;
  keys.reserve(a.size() + b.size());
  for (const auto& [k, v] : a) keys.push_back(k);
  for (const auto& [k, v] : b) {
    if (a.count(k) == 0) keys.push_back(k);
  }
  std::vector<double> pa(keys.size(), 0.0);
  std::vector<double> pb(keys.size(), 0.0);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto ia = a.find(keys[i]);
    auto ib = b.find(keys[i]);
    pa[i] = ia == a.end() ? 0.0 : ia->second;
    pb[i] = ib == b.end() ? 0.0 : ib->second;
  }
  return JensenShannonDivergence(NormalizeToProbabilities(pa),
                                 NormalizeToProbabilities(pb));
}

double NormalizedMutualInformation(
    const std::unordered_map<uint64_t, double>& joint_xy,
    uint32_t (*split_x)(uint64_t), uint32_t (*split_y)(uint64_t)) {
  double total = 0.0;
  std::unordered_map<uint32_t, double> mx;
  std::unordered_map<uint32_t, double> my;
  for (const auto& [key, c] : joint_xy) {
    total += c;
    mx[split_x(key)] += c;
    my[split_y(key)] += c;
  }
  if (total <= 0.0) return 0.0;

  double mi = 0.0;
  for (const auto& [key, c] : joint_xy) {
    if (c <= 0.0) continue;
    const double pxy = c / total;
    const double px = mx.at(split_x(key)) / total;
    const double py = my.at(split_y(key)) / total;
    mi += pxy * Log2(pxy / (px * py));
  }
  double hx = 0.0;
  for (const auto& [k, c] : mx) {
    const double p = c / total;
    if (p > 0.0) hx -= p * Log2(p);
  }
  double hy = 0.0;
  for (const auto& [k, c] : my) {
    const double p = c / total;
    if (p > 0.0) hy -= p * Log2(p);
  }
  if (hx <= 0.0 || hy <= 0.0) return 0.0;
  return std::max(0.0, mi) / std::sqrt(hx * hy);
}

}  // namespace frt
