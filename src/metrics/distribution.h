// Probability-distribution utilities shared by the utility and privacy
// metrics: histograms, entropy, Kullback-Leibler and Jensen-Shannon
// divergence, and normalized mutual information.

#ifndef FRT_METRICS_DISTRIBUTION_H_
#define FRT_METRICS_DISTRIBUTION_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace frt {

/// \brief Fixed-range equal-width histogram.
class Histogram {
 public:
  /// Values outside [lo, hi] are clamped into the boundary bins.
  Histogram(double lo, double hi, size_t bins);

  void Add(double v, double weight = 1.0);

  size_t bins() const { return counts_.size(); }
  double total() const { return total_; }
  const std::vector<double>& counts() const { return counts_; }

  /// Normalized bin masses (all zeros when empty).
  std::vector<double> Probabilities() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Normalizes non-negative weights to a probability vector (zeros if the
/// total mass is zero).
std::vector<double> NormalizeToProbabilities(const std::vector<double>& w);

/// Shannon entropy in bits. `p` must be a probability vector.
double ShannonEntropy(const std::vector<double>& p);

/// KL(p || q) in bits; contributions where p_i > 0 and q_i = 0 are treated
/// with a small-epsilon floor so the result stays finite (standard practice
/// for empirical distributions).
double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q);

/// Jensen-Shannon divergence in bits; symmetric, bounded to [0, 1] for
/// base-2 logs. Inputs must have equal length.
double JensenShannonDivergence(const std::vector<double>& p,
                               const std::vector<double>& q);

/// \brief Jensen-Shannon divergence between two sparse count maps (union of
/// keys forms the support).
double SparseJensenShannon(const std::unordered_map<uint64_t, double>& a,
                           const std::unordered_map<uint64_t, double>& b);

/// \brief Normalized mutual information of a paired sample.
///
/// `pairs` maps (x, y) category pairs to joint counts. Returns
/// MI(X; Y) / sqrt(H(X) * H(Y)) in [0, 1]; 0 when either marginal entropy
/// vanishes.
double NormalizedMutualInformation(
    const std::unordered_map<uint64_t, double>& joint_xy,
    uint32_t (*split_x)(uint64_t), uint32_t (*split_y)(uint64_t));

/// Packs two 32-bit category ids into the joint-count key.
inline uint64_t PackPair(uint32_t x, uint32_t y) {
  return (static_cast<uint64_t>(x) << 32) | y;
}
inline uint32_t PairX(uint64_t key) { return static_cast<uint32_t>(key >> 32); }
inline uint32_t PairY(uint64_t key) { return static_cast<uint32_t>(key); }

}  // namespace frt

#endif  // FRT_METRICS_DISTRIBUTION_H_
