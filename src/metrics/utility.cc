#include "metrics/utility.h"

#include <algorithm>
#include <map>
#include <vector>

#include "metrics/distribution.h"
#include "traj/quantizer.h"

namespace frt {
namespace {

// Dense 32-bit id of a coarse cell.
uint32_t CellId32(const GridSpec& grid, const Point& p, int level) {
  const CellCoord c = grid.CellAt(p, level);
  return static_cast<uint32_t>(c.ix) *
             static_cast<uint32_t>(grid.Resolution(level)) +
         static_cast<uint32_t>(c.iy);
}

// Coarse-cell sequence of a trajectory with consecutive duplicates
// collapsed (dwells become a single pattern symbol).
std::vector<uint32_t> CollapsedCells(const Trajectory& t,
                                     const GridSpec& grid, int level) {
  std::vector<uint32_t> out;
  out.reserve(t.size());
  for (const auto& tp : t.points()) {
    const uint32_t c = CellId32(grid, tp.p, level);
    if (out.empty() || out.back() != c) out.push_back(c);
  }
  return out;
}

using Pattern = std::vector<uint32_t>;

// Support (number of trajectories containing each n-gram, n = 2..max_len).
std::map<Pattern, int64_t> MinePatterns(const Dataset& d,
                                        const GridSpec& grid, int level,
                                        int max_len) {
  std::map<Pattern, int64_t> support;
  std::map<Pattern, size_t> last_seen;  // dedup within one trajectory
  for (size_t i = 0; i < d.size(); ++i) {
    const auto cells = CollapsedCells(d[i], grid, level);
    for (int len = 2; len <= max_len; ++len) {
      if (cells.size() < static_cast<size_t>(len)) continue;
      for (size_t s = 0; s + len <= cells.size(); ++s) {
        Pattern p(cells.begin() + s, cells.begin() + s + len);
        auto it = last_seen.find(p);
        if (it != last_seen.end() && it->second == i + 1) continue;
        last_seen[p] = i + 1;
        ++support[p];
      }
    }
  }
  return support;
}

// Top-k patterns by (support desc, pattern asc) — deterministic.
std::vector<Pattern> TopPatterns(const std::map<Pattern, int64_t>& support,
                                 size_t k) {
  std::vector<std::pair<int64_t, const Pattern*>> order;
  order.reserve(support.size());
  for (const auto& [p, s] : support) order.emplace_back(s, &p);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return *a.second < *b.second;
            });
  if (order.size() > k) order.resize(k);
  std::vector<Pattern> out;
  out.reserve(order.size());
  for (const auto& [s, p] : order) out.push_back(*p);
  return out;
}

}  // namespace

UtilityEvaluator::UtilityEvaluator(const BBox& region, UtilityConfig config)
    : region_(region),
      config_(config),
      coarse_grid_(region, config.coarse_level + 1),
      trip_grid_(region, config.trip_level + 1) {}

const Trajectory* UtilityEvaluator::Counterpart(const Dataset& original,
                                                size_t i,
                                                const Dataset& anonymized) {
  const auto idx = anonymized.IndexOf(original[i].id());
  if (idx.ok()) return &anonymized[*idx];
  if (i < anonymized.size()) return &anonymized[i];
  return nullptr;
}

double UtilityEvaluator::InformationLoss(const Dataset& original,
                                         const Dataset& anonymized) const {
  Quantizer quantizer(region_, config_.snap_levels);
  int64_t total = 0;
  int64_t preserved = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    const PointFrequency orig_pf =
        ComputePointFrequency(original[i], quantizer);
    for (const auto& [key, f] : orig_pf) total += f;
    const Trajectory* anon = Counterpart(original, i, anonymized);
    if (anon == nullptr) continue;
    const PointFrequency anon_pf = ComputePointFrequency(*anon, quantizer);
    for (const auto& [key, f] : orig_pf) {
      auto it = anon_pf.find(key);
      if (it != anon_pf.end()) preserved += std::min(f, it->second);
    }
  }
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(preserved) / static_cast<double>(total);
}

double UtilityEvaluator::DiameterDivergence(const Dataset& original,
                                            const Dataset& anonymized) const {
  const double max_diameter = region_.Diagonal();
  Histogram ho(0.0, max_diameter, config_.diameter_bins);
  Histogram ha(0.0, max_diameter, config_.diameter_bins);
  for (const auto& t : original.trajectories()) ho.Add(t.Diameter());
  for (const auto& t : anonymized.trajectories()) ha.Add(t.Diameter());
  return JensenShannonDivergence(ho.Probabilities(), ha.Probabilities());
}

double UtilityEvaluator::TripDivergence(const Dataset& original,
                                        const Dataset& anonymized) const {
  auto trips = [&](const Dataset& d) {
    std::unordered_map<uint64_t, double> counts;
    for (const auto& t : d.trajectories()) {
      if (t.empty()) continue;
      const uint32_t s =
          CellId32(trip_grid_, t.points().front().p, config_.trip_level);
      const uint32_t e =
          CellId32(trip_grid_, t.points().back().p, config_.trip_level);
      counts[PackPair(s, e)] += 1.0;
    }
    return counts;
  };
  return SparseJensenShannon(trips(original), trips(anonymized));
}

double UtilityEvaluator::FrequentPatternF(const Dataset& original,
                                          const Dataset& anonymized) const {
  const auto po = TopPatterns(
      MinePatterns(original, coarse_grid_, config_.coarse_level,
                   config_.max_pattern_len),
      config_.top_patterns);
  const auto pa = TopPatterns(
      MinePatterns(anonymized, coarse_grid_, config_.coarse_level,
                   config_.max_pattern_len),
      config_.top_patterns);
  if (po.empty() && pa.empty()) return 1.0;
  if (po.empty() || pa.empty()) return 0.0;
  std::map<Pattern, char> in_orig;
  for (const auto& p : po) in_orig[p] = 1;
  size_t common = 0;
  for (const auto& p : pa) {
    if (in_orig.count(p) > 0) ++common;
  }
  return 2.0 * static_cast<double>(common) /
         static_cast<double>(po.size() + pa.size());
}

double UtilityEvaluator::MutualInformation(const Dataset& original,
                                           const Dataset& anonymized) const {
  std::unordered_map<uint64_t, double> joint;
  for (size_t i = 0; i < original.size(); ++i) {
    const Trajectory* anon = Counterpart(original, i, anonymized);
    if (anon == nullptr) continue;
    const size_t n = std::min(original[i].size(), anon->size());
    for (size_t k = 0; k < n; ++k) {
      const uint32_t x =
          CellId32(coarse_grid_, original[i][k].p, config_.coarse_level);
      const uint32_t y =
          CellId32(coarse_grid_, (*anon)[k].p, config_.coarse_level);
      joint[PackPair(x, y)] += 1.0;
    }
  }
  return NormalizedMutualInformation(joint, &PairX, &PairY);
}

UtilityScores UtilityEvaluator::EvaluateAll(const Dataset& original,
                                            const Dataset& anonymized) const {
  UtilityScores s;
  s.inf = InformationLoss(original, anonymized);
  s.de = DiameterDivergence(original, anonymized);
  s.te = TripDivergence(original, anonymized);
  s.ffp = FrequentPatternF(original, anonymized);
  s.mi = MutualInformation(original, anonymized);
  return s;
}

}  // namespace frt
