#include "index/hierarchical_grid_index.h"

#include <algorithm>

#include "index/search_context.h"

namespace frt {

HierarchicalGridIndex::HierarchicalGridIndex(const GridSpec& grid,
                                             SearchStrategy strategy)
    : grid_(grid), strategy_(strategy) {
  root_ = AllocCell(CellCoord{0, 0, 0});
}

uint32_t HierarchicalGridIndex::FindSlot(const CellCoord& coord) const {
  auto it = slot_of_coord_.find(coord.Key());
  return it == slot_of_coord_.end() ? kNil : it->second;
}

uint32_t HierarchicalGridIndex::AllocCell(const CellCoord& coord) {
  uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = arena_[slot].parent;
    --free_slots_;
    arena_[slot].children.clear();
    arena_[slot].segments.clear();
    arena_[slot].geom.clear();
  } else {
    slot = static_cast<uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  HgCell& cell = arena_[slot];
  cell.coord = coord;
  cell.parent = kNil;
  slot_of_coord_.emplace(coord.Key(), slot);
  return slot;
}

uint32_t HierarchicalGridIndex::GetOrCreateCell(const CellCoord& coord) {
  if (uint32_t found = FindSlot(coord); found != kNil) return found;

  const uint32_t slot = AllocCell(coord);

  // Nearest materialized ancestor (the root always exists).
  CellCoord a = coord.Parent();
  uint32_t ancestor = kNil;
  while ((ancestor = FindSlot(a)) == kNil) a = a.Parent();

  // Cells currently attached to the ancestor that fall inside the new cell
  // become its children (the parent relation is "nearest materialized
  // enclosing cell", and the new cell now sits between them and `ancestor`).
  HgCell& cell = arena_[slot];
  auto& siblings = arena_[ancestor].children;
  for (size_t i = 0; i < siblings.size();) {
    if (coord.IsAncestorOf(arena_[siblings[i]].coord)) {
      arena_[siblings[i]].parent = slot;
      cell.children.push_back(siblings[i]);
      siblings[i] = siblings.back();
      siblings.pop_back();
    } else {
      ++i;
    }
  }
  cell.parent = ancestor;
  siblings.push_back(slot);
  return slot;
}

void HierarchicalGridIndex::MaybePrune(uint32_t slot) {
  // Splice out cells holding no segments; their children reattach to the
  // parent so only occupied cells stay materialized (plus the root).
  // Non-root cells always hold at least one segment (cells are created by
  // Insert and spliced as soon as their last segment leaves), so at most
  // one splice is needed per removal.
  HgCell& cell = arena_[slot];
  if (slot == root_ || !cell.segments.empty()) return;
  const uint32_t parent = cell.parent;
  auto& siblings = arena_[parent].children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), slot));
  for (const uint32_t child : cell.children) {
    arena_[child].parent = parent;
    siblings.push_back(child);
  }
  slot_of_coord_.erase(cell.coord.Key());
  cell.parent = free_head_;
  free_head_ = slot;
  ++free_slots_;
}

Status HierarchicalGridIndex::InsertImpl(const SegmentEntry& entry) {
  auto [it, inserted] = cell_of_.try_emplace(entry.handle, kNil);
  if (!inserted) {
    return Status::AlreadyExists("segment handle already indexed");
  }
  const CellCoord coord = grid_.BestFitCell(entry.geom.a, entry.geom.b);
  const uint32_t slot = GetOrCreateCell(coord);
  arena_[slot].segments.push_back(entry);
  arena_[slot].geom.PushBack(entry.geom);
  it->second = slot;
  return Status::OK();
}

Status HierarchicalGridIndex::Insert(const SegmentEntry& entry) {
  return InsertImpl(entry);
}

Status HierarchicalGridIndex::Build(Span<const SegmentEntry> entries) {
  cell_of_.reserve(cell_of_.size() + entries.size());
  // Occupied-cell counts are data-dependent; entries/2 matches the dense
  // per-trajectory workloads this path serves without overshooting on
  // wide-area datasets.
  slot_of_coord_.reserve(slot_of_coord_.size() + entries.size() / 2 + 1);
  arena_.reserve(arena_.size() + entries.size() / 2 + 1);
  for (const SegmentEntry& e : entries) {
    FRT_RETURN_IF_ERROR(InsertImpl(e));
  }
  return Status::OK();
}

Status HierarchicalGridIndex::Remove(SegmentHandle handle) {
  auto it = cell_of_.find(handle);
  if (it == cell_of_.end()) {
    return Status::NotFound("segment handle not indexed");
  }
  const uint32_t slot = it->second;
  auto& segs = arena_[slot].segments;
  auto sit = std::find_if(segs.begin(), segs.end(),
                          [handle](const SegmentEntry& e) {
                            return e.handle == handle;
                          });
  arena_[slot].geom.SwapRemove(static_cast<size_t>(sit - segs.begin()));
  *sit = segs.back();
  segs.pop_back();
  cell_of_.erase(it);
  MaybePrune(slot);
  return Status::OK();
}

size_t HierarchicalGridIndex::Compact() {
  if (free_head_ == kNil) return 0;

  // Mark free-listed slots, then renumber the live ones in slot order —
  // relative order (and every child vector's order) is preserved, so
  // traversal order and distance-evaluation counts are unchanged.
  std::vector<char> dead(arena_.size(), 0);
  for (uint32_t s = free_head_; s != kNil; s = arena_[s].parent) dead[s] = 1;
  std::vector<uint32_t> remap(arena_.size(), kNil);
  uint32_t next = 0;
  for (uint32_t s = 0; s < arena_.size(); ++s) {
    if (!dead[s]) remap[s] = next++;
  }
  const size_t reclaimed = arena_.size() - next;

  std::vector<HgCell> packed;
  packed.reserve(next);
  for (uint32_t s = 0; s < arena_.size(); ++s) {
    if (dead[s]) continue;
    packed.push_back(std::move(arena_[s]));
    HgCell& cell = packed.back();
    if (cell.parent != kNil) cell.parent = remap[cell.parent];
    for (uint32_t& child : cell.children) child = remap[child];
  }
  arena_ = std::move(packed);
  for (auto& [key, slot] : slot_of_coord_) slot = remap[slot];
  for (auto& [handle, slot] : cell_of_) slot = remap[slot];
  root_ = remap[root_];
  free_head_ = kNil;
  free_slots_ = 0;
  ++compactions_;
  return reclaimed;
}

Span<const SegmentEntry> HierarchicalGridIndex::CellSegments(
    const CellCoord& coord) const {
  const uint32_t slot = FindSlot(coord);
  if (slot == kNil) return {};
  return Span<const SegmentEntry>(arena_[slot].segments);
}

CellCoord HierarchicalGridIndex::CellParent(const CellCoord& coord) const {
  const uint32_t slot = FindSlot(coord);
  if (slot == kNil || arena_[slot].parent == kNil) {
    return arena_[root_].coord;
  }
  return arena_[arena_[slot].parent].coord;
}

uint32_t HierarchicalGridIndex::LocateStart(const Point& q) const {
  CellCoord c = grid_.CellAt(q, grid_.finest_level());
  while (true) {
    if (uint32_t slot = FindSlot(c); slot != kNil) return slot;
    c = c.Parent();
  }
}

uint64_t HierarchicalGridIndex::SweepCell(const HgCell& cell, const Point& q,
                                          const SearchOptions& options,
                                          SearchContext* ctx) const {
  const std::vector<SegmentEntry>& segs = cell.segments;
  const size_t n = segs.size();
  if (n == 0) return 0;

  if (options.use_batched_kernel) {
    // One kernel sweep over the cell's SoA blocks, then offer in entry
    // order — the same order (and the same doubles) as the scalar loop.
    // Filtered-out lanes have their distances computed (the sweep is
    // branch-free) but are neither offered nor counted, matching the
    // scalar path's distance_evaluations exactly.
    double* d2 = ctx->Dist2Lanes(n);
    for (size_t b = 0; b < cell.geom.num_blocks(); ++b) {
      PointSegmentDistance2Batch(q, cell.geom.block(b),
                                 d2 + b * kDistLanes);
    }
    if (!options.filter) {
      ctx->collector.OfferBatch(segs.data(), d2, n);
      return n;
    }
    uint64_t evals = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!options.filter(segs[i])) continue;
      ++evals;
      ctx->collector.Offer(segs[i], d2[i]);
    }
    return evals;
  }

  uint64_t evals = 0;
  for (const SegmentEntry& e : segs) {
    if (options.filter && !options.filter(e)) continue;
    ++evals;
    ctx->collector.Offer(e, PointSegmentDistance2(q, e.geom));
  }
  return evals;
}

Span<const Neighbor> HierarchicalGridIndex::KNearest(
    const Point& q, const SearchOptions& options, SearchContext* ctx) const {
  ctx->collector.Reset(options.k, options.group_by);
  ctx->results.clear();
  if (options.k == 0 || cell_of_.empty()) return {};
  switch (strategy_) {
    case SearchStrategy::kTopDown:
      SearchTopDown(q, options, ctx);
      break;
    case SearchStrategy::kBottomUp:
      SearchBottomUp(q, options, /*switch_to_queue=*/false, ctx);
      break;
    case SearchStrategy::kBottomUpDown:
    default:
      SearchBottomUp(q, options, /*switch_to_queue=*/true, ctx);
      break;
  }
  ctx->collector.Finalize(&ctx->results);
  return Span<const Neighbor>(ctx->results);
}

void HierarchicalGridIndex::SearchTopDown(const Point& q,
                                          const SearchOptions& options,
                                          SearchContext* ctx) const {
  // Classic best-first descent: binary heap on MINdist² from the root.
  ResultCollector& collector = ctx->collector;
  std::vector<CellCandidate>& heap = ctx->heap;
  heap.clear();
  heap.push_back({0.0, root_});
  uint64_t evals = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), CellCandidateGreater{});
    const CellCandidate cand = heap.back();
    heap.pop_back();
    // Heap order makes this exact: nothing left can beat theta_K
    // (Theorem 4).
    if (collector.Full() && cand.mindist2 > collector.Threshold2()) break;
    const HgCell& cell = arena_[cand.slot];
    evals += SweepCell(cell, q, options, ctx);
    for (const uint32_t child : cell.children) {
      const double child_dist2 =
          MinDist2PointBBox(q, grid_.CellBox(arena_[child].coord));
      if (collector.Full() && child_dist2 > collector.Threshold2()) continue;
      heap.push_back({child_dist2, child});
      std::push_heap(heap.begin(), heap.end(), CellCandidateGreater{});
    }
  }
  dist_evals_.fetch_add(evals, std::memory_order_relaxed);
}

void HierarchicalGridIndex::SearchBottomUp(const Point& q,
                                           const SearchOptions& options,
                                           bool switch_to_queue,
                                           SearchContext* ctx) const {
  // Algorithm 3. Phase 1 ("bottom-up"): a stack ascends from the finest
  // materialized cell containing q; the parent is pushed before the
  // children so finer cells near q are examined first, shrinking theta_K
  // early. Every ancestor of the start cell contains q, so parents are
  // pushed with MINdist 0 and are never pruned — the ascent always reaches
  // the root. Phase 2 ("top-down"): once the root is reached, remaining
  // candidates move into a binary heap on MINdist², enabling early
  // termination (Theorem 4). With switch_to_queue=false the stack is kept
  // throughout — the HGb competitor of Fig. 5, which cannot terminate early
  // and only benefits from prune-on-pop.
  //
  // Note: the paper's pseudocode leaves entries stranded on the stack when
  // the root flips the search into queue mode; we transfer them into the
  // queue so no subtree is dropped (required for exactness).
  //
  // "Visited" is a stamp in the caller's context keyed by arena slot (one
  // uint32 write/read, no allocation, no write to the shared index).
  ResultCollector& collector = ctx->collector;
  ctx->BeginVisit(arena_.size());

  std::vector<CellCandidate>& stack = ctx->stack;  // S_g
  std::vector<CellCandidate>& queue = ctx->heap;   // Q_g
  stack.clear();
  queue.clear();
  bool root_access = false;
  uint64_t evals = 0;

  stack.push_back({0.0, LocateStart(q)});

  const auto push_candidate = [&](uint32_t slot, double mindist2) {
    if (ctx->Visited(slot)) return;
    if (!root_access) {
      stack.push_back({mindist2, slot});
    } else {
      queue.push_back({mindist2, slot});
      std::push_heap(queue.begin(), queue.end(), CellCandidateGreater{});
    }
  };

  while (!stack.empty() || !queue.empty()) {
    CellCandidate cand{};
    if (!root_access) {
      cand = stack.back();
      stack.pop_back();
      if (ctx->Visited(cand.slot)) continue;
      // Prune-on-pop (cannot break: the stack is unordered).
      if (collector.Full() && cand.mindist2 > collector.Threshold2()) {
        ctx->MarkVisited(cand.slot);  // subtree provably uninteresting
        continue;
      }
    } else {
      std::pop_heap(queue.begin(), queue.end(), CellCandidateGreater{});
      cand = queue.back();
      queue.pop_back();
      if (ctx->Visited(cand.slot)) continue;
      // Ordered pops allow exact early termination.
      if (collector.Full() && cand.mindist2 > collector.Threshold2()) break;
    }
    const HgCell& cell = arena_[cand.slot];
    ctx->MarkVisited(cand.slot);

    evals += SweepCell(cell, q, options, ctx);

    // Push the parent first (ancestors contain q; MINdist 0), then the
    // children, so LIFO order examines fine cells near q before coarser
    // ones (paper §IV-C2).
    if (cell.parent != kNil && !ctx->Visited(cell.parent)) {
      if (switch_to_queue && !root_access && cell.parent == root_) {
        root_access = true;
        queue.push_back({0.0, root_});
        std::push_heap(queue.begin(), queue.end(), CellCandidateGreater{});
        // Transfer stranded stack entries so phase 2 still sees them.
        for (const CellCandidate& c : stack) {
          if (ctx->Visited(c.slot)) continue;
          queue.push_back(c);
          std::push_heap(queue.begin(), queue.end(), CellCandidateGreater{});
        }
        stack.clear();
      } else {
        push_candidate(cell.parent, 0.0);
      }
    }
    for (const uint32_t child : cell.children) {
      if (ctx->Visited(child)) continue;
      const double child_dist2 =
          MinDist2PointBBox(q, grid_.CellBox(arena_[child].coord));
      if (collector.Full() && child_dist2 > collector.Threshold2()) continue;
      push_candidate(child, child_dist2);
    }
  }
  dist_evals_.fetch_add(evals, std::memory_order_relaxed);
}

}  // namespace frt
