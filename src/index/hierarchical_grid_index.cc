#include "index/hierarchical_grid_index.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "index/collector.h"

namespace frt {

HierarchicalGridIndex::HierarchicalGridIndex(const GridSpec& grid,
                                             SearchStrategy strategy)
    : grid_(grid), strategy_(strategy) {
  auto root = std::make_unique<HgCell>();
  root->coord = CellCoord{0, 0, 0};
  root_ = root.get();
  cells_.emplace(root->coord.Key(), std::move(root));
}

HierarchicalGridIndex::HgCell* HierarchicalGridIndex::FindCell(
    const CellCoord& coord) const {
  auto it = cells_.find(coord.Key());
  return it == cells_.end() ? nullptr : it->second.get();
}

HierarchicalGridIndex::HgCell* HierarchicalGridIndex::GetOrCreateCell(
    const CellCoord& coord) {
  if (HgCell* found = FindCell(coord)) return found;

  auto owned = std::make_unique<HgCell>();
  owned->coord = coord;
  HgCell* cell = owned.get();
  cells_.emplace(coord.Key(), std::move(owned));

  // Nearest materialized ancestor (the root always exists).
  CellCoord a = coord.Parent();
  HgCell* ancestor = nullptr;
  while ((ancestor = FindCell(a)) == nullptr) a = a.Parent();

  // Cells currently attached to the ancestor that fall inside the new cell
  // become its children (the parent relation is "nearest materialized
  // enclosing cell", and the new cell now sits between them and `ancestor`).
  auto& siblings = ancestor->children;
  for (size_t i = 0; i < siblings.size();) {
    if (coord.IsAncestorOf(siblings[i]->coord)) {
      siblings[i]->parent = cell;
      cell->children.push_back(siblings[i]);
      siblings[i] = siblings.back();
      siblings.pop_back();
    } else {
      ++i;
    }
  }
  cell->parent = ancestor;
  ancestor->children.push_back(cell);
  return cell;
}

void HierarchicalGridIndex::MaybePrune(HgCell* cell) {
  // Splice out cells holding no segments; their children reattach to the
  // parent so only occupied cells stay materialized (plus the root).
  // Non-root cells always hold at least one segment (cells are created by
  // Insert and spliced as soon as their last segment leaves), so at most
  // one splice is needed per removal.
  if (cell == root_ || !cell->segments.empty()) return;
  HgCell* parent = cell->parent;
  auto& siblings = parent->children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), cell));
  for (HgCell* child : cell->children) {
    child->parent = parent;
    siblings.push_back(child);
  }
  cells_.erase(cell->coord.Key());
}

Status HierarchicalGridIndex::Insert(const SegmentEntry& entry) {
  auto [it, inserted] = entries_.try_emplace(entry.handle, entry);
  if (!inserted) {
    return Status::AlreadyExists("segment handle already indexed");
  }
  const CellCoord coord = grid_.BestFitCell(entry.geom.a, entry.geom.b);
  HgCell* cell = GetOrCreateCell(coord);
  cell->segments.push_back(entry.handle);
  cell_of_[entry.handle] = coord.Key();
  return Status::OK();
}

Status HierarchicalGridIndex::Remove(SegmentHandle handle) {
  auto it = cell_of_.find(handle);
  if (it == cell_of_.end()) {
    return Status::NotFound("segment handle not indexed");
  }
  HgCell* cell = cells_.at(it->second).get();
  auto& segs = cell->segments;
  auto sit = std::find(segs.begin(), segs.end(), handle);
  *sit = segs.back();
  segs.pop_back();
  cell_of_.erase(it);
  entries_.erase(handle);
  MaybePrune(cell);
  return Status::OK();
}

std::vector<SegmentHandle> HierarchicalGridIndex::CellSegments(
    const CellCoord& coord) const {
  const HgCell* cell = FindCell(coord);
  return cell ? cell->segments : std::vector<SegmentHandle>{};
}

CellCoord HierarchicalGridIndex::CellParent(const CellCoord& coord) const {
  const HgCell* cell = FindCell(coord);
  if (cell == nullptr || cell->parent == nullptr) return root_->coord;
  return cell->parent->coord;
}

HierarchicalGridIndex::HgCell* HierarchicalGridIndex::LocateStart(
    const Point& q) const {
  CellCoord c = grid_.CellAt(q, grid_.finest_level());
  while (true) {
    if (HgCell* cell = FindCell(c)) return cell;
    c = c.Parent();
  }
}

std::vector<Neighbor> HierarchicalGridIndex::KNearest(
    const Point& q, const SearchOptions& options) const {
  if (options.k == 0 || entries_.empty()) return {};
  switch (strategy_) {
    case SearchStrategy::kTopDown:
      return SearchTopDown(q, options);
    case SearchStrategy::kBottomUp:
      return SearchBottomUp(q, options, /*switch_to_queue=*/false);
    case SearchStrategy::kBottomUpDown:
    default:
      return SearchBottomUp(q, options, /*switch_to_queue=*/true);
  }
}

namespace {

struct CellCandidate {
  double mindist;
  const void* cell;  // type-erased HgCell*; avoids exposing the private type
  bool operator>(const CellCandidate& o) const {
    return mindist > o.mindist;
  }
};

}  // namespace

std::vector<Neighbor> HierarchicalGridIndex::SearchTopDown(
    const Point& q, const SearchOptions& options) const {
  // Classic best-first descent: priority queue on MINdist from the root.
  ResultCollector collector(options.k, options.group_by);
  std::priority_queue<CellCandidate, std::vector<CellCandidate>,
                      std::greater<CellCandidate>>
      heap;
  heap.push({0.0, root_});
  while (!heap.empty()) {
    const auto [mindist, erased] = heap.top();
    heap.pop();
    const HgCell* cell = static_cast<const HgCell*>(erased);
    // Heap order makes this exact: nothing left can beat theta_K
    // (Theorem 4).
    if (collector.Full() && mindist > collector.Threshold()) break;
    for (const SegmentHandle h : cell->segments) {
      const SegmentEntry& e = entries_.at(h);
      if (options.filter && !options.filter(e)) continue;
      ++dist_evals_;
      collector.Offer(e, PointSegmentDistance(q, e.geom));
    }
    for (const HgCell* child : cell->children) {
      const double child_dist =
          MinDistPointBBox(q, grid_.CellBox(child->coord));
      if (collector.Full() && child_dist > collector.Threshold()) continue;
      heap.push({child_dist, child});
    }
  }
  return collector.Finalize();
}

std::vector<Neighbor> HierarchicalGridIndex::SearchBottomUp(
    const Point& q, const SearchOptions& options,
    bool switch_to_queue) const {
  // Algorithm 3. Phase 1 ("bottom-up"): a stack ascends from the finest
  // materialized cell containing q; the parent is pushed before the
  // children so finer cells near q are examined first, shrinking theta_K
  // early. Every ancestor of the start cell contains q, so parents are
  // pushed with MINdist 0 and are never pruned — the ascent always reaches
  // the root. Phase 2 ("top-down"): once the root is reached, remaining
  // candidates move into a priority queue on MINdist, enabling early
  // termination (Theorem 4). With switch_to_queue=false the stack is kept
  // throughout — the HGb competitor of Fig. 5, which cannot terminate early
  // and only benefits from prune-on-pop.
  //
  // Note: the paper's pseudocode leaves entries stranded on the stack when
  // the root flips the search into queue mode; we transfer them into the
  // queue so no subtree is dropped (required for exactness).
  ResultCollector collector(options.k, options.group_by);
  std::unordered_set<const HgCell*> visited;

  std::vector<CellCandidate> stack;      // S_g
  std::priority_queue<CellCandidate, std::vector<CellCandidate>,
                      std::greater<CellCandidate>>
      queue;                             // Q_g
  bool root_access = false;

  const HgCell* start = LocateStart(q);
  stack.push_back({0.0, start});

  auto push_candidate = [&](const HgCell* cell, double mindist) {
    if (visited.count(cell) > 0) return;
    if (!root_access) {
      stack.push_back({mindist, cell});
    } else {
      queue.push({mindist, cell});
    }
  };

  while (!stack.empty() || !queue.empty()) {
    CellCandidate cand{};
    if (!root_access) {
      cand = stack.back();
      stack.pop_back();
      const HgCell* cell = static_cast<const HgCell*>(cand.cell);
      if (visited.count(cell) > 0) continue;
      // Prune-on-pop (cannot break: the stack is unordered).
      if (collector.Full() && cand.mindist > collector.Threshold()) {
        visited.insert(cell);  // its subtree is provably uninteresting
        continue;
      }
    } else {
      cand = queue.top();
      queue.pop();
      const HgCell* cell = static_cast<const HgCell*>(cand.cell);
      if (visited.count(cell) > 0) continue;
      // Ordered pops allow exact early termination.
      if (collector.Full() && cand.mindist > collector.Threshold()) break;
    }
    const HgCell* cell = static_cast<const HgCell*>(cand.cell);
    visited.insert(cell);

    for (const SegmentHandle h : cell->segments) {
      const SegmentEntry& e = entries_.at(h);
      if (options.filter && !options.filter(e)) continue;
      ++dist_evals_;
      collector.Offer(e, PointSegmentDistance(q, e.geom));
    }

    // Push the parent first (ancestors contain q; MINdist 0), then the
    // children, so LIFO order examines fine cells near q before coarser
    // ones (paper §IV-C2).
    if (cell->parent != nullptr && visited.count(cell->parent) == 0) {
      if (switch_to_queue && !root_access && cell->parent == root_) {
        root_access = true;
        queue.push({0.0, root_});
        // Transfer stranded stack entries so phase 2 still sees them.
        for (const CellCandidate& c : stack) {
          const HgCell* sc = static_cast<const HgCell*>(c.cell);
          if (visited.count(sc) == 0) queue.push(c);
        }
        stack.clear();
      } else {
        push_candidate(cell->parent, 0.0);
      }
    }
    for (const HgCell* child : cell->children) {
      if (visited.count(child) > 0) continue;
      const double child_dist =
          MinDistPointBBox(q, grid_.CellBox(child->coord));
      if (collector.Full() && child_dist > collector.Threshold()) continue;
      push_candidate(child, child_dist);
    }
  }
  return collector.Finalize();
}

}  // namespace frt
