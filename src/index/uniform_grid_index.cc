#include "index/uniform_grid_index.h"

#include <algorithm>
#include <cmath>

#include "index/search_context.h"

namespace frt {

UniformGridIndex::UniformGridIndex(const GridSpec& grid)
    : grid_(grid), level_(grid.finest_level()) {}

template <typename Fn>
void UniformGridIndex::ForEachCoveredCell(const Segment& s, Fn&& fn) const {
  const CellCoord ca = grid_.CellAt(s.a, level_);
  const CellCoord cb = grid_.CellAt(s.b, level_);
  const int32_t x0 = std::min(ca.ix, cb.ix);
  const int32_t x1 = std::max(ca.ix, cb.ix);
  const int32_t y0 = std::min(ca.iy, cb.iy);
  const int32_t y1 = std::max(ca.iy, cb.iy);
  for (int32_t x = x0; x <= x1; ++x) {
    for (int32_t y = y0; y <= y1; ++y) {
      fn(CellCoord{level_, x, y}.Key());
    }
  }
}

Status UniformGridIndex::Insert(const SegmentEntry& entry) {
  auto [it, inserted] = slot_of_.try_emplace(entry.handle, 0u);
  if (!inserted) {
    return Status::AlreadyExists("segment handle already indexed");
  }
  uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = store_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(store_.size());
    store_.emplace_back();
  }
  store_[slot].entry = entry;
  it->second = slot;
  ForEachCoveredCell(entry.geom,
                     [&](uint64_t key) { cells_[key].push_back(slot); });
  return Status::OK();
}

Status UniformGridIndex::Build(Span<const SegmentEntry> entries) {
  slot_of_.reserve(slot_of_.size() + entries.size());
  store_.reserve(store_.size() + entries.size());
  for (const SegmentEntry& e : entries) {
    FRT_RETURN_IF_ERROR(Insert(e));
  }
  return Status::OK();
}

Status UniformGridIndex::Remove(SegmentHandle handle) {
  auto it = slot_of_.find(handle);
  if (it == slot_of_.end()) {
    return Status::NotFound("segment handle not indexed");
  }
  const uint32_t slot = it->second;
  ForEachCoveredCell(store_[slot].entry.geom, [&](uint64_t key) {
    auto cit = cells_.find(key);
    if (cit == cells_.end()) return;
    auto& v = cit->second;
    v.erase(std::remove(v.begin(), v.end(), slot), v.end());
    if (v.empty()) cells_.erase(cit);
  });
  slot_of_.erase(it);
  store_[slot].next_free = free_head_;
  free_head_ = slot;
  return Status::OK();
}

Span<const Neighbor> UniformGridIndex::KNearest(const Point& q,
                                                const SearchOptions& options,
                                                SearchContext* ctx) const {
  ResultCollector& collector = ctx->collector;
  collector.Reset(options.k, options.group_by);
  ctx->results.clear();
  if (slot_of_.empty() || options.k == 0) return {};

  // Dedup stamps for multi-cell segments live in the caller's context,
  // keyed by store slot — the store itself is never written by a search.
  ctx->BeginVisit(store_.size());

  const int64_t n = grid_.Resolution(level_);
  const double cell_w =
      grid_.region().Width() / static_cast<double>(n);
  const double cell_h =
      grid_.region().Height() / static_cast<double>(n);
  const double cell_min = std::min(cell_w, cell_h);
  const CellCoord c0 = grid_.CellAt(q, level_);
  uint64_t evals = 0;

  const int max_radius = static_cast<int>(n);  // covers the whole grid
  for (int radius = 0; radius <= max_radius; ++radius) {
    // Lower bound on the distance from q to any cell in this ring,
    // compared squared (both sides non-negative, so squaring preserves
    // the decision exactly).
    if (radius >= 2) {
      const double ring_lb = (radius - 1) * cell_min;
      if (collector.Full() && ring_lb * ring_lb > collector.Threshold2()) {
        break;
      }
    }
    for (int dx = -radius; dx <= radius; ++dx) {
      for (int dy = -radius; dy <= radius; ++dy) {
        if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
        const int32_t x = c0.ix + dx;
        const int32_t y = c0.iy + dy;
        if (x < 0 || y < 0 || x >= n || y >= n) continue;
        auto it = cells_.find(CellCoord{level_, x, y}.Key());
        if (it == cells_.end()) continue;
        for (const uint32_t slot : it->second) {
          if (ctx->Visited(slot)) continue;  // dedup multi-cell segments
          ctx->MarkVisited(slot);
          const SegmentEntry& entry = store_[slot].entry;
          if (options.filter && !options.filter(entry)) continue;
          ++evals;
          collector.Offer(entry, PointSegmentDistance2(q, entry.geom));
        }
      }
    }
  }
  dist_evals_.fetch_add(evals, std::memory_order_relaxed);
  collector.Finalize(&ctx->results);
  return Span<const Neighbor>(ctx->results);
}

}  // namespace frt
