#include "index/uniform_grid_index.h"

#include <algorithm>
#include <cmath>

#include "index/collector.h"

namespace frt {

UniformGridIndex::UniformGridIndex(const GridSpec& grid)
    : grid_(grid), level_(grid.finest_level()) {}

std::vector<CellCoord> UniformGridIndex::CoveredCells(
    const Segment& s) const {
  const CellCoord ca = grid_.CellAt(s.a, level_);
  const CellCoord cb = grid_.CellAt(s.b, level_);
  std::vector<CellCoord> out;
  const int32_t x0 = std::min(ca.ix, cb.ix);
  const int32_t x1 = std::max(ca.ix, cb.ix);
  const int32_t y0 = std::min(ca.iy, cb.iy);
  const int32_t y1 = std::max(ca.iy, cb.iy);
  out.reserve(static_cast<size_t>(x1 - x0 + 1) * (y1 - y0 + 1));
  for (int32_t x = x0; x <= x1; ++x) {
    for (int32_t y = y0; y <= y1; ++y) {
      out.push_back(CellCoord{level_, x, y});
    }
  }
  return out;
}

Status UniformGridIndex::Insert(const SegmentEntry& entry) {
  auto [it, inserted] = entries_.try_emplace(entry.handle, entry);
  if (!inserted) {
    return Status::AlreadyExists("segment handle already indexed");
  }
  for (const CellCoord& c : CoveredCells(entry.geom)) {
    cells_[c.Key()].push_back(entry.handle);
  }
  return Status::OK();
}

Status UniformGridIndex::Remove(SegmentHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    return Status::NotFound("segment handle not indexed");
  }
  for (const CellCoord& c : CoveredCells(it->second.geom)) {
    auto cit = cells_.find(c.Key());
    if (cit == cells_.end()) continue;
    auto& v = cit->second;
    v.erase(std::remove(v.begin(), v.end(), handle), v.end());
    if (v.empty()) cells_.erase(cit);
  }
  entries_.erase(it);
  return Status::OK();
}

std::vector<Neighbor> UniformGridIndex::KNearest(
    const Point& q, const SearchOptions& options) const {
  ResultCollector collector(options.k, options.group_by);
  if (entries_.empty() || options.k == 0) return collector.Finalize();

  const int64_t n = grid_.Resolution(level_);
  const double cell_w =
      grid_.region().Width() / static_cast<double>(n);
  const double cell_h =
      grid_.region().Height() / static_cast<double>(n);
  const double cell_min = std::min(cell_w, cell_h);
  const CellCoord c0 = grid_.CellAt(q, level_);

  std::unordered_set<SegmentHandle> seen;
  const int max_radius = static_cast<int>(n);  // covers the whole grid
  for (int radius = 0; radius <= max_radius; ++radius) {
    // Lower bound on the distance from q to any cell in this ring.
    if (radius >= 2) {
      const double ring_lb = (radius - 1) * cell_min;
      if (collector.Full() && ring_lb > collector.Threshold()) break;
    }
    for (int dx = -radius; dx <= radius; ++dx) {
      for (int dy = -radius; dy <= radius; ++dy) {
        if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
        const int32_t x = c0.ix + dx;
        const int32_t y = c0.iy + dy;
        if (x < 0 || y < 0 || x >= n || y >= n) continue;
        auto it = cells_.find(CellCoord{level_, x, y}.Key());
        if (it == cells_.end()) continue;
        for (const SegmentHandle h : it->second) {
          if (!seen.insert(h).second) continue;  // dedup multi-cell segments
          const SegmentEntry& e = entries_.at(h);
          if (options.filter && !options.filter(e)) continue;
          ++dist_evals_;
          collector.Offer(e, PointSegmentDistance(q, e.geom));
        }
      }
    }
  }
  return collector.Finalize();
}

}  // namespace frt
