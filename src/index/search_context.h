// SearchContext: the reusable scratch object behind allocation-free
// KNearest calls (declared in index/segment_index.h).
//
// A context owns every buffer a search needs — the best-K collector, the
// traversal frontier (stack + binary heap over arena slots), and the
// result vector the returned span points into. Reusing one context across
// queries means all of them keep their high-water-mark capacity, so a warm
// context performs zero heap allocations per query.
//
// Contract: NOT thread-safe; use one context per thread. A context may be
// freely reused across different indexes and strategies. Results from
// KNearest(q, options, ctx) alias ctx->results and die at the next search
// through the same context.

#ifndef FRT_INDEX_SEARCH_CONTEXT_H_
#define FRT_INDEX_SEARCH_CONTEXT_H_

#include <vector>

#include "index/collector.h"
#include "index/segment_index.h"

namespace frt {

/// A prioritized traversal candidate: an arena slot and the lower bound on
/// the distance from the query to anything stored in that cell's subtree.
struct CellCandidate {
  double mindist = 0.0;
  uint32_t slot = 0;
};

/// Min-heap comparator on MINdist (mirrors the former
/// priority_queue<..., std::greater<>> ordering exactly, so traversal
/// order — and hence the distance-evaluation counts — is unchanged).
struct CellCandidateGreater {
  bool operator()(const CellCandidate& a, const CellCandidate& b) const {
    return a.mindist > b.mindist;
  }
};

class SearchContext {
 public:
  SearchContext() = default;
  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  // Scratch state below is owned by the index implementation for the
  // duration of one KNearest call; treat it as opaque elsewhere.

  ResultCollector collector;
  std::vector<CellCandidate> stack;  ///< S_g: bottom-up ascent (HGb/HG+)
  std::vector<CellCandidate> heap;   ///< Q_g: best-first frontier (binary heap)
  std::vector<Neighbor> results;     ///< storage behind the returned span
};

}  // namespace frt

#endif  // FRT_INDEX_SEARCH_CONTEXT_H_
