// SearchContext: the reusable scratch object behind allocation-free,
// concurrent-reader-safe KNearest calls (declared in index/segment_index.h).
//
// A context owns every buffer a search needs — the best-K collector, the
// traversal frontier (stack + binary heap over arena slots), the batched
// distance-kernel lane buffer, the visited-slot stamp vector, and the
// result vector the returned span points into. Reusing one context across
// queries means all of them keep their high-water-mark capacity, so a warm
// context performs zero heap allocations per query.
//
// The visited stamps are the concurrency keystone: searches used to mark
// visited cells with epoch stamps ON the shared arena, which made even
// const KNearest calls mutate the index. The stamps now live here, keyed
// by arena slot, so any number of threads can search one immutable index
// simultaneously — each through its own context, with zero shared writes
// (the index's distance_evaluations counter is a relaxed atomic).
//
// Contract: NOT thread-safe; use one context per thread. A context may be
// freely reused across different indexes and strategies (the stamp epoch
// is private to the context, so interleaving indexes is safe). Results
// from KNearest(q, options, ctx) alias ctx->results and die at the next
// search through the same context.

#ifndef FRT_INDEX_SEARCH_CONTEXT_H_
#define FRT_INDEX_SEARCH_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geo/segment_soa.h"
#include "index/collector.h"
#include "index/segment_index.h"

namespace frt {

/// A prioritized traversal candidate: an arena slot and the squared lower
/// bound on the distance from the query to anything stored in that cell's
/// subtree.
struct CellCandidate {
  double mindist2 = 0.0;
  uint32_t slot = 0;
};

/// Min-heap comparator on MINdist² (squared space preserves the ordering
/// of the former plain-distance heap exactly — sqrt is monotone — so
/// traversal order is unchanged up to rounding at exact ties).
struct CellCandidateGreater {
  bool operator()(const CellCandidate& a, const CellCandidate& b) const {
    return a.mindist2 > b.mindist2;
  }
};

class SearchContext {
 public:
  SearchContext() = default;
  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  // Scratch state below is owned by the index implementation for the
  // duration of one KNearest call; treat it as opaque elsewhere.

  ResultCollector collector;
  std::vector<CellCandidate> stack;  ///< S_g: bottom-up ascent (HGb/HG+)
  std::vector<CellCandidate> heap;   ///< Q_g: best-first frontier (binary heap)
  std::vector<Neighbor> results;     ///< storage behind the returned span
  /// Squared-distance lane buffer the batched kernel writes into; sized to
  /// the largest cell swept so far, rounded up to whole blocks.
  std::vector<double> dist2;

  /// Rearms the visited stamps for a new search over an index with
  /// `slots` addressable slots and returns this search's stamp. Grows the
  /// stamp vector on first contact with a larger index (steady-state
  /// searches against a stable index never reallocate; arena compaction
  /// only shrinks the slot space, so reuse after Compact() is free).
  uint32_t BeginVisit(size_t slots) {
    if (stamps_.size() < slots) stamps_.resize(slots, 0);
    if (++visit_epoch_ == 0) {
      // Wrap after 2^32 searches: stale stamps could collide with future
      // epochs, so reset them all.
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      visit_epoch_ = 1;
    }
    return visit_epoch_;
  }

  bool Visited(uint32_t slot) const {
    return stamps_[slot] == visit_epoch_;
  }
  void MarkVisited(uint32_t slot) { stamps_[slot] = visit_epoch_; }

  /// Ensures the lane buffer covers `lanes` entries rounded up to whole
  /// kernel blocks, returning its base pointer.
  double* Dist2Lanes(size_t lanes) {
    const size_t padded =
        (lanes + kDistLanes - 1) / kDistLanes * kDistLanes;
    if (dist2.size() < padded) dist2.resize(padded);
    return dist2.data();
  }

 private:
  /// Per-slot visited stamps, keyed by arena/store slot; a slot is visited
  /// in the current search iff its stamp equals visit_epoch_.
  std::vector<uint32_t> stamps_;
  uint32_t visit_epoch_ = 0;
};

}  // namespace frt

#endif  // FRT_INDEX_SEARCH_CONTEXT_H_
