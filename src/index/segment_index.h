// Segment indexing and K-nearest search (paper §IV-C).
//
// Trajectory modification reduces to two nearest-neighbor problems:
//   * K-nearest segment search (Def. 10) — insertion sites within one
//     trajectory;
//   * K-nearest trajectory search (Def. 8) — insertion targets across the
//     dataset, i.e. the K *distinct trajectories* whose best segment is
//     nearest.
// Both are served by one abstraction: an index over segments that supports
// KNearest() with a grouping mode (by segment / by trajectory) and an
// eligibility filter, plus incremental updates so the index stays valid
// while a batch of edits is applied (Alg. 3 line 36, ModifyAndUpdate).
//
// Implementations: linear scan (baseline), single-level uniform grid (UG),
// and the paper's hierarchical grid (HG) with three search strategies:
// top-down best-first (HGt), bottom-up (HGb) and the paper's novel
// bottom-up-down (HG+, Algorithm 3). See src/index/README.md for the
// data-oriented layout shared by the implementations.

#ifndef FRT_INDEX_SEGMENT_INDEX_H_
#define FRT_INDEX_SEGMENT_INDEX_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/function_ref.h"
#include "common/result.h"
#include "common/span.h"
#include "geo/grid.h"
#include "geo/segment.h"
#include "traj/trajectory.h"

namespace frt {

/// Stable identifier of an indexed segment (assigned by the caller).
using SegmentHandle = uint64_t;

/// \brief One indexed trajectory segment.
struct SegmentEntry {
  SegmentHandle handle = 0;
  TrajId traj = -1;
  Segment geom;
};

/// \brief A search hit: the entry plus its distance to the query point.
///
/// In GroupBy::kTrajectory mode, `entry` is the *best* (closest) segment of
/// its trajectory.
struct Neighbor {
  SegmentEntry entry;
  double dist = 0.0;
};

/// Grouping mode for KNearest.
enum class GroupBy {
  kSegment,     ///< k nearest individual segments (Def. 10)
  kTrajectory,  ///< k distinct trajectories by their nearest segment (Def. 8)
};

/// Search strategy — the Fig. 5 competitors.
enum class SearchStrategy {
  kLinear,       ///< scan every segment
  kUniformGrid,  ///< single-level 512x512 grid, expanding-ring search
  kTopDown,      ///< HGt: best-first from the root
  kBottomUp,     ///< HGb: stack-driven ascent from the query's finest cell
  kBottomUpDown, ///< HG+: Algorithm 3 (stack phase, then priority queue)
};

/// Display name ("Linear", "UG", "HGt", "HGb", "HG+").
std::string_view SearchStrategyName(SearchStrategy s);

/// Options for a KNearest call.
struct SearchOptions {
  size_t k = 1;
  GroupBy group_by = GroupBy::kSegment;
  /// Optional eligibility predicate; ineligible segments are skipped
  /// entirely (they neither appear in results nor tighten the threshold).
  /// Non-owning: the callable must be a named object that outlives the
  /// KNearest call (see common/function_ref.h).
  FunctionRef<bool(const SegmentEntry&)> filter;
  /// Evaluate cell residents through the 8-lane SoA distance kernel
  /// (geo/segment_soa.h) instead of one scalar kernel call per candidate.
  /// Results and distance_evaluations are bit-identical either way (the
  /// two paths share one arithmetic kernel); the scalar path exists as the
  /// A/B reference for that exactness contract. Honored by the
  /// hierarchical grid; the linear and uniform-grid competitors are always
  /// scalar.
  bool use_batched_kernel = true;
};

/// \brief Reusable per-thread scratch state for KNearest calls.
///
/// Holds the collector, traversal frontier, and result buffers so
/// steady-state queries allocate nothing. Not thread-safe: use one context
/// per thread, never concurrently. Results returned by the
/// KNearest(..., SearchContext*) overload live inside the context and are
/// invalidated by the next search using it. Defined in
/// index/search_context.h; callers that only use the allocating overload
/// never need the definition.
class SearchContext;

/// \brief Interface of a dynamic segment index.
class SegmentIndex {
 public:
  virtual ~SegmentIndex() = default;

  /// Inserts a segment. Handles must be unique.
  virtual Status Insert(const SegmentEntry& entry) = 0;

  /// Bulk-loads `entries` into the index. Equivalent to inserting them in
  /// order, but lets implementations pre-size their storage; the
  /// per-trajectory throwaway indexes of IntraTrajectoryModifier::Apply are
  /// built through this path. Stops at the first failure.
  virtual Status Build(Span<const SegmentEntry> entries);

  /// Removes a previously inserted segment.
  virtual Status Remove(SegmentHandle handle) = 0;

  /// K-nearest search around `q` using caller-provided scratch state.
  /// Results are sorted by ascending distance; fewer than k results are
  /// returned when the index runs out of eligible candidates. The returned
  /// span points into `ctx` and is valid until the next search through the
  /// same context. With a warm context this performs no heap allocation.
  ///
  /// Thread safety: KNearest is a genuinely read-only operation. Between
  /// mutations (Insert/Build/Remove/Compact), any number of threads may
  /// search the SAME index concurrently, each through its own
  /// SearchContext — all per-query mutable state (visited stamps, scratch
  /// buffers) lives in the context, and the distance_evaluations counter
  /// is a relaxed atomic. Mutations still require exclusive access.
  virtual Span<const Neighbor> KNearest(const Point& q,
                                        const SearchOptions& options,
                                        SearchContext* ctx) const = 0;

  /// Convenience overload: runs through a thread-local context and copies
  /// the results out (one allocation for the returned vector).
  std::vector<Neighbor> KNearest(const Point& q,
                                 const SearchOptions& options) const;

  /// Number of live segments.
  virtual size_t size() const = 0;

  /// Number of exact point-segment distance evaluations since construction
  /// (pruning-effectiveness counter; used by tests and bench diagnostics).
  virtual uint64_t distance_evaluations() const = 0;
};

/// \brief Creates the index implementation matching `strategy`.
///
/// `grid` supplies the region and the finest granularity (the paper uses
/// 512x512 => 10 levels). The linear strategy ignores it.
std::unique_ptr<SegmentIndex> MakeSegmentIndex(SearchStrategy strategy,
                                               const GridSpec& grid);

/// Convenience: inserts every segment of `traj` into `index`, assigning
/// handles `base_handle + i` for segment i. Returns the number inserted.
size_t IndexTrajectory(const Trajectory& traj, SegmentIndex* index,
                       SegmentHandle base_handle);

}  // namespace frt

#endif  // FRT_INDEX_SEGMENT_INDEX_H_
