#include "index/segment_index.h"

#include "index/hierarchical_grid_index.h"
#include "index/linear_index.h"
#include "index/uniform_grid_index.h"

namespace frt {

std::string_view SearchStrategyName(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kLinear:
      return "Linear";
    case SearchStrategy::kUniformGrid:
      return "UG";
    case SearchStrategy::kTopDown:
      return "HGt";
    case SearchStrategy::kBottomUp:
      return "HGb";
    case SearchStrategy::kBottomUpDown:
      return "HG+";
  }
  return "?";
}

std::unique_ptr<SegmentIndex> MakeSegmentIndex(SearchStrategy strategy,
                                               const GridSpec& grid) {
  switch (strategy) {
    case SearchStrategy::kLinear:
      return std::make_unique<LinearSegmentIndex>();
    case SearchStrategy::kUniformGrid:
      return std::make_unique<UniformGridIndex>(grid);
    case SearchStrategy::kTopDown:
    case SearchStrategy::kBottomUp:
    case SearchStrategy::kBottomUpDown:
      return std::make_unique<HierarchicalGridIndex>(grid, strategy);
  }
  return nullptr;
}

size_t IndexTrajectory(const Trajectory& traj, SegmentIndex* index,
                       SegmentHandle base_handle) {
  size_t count = 0;
  for (size_t i = 0; i < traj.NumSegments(); ++i) {
    SegmentEntry e;
    e.handle = base_handle + i;
    e.traj = traj.id();
    e.geom = traj.SegmentAt(i);
    if (index->Insert(e).ok()) ++count;
  }
  return count;
}

}  // namespace frt
