#include "index/segment_index.h"

#include "index/hierarchical_grid_index.h"
#include "index/linear_index.h"
#include "index/search_context.h"
#include "index/uniform_grid_index.h"

namespace frt {

std::string_view SearchStrategyName(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kLinear:
      return "Linear";
    case SearchStrategy::kUniformGrid:
      return "UG";
    case SearchStrategy::kTopDown:
      return "HGt";
    case SearchStrategy::kBottomUp:
      return "HGb";
    case SearchStrategy::kBottomUpDown:
      return "HG+";
  }
  return "?";
}

Status SegmentIndex::Build(Span<const SegmentEntry> entries) {
  for (const SegmentEntry& e : entries) {
    FRT_RETURN_IF_ERROR(Insert(e));
  }
  return Status::OK();
}

std::vector<Neighbor> SegmentIndex::KNearest(
    const Point& q, const SearchOptions& options) const {
  // One warm context per thread keeps the legacy signature cheap; the
  // returned vector is the only allocation in steady state.
  thread_local SearchContext ctx;
  const Span<const Neighbor> results = KNearest(q, options, &ctx);
  return std::vector<Neighbor>(results.begin(), results.end());
}

std::unique_ptr<SegmentIndex> MakeSegmentIndex(SearchStrategy strategy,
                                               const GridSpec& grid) {
  switch (strategy) {
    case SearchStrategy::kLinear:
      return std::make_unique<LinearSegmentIndex>();
    case SearchStrategy::kUniformGrid:
      return std::make_unique<UniformGridIndex>(grid);
    case SearchStrategy::kTopDown:
    case SearchStrategy::kBottomUp:
    case SearchStrategy::kBottomUpDown:
      return std::make_unique<HierarchicalGridIndex>(grid, strategy);
  }
  return nullptr;
}

size_t IndexTrajectory(const Trajectory& traj, SegmentIndex* index,
                       SegmentHandle base_handle) {
  size_t count = 0;
  for (size_t i = 0; i < traj.NumSegments(); ++i) {
    SegmentEntry e;
    e.handle = base_handle + i;
    e.traj = traj.id();
    e.geom = traj.SegmentAt(i);
    if (index->Insert(e).ok()) ++count;
  }
  return count;
}

}  // namespace frt
