// Linear-scan segment index: the correctness reference and the Fig. 5
// "Linear" competitor. O(n) per query, O(1) updates. Entries are stored
// inline in one flat vector (swap-erase removal), so the scan is a single
// sequential pass. Searches are read-only (the evaluation counter is a
// relaxed atomic), so concurrent readers are safe here too.

#ifndef FRT_INDEX_LINEAR_INDEX_H_
#define FRT_INDEX_LINEAR_INDEX_H_

#include <atomic>
#include <unordered_map>
#include <vector>

#include "index/segment_index.h"

namespace frt {

/// \brief Flat segment store with swap-erase removal.
class LinearSegmentIndex : public SegmentIndex {
 public:
  Status Insert(const SegmentEntry& entry) override;
  Status Build(Span<const SegmentEntry> entries) override;
  Status Remove(SegmentHandle handle) override;
  using SegmentIndex::KNearest;
  Span<const Neighbor> KNearest(const Point& q, const SearchOptions& options,
                                SearchContext* ctx) const override;
  size_t size() const override { return entries_.size(); }
  uint64_t distance_evaluations() const override {
    return dist_evals_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<SegmentEntry> entries_;
  std::unordered_map<SegmentHandle, size_t> slot_of_;
  mutable std::atomic<uint64_t> dist_evals_{0};
};

}  // namespace frt

#endif  // FRT_INDEX_LINEAR_INDEX_H_
