// Hierarchical grid index (paper §IV-C1) with the three search strategies
// of §IV-C2 / Fig. 5: top-down (HGt), bottom-up (HGb) and the paper's novel
// bottom-up-down search (HG+, Algorithm 3).
//
// Structure. Dyadic grids G_0 (1x1) .. G_{H-1} (finest, 512x512 by default).
// Every segment lives in its best-fit cell (Definition 11): the finest cell
// containing both endpoints. Only non-empty cells are materialized; each
// materialized cell links to its nearest materialized ancestor (parent) and
// to the materialized descendants with no materialized cell in between
// (children) — exactly the paper's parent/children relation restricted to
// occupied cells. The root (level 0) is always materialized so every search
// has an anchor.
//
// Updates. Insert creates the best-fit cell on demand and re-parents any
// existing cells that fall inside it; Remove splices empty cells out. This
// keeps the index valid across the edit batches of trajectory modification
// (Algorithm 3 line 36, ModifyAndUpdate).

#ifndef FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_
#define FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "index/segment_index.h"

namespace frt {

/// \brief The paper's hierarchical grid index over trajectory segments.
class HierarchicalGridIndex : public SegmentIndex {
 public:
  /// \param grid     region + level count (finest = 2^(levels-1) per side).
  /// \param strategy one of kTopDown / kBottomUp / kBottomUpDown; selects
  ///                 the traversal used by KNearest.
  HierarchicalGridIndex(const GridSpec& grid, SearchStrategy strategy);

  Status Insert(const SegmentEntry& entry) override;
  Status Remove(SegmentHandle handle) override;
  std::vector<Neighbor> KNearest(const Point& q,
                                 const SearchOptions& options) const override;
  size_t size() const override { return entries_.size(); }
  uint64_t distance_evaluations() const override { return dist_evals_; }

  // --- introspection (tests / diagnostics) ---

  /// Number of materialized cells (including the root).
  size_t NumCells() const { return cells_.size(); }

  /// Best-fit cell coordinate for a segment (Definition 11).
  CellCoord BestFit(const Segment& s) const {
    return grid_.BestFitCell(s.a, s.b);
  }

  /// Segment handles stored in the cell at `coord`; empty when the cell is
  /// not materialized.
  std::vector<SegmentHandle> CellSegments(const CellCoord& coord) const;

  /// Coordinate of the materialized parent of the cell at `coord`.
  /// Returns the root coordinate when `coord` is the root or unknown.
  CellCoord CellParent(const CellCoord& coord) const;

  const GridSpec& grid() const { return grid_; }
  SearchStrategy strategy() const { return strategy_; }

 private:
  struct HgCell {
    CellCoord coord;
    std::vector<SegmentHandle> segments;
    HgCell* parent = nullptr;
    std::vector<HgCell*> children;
  };

  HgCell* FindCell(const CellCoord& coord) const;
  HgCell* GetOrCreateCell(const CellCoord& coord);
  void MaybePrune(HgCell* cell);

  /// The materialized cell the bottom-up phase starts from: the nearest
  /// materialized ancestor of the finest-level cell containing q
  /// (Algorithm 3 line 1, LocatePoint).
  HgCell* LocateStart(const Point& q) const;

  std::vector<Neighbor> SearchTopDown(const Point& q,
                                      const SearchOptions& options) const;
  std::vector<Neighbor> SearchBottomUp(const Point& q,
                                       const SearchOptions& options,
                                       bool switch_to_queue) const;

  GridSpec grid_;
  SearchStrategy strategy_;
  std::unordered_map<uint64_t, std::unique_ptr<HgCell>> cells_;
  std::unordered_map<SegmentHandle, SegmentEntry> entries_;
  std::unordered_map<SegmentHandle, uint64_t> cell_of_;
  HgCell* root_ = nullptr;
  mutable uint64_t dist_evals_ = 0;
};

}  // namespace frt

#endif  // FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_
