// Hierarchical grid index (paper §IV-C1) with the three search strategies
// of §IV-C2 / Fig. 5: top-down (HGt), bottom-up (HGb) and the paper's novel
// bottom-up-down search (HG+, Algorithm 3).
//
// Structure. Dyadic grids G_0 (1x1) .. G_{H-1} (finest, 512x512 by default).
// Every segment lives in its best-fit cell (Definition 11): the finest cell
// containing both endpoints. Only non-empty cells are materialized; each
// materialized cell links to its nearest materialized ancestor (parent) and
// to the materialized descendants with no materialized cell in between
// (children) — exactly the paper's parent/children relation restricted to
// occupied cells. The root (level 0) is always materialized so every search
// has an anchor.
//
// Layout (see src/index/README.md). Cells live in a flat arena
// (std::vector) addressed by 32-bit slots; freed slots are recycled through
// a free list threaded through the parent field. Segment entries are stored
// *inline* in their cell's segment vector, with the geometry mirrored into
// fixed-width SoA lane blocks (geo/segment_soa.h) that the batched 8-lane
// distance kernel sweeps, so the search loops touch no hash table and the
// inner distance loop vectorizes.
//
// Concurrency. Searches are read-only: visited-cell marks live in the
// caller's SearchContext (stamp vector keyed by arena slot), never on the
// arena, and the distance_evaluations counter is a relaxed atomic. Between
// mutations, any number of threads may run KNearest against one shared
// index, each with its own context.
//
// Updates. Insert creates the best-fit cell on demand and re-parents any
// existing cells that fall inside it; Remove splices empty cells out. This
// keeps the index valid across the edit batches of trajectory modification
// (Algorithm 3 line 36, ModifyAndUpdate). Long-lived indexes accumulate
// free-listed slots; Compact() repacks the live cells dense again.

#ifndef FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_
#define FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_

#include <atomic>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "geo/segment_soa.h"
#include "index/segment_index.h"

namespace frt {

/// \brief The paper's hierarchical grid index over trajectory segments.
class HierarchicalGridIndex : public SegmentIndex {
 public:
  /// \param grid     region + level count (finest = 2^(levels-1) per side).
  /// \param strategy one of kTopDown / kBottomUp / kBottomUpDown; selects
  ///                 the traversal used by KNearest.
  HierarchicalGridIndex(const GridSpec& grid, SearchStrategy strategy);

  Status Insert(const SegmentEntry& entry) override;
  Status Build(Span<const SegmentEntry> entries) override;
  Status Remove(SegmentHandle handle) override;
  using SegmentIndex::KNearest;
  Span<const Neighbor> KNearest(const Point& q, const SearchOptions& options,
                                SearchContext* ctx) const override;
  size_t size() const override { return cell_of_.size(); }
  uint64_t distance_evaluations() const override {
    return dist_evals_.load(std::memory_order_relaxed);
  }

  /// \brief Repacks live cells into a dense arena, dropping every
  /// free-listed slot while preserving relative slot order (and hence
  /// child order, traversal order, and distance-evaluation counts).
  /// Shrinks the slot space SearchContext stamp vectors are keyed by, so
  /// contexts warmed before a Compact stay allocation-free after it.
  /// Requires exclusive access (it is a mutation); returns the number of
  /// free slots reclaimed.
  size_t Compact();

  // --- introspection (tests / diagnostics) ---

  /// Number of materialized cells (including the root).
  size_t NumCells() const { return slot_of_coord_.size(); }

  /// Total arena slots, live + free-listed. The slot-space bound contexts
  /// size their stamp vectors to.
  size_t ArenaSlots() const { return arena_.size(); }

  /// Fraction of arena slots sitting on the free list — the fragmentation
  /// long-lived streaming indexes accumulate and Compact() reclaims.
  double Fragmentation() const {
    return arena_.empty() ? 0.0
                          : static_cast<double>(free_slots_) /
                                static_cast<double>(arena_.size());
  }

  /// Number of Compact() calls that reclaimed at least one slot.
  uint64_t compactions() const { return compactions_; }

  /// Best-fit cell coordinate for a segment (Definition 11).
  CellCoord BestFit(const Segment& s) const {
    return grid_.BestFitCell(s.a, s.b);
  }

  /// Entries stored in the cell at `coord`, by reference into the index;
  /// empty when the cell is not materialized. Invalidated by updates.
  Span<const SegmentEntry> CellSegments(const CellCoord& coord) const;

  /// Coordinate of the materialized parent of the cell at `coord`.
  /// Returns the root coordinate when `coord` is the root or unknown.
  CellCoord CellParent(const CellCoord& coord) const;

  const GridSpec& grid() const { return grid_; }
  SearchStrategy strategy() const { return strategy_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  /// One arena slot. Freed slots keep their vectors' capacity and are
  /// chained through `parent` (the free list), so cell churn under heavy
  /// update load reuses storage instead of reallocating.
  struct HgCell {
    CellCoord coord;
    uint32_t parent = kNil;            ///< arena slot; free-list link when dead
    std::vector<uint32_t> children;    ///< arena slots
    std::vector<SegmentEntry> segments;  ///< inline entries (Def. 11 residents)
    /// SoA mirror of segments' geometry, maintained in lockstep (PushBack
    /// with push_back, SwapRemove with swap-erase): lane i is segments[i].
    SegmentGeomSoA geom;
  };

  uint32_t FindSlot(const CellCoord& coord) const;
  uint32_t AllocCell(const CellCoord& coord);
  uint32_t GetOrCreateCell(const CellCoord& coord);
  void MaybePrune(uint32_t slot);
  Status InsertImpl(const SegmentEntry& entry);

  /// The materialized cell the bottom-up phase starts from: the nearest
  /// materialized ancestor of the finest-level cell containing q
  /// (Algorithm 3 line 1, LocatePoint).
  uint32_t LocateStart(const Point& q) const;

  /// Evaluates every resident of `cell` against q and offers the eligible
  /// ones to the collector, via the batched SoA kernel or the scalar
  /// reference path per `options`. Returns the eligible-candidate count
  /// (the distance_evaluations contribution).
  uint64_t SweepCell(const HgCell& cell, const Point& q,
                     const SearchOptions& options, SearchContext* ctx) const;

  void SearchTopDown(const Point& q, const SearchOptions& options,
                     SearchContext* ctx) const;
  void SearchBottomUp(const Point& q, const SearchOptions& options,
                      bool switch_to_queue, SearchContext* ctx) const;

  GridSpec grid_;
  SearchStrategy strategy_;
  std::vector<HgCell> arena_;
  uint32_t free_head_ = kNil;
  size_t free_slots_ = 0;
  uint64_t compactions_ = 0;
  std::unordered_map<uint64_t, uint32_t> slot_of_coord_;
  std::unordered_map<SegmentHandle, uint32_t> cell_of_;
  uint32_t root_ = 0;
  /// Pruning-effectiveness counter; relaxed atomic so concurrent readers
  /// can account without synchronizing (one fetch_add per query).
  mutable std::atomic<uint64_t> dist_evals_{0};
};

}  // namespace frt

#endif  // FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_
