// Hierarchical grid index (paper §IV-C1) with the three search strategies
// of §IV-C2 / Fig. 5: top-down (HGt), bottom-up (HGb) and the paper's novel
// bottom-up-down search (HG+, Algorithm 3).
//
// Structure. Dyadic grids G_0 (1x1) .. G_{H-1} (finest, 512x512 by default).
// Every segment lives in its best-fit cell (Definition 11): the finest cell
// containing both endpoints. Only non-empty cells are materialized; each
// materialized cell links to its nearest materialized ancestor (parent) and
// to the materialized descendants with no materialized cell in between
// (children) — exactly the paper's parent/children relation restricted to
// occupied cells. The root (level 0) is always materialized so every search
// has an anchor.
//
// Layout (see src/index/README.md). Cells live in a flat arena
// (std::vector) addressed by 32-bit slots; freed slots are recycled through
// a free list threaded through the parent field. Segment entries are stored
// *inline* in their cell's segment vector, so the search loops touch no
// hash table. Searches mark visited cells with an epoch stamp on the arena
// slot instead of building a per-query visited set.
//
// Updates. Insert creates the best-fit cell on demand and re-parents any
// existing cells that fall inside it; Remove splices empty cells out. This
// keeps the index valid across the edit batches of trajectory modification
// (Algorithm 3 line 36, ModifyAndUpdate).

#ifndef FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_
#define FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_

#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "index/segment_index.h"

namespace frt {

/// \brief The paper's hierarchical grid index over trajectory segments.
class HierarchicalGridIndex : public SegmentIndex {
 public:
  /// \param grid     region + level count (finest = 2^(levels-1) per side).
  /// \param strategy one of kTopDown / kBottomUp / kBottomUpDown; selects
  ///                 the traversal used by KNearest.
  HierarchicalGridIndex(const GridSpec& grid, SearchStrategy strategy);

  Status Insert(const SegmentEntry& entry) override;
  Status Build(Span<const SegmentEntry> entries) override;
  Status Remove(SegmentHandle handle) override;
  using SegmentIndex::KNearest;
  Span<const Neighbor> KNearest(const Point& q, const SearchOptions& options,
                                SearchContext* ctx) const override;
  size_t size() const override { return cell_of_.size(); }
  uint64_t distance_evaluations() const override { return dist_evals_; }

  // --- introspection (tests / diagnostics) ---

  /// Number of materialized cells (including the root).
  size_t NumCells() const { return slot_of_coord_.size(); }

  /// Best-fit cell coordinate for a segment (Definition 11).
  CellCoord BestFit(const Segment& s) const {
    return grid_.BestFitCell(s.a, s.b);
  }

  /// Entries stored in the cell at `coord`, by reference into the index;
  /// empty when the cell is not materialized. Invalidated by updates.
  Span<const SegmentEntry> CellSegments(const CellCoord& coord) const;

  /// Coordinate of the materialized parent of the cell at `coord`.
  /// Returns the root coordinate when `coord` is the root or unknown.
  CellCoord CellParent(const CellCoord& coord) const;

  const GridSpec& grid() const { return grid_; }
  SearchStrategy strategy() const { return strategy_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  /// One arena slot. Freed slots keep their vectors' capacity and are
  /// chained through `parent` (the free list), so cell churn under heavy
  /// update load reuses storage instead of reallocating.
  struct HgCell {
    CellCoord coord;
    uint32_t parent = kNil;            ///< arena slot; free-list link when dead
    std::vector<uint32_t> children;    ///< arena slots
    std::vector<SegmentEntry> segments;  ///< inline entries (Def. 11 residents)
    uint32_t epoch = 0;                ///< visited stamp of the last search
  };

  uint32_t FindSlot(const CellCoord& coord) const;
  uint32_t AllocCell(const CellCoord& coord);
  uint32_t GetOrCreateCell(const CellCoord& coord);
  void MaybePrune(uint32_t slot);
  Status InsertImpl(const SegmentEntry& entry);

  /// The materialized cell the bottom-up phase starts from: the nearest
  /// materialized ancestor of the finest-level cell containing q
  /// (Algorithm 3 line 1, LocatePoint).
  uint32_t LocateStart(const Point& q) const;

  /// Begins a search: bumps the visited epoch (resetting all stamps on the
  /// rare wrap) and returns the stamp marking this search's cells.
  uint32_t BeginSearch() const;

  void SearchTopDown(const Point& q, const SearchOptions& options,
                     SearchContext* ctx) const;
  void SearchBottomUp(const Point& q, const SearchOptions& options,
                      bool switch_to_queue, SearchContext* ctx) const;

  GridSpec grid_;
  SearchStrategy strategy_;
  /// mutable: const searches write only the per-cell `epoch` stamps.
  mutable std::vector<HgCell> arena_;
  uint32_t free_head_ = kNil;
  std::unordered_map<uint64_t, uint32_t> slot_of_coord_;
  std::unordered_map<SegmentHandle, uint32_t> cell_of_;
  uint32_t root_ = 0;
  mutable uint32_t cur_epoch_ = 0;
  mutable uint64_t dist_evals_ = 0;
};

}  // namespace frt

#endif  // FRT_INDEX_HIERARCHICAL_GRID_INDEX_H_
