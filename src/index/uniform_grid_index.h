// Single-level uniform grid index — the Fig. 5 "UG" competitor.
//
// Segments register in every finest-level cell their bounding box overlaps
// (duplication instead of hierarchy). KNearest runs an expanding-ring
// search: ring r has a lower bound of (r-1) * cell_extent from the query,
// so the search stops once the collector threshold beats the next ring
// (compared in squared space, like every other pruning decision).
//
// Layout. Entries live in a flat slot store (recycled through a free list);
// cells hold 32-bit slot indices, so the ring scan reads entries without a
// hash lookup per candidate. Multi-cell duplicates are deduplicated with
// the caller's SearchContext stamp vector keyed by store slot — searches
// write nothing to the shared store, so concurrent readers are safe here
// exactly as on the hierarchical grid (see index/segment_index.h).

#ifndef FRT_INDEX_UNIFORM_GRID_INDEX_H_
#define FRT_INDEX_UNIFORM_GRID_INDEX_H_

#include <atomic>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "index/segment_index.h"

namespace frt {

/// \brief Uniform-grid segment index at the finest granularity of `grid`.
class UniformGridIndex : public SegmentIndex {
 public:
  explicit UniformGridIndex(const GridSpec& grid);

  Status Insert(const SegmentEntry& entry) override;
  Status Build(Span<const SegmentEntry> entries) override;
  Status Remove(SegmentHandle handle) override;
  using SegmentIndex::KNearest;
  Span<const Neighbor> KNearest(const Point& q, const SearchOptions& options,
                                SearchContext* ctx) const override;
  size_t size() const override { return slot_of_.size(); }
  uint64_t distance_evaluations() const override {
    return dist_evals_.load(std::memory_order_relaxed);
  }

 private:
  /// One slot of the entry store.
  struct StoredEntry {
    SegmentEntry entry;
    uint32_t next_free = 0;  ///< free-list link while the slot is dead
  };

  /// Calls `fn(key)` for every finest-level cell key covered by the
  /// segment's bounding box.
  template <typename Fn>
  void ForEachCoveredCell(const Segment& s, Fn&& fn) const;

  GridSpec grid_;
  int level_;
  std::vector<StoredEntry> store_;
  uint32_t free_head_ = kNil;
  std::unordered_map<SegmentHandle, uint32_t> slot_of_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> cells_;
  /// Relaxed atomic so concurrent readers can account without
  /// synchronizing (one fetch_add per query).
  mutable std::atomic<uint64_t> dist_evals_{0};

  static constexpr uint32_t kNil = 0xffffffffu;
};

}  // namespace frt

#endif  // FRT_INDEX_UNIFORM_GRID_INDEX_H_
