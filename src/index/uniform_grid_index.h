// Single-level uniform grid index — the Fig. 5 "UG" competitor.
//
// Segments register in every finest-level cell their bounding box overlaps
// (duplication instead of hierarchy). KNearest runs an expanding-ring
// search: ring r has a lower bound of (r-1) * cell_extent from the query,
// so the search stops once the collector threshold beats the next ring.

#ifndef FRT_INDEX_UNIFORM_GRID_INDEX_H_
#define FRT_INDEX_UNIFORM_GRID_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/grid.h"
#include "index/segment_index.h"

namespace frt {

/// \brief Uniform-grid segment index at the finest granularity of `grid`.
class UniformGridIndex : public SegmentIndex {
 public:
  explicit UniformGridIndex(const GridSpec& grid);

  Status Insert(const SegmentEntry& entry) override;
  Status Remove(SegmentHandle handle) override;
  std::vector<Neighbor> KNearest(const Point& q,
                                 const SearchOptions& options) const override;
  size_t size() const override { return entries_.size(); }
  uint64_t distance_evaluations() const override { return dist_evals_; }

 private:
  /// Cells (at the finest level) covered by the segment's bounding box.
  std::vector<CellCoord> CoveredCells(const Segment& s) const;

  GridSpec grid_;
  int level_;
  std::unordered_map<SegmentHandle, SegmentEntry> entries_;
  std::unordered_map<uint64_t, std::vector<SegmentHandle>> cells_;
  mutable uint64_t dist_evals_ = 0;
};

}  // namespace frt

#endif  // FRT_INDEX_UNIFORM_GRID_INDEX_H_
