#include "index/linear_index.h"

#include "index/search_context.h"

namespace frt {

Status LinearSegmentIndex::Insert(const SegmentEntry& entry) {
  auto [it, inserted] = slot_of_.try_emplace(entry.handle, entries_.size());
  if (!inserted) {
    return Status::AlreadyExists("segment handle already indexed");
  }
  entries_.push_back(entry);
  return Status::OK();
}

Status LinearSegmentIndex::Build(Span<const SegmentEntry> entries) {
  slot_of_.reserve(slot_of_.size() + entries.size());
  entries_.reserve(entries_.size() + entries.size());
  for (const SegmentEntry& e : entries) {
    FRT_RETURN_IF_ERROR(Insert(e));
  }
  return Status::OK();
}

Status LinearSegmentIndex::Remove(SegmentHandle handle) {
  auto it = slot_of_.find(handle);
  if (it == slot_of_.end()) {
    return Status::NotFound("segment handle not indexed");
  }
  const size_t slot = it->second;
  slot_of_.erase(it);
  if (slot + 1 != entries_.size()) {
    entries_[slot] = entries_.back();
    slot_of_[entries_[slot].handle] = slot;
  }
  entries_.pop_back();
  return Status::OK();
}

Span<const Neighbor> LinearSegmentIndex::KNearest(
    const Point& q, const SearchOptions& options, SearchContext* ctx) const {
  ResultCollector& collector = ctx->collector;
  collector.Reset(options.k, options.group_by);
  ctx->results.clear();
  uint64_t evals = 0;
  for (const SegmentEntry& e : entries_) {
    if (options.filter && !options.filter(e)) continue;
    ++evals;
    collector.Offer(e, PointSegmentDistance2(q, e.geom));
  }
  dist_evals_.fetch_add(evals, std::memory_order_relaxed);
  collector.Finalize(&ctx->results);
  return Span<const Neighbor>(ctx->results);
}

}  // namespace frt
