#include "index/linear_index.h"

#include "index/collector.h"

namespace frt {

Status LinearSegmentIndex::Insert(const SegmentEntry& entry) {
  auto [it, inserted] = slot_of_.try_emplace(entry.handle, entries_.size());
  if (!inserted) {
    return Status::AlreadyExists("segment handle already indexed");
  }
  entries_.push_back(entry);
  return Status::OK();
}

Status LinearSegmentIndex::Remove(SegmentHandle handle) {
  auto it = slot_of_.find(handle);
  if (it == slot_of_.end()) {
    return Status::NotFound("segment handle not indexed");
  }
  const size_t slot = it->second;
  slot_of_.erase(it);
  if (slot + 1 != entries_.size()) {
    entries_[slot] = entries_.back();
    slot_of_[entries_[slot].handle] = slot;
  }
  entries_.pop_back();
  return Status::OK();
}

std::vector<Neighbor> LinearSegmentIndex::KNearest(
    const Point& q, const SearchOptions& options) const {
  ResultCollector collector(options.k, options.group_by);
  for (const SegmentEntry& e : entries_) {
    if (options.filter && !options.filter(e)) continue;
    ++dist_evals_;
    collector.Offer(e, PointSegmentDistance(q, e.geom));
  }
  return collector.Finalize();
}

}  // namespace frt
