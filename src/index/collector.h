// Result collectors shared by all search strategies.
//
// A collector receives candidate (segment, distance) pairs in arbitrary
// order, maintains the current best-K according to the grouping mode, and
// exposes the pruning threshold theta_K (paper Theorem 4): once K results
// are held, any cell with MINdist > theta_K can be skipped safely.

#ifndef FRT_INDEX_COLLECTOR_H_
#define FRT_INDEX_COLLECTOR_H_

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "index/segment_index.h"

namespace frt {

/// \brief Best-K accumulator for a single KNearest call.
class ResultCollector {
 public:
  ResultCollector(size_t k, GroupBy group_by) : k_(k), group_by_(group_by) {}

  /// Offers a candidate. The caller has already applied the filter.
  void Offer(const SegmentEntry& entry, double dist) {
    if (k_ == 0) return;
    if (group_by_ == GroupBy::kSegment) {
      if (heap_.size() < k_) {
        heap_.push({dist, entry});
      } else if (dist < heap_.top().dist) {
        heap_.pop();
        heap_.push({dist, entry});
      }
      return;
    }
    // Trajectory mode: keep each trajectory's best segment.
    auto it = best_.find(entry.traj);
    if (it == best_.end()) {
      best_.emplace(entry.traj, Item{dist, entry});
      traj_dirty_ = true;
    } else if (dist < it->second.dist) {
      it->second = Item{dist, entry};
      traj_dirty_ = true;
    }
  }

  /// True when K results are held (threshold is meaningful).
  bool Full() const {
    return group_by_ == GroupBy::kSegment ? heap_.size() >= k_
                                          : best_.size() >= k_;
  }

  /// theta_K: the K-th best distance; +inf while not Full.
  double Threshold() const {
    if (!Full()) return std::numeric_limits<double>::infinity();
    if (group_by_ == GroupBy::kSegment) return heap_.top().dist;
    RefreshTrajThreshold();
    return traj_threshold_;
  }

  /// Sorted ascending-by-distance final results.
  std::vector<Neighbor> Finalize() const {
    std::vector<Neighbor> out;
    if (group_by_ == GroupBy::kSegment) {
      auto copy = heap_;
      while (!copy.empty()) {
        out.push_back(Neighbor{copy.top().entry, copy.top().dist});
        copy.pop();
      }
    } else {
      out.reserve(best_.size());
      for (const auto& [traj, item] : best_) {
        out.push_back(Neighbor{item.entry, item.dist});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.dist != b.dist) return a.dist < b.dist;
                return a.entry.handle < b.entry.handle;  // deterministic ties
              });
    if (out.size() > k_) out.resize(k_);
    return out;
  }

 private:
  struct Item {
    double dist;
    SegmentEntry entry;
  };
  struct WorstFirst {
    bool operator()(const Item& a, const Item& b) const {
      return a.dist < b.dist;  // max-heap on distance
    }
  };

  void RefreshTrajThreshold() const {
    if (!traj_dirty_) return;
    // K-th smallest best-distance across trajectories. The map is small in
    // practice (bounded by trajectories within the search frontier), so a
    // partial selection is cheap relative to distance evaluations.
    scratch_.clear();
    scratch_.reserve(best_.size());
    for (const auto& [traj, item] : best_) scratch_.push_back(item.dist);
    std::nth_element(scratch_.begin(), scratch_.begin() + (k_ - 1),
                     scratch_.end());
    traj_threshold_ = scratch_[k_ - 1];
    traj_dirty_ = false;
  }

  size_t k_;
  GroupBy group_by_;
  // kSegment state:
  std::priority_queue<Item, std::vector<Item>, WorstFirst> heap_;
  // kTrajectory state:
  std::unordered_map<TrajId, Item> best_;
  mutable std::vector<double> scratch_;
  mutable double traj_threshold_ = std::numeric_limits<double>::infinity();
  mutable bool traj_dirty_ = true;
};

}  // namespace frt

#endif  // FRT_INDEX_COLLECTOR_H_
