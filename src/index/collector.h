// Result collectors shared by all search strategies.
//
// A collector receives candidate (segment, squared distance) pairs in
// arbitrary order, maintains the current best-K according to the grouping
// mode, and exposes the squared pruning threshold theta_K² (paper
// Theorem 4): once K results are held, any cell with MINdist² > theta_K²
// can be skipped safely. All comparisons happen in squared space — sqrt is
// monotone, so the kept set and every pruning decision are identical to
// the plain-distance formulation — and the square root is taken exactly
// once per emitted result, in Finalize.
//
// The collector is a reusable scratch object (it lives inside a
// SearchContext): Reset() rearms it for a new query while keeping every
// internal buffer's capacity, so steady-state queries never allocate.
// Candidates are held as pointers into the index's inline entry storage —
// stable for the duration of a query, copied out only in Finalize.

#ifndef FRT_INDEX_COLLECTOR_H_
#define FRT_INDEX_COLLECTOR_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "index/segment_index.h"

namespace frt {

/// \brief Best-K accumulator over squared distances, reusable across
/// KNearest calls.
class ResultCollector {
 public:
  ResultCollector() = default;
  ResultCollector(size_t k, GroupBy group_by) { Reset(k, group_by); }

  /// Rearms for a new query; previously grown buffers keep their capacity.
  void Reset(size_t k, GroupBy group_by) {
    k_ = k;
    group_by_ = group_by;
    heap_.clear();
    items_.clear();
    traj_threshold2_ = std::numeric_limits<double>::infinity();
    traj_dirty_ = true;
    if (++epoch_ == 0) {
      // Epoch wrap (once per 2^32 queries): forget all stale stamps.
      std::fill(table_.begin(), table_.end(), TrajSlot{});
      epoch_ = 1;
    }
  }

  /// Offers a candidate at squared distance `dist2`. The caller has
  /// already applied the filter. `entry` must stay valid until Finalize
  /// (it points into the index).
  void Offer(const SegmentEntry& entry, double dist2) {
    if (k_ == 0) return;
    if (group_by_ == GroupBy::kSegment) {
      if (heap_.size() < k_) {
        heap_.push_back(Item{dist2, &entry});
        std::push_heap(heap_.begin(), heap_.end(), WorstFirst{});
      } else if (dist2 < heap_.front().dist2) {
        std::pop_heap(heap_.begin(), heap_.end(), WorstFirst{});
        heap_.back() = Item{dist2, &entry};
        std::push_heap(heap_.begin(), heap_.end(), WorstFirst{});
      }
      return;
    }
    // Trajectory mode: keep each trajectory's best segment.
    Item& best = BestOf(entry.traj);
    if (best.entry == nullptr || dist2 < best.dist2) {
      best = Item{dist2, &entry};
      traj_dirty_ = true;
    }
  }

  /// Consumes one batched-kernel output: entries [0, n) of `entries` with
  /// their squared distances in `dist2` (the lane buffer of a
  /// PointSegmentDistance2Batch sweep). Offer order is ascending index, so
  /// tie behaviour matches the scalar per-entry loop exactly. Only valid
  /// when no filter applies (filtered searches interleave the filter with
  /// per-entry Offers).
  void OfferBatch(const SegmentEntry* entries, const double* dist2,
                  size_t n) {
    for (size_t i = 0; i < n; ++i) Offer(entries[i], dist2[i]);
  }

  /// True when K results are held (threshold is meaningful).
  bool Full() const {
    return group_by_ == GroupBy::kSegment ? heap_.size() >= k_
                                          : items_.size() >= k_;
  }

  /// theta_K²: the K-th best squared distance; +inf while not Full.
  /// Compare against squared bounds (MinDist2PointBBox) only.
  double Threshold2() const {
    if (!Full()) return std::numeric_limits<double>::infinity();
    if (group_by_ == GroupBy::kSegment) return heap_.front().dist2;
    RefreshTrajThreshold();
    return traj_threshold2_;
  }

  /// Writes the sorted ascending-by-distance final results into `out`
  /// (cleared first; capacity reused across queries). This is the one
  /// place distances leave squared space.
  void Finalize(std::vector<Neighbor>* out) {
    out->clear();
    std::vector<Item>& held =
        group_by_ == GroupBy::kSegment ? heap_ : items_;
    // The heap property is irrelevant from here on: sort the underlying
    // storage directly instead of draining a copy of the queue.
    std::sort(held.begin(), held.end(), [](const Item& a, const Item& b) {
      if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
      return a.entry->handle < b.entry->handle;  // deterministic ties
    });
    const size_t n = std::min(k_, held.size());
    out->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(Neighbor{*held[i].entry, std::sqrt(held[i].dist2)});
    }
  }

 private:
  struct Item {
    double dist2 = 0.0;
    const SegmentEntry* entry = nullptr;
  };
  struct WorstFirst {
    bool operator()(const Item& a, const Item& b) const {
      return a.dist2 < b.dist2;  // max-heap on squared distance
    }
  };
  /// Open-addressing slot of the trajectory->best table. A slot is live for
  /// the current query iff `epoch` matches the collector's; Reset just
  /// bumps the epoch instead of clearing the table.
  struct TrajSlot {
    TrajId traj = 0;
    uint32_t item = 0;   ///< index into items_
    uint32_t epoch = 0;  ///< 0 is never a live epoch
  };

  static size_t HashOf(TrajId traj) {
    uint64_t h = static_cast<uint64_t>(traj);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;  // splitmix finalizer
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(h ^ (h >> 31));
  }

  /// Returns the best-Item slot for `traj`, creating it on first sight.
  Item& BestOf(TrajId traj) {
    if (table_.empty()) table_.resize(64);
    size_t mask = table_.size() - 1;
    size_t i = HashOf(traj) & mask;
    while (table_[i].epoch == epoch_ && table_[i].traj != traj) {
      i = (i + 1) & mask;
    }
    if (table_[i].epoch != epoch_) {
      table_[i] = TrajSlot{traj, static_cast<uint32_t>(items_.size()),
                           epoch_};
      items_.push_back(Item{});
      if (items_.size() * 2 > table_.size()) {
        Grow();
        return items_[FindLive(traj)];
      }
      return items_[table_[i].item];
    }
    return items_[table_[i].item];
  }

  void Grow() {
    std::vector<TrajSlot> old;
    old.swap(table_);
    table_.resize(old.size() * 2);
    for (const TrajSlot& s : old) {
      if (s.epoch != epoch_) continue;
      ReinsertSlot(s);
    }
  }

  void ReinsertSlot(const TrajSlot& s) {
    const size_t mask = table_.size() - 1;
    size_t i = HashOf(s.traj) & mask;
    while (table_[i].epoch == epoch_) i = (i + 1) & mask;
    table_[i] = s;
  }

  uint32_t FindLive(TrajId traj) const {
    const size_t mask = table_.size() - 1;
    size_t i = HashOf(traj) & mask;
    while (table_[i].epoch != epoch_ || table_[i].traj != traj) {
      i = (i + 1) & mask;
    }
    return table_[i].item;
  }

  void RefreshTrajThreshold() const {
    if (!traj_dirty_) return;
    // K-th smallest best-distance across trajectories. The item list is
    // small in practice (bounded by trajectories within the search
    // frontier), so a partial selection is cheap relative to distance
    // evaluations.
    scratch_.clear();
    scratch_.reserve(items_.size());
    for (const Item& item : items_) scratch_.push_back(item.dist2);
    std::nth_element(scratch_.begin(), scratch_.begin() + (k_ - 1),
                     scratch_.end());
    traj_threshold2_ = scratch_[k_ - 1];
    traj_dirty_ = false;
  }

  size_t k_ = 0;
  GroupBy group_by_ = GroupBy::kSegment;
  // kSegment state: max-heap on squared distance over the best-K items.
  std::vector<Item> heap_;
  // kTrajectory state: per-trajectory best items + epoch-stamped
  // open-addressing lookup table (power-of-two size).
  std::vector<Item> items_;
  std::vector<TrajSlot> table_;
  uint32_t epoch_ = 0;
  mutable std::vector<double> scratch_;
  mutable double traj_threshold2_ =
      std::numeric_limits<double>::infinity();
  mutable bool traj_dirty_ = true;
};

}  // namespace frt

#endif  // FRT_INDEX_COLLECTOR_H_
