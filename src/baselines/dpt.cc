#include "baselines/dpt.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "dp/laplace.h"
#include "geo/grid.h"

namespace frt {
namespace {

using CellSeq = std::vector<uint32_t>;

// Collapsed cell sequence of a trajectory at the reference resolution.
CellSeq ToCells(const Trajectory& t, const GridSpec& grid, int level) {
  CellSeq out;
  const int64_t res = grid.Resolution(level);
  for (const auto& tp : t.points()) {
    const CellCoord c = grid.CellAt(tp.p, level);
    const uint32_t id = static_cast<uint32_t>(c.ix * res + c.iy);
    if (out.empty() || out.back() != id) out.push_back(id);
  }
  return out;
}

// A prefix-tree context: the last (up to h-1) cells. Encoded as a vector
// key in an ordered map for deterministic iteration.
struct NoisyModel {
  // context -> (next cell -> noisy count), contexts of length 0..h-1.
  std::map<CellSeq, std::unordered_map<uint32_t, double>> transitions;
  std::vector<double> length_hist;  // noisy histogram of sequence lengths
  double length_bin_width = 1.0;
};

}  // namespace

Result<Dataset> Dpt::Anonymize(const Dataset& input, Rng& rng) {
  if (input.empty()) return Status::InvalidArgument("empty dataset");
  if (config_.tree_height < 1) {
    return Status::InvalidArgument("tree_height must be >= 1");
  }

  BBox region = input.Bounds();
  GridSpec grid(region, config_.grid_level + 1);
  const int level = config_.grid_level;
  const int64_t res = grid.Resolution(level);

  std::vector<CellSeq> sequences;
  sequences.reserve(input.size());
  size_t max_len = 1;
  for (const auto& t : input.trajectories()) {
    sequences.push_back(ToCells(t, grid, level));
    max_len = std::max(max_len, sequences.back().size());
  }

  // Budget: half to the prefix tree (split across h levels), half to the
  // length distribution.
  const double eps_tree = 0.5 * config_.epsilon;
  const double eps_level = eps_tree / config_.tree_height;
  const double eps_len = 0.5 * config_.epsilon;
  const double tree_scale = 1.0 / eps_level;  // Lap scale per tree count

  // Count transitions for every context length 0..h-1 (the prefix tree:
  // a node at depth d holds the count of its length-d context followed by
  // each next cell).
  NoisyModel model;
  for (const CellSeq& seq : sequences) {
    for (size_t i = 0; i < seq.size(); ++i) {
      for (int ctx_len = 0; ctx_len < config_.tree_height; ++ctx_len) {
        if (static_cast<size_t>(ctx_len) > i) break;
        CellSeq ctx(seq.begin() + (i - ctx_len), seq.begin() + i);
        model.transitions[ctx][seq[i]] += 1.0;
      }
    }
  }

  // Noise + prune.
  const double prune_threshold =
      config_.prune_sigmas * tree_scale * std::sqrt(2.0);
  for (auto it = model.transitions.begin();
       it != model.transitions.end();) {
    auto& children = it->second;
    for (auto cit = children.begin(); cit != children.end();) {
      cit->second += rng.Laplace(0.0, tree_scale);
      if (cit->second < prune_threshold) {
        cit = children.erase(cit);
      } else {
        ++cit;
      }
    }
    if (children.empty()) {
      it = model.transitions.erase(it);
    } else {
      ++it;
    }
  }

  // Noisy length histogram.
  const size_t bins = std::min<size_t>(64, max_len);
  model.length_bin_width =
      static_cast<double>(max_len) / static_cast<double>(bins);
  model.length_hist.assign(bins, 0.0);
  for (const CellSeq& seq : sequences) {
    size_t b = static_cast<size_t>(static_cast<double>(seq.size() - 1) /
                                   model.length_bin_width);
    if (b >= bins) b = bins - 1;
    model.length_hist[b] += 1.0;
  }
  for (double& v : model.length_hist) {
    v = std::max(0.0, v + rng.Laplace(0.0, 1.0 / eps_len));
  }

  // --- Synthesis ---
  auto sample_from = [&rng](const std::unordered_map<uint32_t, double>& w)
      -> int64_t {
    double total = 0.0;
    for (const auto& [k, v] : w) total += v;
    if (total <= 0.0) return -1;
    double roll = rng.Uniform() * total;
    for (const auto& [k, v] : w) {
      roll -= v;
      if (roll <= 0.0) return k;
    }
    return w.begin()->first;
  };
  auto sample_length = [&]() -> size_t {
    double total = 0.0;
    for (const double v : model.length_hist) total += v;
    if (total <= 0.0) return 16;
    double roll = rng.Uniform() * total;
    for (size_t b = 0; b < model.length_hist.size(); ++b) {
      roll -= model.length_hist[b];
      if (roll <= 0.0) {
        return static_cast<size_t>((static_cast<double>(b) + 0.5) *
                                   model.length_bin_width) +
               1;
      }
    }
    return model.length_hist.size();
  };

  const double cell_w = region.Width() / static_cast<double>(res);
  const double cell_h = region.Height() / static_cast<double>(res);
  Dataset output;
  for (size_t i = 0; i < input.size(); ++i) {
    const size_t want = std::max<size_t>(2, sample_length());
    CellSeq seq;
    while (seq.size() < want) {
      int64_t next = -1;
      // Deepest available context first (prefix-tree descent with backoff).
      const int max_ctx = std::min<int>(config_.tree_height - 1,
                                        static_cast<int>(seq.size()));
      for (int ctx_len = max_ctx; ctx_len >= 0 && next < 0; --ctx_len) {
        CellSeq ctx(seq.end() - ctx_len, seq.end());
        auto it = model.transitions.find(ctx);
        if (it != model.transitions.end()) next = sample_from(it->second);
      }
      if (next < 0) break;  // tree exhausted (heavy pruning)
      seq.push_back(static_cast<uint32_t>(next));
    }
    Trajectory traj(static_cast<TrajId>(i));
    int64_t t = 0;
    for (const uint32_t cell : seq) {
      const int32_t ix = static_cast<int32_t>(cell / res);
      const int32_t iy = static_cast<int32_t>(cell % res);
      const Point center =
          grid.CellCenter(CellCoord{level, ix, iy});
      // Jitter within the cell keeps synthetic points from stacking.
      const Point p{center.x + rng.Uniform(-0.3, 0.3) * cell_w,
                    center.y + rng.Uniform(-0.3, 0.3) * cell_h};
      traj.Append(p, t);
      t += config_.sampling_period;
    }
    FRT_RETURN_IF_ERROR(output.Add(std::move(traj)));
  }
  return output;
}

}  // namespace frt
