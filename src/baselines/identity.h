// Identity "anonymizer": returns the input unchanged. Used as the no-op
// reference row in benches and as a control in tests.

#ifndef FRT_BASELINES_IDENTITY_H_
#define FRT_BASELINES_IDENTITY_H_

#include "core/anonymizer.h"

namespace frt {

/// \brief Pass-through anonymizer (no protection at all).
class IdentityAnonymizer : public Anonymizer {
 public:
  std::string name() const override { return "Raw"; }

  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override {
    (void)rng;
    return input.Clone();
  }
};

}  // namespace frt

#endif  // FRT_BASELINES_IDENTITY_H_
