// Signature closure baselines (paper §V-A, from [4]):
//
//   SC     — discards every occurrence of each trajectory's top-m signature
//            points.
//   RSC-a  — additionally discards every point within radius `a` of a
//            signature point ("radius-based signature closure").
//
// These defeat direct signature linking but, as the paper's recovery
// experiment shows, leave enough of the route intact for map-matching to
// reconstruct the original trace.

#ifndef FRT_BASELINES_SIGNATURE_CLOSURE_H_
#define FRT_BASELINES_SIGNATURE_CLOSURE_H_

#include "core/anonymizer.h"
#include "core/signature.h"

namespace frt {

/// Configuration for SC / RSC.
struct SignatureClosureConfig {
  /// Signature size (paper: m = 10).
  int m = 10;
  /// Removal radius in meters around signature points; 0 = plain SC.
  double radius = 0.0;
  /// Snap levels defining location identity.
  int snap_levels = 11;
};

/// \brief The SC / RSC anonymizer.
class SignatureClosure : public Anonymizer {
 public:
  explicit SignatureClosure(SignatureClosureConfig config)
      : config_(config) {}

  /// "SC" or "RSC-<radius km>".
  std::string name() const override;

  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override;

 private:
  SignatureClosureConfig config_;
};

}  // namespace frt

#endif  // FRT_BASELINES_SIGNATURE_CLOSURE_H_
