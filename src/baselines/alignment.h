// Shared trajectory-alignment helpers for the clustering-based baselines
// (W4M, GLOVE, KLT): equal-arc resampling and index-aligned average
// distance.

#ifndef FRT_BASELINES_ALIGNMENT_H_
#define FRT_BASELINES_ALIGNMENT_H_

#include <vector>

#include "traj/trajectory.h"

namespace frt {

/// Resamples the trajectory's polyline to `n` equally spaced positions.
std::vector<Point> ResampleEqualArc(const Trajectory& t, int n);

/// Mean Euclidean distance between two equal-length aligned shapes.
double AlignedShapeDistance(const std::vector<Point>& a,
                            const std::vector<Point>& b);

/// \brief Greedy clustering into groups of >= k by aligned-shape distance:
/// the lowest unassigned index seeds a cluster and absorbs its k-1 nearest
/// unassigned trajectories; a leftover tail smaller than k joins the last
/// cluster. Returns cluster membership lists.
std::vector<std::vector<size_t>> GreedyClusterByShape(
    const std::vector<std::vector<Point>>& shapes, int k);

}  // namespace frt

#endif  // FRT_BASELINES_ALIGNMENT_H_
