#include "baselines/glove.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/alignment.h"
#include "geo/bbox.h"

namespace frt {
namespace {

// Category histogram of road nodes within `radius` of `center`.
std::array<double, kNumPoiCategories> CategoriesNear(const RoadNetwork& net,
                                                     const Point& center,
                                                     double radius) {
  std::array<double, kNumPoiCategories> hist{};
  for (const EdgeId e : net.EdgesNear(center, radius)) {
    const RoadEdge& edge = net.edge(e);
    for (const NodeId nid : {edge.u, edge.v}) {
      const RoadNode& node = net.node(nid);
      if (Distance(node.p, center) <= radius) {
        hist[static_cast<int>(node.category)] += 1.0;
      }
    }
  }
  return hist;
}

int DistinctCategories(const std::array<double, kNumPoiCategories>& hist) {
  int n = 0;
  for (const double v : hist) {
    if (v > 0.0) ++n;
  }
  return n;
}

// Total-variation distance between two category distributions.
double CategoryTvd(const std::array<double, kNumPoiCategories>& a,
                   const std::array<double, kNumPoiCategories>& b) {
  double ta = 0.0;
  double tb = 0.0;
  for (const double v : a) ta += v;
  for (const double v : b) tb += v;
  if (ta <= 0.0 || tb <= 0.0) return 1.0;
  double tvd = 0.0;
  for (int i = 0; i < kNumPoiCategories; ++i) {
    tvd += std::fabs(a[i] / ta - b[i] / tb);
  }
  return 0.5 * tvd;
}

}  // namespace

Result<Dataset> Glove::Anonymize(const Dataset& input, Rng& rng) {
  (void)rng;
  if (input.empty()) return Status::InvalidArgument("empty dataset");
  if (config_.semantic && network_ == nullptr) {
    return Status::InvalidArgument("KLT requires a road network");
  }
  const size_t n = input.size();
  const int T = config_.resample_points;

  std::vector<std::vector<Point>> shapes(n);
  for (size_t i = 0; i < n; ++i) {
    shapes[i] = ResampleEqualArc(input[i], T);
  }
  const auto clusters = GreedyClusterByShape(shapes, std::max(2, config_.k));

  // Global category distribution (for t-closeness).
  std::array<double, kNumPoiCategories> global_hist{};
  if (config_.semantic) {
    for (const RoadNode& node : network_->nodes()) {
      global_hist[static_cast<int>(node.category)] += 1.0;
    }
  }

  Dataset output;
  for (const auto& members : clusters) {
    // Generalize each aligned sample: the merged region of the members'
    // positions, published as its center. All members emit the identical
    // generalized sequence, achieving k-anonymity by construction.
    std::vector<Point> generalized(T);
    for (int s = 0; s < T; ++s) {
      BBox region;
      for (const size_t m : members) region.Extend(shapes[m][s]);
      Point center = region.Center();
      if (config_.semantic) {
        // l-diversity and t-closeness: grow the region until it covers at
        // least l POI categories whose mix is within t of the global one.
        double radius =
            std::max(region.Diagonal() * 0.5, config_.grow_step);
        while (radius < config_.max_region_radius) {
          const auto hist = CategoriesNear(*network_, center, radius);
          if (DistinctCategories(hist) >= config_.l &&
              CategoryTvd(hist, global_hist) <= config_.t) {
            break;
          }
          radius += config_.grow_step;
        }
        // The published sample is the category-balanced centroid of the
        // covered nodes — shifting it toward the semantic mixture (this is
        // KLT's extra utility cost relative to GLOVE).
        double sx = 0.0;
        double sy = 0.0;
        double cnt = 0.0;
        for (const EdgeId e : network_->EdgesNear(center, radius)) {
          const RoadEdge& edge = network_->edge(e);
          for (const NodeId nid : {edge.u, edge.v}) {
            const RoadNode& node = network_->node(nid);
            if (Distance(node.p, center) <= radius) {
              sx += node.p.x;
              sy += node.p.y;
              cnt += 1.0;
            }
          }
        }
        if (cnt > 0.0) center = Point{sx / cnt, sy / cnt};
      }
      generalized[s] = center;
    }

    // Generalized timestamps: the cluster's common window, evenly sampled —
    // every member publishes identical times, which is what collapses the
    // temporal signature (paper: GLOVE/KLT reach LAt < 0.01).
    int64_t t0 = std::numeric_limits<int64_t>::max();
    int64_t t1 = std::numeric_limits<int64_t>::min();
    for (const size_t m : members) {
      const Trajectory& traj = input[m];
      if (traj.empty()) continue;
      t0 = std::min(t0, traj.points().front().t);
      t1 = std::max(t1, traj.points().back().t);
    }
    if (t0 > t1) {
      t0 = 0;
      t1 = T - 1;
    }
    for (const size_t m : members) {
      Trajectory out(input[m].id());
      for (int s = 0; s < T; ++s) {
        const int64_t t =
            t0 + (t1 - t0) * static_cast<int64_t>(s) /
                     std::max<int64_t>(1, T - 1);
        out.Append(generalized[s], t);
      }
      FRT_RETURN_IF_ERROR(output.Add(std::move(out)));
    }
  }
  return output;
}

}  // namespace frt
