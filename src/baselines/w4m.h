// W4M ("Wait for Me", Abul/Bonchi/Nanni 2010) — (k, delta)-anonymity.
//
// Trajectories are clustered into groups of at least k by spatiotemporal
// similarity; within a cluster, every trajectory is perturbed just enough
// to stay inside a cylinder of radius delta around the cluster pivot, so
// each trip co-locates with k-1 others. Points already inside the cylinder
// are untouched, which is why W4M preserves utility well (low INF) but
// offers little protection against signature linking.

#ifndef FRT_BASELINES_W4M_H_
#define FRT_BASELINES_W4M_H_

#include "core/anonymizer.h"

namespace frt {

/// Configuration for W4M.
struct W4mConfig {
  /// Anonymity set size (paper: k = 5).
  int k = 5;
  /// Cylinder radius in meters. Large enough that most points co-locate
  /// already (W4M's defining utility advantage); only outliers get pulled.
  double delta = 4000.0;
  /// Alignment resolution: trajectories are resampled to this many
  /// positions for distance computation and pivot alignment.
  int resample_points = 48;
};

/// \brief The W4M (k, delta)-anonymizer.
class W4m : public Anonymizer {
 public:
  explicit W4m(W4mConfig config) : config_(config) {}

  std::string name() const override { return "W4M"; }

  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override;

 private:
  W4mConfig config_;
};

}  // namespace frt

#endif  // FRT_BASELINES_W4M_H_
