#include "baselines/adatrace.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "dp/laplace.h"
#include "geo/bbox.h"

namespace frt {
namespace {

// Density-adaptive two-layer grid: dense top cells subdivide further.
struct AdaptiveGrid {
  BBox region;
  int top = 6;
  std::vector<int> sub;       // per top cell: subdivision per side
  std::vector<int> leaf_base;  // per top cell: first leaf id
  int num_leaves = 0;
  std::vector<BBox> leaf_box;  // per leaf

  int TopCellOf(const Point& p) const {
    const double w = std::max(region.Width(), 1e-9);
    const double h = std::max(region.Height(), 1e-9);
    int ix = static_cast<int>((p.x - region.min_x) / w * top);
    int iy = static_cast<int>((p.y - region.min_y) / h * top);
    ix = std::clamp(ix, 0, top - 1);
    iy = std::clamp(iy, 0, top - 1);
    return ix * top + iy;
  }

  int LeafOf(const Point& p) const {
    const int tc = TopCellOf(p);
    const int s = sub[tc];
    const int tix = tc / top;
    const int tiy = tc % top;
    const double w = std::max(region.Width(), 1e-9) / top;
    const double h = std::max(region.Height(), 1e-9) / top;
    const double lx = p.x - (region.min_x + tix * w);
    const double ly = p.y - (region.min_y + tiy * h);
    int sx = static_cast<int>(lx / w * s);
    int sy = static_cast<int>(ly / h * s);
    sx = std::clamp(sx, 0, s - 1);
    sy = std::clamp(sy, 0, s - 1);
    return leaf_base[tc] + sx * s + sy;
  }

  void Finalize() {
    leaf_base.resize(sub.size());
    num_leaves = 0;
    for (size_t c = 0; c < sub.size(); ++c) {
      leaf_base[c] = num_leaves;
      num_leaves += sub[c] * sub[c];
    }
    leaf_box.resize(num_leaves);
    const double w = std::max(region.Width(), 1e-9) / top;
    const double h = std::max(region.Height(), 1e-9) / top;
    for (int tc = 0; tc < top * top; ++tc) {
      const int s = sub[tc];
      const int tix = tc / top;
      const int tiy = tc % top;
      for (int sx = 0; sx < s; ++sx) {
        for (int sy = 0; sy < s; ++sy) {
          BBox b;
          b.min_x = region.min_x + tix * w + sx * w / s;
          b.min_y = region.min_y + tiy * h + sy * h / s;
          b.max_x = b.min_x + w / s;
          b.max_y = b.min_y + h / s;
          leaf_box[leaf_base[tc] + sx * s + sy] = b;
        }
      }
    }
  }
};

int64_t SampleWeighted(const std::unordered_map<int64_t, double>& w,
                       Rng& rng) {
  double total = 0.0;
  for (const auto& [k, v] : w) total += v;
  if (total <= 0.0) return -1;
  double roll = rng.Uniform() * total;
  for (const auto& [k, v] : w) {
    roll -= v;
    if (roll <= 0.0) return k;
  }
  return w.begin()->first;
}

}  // namespace

Result<Dataset> AdaTrace::Anonymize(const Dataset& input, Rng& rng) {
  if (input.empty()) return Status::InvalidArgument("empty dataset");
  const double eps_part = config_.epsilon / 4.0;

  // ---- Feature 1: density-adaptive grid ----
  AdaptiveGrid grid;
  grid.region = input.Bounds();
  grid.top = config_.top_cells;
  std::vector<double> top_counts(grid.top * grid.top, 0.0);
  {
    AdaptiveGrid probe = grid;  // top-cell addressing needs sub=1 everywhere
    probe.sub.assign(grid.top * grid.top, 1);
    for (const auto& t : input.trajectories()) {
      for (const auto& tp : t.points()) {
        top_counts[probe.TopCellOf(tp.p)] += 1.0;
      }
    }
  }
  grid.sub.resize(top_counts.size());
  for (size_t c = 0; c < top_counts.size(); ++c) {
    const double noisy =
        std::max(0.0, top_counts[c] + rng.Laplace(0.0, 1.0 / eps_part));
    const int s = static_cast<int>(
        std::ceil(std::sqrt(noisy * config_.subdivision_factor)));
    grid.sub[c] = std::clamp(s, 1, config_.max_subdivision);
  }
  grid.Finalize();

  // Collapsed leaf sequences.
  std::vector<std::vector<int>> seqs;
  seqs.reserve(input.size());
  size_t max_len = 1;
  for (const auto& t : input.trajectories()) {
    std::vector<int> s;
    for (const auto& tp : t.points()) {
      const int leaf = grid.LeafOf(tp.p);
      if (s.empty() || s.back() != leaf) s.push_back(leaf);
    }
    if (!s.empty()) {
      max_len = std::max(max_len, s.size());
      seqs.push_back(std::move(s));
    }
  }

  // ---- Feature 2: first-order Markov mobility model ----
  std::unordered_map<int64_t, std::unordered_map<int64_t, double>> markov;
  for (const auto& s : seqs) {
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      markov[s[i]][s[i + 1]] += 1.0;
    }
  }
  for (auto& [from, row] : markov) {
    for (auto& [to, c] : row) {
      c = std::max(0.0, c + rng.Laplace(0.0, 1.0 / eps_part));
    }
  }

  // ---- Feature 3: trip distribution ----
  std::unordered_map<int64_t, double> trips;  // (start<<32 | end)
  for (const auto& s : seqs) {
    trips[(static_cast<int64_t>(s.front()) << 32) |
          static_cast<uint32_t>(s.back())] += 1.0;
  }
  for (auto& [k, c] : trips) {
    c = std::max(0.0, c + rng.Laplace(0.0, 1.0 / eps_part));
  }

  // ---- Feature 4: length distribution ----
  const size_t bins = std::min<size_t>(48, max_len);
  const double bin_w = static_cast<double>(max_len) / bins;
  std::vector<double> len_hist(bins, 0.0);
  for (const auto& s : seqs) {
    size_t b = static_cast<size_t>((s.size() - 1) / bin_w);
    if (b >= bins) b = bins - 1;
    len_hist[b] += 1.0;
  }
  for (double& v : len_hist) {
    v = std::max(0.0, v + rng.Laplace(0.0, 1.0 / eps_part));
  }

  // ---- Synthesis ----
  auto leaf_center = [&](int leaf) { return grid.leaf_box[leaf].Center(); };
  auto sample_length = [&]() -> size_t {
    double total = 0.0;
    for (const double v : len_hist) total += v;
    if (total <= 0.0) return 8;
    double roll = rng.Uniform() * total;
    for (size_t b = 0; b < bins; ++b) {
      roll -= len_hist[b];
      if (roll <= 0.0) {
        return static_cast<size_t>((static_cast<double>(b) + 0.5) * bin_w) +
               1;
      }
    }
    return max_len;
  };

  const double city_diag = grid.region.Diagonal();
  Dataset output;
  for (size_t i = 0; i < input.size(); ++i) {
    const int64_t trip = SampleWeighted(trips, rng);
    int cur = trip < 0 ? 0 : static_cast<int>(trip >> 32);
    const int goal =
        trip < 0 ? cur : static_cast<int>(trip & 0xffffffffLL);
    const size_t want = std::max<size_t>(2, sample_length());
    const Point goal_p = leaf_center(goal);

    Trajectory traj(static_cast<TrajId>(i));
    int64_t t = 0;
    for (size_t step = 0; step < want; ++step) {
      const BBox& box = grid.leaf_box[cur];
      const Point c = box.Center();
      traj.Append(Point{c.x + rng.Uniform(-0.35, 0.35) * box.Width(),
                        c.y + rng.Uniform(-0.35, 0.35) * box.Height()},
                  t);
      t += config_.sampling_period;
      if (step + 1 >= want) break;
      if (step + 2 == want) {
        cur = goal;  // arrive exactly at the sampled destination
        continue;
      }
      auto row = markov.find(cur);
      if (row == markov.end() || row->second.empty()) {
        cur = goal;
        continue;
      }
      // Utility-aware walk: Markov probabilities biased toward reaching
      // the destination within the remaining steps.
      const double remaining = static_cast<double>(want - step - 1);
      std::unordered_map<int64_t, double> biased;
      for (const auto& [to, w] : row->second) {
        const double d = Distance(leaf_center(static_cast<int>(to)), goal_p);
        const double reach_scale =
            std::max(city_diag * remaining / static_cast<double>(want),
                     1e-3);
        biased[to] = w * std::exp(-d / reach_scale);
      }
      const int64_t next = SampleWeighted(biased, rng);
      if (next < 0) {
        cur = goal;
      } else {
        cur = static_cast<int>(next);
      }
    }
    FRT_RETURN_IF_ERROR(output.Add(std::move(traj)));
  }
  return output;
}

}  // namespace frt
