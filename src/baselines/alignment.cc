#include "baselines/alignment.h"

#include <algorithm>
#include <cmath>

namespace frt {

std::vector<Point> ResampleEqualArc(const Trajectory& t, int n) {
  std::vector<Point> out;
  out.reserve(n);
  if (t.empty() || n <= 0) return out;
  if (t.size() == 1 || n == 1) {
    out.assign(std::max(1, n), t[0].p);
    return out;
  }
  const double total = std::max(t.Length(), 1e-9);
  const double step = total / (n - 1);
  size_t seg = 0;
  double seg_start = 0.0;
  double seg_len = Distance(t[0].p, t[1].p);
  for (int i = 0; i < n; ++i) {
    const double target = std::min(step * i, total);
    while (seg + 2 < t.size() && seg_start + seg_len < target) {
      seg_start += seg_len;
      ++seg;
      seg_len = Distance(t[seg].p, t[seg + 1].p);
    }
    const double frac =
        seg_len > 0.0 ? std::clamp((target - seg_start) / seg_len, 0.0, 1.0)
                      : 0.0;
    out.push_back(Lerp(t[seg].p, t[seg + 1].p, frac));
  }
  return out;
}

double AlignedShapeDistance(const std::vector<Point>& a,
                            const std::vector<Point>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += Distance(a[i], b[i]);
  return sum / static_cast<double>(a.size());
}

std::vector<std::vector<size_t>> GreedyClusterByShape(
    const std::vector<std::vector<Point>>& shapes, int k) {
  const size_t n = shapes.size();
  std::vector<int> cluster_of(n, -1);
  std::vector<std::vector<size_t>> clusters;
  for (size_t seed = 0; seed < n; ++seed) {
    if (cluster_of[seed] != -1) continue;
    std::vector<std::pair<double, size_t>> cands;
    for (size_t j = 0; j < n; ++j) {
      if (cluster_of[j] != -1 || j == seed) continue;
      cands.emplace_back(AlignedShapeDistance(shapes[seed], shapes[j]), j);
    }
    std::sort(cands.begin(), cands.end());
    std::vector<size_t> members{seed};
    for (int c = 0; c + 1 < k && c < static_cast<int>(cands.size()); ++c) {
      members.push_back(cands[c].second);
    }
    if (static_cast<int>(members.size()) < k && !clusters.empty()) {
      const int last = static_cast<int>(clusters.size()) - 1;
      for (const size_t mbr : members) {
        cluster_of[mbr] = last;
        clusters[last].push_back(mbr);
      }
      continue;
    }
    const int cid = static_cast<int>(clusters.size());
    for (const size_t mbr : members) cluster_of[mbr] = cid;
    clusters.push_back(std::move(members));
  }
  return clusters;
}

}  // namespace frt
