// GLOVE (Gramaglia & Fiore 2015) — k-anonymity via spatiotemporal
// generalization: similar trajectories are merged until every group holds k
// members; each published sample is the generalization (merged region) of
// the group's aligned samples, so all members of a group are mutually
// indistinguishable.
//
// KLT (Tu et al. 2019) extends GLOVE with l-diversity and t-closeness over
// POI semantic categories: each generalized region is enlarged until it
// covers at least l categories and its category mix stays within t of the
// city-wide distribution — trading extra utility loss for semantic privacy.

#ifndef FRT_BASELINES_GLOVE_H_
#define FRT_BASELINES_GLOVE_H_

#include "core/anonymizer.h"
#include "roadnet/graph.h"

namespace frt {

/// Configuration for GLOVE / KLT.
struct GloveConfig {
  /// Anonymity set size (paper: k = 5).
  int k = 5;
  /// Generalized samples per published trajectory.
  int resample_points = 48;
  /// --- KLT extensions (enabled by `semantic`) ---
  bool semantic = false;
  /// Minimum distinct POI categories per generalized region (l-diversity).
  int l = 3;
  /// Maximum divergence between a region's category distribution and the
  /// global one (t-closeness, total-variation distance).
  double t = 0.1;
  /// Region growth step and cap when enforcing l/t (meters).
  double grow_step = 400.0;
  double max_region_radius = 4000.0;
};

/// \brief GLOVE (and, with `semantic`, KLT) generalization anonymizer.
class Glove : public Anonymizer {
 public:
  /// `network` supplies POI categories; required only for KLT (`semantic`).
  Glove(GloveConfig config, const RoadNetwork* network = nullptr)
      : config_(config), network_(network) {}

  std::string name() const override {
    return config_.semantic ? "KLT" : "GLOVE";
  }

  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override;

 private:
  GloveConfig config_;
  const RoadNetwork* network_;
};

}  // namespace frt

#endif  // FRT_BASELINES_GLOVE_H_
