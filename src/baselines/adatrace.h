// AdaTrace (Gursoy et al., CCS 2018) — utility-aware, attack-resilient DP
// location-trace synthesis.
//
// AdaTrace extracts four noisy features from the real dataset under a split
// privacy budget: (1) a density-adaptive grid, (2) a first-order Markov
// mobility model over grid cells, (3) the trip (start, end) distribution,
// and (4) the trip-length distribution. Synthetic traces are sampled from
// these models: a trip is drawn from (3), its length from (4), and the
// route is a Markov walk from (2) biased to arrive at the sampled
// destination — which is why AdaTrace preserves trip-level utility far
// better than DPT while remaining fully synthetic.

#ifndef FRT_BASELINES_ADATRACE_H_
#define FRT_BASELINES_ADATRACE_H_

#include "core/anonymizer.h"

namespace frt {

/// Configuration for AdaTrace.
struct AdaTraceConfig {
  /// Total privacy budget epsilon (paper Table II uses 1.0).
  double epsilon = 1.0;
  /// Top-level grid cells per side (the adaptive grid's first layer).
  int top_cells = 6;
  /// Maximum sub-division per side of a dense top cell.
  int max_subdivision = 4;
  /// Controls how aggressively dense cells subdivide.
  double subdivision_factor = 0.02;
  /// Sampling period of emitted synthetic points (seconds).
  int64_t sampling_period = 186;
};

/// \brief The AdaTrace synthetic-generation baseline.
class AdaTrace : public Anonymizer {
 public:
  explicit AdaTrace(AdaTraceConfig config) : config_(config) {}

  std::string name() const override { return "AdaTrace"; }

  /// Learns the four noisy features from `input` and emits |input|
  /// synthetic trajectories with ids 0..n-1.
  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override;

 private:
  AdaTraceConfig config_;
};

}  // namespace frt

#endif  // FRT_BASELINES_ADATRACE_H_
