// DPT (He et al., VLDB 2015) — Differentially Private Trajectory synthesis.
//
// DPT discretizes trajectories into a grid reference system, learns the
// movement model as a prefix tree of cell transitions (counts of every
// length-<=h context), injects Laplace noise into the tree counts, prunes
// noise-dominated nodes, and then samples brand-new synthetic trajectories
// from the noisy tree. No published trajectory corresponds to a real one —
// the strongest privacy in Table II, at the cost of destroying record-level
// truthfulness (INF ~ 0.99).
//
// This implementation uses a single reference system (the paper's
// hierarchical speed-adapted systems matter for data with mixed travel
// modes; taxi data is single-mode) with a depth-h prefix tree and
// level-split budget.

#ifndef FRT_BASELINES_DPT_H_
#define FRT_BASELINES_DPT_H_

#include "core/anonymizer.h"

namespace frt {

/// Configuration for DPT.
struct DptConfig {
  /// Total privacy budget epsilon (paper Table II uses 1.0).
  double epsilon = 1.0;
  /// Reference-system granularity: 2^grid_level cells per side.
  int grid_level = 6;
  /// Prefix-tree height (maximum transition context length).
  int tree_height = 5;
  /// Nodes whose noisy count falls below prune_sigmas * noise_stddev are
  /// dropped (standard DPT pruning).
  double prune_sigmas = 2.0;
  /// Sampling period of emitted synthetic points (seconds).
  int64_t sampling_period = 186;
};

/// \brief The DPT synthetic-generation baseline.
class Dpt : public Anonymizer {
 public:
  explicit Dpt(DptConfig config) : config_(config) {}

  std::string name() const override { return "DPT"; }

  /// Learns the noisy prefix tree from `input` and emits |input| synthetic
  /// trajectories with ids 0..n-1.
  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override;

 private:
  DptConfig config_;
};

}  // namespace frt

#endif  // FRT_BASELINES_DPT_H_
