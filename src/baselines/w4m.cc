#include "baselines/w4m.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/alignment.h"

namespace frt {

Result<Dataset> W4m::Anonymize(const Dataset& input, Rng& rng) {
  (void)rng;
  if (input.empty()) return Status::InvalidArgument("empty dataset");
  const size_t n = input.size();
  const int k = std::max(2, config_.k);

  std::vector<std::vector<Point>> shapes(n);
  for (size_t i = 0; i < n; ++i) {
    shapes[i] = ResampleEqualArc(input[i], config_.resample_points);
  }
  const auto clusters = GreedyClusterByShape(shapes, k);
  std::vector<int> cluster_of(n, -1);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (const size_t m : clusters[c]) cluster_of[m] = static_cast<int>(c);
  }

  // Pivot per cluster: the medoid under the aligned distance.
  std::vector<size_t> pivot(clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_m = clusters[c][0];
    for (const size_t a : clusters[c]) {
      double total = 0.0;
      for (const size_t b : clusters[c]) {
        if (a != b) total += AlignedShapeDistance(shapes[a], shapes[b]);
      }
      if (total < best) {
        best = total;
        best_m = a;
      }
    }
    pivot[c] = best_m;
  }

  // Enforce the (k, delta) cylinder: every original point is pulled toward
  // the pivot's aligned position until it lies within delta of it; points
  // already inside the cylinder are published unchanged. Timestamps are
  // aligned to the pivot's time window (W4M's spatiotemporal edit), so
  // cluster members co-locate in time as well.
  Dataset output;
  for (size_t i = 0; i < n; ++i) {
    const Trajectory& traj = input[i];
    const size_t pivot_idx = pivot[cluster_of[i]];
    const auto& pivot_shape = shapes[pivot_idx];
    const Trajectory& pivot_traj = input[pivot_idx];
    const int64_t pt0 =
        pivot_traj.empty() ? 0 : pivot_traj.points().front().t;
    const int64_t pt1 =
        pivot_traj.empty() ? 0 : pivot_traj.points().back().t;
    Trajectory out(traj.id());
    const size_t len = traj.size();
    for (size_t p = 0; p < len; ++p) {
      const double frac =
          len <= 1 ? 0.0
                   : static_cast<double>(p) / static_cast<double>(len - 1);
      const size_t pi = std::min<size_t>(
          pivot_shape.size() - 1,
          static_cast<size_t>(frac * (pivot_shape.size() - 1) + 0.5));
      const Point& anchor = pivot_shape[pi];
      Point moved = traj[p].p;
      const double d = Distance(moved, anchor);
      if (d > config_.delta) {
        moved = Lerp(anchor, moved, config_.delta / d);
      }
      out.Append(moved,
                 pt0 + static_cast<int64_t>(frac *
                                            static_cast<double>(pt1 - pt0)));
    }
    FRT_RETURN_IF_ERROR(output.Add(std::move(out)));
  }
  return output;
}

}  // namespace frt
