#include "baselines/signature_closure.h"

#include <cmath>
#include <unordered_set>

#include "common/strings.h"

namespace frt {

std::string SignatureClosure::name() const {
  if (config_.radius <= 0.0) return "SC";
  return StrFormat("RSC-%.1f", config_.radius / 1000.0);
}

Result<Dataset> SignatureClosure::Anonymize(const Dataset& input, Rng& rng) {
  (void)rng;  // deterministic method
  if (input.empty()) return Status::InvalidArgument("empty dataset");

  BBox region = input.Bounds();
  const double pad =
      std::max(1.0, 0.01 * std::max(region.Width(), region.Height()));
  region.min_x -= pad;
  region.min_y -= pad;
  region.max_x += pad;
  region.max_y += pad;
  Quantizer quantizer(region, config_.snap_levels);
  quantizer.RegisterDataset(input);

  SignatureExtractor extractor(&quantizer, config_.m);
  FRT_ASSIGN_OR_RETURN(const SignatureSet signatures,
                       extractor.Extract(input));

  Dataset output;
  for (size_t i = 0; i < input.size(); ++i) {
    const Trajectory& traj = input[i];
    std::unordered_set<LocationKey> drop;
    std::vector<Point> centers;
    for (const WeightedLocation& wl : signatures.per_traj[i]) {
      drop.insert(wl.key);
      if (config_.radius > 0.0) centers.push_back(quantizer.PointOf(wl.key));
    }
    Trajectory kept(traj.id());
    for (const TimedPoint& tp : traj.points()) {
      if (drop.count(quantizer.KeyOf(tp.p)) > 0) continue;
      if (config_.radius > 0.0) {
        bool near = false;
        for (const Point& c : centers) {
          if (Distance(tp.p, c) <= config_.radius) {
            near = true;
            break;
          }
        }
        if (near) continue;
      }
      kept.Append(tp);
    }
    FRT_RETURN_IF_ERROR(output.Add(std::move(kept)));
  }
  return output;
}

}  // namespace frt
