// Synthetic road-network generation.
//
// Substitute for the Beijing road network underlying T-Drive: a jittered
// Manhattan grid with diagonal avenues, randomly thinned while preserving
// connectivity. Node POI categories are assigned by zone (center = offices
// and shopping, periphery = residential) with dedicated transport hubs, so
// the KLT baseline's semantic constraints have realistic structure.

#ifndef FRT_SYNTH_ROAD_GEN_H_
#define FRT_SYNTH_ROAD_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "roadnet/graph.h"

namespace frt {

/// Parameters for the synthetic road network.
struct RoadGenConfig {
  /// Intersections per side (grid is cols x rows).
  int cols = 36;
  int rows = 36;
  /// Average intersection spacing in meters (T-Drive hop distance ~600 m).
  double spacing = 550.0;
  /// Random positional jitter as a fraction of spacing.
  double jitter = 0.22;
  /// Probability of removing a non-bridge grid edge (street irregularity).
  double removal_prob = 0.12;
  /// Probability of adding a diagonal shortcut inside a grid square.
  double diagonal_prob = 0.08;
};

/// \brief Generates a connected road network. Deterministic given the seed.
Result<RoadNetwork> GenerateRoadNetwork(const RoadGenConfig& config,
                                        uint64_t seed);

}  // namespace frt

#endif  // FRT_SYNTH_ROAD_GEN_H_
