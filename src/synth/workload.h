// Synthetic taxi workload generation — the T-Drive substitute.
//
// Each taxi gets a home, a workplace, and a few personal POIs (visited often
// by this taxi and rarely by others: exactly the high-PF / low-TF signature
// structure of paper Fig. 1), plus a shared pool of city hotspots (airport,
// malls, stations: high TF). A trajectory is a week-long alternation of
// trips (shortest-path routed, resampled at the T-Drive hop distance) and
// dwells (repeated samples while parked, which give anchors their high PF).
//
// Unlike the real data, the generator retains the ground-truth route of
// every trajectory, which makes the recovery-attack evaluation (§V-B3)
// exact instead of approximate.

#ifndef FRT_SYNTH_WORKLOAD_H_
#define FRT_SYNTH_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "roadnet/graph.h"
#include "synth/road_gen.h"
#include "traj/dataset.h"

namespace frt {

/// Parameters of the taxi workload.
struct WorkloadConfig {
  /// Number of taxis = number of trajectories = |D|.
  int num_taxis = 240;
  /// Target points per trajectory (T-Drive average is 1,813; the default is
  /// scaled down for laptop runs — shapes are length-invariant).
  int target_points = 220;
  /// Distance between consecutive samples while driving (T-Drive: ~600 m).
  double point_spacing = 600.0;
  /// Sampling period in seconds (T-Drive: ~3.1 min).
  int64_t sampling_period = 186;
  /// GPS noise while driving / while parked (meters, 1 sigma).
  double drive_noise = 9.0;
  double dwell_noise = 2.5;
  /// Shared city hotspots (high global TF).
  int num_hotspots = 8;
  /// Personal POIs per taxi (high PF, low TF — signature locations).
  int personal_pois_min = 2;
  int personal_pois_max = 4;
  /// Destination mix; remainder of the mass goes to uniform random nodes
  /// (passenger trips), which also makes taxis visit other taxis' anchor
  /// locations — the cross-visits the local mechanism's Stage-2 exploits.
  double p_home = 0.30;
  double p_work = 0.18;
  double p_personal = 0.15;
  double p_hotspot = 0.15;
  /// Dwell lengths (#samples emitted while parked) at anchors vs elsewhere.
  int dwell_anchor_min = 3;
  int dwell_anchor_max = 9;
  int dwell_other_min = 0;
  int dwell_other_max = 2;
  /// Probability that a trip routes via a random intermediate waypoint
  /// (passenger pickups / detours). Keeps repeated anchor trips from
  /// tracing identical paths, so identifying information concentrates in
  /// the signature points themselves — the paper's premise.
  double waypoint_prob = 0.5;
  /// Epoch of the first sample.
  int64_t start_time = 1201000000;
  /// Per-taxi daily working shifts: sampling pauses outside a personal
  /// window (start hour and length drawn per taxi), giving each taxi a
  /// distinctive hour-of-day profile — the structure the temporal
  /// signature attack (LAt) exploits.
  bool daily_shifts = true;
  double shift_hours_min = 7.0;
  double shift_hours_max = 13.0;
};

/// Ground truth retained by the generator, index-aligned with the dataset.
struct GroundTruth {
  /// Distinct road edges traversed over the trajectory's whole history.
  std::vector<std::vector<EdgeId>> route_edges;
  /// For each GPS point, the road edge it was emitted on.
  std::vector<std::vector<EdgeId>> point_edges;
};

/// A generated benchmark world: network + trajectories + truth.
struct Workload {
  RoadNetwork network;
  Dataset dataset;
  GroundTruth truth;
  std::vector<NodeId> hotspots;       ///< shared destination nodes
  std::vector<NodeId> taxi_home;      ///< per-taxi anchor (signature source)
  std::vector<NodeId> taxi_work;      ///< per-taxi anchor (signature source)
};

/// \brief Generates the full workload. Deterministic given the seed.
Result<Workload> GenerateTaxiWorkload(const WorkloadConfig& workload_config,
                                      const RoadGenConfig& road_config,
                                      uint64_t seed);

}  // namespace frt

#endif  // FRT_SYNTH_WORKLOAD_H_
