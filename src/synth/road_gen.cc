#include "synth/road_gen.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

namespace frt {
namespace {

// Union-find for connectivity-preserving edge removal.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
};

PoiCategory CategoryFor(int c, int r, const RoadGenConfig& cfg, Rng& rng) {
  // Normalized distance from city center in [0, ~1.4].
  const double dx = (c - cfg.cols / 2.0) / (cfg.cols / 2.0);
  const double dy = (r - cfg.rows / 2.0) / (cfg.rows / 2.0);
  const double d = std::sqrt(dx * dx + dy * dy);
  const double roll = rng.Uniform();
  if (d < 0.35) {
    // Downtown: offices, shopping, leisure.
    if (roll < 0.40) return PoiCategory::kOffice;
    if (roll < 0.70) return PoiCategory::kShopping;
    if (roll < 0.85) return PoiCategory::kLeisure;
    if (roll < 0.92) return PoiCategory::kMedical;
    return PoiCategory::kOther;
  }
  if (d < 0.75) {
    // Midtown: mixed.
    if (roll < 0.35) return PoiCategory::kResidential;
    if (roll < 0.55) return PoiCategory::kOffice;
    if (roll < 0.68) return PoiCategory::kShopping;
    if (roll < 0.78) return PoiCategory::kEducation;
    if (roll < 0.86) return PoiCategory::kLeisure;
    if (roll < 0.92) return PoiCategory::kMedical;
    return PoiCategory::kOther;
  }
  // Periphery: residential belt with scattered transport hubs.
  if (roll < 0.62) return PoiCategory::kResidential;
  if (roll < 0.72) return PoiCategory::kEducation;
  if (roll < 0.80) return PoiCategory::kShopping;
  if (roll < 0.88) return PoiCategory::kTransport;
  return PoiCategory::kOther;
}

}  // namespace

Result<RoadNetwork> GenerateRoadNetwork(const RoadGenConfig& config,
                                        uint64_t seed) {
  if (config.cols < 2 || config.rows < 2) {
    return Status::InvalidArgument("grid must be at least 2x2");
  }
  if (config.spacing <= 0.0) {
    return Status::InvalidArgument("spacing must be positive");
  }
  Rng rng(seed);
  RoadNetwork net;

  // Nodes: jittered lattice.
  std::vector<NodeId> node_at(static_cast<size_t>(config.cols) * config.rows);
  const double jmax = config.jitter * config.spacing;
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      const Point p{c * config.spacing + rng.Uniform(-jmax, jmax),
                    r * config.spacing + rng.Uniform(-jmax, jmax)};
      node_at[r * config.cols + c] = net.AddNode(p, CategoryFor(c, r,
                                                                config, rng));
    }
  }

  // Candidate lattice edges (right and up neighbors) plus diagonals.
  struct Cand {
    NodeId u, v;
    bool removable;
  };
  std::vector<Cand> cands;
  auto id = [&](int c, int r) { return node_at[r * config.cols + c]; };
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      if (c + 1 < config.cols) {
        cands.push_back({id(c, r), id(c + 1, r),
                         rng.Bernoulli(config.removal_prob)});
      }
      if (r + 1 < config.rows) {
        cands.push_back({id(c, r), id(c, r + 1),
                         rng.Bernoulli(config.removal_prob)});
      }
      if (c + 1 < config.cols && r + 1 < config.rows &&
          rng.Bernoulli(config.diagonal_prob)) {
        // One of the two diagonals of this grid square.
        if (rng.Bernoulli(0.5)) {
          cands.push_back({id(c, r), id(c + 1, r + 1), false});
        } else {
          cands.push_back({id(c + 1, r), id(c, r + 1), false});
        }
      }
    }
  }

  // First pass: add all kept edges; track connectivity.
  UnionFind uf(net.NumNodes());
  for (const Cand& cand : cands) {
    if (cand.removable) continue;
    auto st = net.AddEdge(cand.u, cand.v);
    if (st.ok()) uf.Union(cand.u, cand.v);
  }
  // Second pass: re-add removed edges only where needed for connectivity.
  for (const Cand& cand : cands) {
    if (!cand.removable) continue;
    if (uf.Find(cand.u) != uf.Find(cand.v)) {
      auto st = net.AddEdge(cand.u, cand.v);
      if (st.ok()) uf.Union(cand.u, cand.v);
    }
  }

  net.Build();
  if (!net.IsConnected()) {
    return Status::Internal("generated network is not connected");
  }
  return net;
}

}  // namespace frt
