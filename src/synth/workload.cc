#include "synth/workload.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "roadnet/shortest_path.h"

namespace frt {
namespace {

// Picks a random node of the wanted category; falls back to any node.
NodeId RandomNodeOfCategory(const RoadNetwork& net, PoiCategory cat,
                            Rng& rng) {
  // Rejection sampling with a bounded number of tries keeps this O(1) given
  // that every category has non-trivial mass in the generator's zones.
  for (int tries = 0; tries < 64; ++tries) {
    const NodeId n =
        static_cast<NodeId>(rng.UniformInt(uint64_t{net.NumNodes()}));
    if (net.node(n).category == cat) return n;
  }
  return static_cast<NodeId>(rng.UniformInt(uint64_t{net.NumNodes()}));
}

struct EmitterState {
  Trajectory* traj;
  std::vector<EdgeId>* point_edges;
  std::unordered_set<EdgeId>* route_set;
  int64_t now;
  const WorkloadConfig* cfg;
  Rng* rng;
};

void EmitPoint(EmitterState& st, const Point& p, EdgeId on_edge,
               double noise_sigma) {
  const Point noisy{p.x + st.rng->Normal(0.0, noise_sigma),
                    p.y + st.rng->Normal(0.0, noise_sigma)};
  st.traj->Append(noisy, st.now);
  st.point_edges->push_back(on_edge);
  // Small timing jitter keeps temporal signatures from being lattice-like.
  st.now += st.cfg->sampling_period + st.rng->UniformInt(int64_t{-15},
                                                         int64_t{15});
}

// Walks the routed path and emits a sample every `point_spacing` meters.
// Returns the edge the walker stopped on (for the arrival dwell).
EdgeId EmitTrip(EmitterState& st, const RoadNetwork& net, const Path& path) {
  EdgeId last_edge = -1;
  double carry = 0.0;  // distance already covered since the last sample
  for (size_t i = 0; i < path.edges.size(); ++i) {
    const EdgeId eid = path.edges[i];
    last_edge = eid;
    const Point a = net.node(path.nodes[i]).p;
    const Point b = net.node(path.nodes[i + 1]).p;
    const double len = Distance(a, b);
    if (len <= 0.0) continue;
    double pos = st.cfg->point_spacing - carry;
    while (pos < len) {
      EmitPoint(st, Lerp(a, b, pos / len), eid, st.cfg->drive_noise);
      st.route_set->insert(eid);
      pos += st.cfg->point_spacing;
    }
    carry = len - (pos - st.cfg->point_spacing);
    st.route_set->insert(eid);
  }
  return last_edge;
}

}  // namespace

Result<Workload> GenerateTaxiWorkload(const WorkloadConfig& cfg,
                                      const RoadGenConfig& road_config,
                                      uint64_t seed) {
  if (cfg.num_taxis <= 0) {
    return Status::InvalidArgument("num_taxis must be positive");
  }
  if (cfg.target_points < 10) {
    return Status::InvalidArgument("target_points must be >= 10");
  }
  Rng master(seed);
  Workload w;
  FRT_ASSIGN_OR_RETURN(w.network,
                       GenerateRoadNetwork(road_config, master.Next()));
  const RoadNetwork& net = w.network;

  // Shared hotspots: prefer transport/shopping nodes.
  Rng hotspot_rng = master.Fork();
  std::unordered_set<NodeId> hotspot_set;
  while (static_cast<int>(w.hotspots.size()) < cfg.num_hotspots) {
    const PoiCategory cat = hotspot_rng.Bernoulli(0.5)
                                ? PoiCategory::kTransport
                                : PoiCategory::kShopping;
    const NodeId n = RandomNodeOfCategory(net, cat, hotspot_rng);
    if (hotspot_set.insert(n).second) w.hotspots.push_back(n);
  }

  w.truth.route_edges.resize(cfg.num_taxis);
  w.truth.point_edges.resize(cfg.num_taxis);
  w.taxi_home.resize(cfg.num_taxis);
  w.taxi_work.resize(cfg.num_taxis);

  for (int taxi = 0; taxi < cfg.num_taxis; ++taxi) {
    Rng rng(master.Next());
    const NodeId home =
        RandomNodeOfCategory(net, PoiCategory::kResidential, rng);
    NodeId work = RandomNodeOfCategory(net, PoiCategory::kOffice, rng);
    if (work == home) work = RandomNodeOfCategory(net, PoiCategory::kOffice,
                                                  rng);
    w.taxi_home[taxi] = home;
    w.taxi_work[taxi] = work;

    const int n_personal = static_cast<int>(rng.UniformInt(
        int64_t{cfg.personal_pois_min}, int64_t{cfg.personal_pois_max}));
    std::vector<NodeId> personal;
    for (int i = 0; i < n_personal; ++i) {
      personal.push_back(static_cast<NodeId>(
          rng.UniformInt(uint64_t{net.NumNodes()})));
    }

    Trajectory traj(taxi);
    std::vector<EdgeId> point_edges;
    std::unordered_set<EdgeId> route_set;

    // Personal working shift: a daily window outside which no samples are
    // emitted (the taxi is off duty). Start hour and duration are personal,
    // so hour-of-day profiles are user-distinctive.
    const double shift_start_hour = rng.Uniform(0.0, 24.0);
    const int64_t shift_len = static_cast<int64_t>(
        rng.Uniform(cfg.shift_hours_min, cfg.shift_hours_max) * 3600.0);
    int64_t shift_start =
        cfg.start_time + static_cast<int64_t>(shift_start_hour * 3600.0);

    EmitterState st{&traj, &point_edges, &route_set,
                    shift_start + static_cast<int64_t>(
                                      rng.UniformInt(uint64_t{600})),
                    &cfg, &rng};

    // The shift starts with the taxi departing from home (no dwell: the
    // first anchor dwell appears a few trips in, as in the real data where
    // recordings start mid-service).
    NodeId current = home;

    while (static_cast<int>(traj.size()) < cfg.target_points) {
      // Off-duty: jump to the start of the next day's shift.
      if (cfg.daily_shifts && st.now > shift_start + shift_len) {
        shift_start += 86400;
        st.now = shift_start + static_cast<int64_t>(
                                   rng.UniformInt(uint64_t{600}));
      }
      // Choose next destination.
      const double roll = rng.Uniform();
      NodeId dest;
      bool anchor = false;
      if (roll < cfg.p_home) {
        dest = home;
        anchor = true;
      } else if (roll < cfg.p_home + cfg.p_work) {
        dest = work;
        anchor = true;
      } else if (roll < cfg.p_home + cfg.p_work + cfg.p_personal &&
                 !personal.empty()) {
        dest = personal[rng.UniformInt(uint64_t{personal.size()})];
        anchor = true;  // personal POIs also get real dwells
      } else if (roll <
                 cfg.p_home + cfg.p_work + cfg.p_personal + cfg.p_hotspot) {
        dest = w.hotspots[rng.UniformInt(uint64_t{w.hotspots.size()})];
      } else {
        dest = static_cast<NodeId>(rng.UniformInt(uint64_t{net.NumNodes()}));
      }
      if (dest == current) continue;

      EdgeId arrival_edge = -1;
      bool emitted = false;
      if (rng.Bernoulli(cfg.waypoint_prob)) {
        // Detour via a random waypoint (passenger-style), which diversifies
        // the roads taken on repeated trips to the same anchor.
        const NodeId way =
            static_cast<NodeId>(rng.UniformInt(uint64_t{net.NumNodes()}));
        if (way != current && way != dest) {
          auto leg1 = ShortestPath(net, current, way);
          auto leg2 = ShortestPath(net, way, dest);
          if (leg1.ok() && leg2.ok() && !leg1->edges.empty() &&
              !leg2->edges.empty()) {
            EmitTrip(st, net, *leg1);
            arrival_edge = EmitTrip(st, net, *leg2);
            emitted = true;
          }
        }
      }
      if (!emitted) {
        auto path = ShortestPath(net, current, dest);
        if (!path.ok() || path->edges.empty()) continue;
        arrival_edge = EmitTrip(st, net, *path);
      }

      // Dwell at the destination.
      const int dmin = anchor ? cfg.dwell_anchor_min : cfg.dwell_other_min;
      const int dmax = anchor ? cfg.dwell_anchor_max : cfg.dwell_other_max;
      const int d = static_cast<int>(
          rng.UniformInt(int64_t{dmin}, int64_t{dmax}));
      for (int i = 0; i < d; ++i) {
        EmitPoint(st, net.node(dest).p, arrival_edge, cfg.dwell_noise);
      }
      current = dest;
    }

    w.truth.point_edges[taxi] = std::move(point_edges);
    w.truth.route_edges[taxi].assign(route_set.begin(), route_set.end());
    std::sort(w.truth.route_edges[taxi].begin(),
              w.truth.route_edges[taxi].end());
    FRT_RETURN_IF_ERROR(w.dataset.Add(std::move(traj)));
  }

  FRT_LOG(Info) << "workload: " << w.dataset.size() << " taxis, "
                << w.dataset.TotalPoints() << " points, avg len "
                << w.dataset.AvgLength();
  return w;
}

}  // namespace frt
