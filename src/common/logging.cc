#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace frt {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

int InitLevelFromEnv() {
  const char* env = std::getenv("FRT_LOG_LEVEL");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v >= 0 && v <= 4) return v;
  }
  return static_cast<int>(LogLevel::kWarning);
}

int EffectiveLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevelFromEnv();
    g_level.store(v, std::memory_order_relaxed);
  }
  return v;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(EffectiveLevel()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= EffectiveLevel()), level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace frt
