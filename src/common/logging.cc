#include "common/logging.h"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace frt {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

int InitLevelFromEnv() {
  const char* env = std::getenv("FRT_LOG_LEVEL");
  if (env != nullptr) {
    if (const std::optional<LogLevel> v = ParseLogLevel(env);
        v.has_value()) {
      return static_cast<int>(*v);
    }
    std::fprintf(stderr,
                 "[WARN] ignoring malformed FRT_LOG_LEVEL='%s' (want an "
                 "integer 0..4); keeping default level\n",
                 env);
  }
  return static_cast<int>(LogLevel::kWarning);
}

int EffectiveLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevelFromEnv();
    g_level.store(v, std::memory_order_relaxed);
  }
  return v;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// UTC wall clock with millisecond precision, ISO-8601.
void AppendUtcTimestamp(std::ostringstream& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];  // worst-case out-of-range tm fields still fit
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  out << buf;
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(const char* value) {
  if (value == nullptr) return std::nullopt;
  const char* end = value + std::strlen(value);
  int parsed = 0;
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec != std::errc() || ptr != end || value == end) return std::nullopt;
  if (parsed < static_cast<int>(LogLevel::kDebug) ||
      parsed > static_cast<int>(LogLevel::kOff)) {
    return std::nullopt;
  }
  return static_cast<LogLevel>(parsed);
}

unsigned CurrentThreadId() {
  static std::atomic<unsigned> next{1};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(EffectiveLevel()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= EffectiveLevel()), level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " ";
    AppendUtcTimestamp(stream_);
    stream_ << " " << CurrentThreadId() << " " << base << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace frt
