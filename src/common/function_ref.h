// FunctionRef<R(Args...)>: a trivially copyable, non-owning callable
// reference (two words: object pointer + trampoline), replacing
// std::function on hot paths where the callable always outlives the call —
// the index eligibility filter and the modifier's handle mappers. Unlike
// std::function it never allocates and never copies the callable.
//
// Lifetime rule: a FunctionRef does not extend the life of what it refers
// to. To make dangling hard to write, the callable constructor only binds
// *lvalues* — `FunctionRef<...> f = lambda;` compiles only when `lambda` is
// a named object (plain function pointers, which have no lifetime, are
// taken by value). Storing a FunctionRef beyond the referee's scope is
// still the caller's bug, as with string_view.

#ifndef FRT_COMMON_FUNCTION_REF_H_
#define FRT_COMMON_FUNCTION_REF_H_

#include <cstddef>
#include <type_traits>
#include <utility>

namespace frt {

template <typename Signature>
class FunctionRef;  // undefined; see the R(Args...) specialization

/// \brief Non-owning reference to a callable with signature R(Args...).
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() = default;
  constexpr FunctionRef(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  /// Binds a named callable (lambda, functor). Lvalues only: temporaries
  /// are rejected at compile time so the referee cannot die before the ref.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<F>, FunctionRef> &&
                !std::is_function_v<F> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F& f)  // NOLINT(runtime/explicit)
      : invoke_([](Storage s, Args... args) -> R {
          return (*static_cast<F*>(s.obj))(std::forward<Args>(args)...);
        }) {
    storage_.obj = const_cast<void*>(static_cast<const void*>(&f));
  }

  /// Binds a plain function (by pointer; no lifetime concerns).
  FunctionRef(R (*fn)(Args...))  // NOLINT(runtime/explicit)
      : invoke_(fn == nullptr
                    ? nullptr
                    : +[](Storage s, Args... args) -> R {
                        return reinterpret_cast<R (*)(Args...)>(s.raw_fn)(
                            std::forward<Args>(args)...);
                      }) {
    storage_.raw_fn = reinterpret_cast<void (*)()>(fn);
  }

  /// True when a callable is bound.
  constexpr explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  union Storage {
    void* obj;
    void (*raw_fn)();
  };

  Storage storage_{};
  R (*invoke_)(Storage, Args...) = nullptr;
};

}  // namespace frt

#endif  // FRT_COMMON_FUNCTION_REF_H_
