// Wall-clock stopwatch used by the efficiency benchmarks (Fig. 5 harness).

#ifndef FRT_COMMON_STOPWATCH_H_
#define FRT_COMMON_STOPWATCH_H_

#include <chrono>

namespace frt {

/// \brief Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace frt

#endif  // FRT_COMMON_STOPWATCH_H_
