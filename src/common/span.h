// Span<T>: a minimal non-owning view over a contiguous sequence — the
// C++17 stand-in for std::span used across the index hot path (bulk Build,
// zero-copy result and cell-content views). Implicitly constructible from
// std::vector so call sites read like the C++20 API.

#ifndef FRT_COMMON_SPAN_H_
#define FRT_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace frt {

/// \brief Non-owning view of `size` contiguous elements starting at `data`.
///
/// The viewed sequence must outlive the span. A Span<const T> is
/// constructible from both const and mutable vectors of T.
template <typename T>
class Span {
 public:
  using value_type = std::remove_cv_t<T>;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  Span(std::vector<value_type>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  Span(const std::vector<value_type>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  /// A temporary vector dies at the end of the full expression; viewing one
  /// is always a dangling read, so reject it at compile time (same rule as
  /// FunctionRef).
  Span(const std::vector<value_type>&&) = delete;

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace frt

#endif  // FRT_COMMON_SPAN_H_
