// Result<T>: value-or-Status, the FRT analogue of arrow::Result /
// absl::StatusOr. Functions that can fail and produce a value return
// Result<T>; use FRT_ASSIGN_OR_RETURN to unwrap inside Status-returning code.

#ifndef FRT_COMMON_RESULT_H_
#define FRT_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace frt {

/// \brief Holds either a value of type T or a non-OK Status explaining why
/// the value is absent.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error Status. It is a programming error to
  /// construct a Result from an OK status; that is remapped to Internal.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback when in error state.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace frt

#define FRT_CONCAT_IMPL(a, b) a##b
#define FRT_CONCAT(a, b) FRT_CONCAT_IMPL(a, b)

/// FRT_ASSIGN_OR_RETURN(lhs, rexpr): evaluates rexpr (a Result<T>); on error
/// returns its Status from the enclosing function, otherwise move-assigns the
/// value into lhs (which may be a declaration).
#define FRT_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  FRT_ASSIGN_OR_RETURN_IMPL(FRT_CONCAT(_frt_result_, __LINE__), \
                            lhs, rexpr)

#define FRT_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

#endif  // FRT_COMMON_RESULT_H_
