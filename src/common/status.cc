#include "common/status.h"

namespace frt {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(state_->code));
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace frt
