// Small string helpers shared by CSV I/O and bench table printers.

#ifndef FRT_COMMON_STRINGS_H_
#define FRT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace frt {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Parses a double; error Status on malformed/trailing input.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; error Status on malformed input.
Result<int64_t> ParseInt64(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace frt

#endif  // FRT_COMMON_STRINGS_H_
