// Deterministic random number generation for FRT.
//
// Every randomized component in the library takes an explicit seed so that
// experiments are reproducible run-to-run. The generator is xoshiro256++
// seeded via splitmix64 (the reference seeding procedure), which is much
// faster than std::mt19937_64 and has no observable bias for our use.

#ifndef FRT_COMMON_RNG_H_
#define FRT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace frt {

/// \brief splitmix64 step; used for seed expansion and hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256++ pseudo-random generator with convenience samplers.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions where convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (~n + 1) % n;  // == 2^64 mod n
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller (cached second variate).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return mean + stddev * cached_normal_;
    }
    double u1 = 0.0;
    do {
      u1 = Uniform();
    } while (u1 <= 1e-300);
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  /// Laplace(mu, b) via inverse CDF. Scale b must be > 0.
  ///
  /// This is the primitive behind both the classic zero-mean Laplace
  /// mechanism and the paper's non-zero-mean variant (Theorem 2).
  double Laplace(double mu, double b) {
    const double u = Uniform() - 0.5;  // (-0.5, 0.5)
    const double sgn = (u < 0.0) ? -1.0 : 1.0;
    return mu - b * sgn * std::log(1.0 - 2.0 * std::fabs(u));
  }

  /// Exponential(rate) via inverse CDF.
  double Exponential(double rate) {
    double u = 0.0;
    do {
      u = Uniform();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
  }

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream from one experiment seed.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace frt

#endif  // FRT_COMMON_RNG_H_
