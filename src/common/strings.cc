#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace frt {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace frt
