// Minimal leveled logging for library diagnostics.
//
// Intentionally tiny: benches and examples print their own structured
// output; logging exists for progress and warnings. Controlled globally via
// SetLogLevel or the FRT_LOG_LEVEL environment variable (0=debug .. 4=off).
//
// Line format (stable):
//
//   [LEVEL 2026-08-07T10:15:02.123Z tid file.cc:42] message
//
// The timestamp is UTC wall-clock with millisecond precision, for
// correlating log lines with frt_metrics ts_ms values and a trace dump's
// start_unix_us. `tid` is a small process-local thread ordinal
// (CurrentThreadId), not the OS tid: stable across the run and short
// enough to eyeball.

#ifndef FRT_COMMON_LOGGING_H_
#define FRT_COMMON_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>

namespace frt {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Strictly parses a FRT_LOG_LEVEL-style value: the whole string
/// must be an integer in [0, 4]. Returns nullopt for anything else —
/// empty, trailing garbage ("1x"), fractions ("1.5"), or out-of-range
/// values — so a typo keeps the default level instead of silently
/// becoming level 0 (the atoi behavior the CLIs' flag parsers already
/// reject).
std::optional<LogLevel> ParseLogLevel(const char* value);

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global level (initialized from FRT_LOG_LEVEL, default kWarning).
LogLevel GetLogLevel();

/// Small process-local ordinal of the calling thread (1, 2, ... in first-
/// log order); used in log-line prefixes and reusable anywhere a compact
/// stable thread id is wanted.
unsigned CurrentThreadId();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace frt

#define FRT_LOG(level)                                      \
  ::frt::internal::LogMessage(::frt::LogLevel::k##level,    \
                              __FILE__, __LINE__)

#endif  // FRT_COMMON_LOGGING_H_
