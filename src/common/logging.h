// Minimal leveled logging for library diagnostics.
//
// Intentionally tiny: benches and examples print their own structured
// output; logging exists for progress and warnings. Controlled globally via
// SetLogLevel or the FRT_LOG_LEVEL environment variable (0=debug .. 4=off).

#ifndef FRT_COMMON_LOGGING_H_
#define FRT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace frt {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global level (initialized from FRT_LOG_LEVEL, default kWarning).
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace frt

#define FRT_LOG(level)                                      \
  ::frt::internal::LogMessage(::frt::LogLevel::k##level,    \
                              __FILE__, __LINE__)

#endif  // FRT_COMMON_LOGGING_H_
