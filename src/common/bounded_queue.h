// Bounded multi-producer multi-consumer queue with blocking backpressure.
//
// The streaming runtime uses it as the coupling between the ingest thread
// (producer: parsed trajectories) and the window assembler (consumer): a
// fixed capacity caps the memory held in flight, so a fast reader blocks in
// Push() instead of ballooning the heap when anonymization is the
// bottleneck. Close() drains cleanly: producers stop, consumers keep
// popping until the queue is empty, then Pop() returns nullopt.

#ifndef FRT_COMMON_BOUNDED_QUEUE_H_
#define FRT_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace frt {

/// \brief Fixed-capacity blocking FIFO, safe for any number of producer and
/// consumer threads.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity 0 is remapped to 1 (a zero-capacity queue would deadlock).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) when
  /// the queue was closed before space became available.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means no item will ever arrive again.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the end of the stream: pending Push() calls fail, consumers
  /// drain the remaining items and then see nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace frt

#endif  // FRT_COMMON_BOUNDED_QUEUE_H_
