// Bounded multi-producer multi-consumer queue with blocking backpressure.
//
// The streaming runtime uses it as the coupling between the ingest thread
// (producer: parsed trajectories) and the window assembler (consumer): a
// fixed capacity caps the memory held in flight, so a fast reader blocks in
// Push() instead of ballooning the heap when anonymization is the
// bottleneck. The multi-feed serving layer adds two more uses: the tagged
// arrival queue in front of the dispatcher (many ingest threads, one
// consumer) and the completion queue behind the worker pool (many workers,
// one consumer).
//
// Close/drain contract:
//   - Close() is idempotent and marks the end of the stream.
//   - Producers observe the close: a Push() that is blocked on a full
//     queue (or arrives after the close) returns false and the item is
//     dropped — the producer, not the queue, owns items it failed to hand
//     over.
//   - Consumers drain: items queued before the close remain poppable;
//     only once the queue is closed AND empty does Pop() return nullopt
//     (and PopUntil() return kClosed). No item accepted by Push() is ever
//     lost to a close.
//
// PopUntil() is the deadline-driven variant behind time-based window
// closure (--close-after-ms): a consumer that must wake at a wall-clock
// deadline even when no item arrives waits with a timeout and gets an
// explicit kItem / kTimeout / kClosed outcome, so "feed is slow" and "feed
// is over" cannot be confused — the shutdown race a nullopt-only API
// invites.

#ifndef FRT_COMMON_BOUNDED_QUEUE_H_
#define FRT_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace frt {

/// Outcome of a timed pop.
enum class QueuePop {
  kItem,     ///< *out holds the popped item
  kTimeout,  ///< deadline passed with the queue open but empty
  kClosed,   ///< queue closed and fully drained; no item will ever arrive
};

/// \brief Fixed-capacity blocking FIFO, safe for any number of producer and
/// consumer threads.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity 0 is remapped to 1 (a zero-capacity queue would deadlock).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) when
  /// the queue was closed before space became available.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when the queue is full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means no item will ever arrive again.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// \brief Pops with a deadline: blocks until an item arrives (kItem), the
  /// deadline passes (kTimeout), or the queue is closed and drained
  /// (kClosed). Items queued before a close are still delivered as kItem —
  /// the close only wins once the queue is empty.
  template <typename Clock, typename Duration>
  QueuePop PopUntil(std::chrono::time_point<Clock, Duration> deadline,
                    T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_empty_.wait_until(
        lock, deadline, [this] { return !items_.empty() || closed_; });
    if (!ready) return QueuePop::kTimeout;
    if (items_.empty()) return QueuePop::kClosed;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return QueuePop::kItem;
  }

  /// Non-blocking pop. Returns false when no item is immediately available
  /// (whether the queue is open or closed).
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Marks the end of the stream: pending Push() calls fail, consumers
  /// drain the remaining items and then see nullopt/kClosed. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace frt

#endif  // FRT_COMMON_BOUNDED_QUEUE_H_
