// Minimal data-parallel helper for embarrassingly parallel evaluation loops
// (map-matching a dataset, scoring candidates). Static chunking over
// std::thread; no shared mutable state is allowed inside `fn`.

#ifndef FRT_COMMON_PARALLEL_H_
#define FRT_COMMON_PARALLEL_H_

#include <cstddef>
#include <thread>
#include <vector>

namespace frt {

/// \brief Invokes fn(i) for i in [0, n) across hardware threads.
///
/// `fn` must be safe to call concurrently for distinct indices and must not
/// throw. Results should be written to pre-sized per-index slots.
template <typename Fn>
void ParallelFor(size_t n, Fn&& fn, unsigned num_threads = 0) {
  if (n == 0) return;
  unsigned workers = num_threads != 0 ? num_threads
                                      : std::thread::hardware_concurrency();
  if (workers <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (workers > n) workers = static_cast<unsigned>(n);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&fn, w, workers, n]() {
      for (size_t i = w; i < n; i += workers) fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace frt

#endif  // FRT_COMMON_PARALLEL_H_
