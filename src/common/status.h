// Status: lightweight error model used across all FRT libraries.
//
// Follows the Arrow/RocksDB idiom: fallible functions return a Status (or a
// Result<T>, see result.h) instead of throwing. Exceptions never cross a
// library boundary.

#ifndef FRT_COMMON_STATUS_H_
#define FRT_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace frt {

/// Error categories. Kept deliberately small; the message carries detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation (state_ == nullptr), so returning
/// Status::OK() from hot paths is free.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory for the (stateless) OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// Message attached at construction; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // nullptr means OK
};

}  // namespace frt

/// Propagates a non-OK Status to the caller.
#define FRT_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::frt::Status _frt_status = (expr);           \
    if (!_frt_status.ok()) return _frt_status;    \
  } while (false)

#endif  // FRT_COMMON_STATUS_H_
