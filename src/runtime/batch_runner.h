// BatchRunner: sharded execution of the FrequencyRandomizer pipeline.
//
// The dataset is split into K contiguous shards (runtime/shard_plan.h); each
// shard runs the full pipeline independently on its own deterministic RNG
// stream (forked from the caller's generator before dispatch, so results do
// not depend on thread scheduling), and the per-shard outputs are merged
// back in input order.
//
// Privacy: each moving object's trajectory lives in exactly one shard, and
// each shard's pipeline is (eps_G + eps_L)-DP on its partition, so by
// parallel composition the published dataset satisfies the same
// eps_G + eps_L guarantee as a single-shot run — the accountant records the
// maximum across shards, not the sum.
//
// Utility: signatures and the candidate set P are computed per shard, so the
// confusion set Stage 2 draws from is shard-local. Smaller shards mean
// smaller candidate sets and much cheaper kNN modification (the pipeline is
// superlinear in |D|), which is the LDPTrace/AdaTrace-style
// partition-then-perturb scaling trade.

#ifndef FRT_RUNTIME_BATCH_RUNNER_H_
#define FRT_RUNTIME_BATCH_RUNNER_H_

#include <string>
#include <vector>

#include "core/anonymizer.h"
#include "core/pipeline.h"
#include "dp/accountant.h"
#include "runtime/shard_plan.h"
#include "runtime/window_audit.h"
#include "runtime/work_stealing_pool.h"

namespace frt {

/// How shards are assigned to worker threads.
enum class ShardDispatch {
  /// Dynamic assignment via WorkStealingPool: idle workers steal queued
  /// shards, so a skewed shard no longer serializes the tail of the batch.
  kWorkStealing,
  /// Static stride assignment (shard i on worker i % threads) via
  /// ParallelFor. Kept for A/B measurement in bench_stream.
  kStatic,
};

/// Configuration of the batch runtime.
struct BatchRunnerConfig {
  /// Pipeline applied to every shard.
  FrequencyRandomizerConfig pipeline;
  /// Number of dataset partitions (clamped to [1, |D|]).
  int shards = 1;
  /// Worker threads for shard execution; 0 means hardware concurrency.
  unsigned threads = 0;
  /// Shard-to-thread assignment policy.
  ShardDispatch dispatch = ShardDispatch::kWorkStealing;
  /// Optional externally owned pool reused across Anonymize calls (the
  /// streaming runtime shares one pool across all windows). When null and
  /// dispatch is kWorkStealing, an ephemeral pool is created per call.
  /// Ignored under kStatic.
  WorkStealingPool* pool = nullptr;
  /// Post-publish displacement audit (runtime/window_audit.h). When
  /// enabled, the batch builds one segment index over the window's input
  /// and fans the pool out over it read-only (or rebuilds per range with
  /// audit.shared_index = false, the A/B baseline).
  WindowAuditConfig audit;
};

/// Aggregated diagnostics of one batch run.
struct BatchReport {
  /// Shards actually executed (after clamping).
  int shards_run = 0;
  /// End-to-end wall time of the batch, including split and merge.
  double wall_seconds = 0.0;
  /// Dataset-level guarantee: max over shards (parallel composition).
  double epsilon_spent = 0.0;
  /// Edit/timing totals summed across shards. `candidate_set_size` is the
  /// sum of shard-local |P|; per-shard seconds sum to CPU time, not wall.
  RandomizerReport combined;
  /// Raw per-shard reports, in shard order.
  std::vector<RandomizerReport> per_shard;
  /// Object-ids anonymized by each shard, in shard order. Every object in
  /// the input appears in exactly one shard (the parallel-composition
  /// argument), and shard i's release cost its objects
  /// per_shard[i].epsilon_spent. The streaming runtime's per-object
  /// accountant consumes this to charge exactly the ids a window released.
  std::vector<std::vector<TrajId>> shard_object_ids;
  /// Wall seconds of each shard's pipeline run, in shard order — the skew
  /// profile that motivates work stealing.
  std::vector<double> shard_wall_seconds;
  /// Skew summary over shard_wall_seconds (all 0 when no shards ran).
  double shard_wall_min = 0.0;
  double shard_wall_max = 0.0;
  double shard_wall_mean = 0.0;
  /// Displacement audit of this window (ran=false when disabled).
  WindowAuditReport audit;
};

/// \brief Runs the paper's pipeline shard-by-shard over a partitioned
/// dataset. Implements Anonymizer, so it is a drop-in for the evaluation
/// harness and the CLI.
class BatchRunner : public Anonymizer {
 public:
  explicit BatchRunner(BatchRunnerConfig config) : config_(config) {}

  /// e.g. "GL[batch x8]".
  std::string name() const override;

  /// Shards `input`, anonymizes every shard, and merges the outputs in
  /// input order. Deterministic given `rng`'s state and the shard count,
  /// independent of the thread count.
  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override;

  /// Diagnostics of the most recent Anonymize call.
  const BatchReport& report() const { return report_; }

  /// Dataset-level privacy ledger of the most recent Anonymize call
  /// (parallel composition across shards).
  const PrivacyAccountant& accountant() const { return accountant_; }

  const BatchRunnerConfig& config() const { return config_; }

 private:
  BatchRunnerConfig config_;
  BatchReport report_;
  PrivacyAccountant accountant_;
};

}  // namespace frt

#endif  // FRT_RUNTIME_BATCH_RUNNER_H_
