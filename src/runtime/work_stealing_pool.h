// Work-stealing task executor for shard-granularity parallelism.
//
// ParallelFor (common/parallel.h) assigns index i to worker i % W up front,
// so one heavy shard — or several colliding in the same stride class —
// leaves every other worker idle while its owner straggles. The pool keeps
// one deque per worker instead: indices are dealt round-robin, owners pop
// their own deque LIFO, and a worker that runs dry steals FIFO from a
// victim, so load follows the actual task durations rather than the initial
// deal. Workers are persistent across Run() calls, which lets the streaming
// runtime reuse one pool for every window instead of re-spawning threads.
//
// Beyond the fork-join Run(), the pool accepts fire-and-forget closures
// via Submit(): the multi-feed serving layer schedules one whole-window
// anonymization job per task, so many independent feeds multiplex onto one
// set of workers. Submitted tasks drain ahead of Run() indices and ahead
// of shutdown, and WaitIdle() is the end-of-service barrier.
//
// Determinism contract: the pool schedules *where* a task runs, never what
// it computes. Callers that write results to pre-sized per-index slots and
// pre-fork any RNG streams (as BatchRunner does) get bit-identical output
// at every worker count.

#ifndef FRT_RUNTIME_WORK_STEALING_POOL_H_
#define FRT_RUNTIME_WORK_STEALING_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace frt {

/// \brief Persistent pool of worker threads executing index tasks with
/// work stealing.
class WorkStealingPool {
 public:
  /// Spawns the workers; 0 means hardware concurrency. A 1-worker pool
  /// spawns no threads and runs every task inline on the caller.
  explicit WorkStealingPool(unsigned num_threads = 0);

  /// Joins all workers. Must not be called while a Run is in flight on
  /// another thread.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// \brief Invokes fn(i) for every i in [0, n); returns once all
  /// invocations have completed.
  ///
  /// `fn` must be safe to call concurrently for distinct indices and must
  /// not throw. Runs must not be nested (fn must not call Run on the same
  /// pool), and only one Run may be in flight at a time.
  void Run(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Enqueues a fire-and-forget task for asynchronous execution on
  /// the workers; returns immediately. The serving layer's unit of
  /// submission: one whole-window anonymization job per task.
  ///
  /// Tasks run concurrently with each other and with an in-flight Run()
  /// (workers prefer draining submitted tasks first); they must not throw
  /// and must not call Run() or Submit() recursively into a 1-worker pool.
  /// On a 1-worker pool the task runs inline on the caller. Destruction
  /// drains all submitted tasks before joining the workers.
  void Submit(std::function<void()> task);

  /// Blocks until every Submit()ed task has finished. Callers that need
  /// per-task completion signals should build them into the task (the
  /// service's completion queue); this is the coarse end-of-run barrier.
  void WaitIdle();

  /// Tasks submitted via Submit() that have not yet finished. Racy read,
  /// diagnostic only.
  size_t submitted_pending() const {
    return async_pending_.load(std::memory_order_relaxed);
  }

  unsigned num_workers() const { return num_workers_; }

  /// Total tasks obtained by stealing (vs. popped from the owner's deque)
  /// since construction. Diagnostic only; racy reads are acceptable.
  uint64_t steal_count() const { return steals_; }

 private:
  // One mutex-guarded deque per worker. Shard tasks are milliseconds-plus,
  // so a tiny critical section per pop is noise; a lock-free Chase-Lev
  // deque would buy nothing here.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  void WorkerLoop(unsigned id);
  bool TryAcquire(unsigned id, size_t* index);

  unsigned num_workers_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // Run lifecycle: the caller publishes (fn_, remaining_, ++epoch_) under
  // run_mu_, workers wake on work_cv_, and the caller sleeps on done_cv_
  // until the run has drained AND every worker has left its steal loop —
  // the second condition keeps a slow waker of run N from picking up run
  // N+1's tasks with run N's stale fn pointer.
  std::mutex run_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  unsigned active_workers_ = 0;
  bool shutdown_ = false;
  const std::function<void(size_t)>* fn_ = nullptr;
  std::atomic<size_t> remaining_{0};
  std::atomic<uint64_t> steals_{0};

  // Fire-and-forget tasks (Submit). Window jobs are tens of milliseconds,
  // so one central deque under run_mu_ is noise next to the task bodies;
  // per-worker deques would buy nothing at this granularity. Guarded by
  // run_mu_; async_pending_ counts queued + executing tasks and gates
  // WaitIdle and shutdown drain.
  std::deque<std::function<void()>> async_;
  std::atomic<size_t> async_pending_{0};
};

}  // namespace frt

#endif  // FRT_RUNTIME_WORK_STEALING_POOL_H_
