// Partition planning for the batch runtime: split n items into K contiguous,
// balanced ranges. Contiguity keeps the merged output in input order, and
// balance keeps shard wall-clocks comparable under static scheduling.

#ifndef FRT_RUNTIME_SHARD_PLAN_H_
#define FRT_RUNTIME_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

namespace frt {

/// \brief Half-open index range [begin, end) owned by one shard.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// \brief Plans K contiguous ranges covering [0, n).
///
/// The shard count is clamped to [1, n] so no shard is ever empty; the first
/// n % K shards receive one extra item. Returns an empty plan when n == 0.
inline std::vector<ShardRange> PlanShards(size_t n, int shards) {
  std::vector<ShardRange> plan;
  if (n == 0) return plan;
  size_t k = shards < 1 ? 1 : static_cast<size_t>(shards);
  if (k > n) k = n;
  const size_t base = n / k;
  const size_t extra = n % k;
  plan.reserve(k);
  size_t begin = 0;
  for (size_t i = 0; i < k; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    plan.push_back({begin, begin + len});
    begin += len;
  }
  return plan;
}

}  // namespace frt

#endif  // FRT_RUNTIME_SHARD_PLAN_H_
