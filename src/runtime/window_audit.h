// Window audit: a read-only displacement report over one publishing window,
// and the runtime consumer of the shared-index concurrency contract.
//
// After a window is anonymized, the audit measures how far the published
// points moved: for every point of every published trajectory it finds the
// nearest original segment (k=1 KNearest against an index over the
// *input* dataset) and aggregates mean / max displacement. This is a pure
// utility diagnostic — it reads both datasets and writes nothing.
//
// Because KNearest is read-only and thread-safe (index/segment_index.h),
// the audit builds the segment index ONCE per window and fans the worker
// pool out over it — the published trajectories are split into fixed
// ranges, each worker sweeps ranges with its own SearchContext against the
// one shared index, and per-range partial aggregates are merged in range
// order. The alternative it replaces (and which --no-shared-index restores
// for A/B measurement) builds one private index per range: R builds of the
// same N segments instead of 1. Both modes are bit-identical per point —
// the indexes have identical contents and searches are deterministic — so
// the A/B isolates the build cost and the memory-sharing benefit.

#ifndef FRT_RUNTIME_WINDOW_AUDIT_H_
#define FRT_RUNTIME_WINDOW_AUDIT_H_

#include <cstdint>

#include "core/pipeline.h"
#include "runtime/work_stealing_pool.h"
#include "traj/dataset.h"

namespace frt {

/// Configuration of the per-window displacement audit.
struct WindowAuditConfig {
  /// Audits run only when enabled (they cost one index build plus one
  /// k=1 query per published point).
  bool enabled = false;
  /// One index shared by every worker (default) vs a private rebuild per
  /// range (the A/B baseline). Published output is bit-identical either
  /// way.
  bool shared_index = true;
  /// kNN strategy of the audit index.
  SearchStrategy strategy = SearchStrategy::kBottomUpDown;
  /// Dyadic levels of the audit index grid (512x512 finest by default).
  int index_levels = 10;
  /// Number of trajectory ranges the published dataset is split into.
  /// Fixed (not derived from the worker count) so aggregates are
  /// bit-identical across thread counts; clamped to the trajectory count.
  int ranges = 8;
};

/// Aggregates of one audit run. All fields are deterministic given the two
/// datasets and the config — independent of thread count and of
/// shared_index (except index_builds / build_seconds, which are exactly
/// what the A/B measures).
struct WindowAuditReport {
  bool ran = false;
  bool shared_index = true;
  /// Published points measured (sum over trajectories of size()).
  uint64_t points_audited = 0;
  /// Index constructions: 1 in shared mode, #ranges in private mode.
  int index_builds = 0;
  /// Wall seconds spent constructing indexes (summed across builds).
  double build_seconds = 0.0;
  /// Mean / max distance from a published point to the nearest original
  /// segment (meters in the paper's datasets). 0 when no points audited.
  double mean_displacement = 0.0;
  double max_displacement = 0.0;
  /// Exact distance evaluations summed over every audit index.
  uint64_t distance_evaluations = 0;
};

/// \brief Runs the displacement audit of `published` against `original`.
///
/// `pool` supplies the workers that share the index; pass nullptr to run
/// the ranges serially on the calling thread (results are identical).
/// Returns a report with ran=false when the config disables the audit or
/// either dataset has no usable geometry.
WindowAuditReport RunWindowAudit(const Dataset& original,
                                 const Dataset& published,
                                 const WindowAuditConfig& config,
                                 WorkStealingPool* pool);

}  // namespace frt

#endif  // FRT_RUNTIME_WINDOW_AUDIT_H_
