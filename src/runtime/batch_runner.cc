#include "runtime/batch_runner.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "common/stopwatch.h"

namespace frt {

std::string BatchRunner::name() const {
  FrequencyRandomizer pipeline(config_.pipeline);
  return pipeline.name() + "[batch x" +
         std::to_string(std::max(1, config_.shards)) + "]";
}

Result<Dataset> BatchRunner::Anonymize(const Dataset& input, Rng& rng) {
  report_ = BatchReport{};
  const double total_budget =
      config_.pipeline.epsilon_global + config_.pipeline.epsilon_local;
  accountant_ = PrivacyAccountant(total_budget);
  if (input.empty()) return Status::InvalidArgument("empty dataset");

  Stopwatch wall;
  const std::vector<ShardRange> plan = PlanShards(input.size(), config_.shards);
  const size_t k = plan.size();

  // Fork one stream per shard up front, on the caller's thread: shard i
  // always receives the i-th fork, so output is a pure function of the
  // incoming RNG state and the shard count, never of scheduling.
  std::vector<Rng> streams;
  streams.reserve(k);
  for (size_t i = 0; i < k; ++i) streams.push_back(rng.Fork());

  std::vector<Dataset> shard_inputs(k);
  report_.shard_object_ids.resize(k);
  for (size_t i = 0; i < k; ++i) {
    report_.shard_object_ids[i].reserve(plan[i].size());
    for (size_t j = plan[i].begin; j < plan[i].end; ++j) {
      report_.shard_object_ids[i].push_back(input[j].id());
      FRT_RETURN_IF_ERROR(shard_inputs[i].Add(input[j]));
    }
  }

  // Per-shard result slots; written by distinct indices only, so the output
  // is identical under either dispatch policy and any worker count.
  std::vector<Result<Dataset>> shard_outputs(
      k, Result<Dataset>(Status::Internal("shard not executed")));
  std::vector<RandomizerReport> shard_reports(k);
  std::vector<double> shard_walls(k, 0.0);
  auto shard_task = [&](size_t i) {
    Stopwatch shard_watch;
    FrequencyRandomizer pipeline(config_.pipeline);
    shard_outputs[i] = pipeline.Anonymize(shard_inputs[i], streams[i]);
    shard_reports[i] = pipeline.report();
    shard_inputs[i] = Dataset();  // release the copy as soon as possible
    shard_walls[i] = shard_watch.ElapsedSeconds();
  };
  if (k == 1) {
    shard_task(0);  // no pool or thread spawn for a single shard
  } else if (config_.dispatch == ShardDispatch::kStatic) {
    ParallelFor(k, shard_task, config_.threads);
  } else if (config_.pool != nullptr) {
    config_.pool->Run(k, shard_task);
  } else {
    WorkStealingPool pool(config_.threads);
    pool.Run(k, shard_task);
  }

  Dataset merged;
  report_.shards_run = static_cast<int>(k);
  report_.per_shard = std::move(shard_reports);
  report_.shard_wall_seconds = std::move(shard_walls);
  report_.shard_wall_min = report_.shard_wall_seconds[0];
  for (const double s : report_.shard_wall_seconds) {
    report_.shard_wall_min = std::min(report_.shard_wall_min, s);
    report_.shard_wall_max = std::max(report_.shard_wall_max, s);
    report_.shard_wall_mean += s;
  }
  report_.shard_wall_mean /= static_cast<double>(k);
  for (size_t i = 0; i < k; ++i) {
    if (!shard_outputs[i].ok()) return shard_outputs[i].status();
    for (auto& t : shard_outputs[i]->mutable_trajectories()) {
      FRT_RETURN_IF_ERROR(merged.Add(std::move(t)));
    }
    const RandomizerReport& r = report_.per_shard[i];
    report_.combined.local_seconds += r.local_seconds;
    report_.combined.global_seconds += r.global_seconds;
    report_.combined.local.edits.MergeFrom(r.local.edits);
    report_.combined.local.total_abs_frequency_change +=
        r.local.total_abs_frequency_change;
    report_.combined.local.trajectories_processed +=
        r.local.trajectories_processed;
    report_.combined.global.edits.MergeFrom(r.global.edits);
    report_.combined.global.total_abs_tf_change += r.global.total_abs_tf_change;
    report_.combined.global.points_perturbed += r.global.points_perturbed;
    report_.combined.candidate_set_size += r.candidate_set_size;
    report_.epsilon_spent = std::max(report_.epsilon_spent, r.epsilon_spent);
  }
  report_.combined.epsilon_spent = report_.epsilon_spent;

  // Every object appears in exactly one shard, so the dataset-level spend is
  // the per-shard maximum (parallel composition), not the sum.
  if (report_.epsilon_spent > 0.0) {
    FRT_RETURN_IF_ERROR(accountant_.Spend(
        report_.epsilon_spent, "parallel composition over " +
                                   std::to_string(k) + " shards"));
  }
  if (config_.audit.enabled) {
    // The audit is read-only over (input, merged); it reuses the shared
    // pool when one is attached, else runs its ranges on this thread.
    report_.audit = RunWindowAudit(input, merged, config_.audit,
                                   config_.dispatch == ShardDispatch::kWorkStealing
                                       ? config_.pool
                                       : nullptr);
  }
  report_.wall_seconds = wall.ElapsedSeconds();
  return merged;
}

}  // namespace frt
