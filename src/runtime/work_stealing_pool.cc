#include "runtime/work_stealing_pool.h"

#include <chrono>
#include <string>

#include "obs/trace.h"

namespace frt {

WorkStealingPool::WorkStealingPool(unsigned num_threads) {
  num_workers_ =
      num_threads != 0 ? num_threads : std::thread::hardware_concurrency();
  if (num_workers_ == 0) num_workers_ = 1;
  if (num_workers_ == 1) return;  // inline execution, no threads
  queues_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkStealingPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Deal indices round-robin. No run is in flight, so the deques are idle;
  // the locks are only taken to pair with the workers' accesses.
  for (size_t i = 0; i < n; ++i) {
    WorkerQueue& q = *queues_[i % num_workers_];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    fn_ = &fn;
    remaining_.store(n, std::memory_order_release);
    ++epoch_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(run_mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0 &&
           active_workers_ == 0;
  });
  fn_ = nullptr;
}

void WorkStealingPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    // 1-worker pool: inline on the caller, matching Run's cost model.
    task();
    return;
  }
  async_pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    async_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkStealingPool::WaitIdle() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(run_mu_);
  done_cv_.wait(lock, [this] {
    return async_pending_.load(std::memory_order_acquire) == 0;
  });
}

bool WorkStealingPool::TryAcquire(unsigned id, size_t* index) {
  {
    WorkerQueue& own = *queues_[id];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *index = own.tasks.back();  // LIFO keeps the owner's cache warm
      own.tasks.pop_back();
      return true;
    }
  }
  for (unsigned step = 1; step < num_workers_; ++step) {
    WorkerQueue& victim = *queues_[(id + step) % num_workers_];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *index = victim.tasks.front();  // FIFO: steal the oldest, coldest task
      victim.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      if (obs::TraceEnabled()) {
        // Instant marker: a steal has no meaningful duration, only a time.
        const auto now = std::chrono::steady_clock::now();
        obs::EmitSpan("steal", obs::SpanCategory::kPool, {}, now, now);
      }
      return true;
    }
  }
  return false;
}

void WorkStealingPool::WorkerLoop(unsigned id) {
  obs::SetTraceThreadName("pool-worker-" + std::to_string(id));
  uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void()> async_task;
    const std::function<void(size_t)>* fn = nullptr;
    const bool tracing = obs::TraceEnabled();
    const auto idle_start = tracing ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || epoch_ != seen_epoch || !async_.empty();
      });
      if (!async_.empty()) {
        // Submitted tasks drain first — including during shutdown, so the
        // destructor never strands an accepted job.
        async_task = std::move(async_.front());
        async_.pop_front();
      } else if (shutdown_) {
        return;
      } else {
        seen_epoch = epoch_;
        fn = fn_;
        ++active_workers_;
      }
    }
    if (tracing && obs::TraceEnabled()) {
      // Only report waits long enough to matter; sub-10us wakeups would
      // swamp the trace with scheduling noise.
      const auto idle_end = std::chrono::steady_clock::now();
      if (idle_end - idle_start >= std::chrono::microseconds(10)) {
        obs::EmitSpan("pool_idle", obs::SpanCategory::kPool, {}, idle_start,
                      idle_end);
      }
    }
    if (async_task) {
      {
        obs::ScopedSpan task_span("pool_task", obs::SpanCategory::kPool);
        async_task();
      }
      if (async_pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(run_mu_);
        done_cv_.notify_all();
      }
      continue;
    }
    // fn_ is cleared (under run_mu_) when its run drains, so a null latch
    // means this worker slept through the entire run it was woken for; it
    // must not touch remaining_, which may already belong to the NEXT run.
    if (fn != nullptr) {
      while (remaining_.load(std::memory_order_acquire) > 0) {
        size_t index = 0;
        if (!TryAcquire(id, &index)) {
          // Every deque is empty, and tasks are only dealt before the run
          // starts — nothing will ever become stealable again. Leave the
          // in-flight owners to drive remaining_ to zero rather than
          // burning a core spinning on it.
          break;
        }
        (*fn)(index);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(run_mu_);
          done_cv_.notify_all();
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace frt
