#include "runtime/window_audit.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "index/search_context.h"
#include "index/segment_index.h"

namespace frt {

namespace {

/// Per-range partial aggregate; merged in range order so the report is a
/// pure function of the datasets and the range count.
struct RangePartial {
  uint64_t points = 0;
  double sum = 0.0;
  double max = 0.0;
  double build_seconds = 0.0;
  uint64_t dist_evals = 0;
};

std::vector<SegmentEntry> CollectEntries(const Dataset& original) {
  std::vector<SegmentEntry> entries;
  SegmentHandle handle = 0;
  for (const Trajectory& t : original.trajectories()) {
    for (size_t i = 0; i < t.NumSegments(); ++i) {
      entries.push_back(SegmentEntry{handle++, t.id(), t.SegmentAt(i)});
    }
  }
  return entries;
}

/// Sweeps published trajectories [begin, end) against `index`, k=1.
void SweepRange(const Dataset& published, size_t begin, size_t end,
                const SegmentIndex& index, SearchContext* ctx,
                RangePartial* out) {
  SearchOptions options;
  options.k = 1;
  options.group_by = GroupBy::kSegment;
  for (size_t t = begin; t < end; ++t) {
    for (const TimedPoint& tp : published[t].points()) {
      const Span<const Neighbor> hits = index.KNearest(tp.p, options, ctx);
      if (hits.empty()) continue;
      ++out->points;
      out->sum += hits[0].dist;
      out->max = std::max(out->max, hits[0].dist);
    }
  }
}

}  // namespace

WindowAuditReport RunWindowAudit(const Dataset& original,
                                 const Dataset& published,
                                 const WindowAuditConfig& config,
                                 WorkStealingPool* pool) {
  WindowAuditReport report;
  report.shared_index = config.shared_index;
  if (!config.enabled || original.empty() || published.empty()) {
    return report;
  }

  const std::vector<SegmentEntry> entries = CollectEntries(original);
  if (entries.empty()) return report;

  BBox region = BBox::Empty();
  for (const SegmentEntry& e : entries) {
    region.Extend(e.geom.a);
    region.Extend(e.geom.b);
  }
  const GridSpec grid(region, config.index_levels);

  // Fixed range split (independent of worker count): contiguous
  // trajectory ranges, remainder spread over the leading ranges.
  const size_t n = published.size();
  const size_t ranges =
      std::clamp<size_t>(static_cast<size_t>(config.ranges), 1, n);
  std::vector<RangePartial> partials(ranges);
  const size_t base = n / ranges;
  const size_t extra = n % ranges;
  const auto range_bounds = [&](size_t r) {
    const size_t begin = r * base + std::min(r, extra);
    const size_t end = begin + base + (r < extra ? 1 : 0);
    return std::pair<size_t, size_t>(begin, end);
  };

  if (config.shared_index) {
    // One build, every worker reads it through its own context.
    Stopwatch build_watch;
    std::unique_ptr<SegmentIndex> index =
        MakeSegmentIndex(config.strategy, grid);
    const Status built = index->Build(Span<const SegmentEntry>(entries));
    report.build_seconds = build_watch.ElapsedSeconds();
    if (!built.ok()) return report;
    report.index_builds = 1;
    const auto range_task = [&](size_t r) {
      SearchContext ctx;
      const auto [begin, end] = range_bounds(r);
      SweepRange(published, begin, end, *index, &ctx, &partials[r]);
    };
    if (pool != nullptr) {
      pool->Run(ranges, range_task);
    } else {
      for (size_t r = 0; r < ranges; ++r) range_task(r);
    }
    report.distance_evaluations = index->distance_evaluations();
  } else {
    // A/B baseline: every range rebuilds the same index privately.
    const auto range_task = [&](size_t r) {
      Stopwatch build_watch;
      std::unique_ptr<SegmentIndex> index =
          MakeSegmentIndex(config.strategy, grid);
      const Status built = index->Build(Span<const SegmentEntry>(entries));
      partials[r].build_seconds = build_watch.ElapsedSeconds();
      if (!built.ok()) return;
      SearchContext ctx;
      const auto [begin, end] = range_bounds(r);
      SweepRange(published, begin, end, *index, &ctx, &partials[r]);
      partials[r].dist_evals = index->distance_evaluations();
    };
    if (pool != nullptr) {
      pool->Run(ranges, range_task);
    } else {
      for (size_t r = 0; r < ranges; ++r) range_task(r);
    }
    report.index_builds = static_cast<int>(ranges);
  }

  // Fixed-order merge: every aggregate below is independent of worker
  // scheduling, so shared and private runs report identical displacement.
  report.ran = true;
  for (const RangePartial& p : partials) {
    report.points_audited += p.points;
    report.mean_displacement += p.sum;
    report.max_displacement = std::max(report.max_displacement, p.max);
    report.build_seconds += p.build_seconds;
    report.distance_evaluations += p.dist_evals;
  }
  if (report.points_audited > 0) {
    report.mean_displacement /= static_cast<double>(report.points_audited);
  }
  return report;
}

}  // namespace frt
