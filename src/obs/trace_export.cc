#include "obs/trace_export.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace frt::obs {

namespace {

/// Escapes a string for a JSON string literal. Span names are controlled
/// ASCII, but feed ids come from user input.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const TraceDump& dump) {
  std::string json;
  json.reserve(dump.events.size() * 160 + 1024);
  json += "{\"otherData\":{";
  json += StrFormat(
      "\"dropped_events\":%llu,\"recorded_events\":%zu,"
      "\"start_unix_us\":%lld},\n",
      static_cast<unsigned long long>(dump.dropped), dump.events.size(),
      static_cast<long long>(dump.start_unix_us));
  json += "\"traceEvents\":[";
  bool first = true;
  for (const TraceThreadInfo& thread : dump.threads) {
    if (thread.name.empty()) continue;
    if (!first) json += ",";
    first = false;
    json += StrFormat(
        "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        thread.tid, JsonEscape(thread.name).c_str());
  }
  for (const TraceEvent& event : dump.events) {
    if (!first) json += ",";
    first = false;
    json += StrFormat(
        "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
        JsonEscape(event.name).c_str(), SpanCategoryName(event.category),
        event.tid, static_cast<double>(event.start_ns) / 1000.0,
        static_cast<double>(event.dur_ns) / 1000.0);
    if (!event.feed.empty()) {
      json += StrFormat(",\"args\":{\"feed\":\"%s\"}",
                        JsonEscape(event.feed).c_str());
    }
    json += "}";
  }
  json += "\n]}\n";
  return json;
}

Status WriteChromeTrace(const TraceDump& dump, const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("trace output path must not be empty");
  }
  std::FILE* out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::IOError("cannot open trace output " + path + ": " +
                           std::strerror(errno));
  }
  const std::string json = ChromeTraceJson(dump);
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), out) == json.size() &&
      std::fflush(out) == 0;
  if (out != stdout) std::fclose(out);
  if (!ok) {
    return Status::IOError("writing trace output " + path + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace frt::obs
