// Pull-based introspection endpoint: a small blocking HTTP/1.0 responder
// on the src/net socket layer, serving the metrics registry and
// service-published snapshots to operators (curl, Prometheus scrapers,
// the CI smoke) and accepting runtime control toggles.
//
// Contract with the data plane (the reason this lives in obs/ and not in
// service/): a handler may only ever read registry atomics and
// SnapshotBoard copies. The admin thread never takes a dispatcher lock,
// never calls into a session, and the dispatcher never waits on the
// admin thread — so a wedged, slow, or malicious scraper can stall at
// most other scrapers (connections are served inline, one at a time,
// with socket I/O timeouts), never the data plane.
//
// Protocol: deliberately minimal HTTP/1.0 — one request per connection,
// `Connection: close`, Content-Length framed responses. That is all a
// scrape client, curl, or a python one-liner needs, and it keeps the
// responder free of keep-alive state machines.
//
//   AdminServer admin({endpoint});
//   admin.Handle("GET", "/feedz", [&](const HttpRequest&) { ... });
//   admin.Start();             // spawns the accept thread
//   ...
//   admin.Stop();              // joins it
//
// `GET /metrics` (Prometheus text exposition from the registry) and
// `GET /healthz` are pre-registered defaults; CLIs add /readyz, /feedz,
// and /control on top. Transient accept failures (ECONNABORTED, EMFILE,
// ...) retry with bounded backoff and count into
// `frt_admin_accept_retries_total`.

#ifndef FRT_OBS_ADMIN_SERVER_H_
#define FRT_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "obs/registry.h"

namespace frt::obs {

struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET"
  std::string path;    ///< request path without the query string
  std::string query;   ///< raw text after '?', empty when absent
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    net::Endpoint endpoint;
    int backlog = 8;
    /// Per-connection socket read/write timeout: bounds how long one
    /// wedged client can monopolize the (single) serving thread.
    int io_timeout_ms = 2000;
    Registry* registry = &Registry::Default();
  };

  explicit AdminServer(Options options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers a handler (replacing any default). Must be called before
  /// Start — the route table is read without a lock once the accept
  /// thread runs.
  void Handle(std::string method, std::string path, Handler handler);

  /// Binds the endpoint and spawns the accept thread.
  Status Start();

  /// Shuts the listener down and joins the accept thread. Idempotent.
  void Stop();

  /// Port actually bound (tcp:HOST:0 picks one); 0 for unix endpoints
  /// or before Start.
  uint16_t bound_port() const { return bound_port_; }

 private:
  void AcceptLoop();
  void ServeConnection(net::Socket conn);

  Options options_;
  std::map<std::string, std::map<std::string, Handler>> routes_;
  Counter* accept_retries_ = nullptr;
  Counter* requests_ = nullptr;
  net::Socket listener_;
  uint16_t bound_port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

/// \brief Decodes `k=v&k2=v2` (query string or form body) with %XX and
/// `+` unescaping; preserves order and duplicates.
std::vector<std::pair<std::string, std::string>> ParseFormPairs(
    std::string_view text);

/// \brief Escapes a string for embedding in a JSON string literal
/// (quotes, backslash, control characters).
std::string JsonEscape(std::string_view s);

/// Hooks MakeControlHandler applies runtime toggles through.
struct ControlHooks {
  /// Where `trace=off` writes the Chrome trace dump; empty discards the
  /// spans and reports counts only.
  std::string trace_out;
  /// Ring capacity for `trace=on` (spans per thread).
  size_t trace_buffer_events = 65536;
  /// Applies `metrics_interval_ms=N`; unset = toggle unsupported.
  std::function<bool(int64_t)> set_metrics_interval_ms;
};

/// \brief Standard POST /control handler: `trace=on|off`,
/// `log_level=0..4` (ParseLogLevel semantics), `metrics_interval_ms=N`.
/// Unknown keys or malformed values are a 400 and nothing is applied.
AdminServer::Handler MakeControlHandler(ControlHooks hooks);

}  // namespace frt::obs

#endif  // FRT_OBS_ADMIN_SERVER_H_
