#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace frt::obs {

namespace {

/// Ticks clamp here (2^62 us) so the bucket index never leaves the table;
/// the exact max_ms still reports the true value.
constexpr uint64_t kMaxTicks = 1ull << 62;

int MostSignificantBit(uint64_t v) {
  return 63 - __builtin_clzll(v);
}

}  // namespace

uint64_t Histogram::TicksFromMs(double ms) {
  if (!(ms > 0.0)) return 0;  // negatives and NaN clamp to 0
  const double ticks = ms * 1000.0;  // 1 tick = 1 us
  if (ticks >= static_cast<double>(kMaxTicks)) return kMaxTicks;
  return static_cast<uint64_t>(std::llround(ticks));
}

size_t Histogram::BucketIndex(uint64_t ticks) {
  if (ticks < kSubBucketCount) return static_cast<size_t>(ticks);
  const int e = MostSignificantBit(ticks);
  const int shift = e - kSubBucketBits;
  const uint64_t offset = (ticks >> shift) - kSubBucketCount;
  return static_cast<size_t>(
      (static_cast<uint64_t>(shift + 1) << kSubBucketBits) + offset);
}

double Histogram::BucketMidMs(size_t index) {
  uint64_t lower = 0;
  uint64_t width = 1;
  if (index < kSubBucketCount) {
    lower = index;
  } else {
    const uint64_t block = index >> kSubBucketBits;
    const uint64_t offset = index & (kSubBucketCount - 1);
    const int shift = static_cast<int>(block) - 1;
    lower = (kSubBucketCount + offset) << shift;
    width = 1ull << shift;
  }
  const double mid_ticks =
      static_cast<double>(lower) + static_cast<double>(width - 1) * 0.5;
  return mid_ticks / 1000.0;
}

void Histogram::RecordN(double ms, uint64_t n) {
  if (n == 0) return;
  counts_[BucketIndex(TicksFromMs(ms))] += n;
  const double v = ms > 0.0 ? ms : 0.0;
  if (count_ == 0 || v < min_ms_) min_ms_ = v;
  if (v > max_ms_) max_ms_ = v;
  sum_ms_ += v * static_cast<double>(n);
  count_ += n;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ms_ < min_ms_) min_ms_ = other.min_ms_;
  if (other.max_ms_ > max_ms_) max_ms_ = other.max_ms_;
  sum_ms_ += other.sum_ms_;
  count_ += other.count_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Same order-statistic convention as the dispatcher's historical
  // sorted-sample Percentile: rank = q*(n-1) rounded to nearest.
  const double rank = q * static_cast<double>(count_ - 1);
  const uint64_t target = static_cast<uint64_t>(rank + 0.5);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative > target) {
      return std::clamp(BucketMidMs(i), min_ms(), max_ms());
    }
  }
  return max_ms_;  // unreachable: cumulative reaches count_
}

}  // namespace frt::obs
