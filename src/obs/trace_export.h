// Chrome trace-event JSON exporter for TraceDump.
//
// Writes the "JSON Object Format" variant of the trace-event spec: a
// top-level object with a `traceEvents` array of complete ("ph":"X")
// duration events plus thread-name metadata events, loadable directly in
// chrome://tracing or https://ui.perfetto.dev. Drop counters and the
// recorder's wall-clock start go into `otherData` so truncation is
// visible in the file itself.

#ifndef FRT_OBS_TRACE_EXPORT_H_
#define FRT_OBS_TRACE_EXPORT_H_

#include <string>

#include "common/result.h"
#include "obs/trace.h"

namespace frt::obs {

/// \brief Serializes `dump` as Chrome trace-event JSON into `path`
/// ("-" writes to stdout). Timestamps are microseconds since the
/// recorder's Start(), with sub-microsecond fractions preserved.
Status WriteChromeTrace(const TraceDump& dump, const std::string& path);

/// \brief The serialized JSON (tests and in-process consumers).
std::string ChromeTraceJson(const TraceDump& dump);

}  // namespace frt::obs

#endif  // FRT_OBS_TRACE_EXPORT_H_
