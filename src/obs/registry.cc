#include "obs/registry.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/strings.h"

namespace frt::obs {

namespace {

/// Lowers `cell` toward `v` (CAS loop; C++17 atomic<double> has no
/// fetch_min).
void AtomicMin(std::atomic<double>* cell, double v) {
  double cur = cell->load(std::memory_order_relaxed);
  while (v < cur && !cell->compare_exchange_weak(cur, v,
                                                 std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* cell, double v) {
  double cur = cell->load(std::memory_order_relaxed);
  while (v > cur && !cell->compare_exchange_weak(cur, v,
                                                 std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* cell, double v) {
  double cur = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(cur, cur + v,
                                      std::memory_order_relaxed)) {
  }
}

/// Prometheus value formatting: %.17g round-trips doubles exactly, and
/// the spec spells infinities +Inf/-Inf.
std::string FormatPromValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  return StrFormat("%.17g", v);
}

/// Splits `series` into its base metric name and the label body (the
/// text inside the braces, no braces; empty when unlabeled).
void SplitSeries(std::string_view series, std::string_view* base,
                 std::string_view* labels) {
  const size_t brace = series.find('{');
  if (brace == std::string_view::npos) {
    *base = series;
    *labels = {};
    return;
  }
  *base = series.substr(0, brace);
  std::string_view rest = series.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  *labels = rest;
}

/// Rebuilds a series name with one extra label appended (`quantile` for
/// summary rows) or with a suffix on the base name (_sum/_count).
std::string SeriesWith(std::string_view base, std::string_view labels,
                       std::string_view extra_label) {
  std::string out(base);
  if (labels.empty() && extra_label.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra_label.empty()) out += ',';
  out += extra_label;
  out += '}';
  return out;
}

}  // namespace

HistogramCell::HistogramCell()
    : buckets_(new std::atomic<uint64_t>[Histogram::kNumBuckets]),
      min_ms_(std::numeric_limits<double>::infinity()) {
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void HistogramCell::RecordN(double ms, uint64_t n) {
  if (n == 0) return;
  const size_t index = Histogram::BucketIndex(Histogram::TicksFromMs(ms));
  buckets_[index].fetch_add(n, std::memory_order_relaxed);
  const double v = ms > 0.0 ? ms : 0.0;
  AtomicMin(&min_ms_, v);
  AtomicMax(&max_ms_, v);
  AtomicAdd(&sum_ms_, v * static_cast<double>(n));
  count_.fetch_add(n, std::memory_order_relaxed);
}

Histogram HistogramCell::Snapshot() const {
  const uint64_t count = count_.load(std::memory_order_relaxed);
  if (count == 0) return Histogram();
  std::vector<uint64_t> buckets(Histogram::kNumBuckets);
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return Histogram(buckets.data(), count,
                   min_ms_.load(std::memory_order_relaxed),
                   max_ms_.load(std::memory_order_relaxed),
                   sum_ms_.load(std::memory_order_relaxed));
}

std::string LabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string WithLabel(std::string_view base, std::string_view key,
                      std::string_view value) {
  std::string out(base);
  out += '{';
  out += key;
  out += "=\"";
  out += LabelEscape(value);
  out += "\"}";
  return out;
}

Registry& Registry::Default() {
  // Leaked on purpose: worker threads may bump counters during static
  // destruction (same rationale as TraceRecorder::Get).
  static Registry* instance = new Registry();
  return *instance;
}

Registry::Entry* Registry::FindOrCreate(std::string_view name,
                                        std::string_view help, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(std::string(name));
  Entry& entry = it->second;
  if (!inserted) return entry.kind == kind ? &entry : nullptr;
  entry.kind = kind;
  entry.help = std::string(help);
  switch (kind) {
    case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<HistogramCell>();
      break;
  }
  return &entry;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help) {
  Entry* entry = FindOrCreate(name, help, Kind::kCounter);
  return entry != nullptr ? entry->counter.get() : nullptr;
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help) {
  Entry* entry = FindOrCreate(name, help, Kind::kGauge);
  return entry != nullptr ? entry->gauge.get() : nullptr;
}

HistogramCell* Registry::GetHistogram(std::string_view name,
                                      std::string_view help) {
  Entry* entry = FindOrCreate(name, help, Kind::kHistogram);
  return entry != nullptr ? entry->histogram.get() : nullptr;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // std::map sorts series names, so label variants of one base name are
  // contiguous (they all share the `base{` prefix) — one TYPE line per
  // family, emitted when the base name changes.
  std::string last_base;
  for (const auto& [series, entry] : entries_) {
    std::string_view base, labels;
    SplitSeries(series, &base, &labels);
    if (base != last_base) {
      last_base = std::string(base);
      if (!entry.help.empty()) {
        out += "# HELP ";
        out += base;
        out += ' ';
        out += entry.help;
        out += '\n';
      }
      out += "# TYPE ";
      out += base;
      switch (entry.kind) {
        case Kind::kCounter: out += " counter\n"; break;
        case Kind::kGauge: out += " gauge\n"; break;
        case Kind::kHistogram: out += " summary\n"; break;
      }
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += series;
        out += ' ';
        out += StrFormat("%llu", static_cast<unsigned long long>(
                                     entry.counter->value()));
        out += '\n';
        break;
      case Kind::kGauge:
        out += series;
        out += ' ';
        out += FormatPromValue(entry.gauge->value());
        out += '\n';
        break;
      case Kind::kHistogram: {
        const Histogram h = entry.histogram->Snapshot();
        static constexpr struct {
          const char* label;
          double q;
        } kQuantiles[] = {{"quantile=\"0.5\"", 0.5},
                          {"quantile=\"0.9\"", 0.9},
                          {"quantile=\"0.99\"", 0.99}};
        for (const auto& quantile : kQuantiles) {
          out += SeriesWith(base, labels, quantile.label);
          out += ' ';
          out += FormatPromValue(h.Quantile(quantile.q));
          out += '\n';
        }
        out += SeriesWith(std::string(base) + "_sum", labels, {});
        out += ' ';
        out += FormatPromValue(h.sum_ms());
        out += '\n';
        out += SeriesWith(std::string(base) + "_count", labels, {});
        out += ' ';
        out += StrFormat("%llu",
                         static_cast<unsigned long long>(h.count()));
        out += '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace frt::obs
