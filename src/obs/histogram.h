// Log-linear (HDR-style) latency histogram with bounded memory and
// bounded relative quantile error.
//
// Values are durations in milliseconds, recorded at 1 microsecond
// resolution into a fixed array of buckets whose width grows with the
// magnitude of the value: ticks below 2^kSubBucketBits land in unit-wide
// (exact) buckets; above that each power-of-two octave is split into
// 2^kSubBucketBits sub-buckets, so a bucket's width is at most 2^-5 =
// 3.125% of its lower bound and a quantile read (bucket midpoint) is
// within ~1.6% of the true sample — comfortably inside the 5% acceptance
// bound. Memory is a fixed ~15 KiB counts array per histogram, O(1) in
// the number of recorded samples, which is what lets the service keep one
// per (feed, stage) where the old sorted-sample ring could not.
//
// Counts are exact (every Record lands in exactly one bucket); min, max,
// sum and count are tracked exactly on the side, so mean() is exact and
// Quantile() is clamped into [min, max]. Merge() adds two histograms
// bucket-wise — the geometry is compile-time fixed, so merging is
// associative and commutative, which is what makes per-thread or
// per-feed histograms aggregatable after the fact.
//
// Quantile rank convention matches the dispatcher's historical
// sorted-sample Percentile(): rank = p * (count - 1), rounded to the
// nearest integer, value = that order statistic.

#ifndef FRT_OBS_HISTOGRAM_H_
#define FRT_OBS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace frt::obs {

class Histogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave.
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  /// Bucket count covering the full 63-bit tick range (~292 years at
  /// 1 us ticks); values beyond clamp into the last bucket.
  static constexpr size_t kNumBuckets =
      (64 - kSubBucketBits) * kSubBucketCount;

  Histogram() : counts_(kNumBuckets, 0) {}

  /// \brief Rebuilds a histogram from externally maintained parts —
  /// `bucket_counts` must hold kNumBuckets entries laid out by
  /// BucketIndex, and count/min/max/sum must be the exact side stats the
  /// accessors would have tracked. Used by the metrics registry to
  /// snapshot its atomic bucket cells into a plain, mergeable Histogram.
  Histogram(const uint64_t* bucket_counts, uint64_t count, double min_ms,
            double max_ms, double sum_ms)
      : counts_(bucket_counts, bucket_counts + kNumBuckets),
        count_(count),
        min_ms_(min_ms),
        max_ms_(max_ms),
        sum_ms_(sum_ms) {}

  /// \brief Records one duration (milliseconds; negatives clamp to 0).
  void Record(double ms) { RecordN(ms, 1); }

  /// \brief Records `n` occurrences of the same duration.
  void RecordN(double ms, uint64_t n);

  /// \brief Adds `other`'s samples into this histogram.
  void Merge(const Histogram& other);

  /// \brief The q-th quantile in ms (q in [0,1]); 0 when empty. Returns
  /// the midpoint of the bucket holding the target order statistic,
  /// clamped into [min_ms, max_ms].
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  /// Exact extremes and sum (ms); 0 when empty.
  double min_ms() const { return count_ == 0 ? 0.0 : min_ms_; }
  double max_ms() const { return max_ms_; }
  double sum_ms() const { return sum_ms_; }
  double mean_ms() const {
    return count_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(count_);
  }

  /// Bucket geometry, shared with the registry's atomic histogram cells
  /// so their externally recorded buckets merge with ours bit for bit.
  static uint64_t TicksFromMs(double ms);
  static size_t BucketIndex(uint64_t ticks);
  /// Midpoint of bucket `index`, in ms.
  static double BucketMidMs(size_t index);

 private:
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
  double sum_ms_ = 0.0;
};

}  // namespace frt::obs

#endif  // FRT_OBS_HISTOGRAM_H_
