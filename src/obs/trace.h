// Runtime-toggled span trace recorder.
//
// Always compiled in, off by default: the only cost on an instrumented
// code path while tracing is disabled is one relaxed atomic load (see
// TraceEnabled). When enabled — TraceRecorder::Get().Start(...) — each
// emitting thread lazily registers a fixed-capacity ring buffer of
// fixed-size span events and appends to it without locks or allocation;
// Stop() drains every ring into a TraceDump that the Chrome trace-event
// exporter (obs/trace_export.h) turns into a chrome://tracing / Perfetto
// loadable JSON file.
//
// Overflow policy: a full ring overwrites its oldest events (the trace
// keeps the most recent window of activity) and the overwritten count is
// reported exactly in TraceDump::dropped — truncation is never silent.
//
// Concurrency. Each ring has exactly one writer (its owning thread).
// Stop() may race with in-flight writers, so every slot is a miniature
// seqlock over atomic words: a reader that observes a torn slot skips it
// and counts it as dropped instead of reporting garbage. All shared
// accesses are std::atomic, so the recorder is clean under
// ThreadSanitizer. Events emitted after Stop() began draining a ring may
// be lost; quiesce the workload before stopping for a complete trace.
//
// Timestamps are steady_clock, reported as nanoseconds since Start().

#ifndef FRT_OBS_TRACE_H_
#define FRT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace frt::obs {

/// Coarse span taxonomy; the exporter writes these as the Chrome trace
/// "cat" field so the UI can filter per subsystem.
enum class SpanCategory : uint8_t {
  kIngest = 0,     ///< reading + parsing arrivals
  kWindow = 1,     ///< window assembly / closure
  kQueue = 2,      ///< waiting between close and execution
  kAnonymize = 3,  ///< the anonymization batch job
  kIndex = 4,      ///< sampled index-search sub-spans
  kDurability = 5, ///< checkpoint write + fsync
  kPublish = 6,    ///< sink / publish path
  kPool = 7,       ///< worker pool scheduling (task/steal/idle)
  kNet = 8,        ///< ingress framing: socket reads + frame decoding
};

const char* SpanCategoryName(SpanCategory category);

/// One drained span, decoded out of the ring's wire format.
struct TraceEvent {
  std::string name;
  std::string feed;  ///< empty for service-wide spans
  SpanCategory category = SpanCategory::kPool;
  uint32_t tid = 0;
  int64_t start_ns = 0;  ///< steady_clock ns since recorder Start()
  int64_t dur_ns = 0;
};

struct TraceThreadInfo {
  uint32_t tid = 0;
  std::string name;  ///< empty when the thread never named itself
  uint64_t dropped = 0;
};

/// Everything Stop() collected.
struct TraceDump {
  std::vector<TraceEvent> events;   ///< sorted by start_ns
  std::vector<TraceThreadInfo> threads;
  uint64_t dropped = 0;  ///< events overwritten or torn, across threads
  /// Wall-clock us of the recorder's Start(), for log correlation.
  int64_t start_unix_us = 0;
};

class TraceRecorder {
 public:
  struct Options {
    /// Ring capacity per emitting thread, in events (~64 B each). The
    /// ring overwrites its oldest events past this and counts the drops.
    size_t buffer_events = 1 << 16;
  };

  /// The process-wide recorder used by all instrumentation macros.
  static TraceRecorder& Get();

  /// \brief Arms the recorder. Returns false if it is already running.
  bool Start(const Options& options);

  /// \brief Disarms the recorder and drains every thread ring. Safe to
  /// call while instrumented threads are still running (see file
  /// comment); returns an empty dump when the recorder was not running.
  TraceDump Stop();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// \brief Appends one span to the calling thread's ring (registering
  /// the thread on first use). No-op while disabled.
  void Emit(const char* name, SpanCategory category, std::string_view feed,
            std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end);

  /// \brief Names the calling thread in trace output ("dispatcher",
  /// "pool-worker-3", ...). May be called before Start(); the name
  /// sticks for later recording sessions of this thread.
  void SetCurrentThreadName(std::string_view name);

 private:
  struct ThreadBuffer;
  struct Tls;

  TraceRecorder() = default;
  Tls& GetTls();
  void RegisterThread(Tls* tls, uint64_t generation);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> generation_{0};

  std::mutex mu_;  ///< registration / Start / Stop / names only
  bool running_ = false;
  size_t capacity_ = 1 << 16;
  std::chrono::steady_clock::time_point start_time_{};
  int64_t start_unix_us_ = 0;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 1;
};

/// One relaxed load; the whole cost of disabled tracing.
inline bool TraceEnabled() { return TraceRecorder::Get().enabled(); }

/// \brief Emits a span with explicit endpoints (for spans that straddle
/// threads or were timed before the emit site). No-op while disabled.
inline void EmitSpan(const char* name, SpanCategory category,
                     std::string_view feed,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  TraceRecorder& recorder = TraceRecorder::Get();
  if (recorder.enabled()) recorder.Emit(name, category, feed, start, end);
}

/// \brief Names the current thread in trace output.
inline void SetTraceThreadName(std::string_view name) {
  TraceRecorder::Get().SetCurrentThreadName(name);
}

/// RAII span covering the enclosing scope. Costs one relaxed load when
/// tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, SpanCategory category,
             std::string_view feed = {})
      : name_(name), feed_(feed), category_(category),
        armed_(TraceEnabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (armed_) {
      EmitSpan(name_, category_, feed_, start_,
               std::chrono::steady_clock::now());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::string_view feed_;
  SpanCategory category_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace frt::obs

#endif  // FRT_OBS_TRACE_H_
