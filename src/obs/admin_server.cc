#include "obs/admin_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace frt::obs {

namespace {

constexpr size_t kMaxHeaderBytes = 8 * 1024;
constexpr size_t kMaxBodyBytes = 64 * 1024;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "";
  }
}

void SetIoTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Case-insensitive single-header lookup in a raw header block.
bool FindHeaderValue(std::string_view headers, std::string_view name,
                     std::string_view* value) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    const std::string_view line = headers.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view key = line.substr(0, colon);
    if (key.size() != name.size()) continue;
    bool match = true;
    for (size_t i = 0; i < key.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(key[i])) !=
          std::tolower(static_cast<unsigned char>(name[i]))) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::string_view v = line.substr(colon + 1);
    while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
      v.remove_prefix(1);
    }
    *value = v;
    return true;
  }
  return false;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexValue(text[i + 1]) >= 0 && HexValue(text[i + 2]) >= 0) {
      out += static_cast<char>(HexValue(text[i + 1]) * 16 +
                               HexValue(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> ParseFormPairs(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t amp = text.find('&', pos);
    if (amp == std::string_view::npos) amp = text.size();
    const std::string_view item = text.substr(pos, amp - pos);
    pos = amp + 1;
    if (item.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      pairs.emplace_back(PercentDecode(item), std::string());
    } else {
      pairs.emplace_back(PercentDecode(item.substr(0, eq)),
                         PercentDecode(item.substr(eq + 1)));
    }
  }
  return pairs;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

AdminServer::AdminServer(Options options) : options_(std::move(options)) {
  accept_retries_ = options_.registry->GetCounter(
      "frt_admin_accept_retries_total",
      "Transient admin accept() failures retried with backoff");
  requests_ = options_.registry->GetCounter(
      "frt_admin_requests_total", "HTTP requests served by the admin plane");
  Registry* registry = options_.registry;
  Handle("GET", "/metrics", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry->RenderPrometheus();
    return response;
  });
  Handle("GET", "/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string method, std::string path,
                         Handler handler) {
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

Status AdminServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("admin server already started");
  }
  auto listener = net::ListenOn(options_.endpoint, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = *std::move(listener);
  if (options_.endpoint.kind == net::Endpoint::Kind::kTcp) {
    if (auto port = net::LocalPort(listener_); port.ok()) {
      bound_port_ = *port;
    }
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void AdminServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  listener_.ShutdownBoth();
  if (thread_.joinable()) thread_.join();
  listener_.Close();
  net::UnlinkIfUnix(options_.endpoint);
  started_ = false;
}

void AdminServer::AcceptLoop() {
  SetTraceThreadName("admin");
  int backoff_ms = 1;
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;
    bool transient = false;
    auto conn = net::Accept(listener_, &transient);
    if (!conn.ok()) {
      if (transient) {
        accept_retries_->Inc();
        FRT_LOG(Warning) << "admin accept failed (retrying in "
                         << backoff_ms
                         << " ms): " << conn.status().message();
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 200);
        continue;
      }
      FRT_LOG(Warning) << "admin accept failed: "
                       << conn.status().message();
      break;
    }
    if (!conn->valid()) break;  // listener shut down
    backoff_ms = 1;
    ServeConnection(*std::move(conn));
  }
}

void AdminServer::ServeConnection(net::Socket conn) {
  SetIoTimeouts(conn.fd(), options_.io_timeout_ms);

  // ---- Read the header block (request line + headers). ----
  std::string data;
  size_t header_end = std::string::npos;
  while (data.size() < kMaxHeaderBytes) {
    char buf[2048];
    const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
    if (n <= 0) return;  // timeout, EOF, or error: drop the connection
    data.append(buf, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
  }
  if (header_end == std::string::npos) return;

  HttpResponse response;
  HttpRequest request;
  bool parsed = false;
  const std::string_view head = std::string_view(data).substr(0, header_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      head.substr(0, std::min(line_end, head.size()));
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 != std::string_view::npos &&
      request_line.substr(sp2 + 1).rfind("HTTP/", 0) == 0) {
    request.method = std::string(request_line.substr(0, sp1));
    std::string_view target =
        request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t question = target.find('?');
    request.path = std::string(target.substr(0, question));
    if (question != std::string_view::npos) {
      request.query = std::string(target.substr(question + 1));
    }
    parsed = !request.method.empty() && !request.path.empty() &&
             request.path[0] == '/';
  }

  if (!parsed) {
    response.status = 400;
    response.body = "malformed request\n";
  } else {
    // ---- Optional body (POST /control). ----
    const std::string_view headers =
        head.substr(line_end == std::string_view::npos
                        ? head.size()
                        : std::min(line_end + 2, head.size()));
    std::string_view length_text;
    size_t content_length = 0;
    if (FindHeaderValue(headers, "Content-Length", &length_text)) {
      auto parsed_length = ParseInt64(length_text);
      if (!parsed_length.ok() || *parsed_length < 0 ||
          *parsed_length > static_cast<int64_t>(kMaxBodyBytes)) {
        response.status = 400;
        response.body = "bad Content-Length\n";
        parsed = false;
      } else {
        content_length = static_cast<size_t>(*parsed_length);
      }
    }
    if (parsed) {
      request.body = data.substr(header_end + 4);
      while (request.body.size() < content_length) {
        char buf[2048];
        const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
        if (n <= 0) return;
        request.body.append(buf, static_cast<size_t>(n));
      }
      request.body.resize(content_length);

      // ---- Dispatch. ----
      requests_->Inc();
      const auto path_it = routes_.find(request.path);
      if (path_it == routes_.end()) {
        response.status = 404;
        response.body = "not found\n";
      } else {
        const auto method_it = path_it->second.find(request.method);
        if (method_it == path_it->second.end()) {
          response.status = 405;
          response.body = "method not allowed\n";
        } else {
          response = method_it->second(request);
        }
      }
    }
  }

  std::string reply = StrFormat("HTTP/1.0 %d %s\r\n", response.status,
                                ReasonPhrase(response.status));
  reply += "Content-Type: " + response.content_type + "\r\n";
  reply += StrFormat("Content-Length: %zu\r\n", response.body.size());
  reply += "Connection: close\r\n\r\n";
  reply += response.body;
  (void)net::WriteAll(conn.fd(), reply.data(), reply.size());
}

AdminServer::Handler MakeControlHandler(ControlHooks hooks) {
  return [hooks = std::move(hooks)](const HttpRequest& request) {
    HttpResponse response;
    const auto pairs = ParseFormPairs(
        request.body.empty() ? std::string_view(request.query)
                             : std::string_view(request.body));
    if (pairs.empty()) {
      response.status = 400;
      response.body =
          "no toggles; expected trace=on|off, log_level=0..4, "
          "metrics_interval_ms=N\n";
      return response;
    }
    // Validate every toggle before applying any, so a typo in a batch
    // does not leave the process half-reconfigured.
    for (const auto& [key, value] : pairs) {
      if (key == "trace") {
        if (value != "on" && value != "off") {
          response.status = 400;
          response.body = "trace must be on or off\n";
          return response;
        }
      } else if (key == "log_level") {
        if (!ParseLogLevel(value.c_str()).has_value()) {
          response.status = 400;
          response.body = "log_level must be an integer in [0,4]\n";
          return response;
        }
      } else if (key == "metrics_interval_ms") {
        auto parsed = ParseInt64(value);
        if (!parsed.ok() || *parsed <= 0) {
          response.status = 400;
          response.body = "metrics_interval_ms must be a positive integer\n";
          return response;
        }
        if (!hooks.set_metrics_interval_ms) {
          response.status = 400;
          response.body = "metrics_interval_ms is not supported here\n";
          return response;
        }
      } else {
        response.status = 400;
        response.body = "unknown toggle: " + key + "\n";
        return response;
      }
    }
    for (const auto& [key, value] : pairs) {
      if (key == "trace") {
        if (value == "on") {
          TraceRecorder::Options options;
          options.buffer_events = hooks.trace_buffer_events;
          const bool armed = TraceRecorder::Get().Start(options);
          response.body += armed ? "trace: armed\n" : "trace: already on\n";
        } else {
          const TraceDump dump = TraceRecorder::Get().Stop();
          if (!hooks.trace_out.empty()) {
            if (auto st = WriteChromeTrace(dump, hooks.trace_out); !st.ok()) {
              response.body += "trace: " + st.ToString() + "\n";
            } else {
              response.body += StrFormat(
                  "trace: wrote %zu span(s) to %s (%llu dropped)\n",
                  dump.events.size(), hooks.trace_out.c_str(),
                  static_cast<unsigned long long>(dump.dropped));
            }
          } else {
            response.body += StrFormat(
                "trace: stopped, %zu span(s) discarded (no --trace-out)\n",
                dump.events.size());
          }
        }
      } else if (key == "log_level") {
        SetLogLevel(*ParseLogLevel(value.c_str()));
        response.body += "log_level: " + value + "\n";
      } else if (key == "metrics_interval_ms") {
        hooks.set_metrics_interval_ms(*ParseInt64(value));
        response.body += "metrics_interval_ms: " + value + "\n";
      }
    }
    return response;
  };
}

}  // namespace frt::obs
