// Process-wide metrics registry: named atomic counters, gauges, and
// histogram cells with one canonical, cheaply-sampled home per metric.
//
// The registry is the pull side of the observability plane. Components
// register a metric once (registration takes a mutex, so do it at
// construction time), cache the returned pointer, and update it from hot
// paths with plain relaxed atomics — no lock, no allocation, no syscall.
// Any thread may concurrently read every metric (RenderPrometheus, the
// admin endpoint, tests) without coordinating with writers.
//
// Ownership and lifetime rules:
//   - The registry owns every metric object it hands out. Pointers
//     returned by GetCounter/GetGauge/GetHistogram are stable for the
//     registry's lifetime — components hold them as raw pointers.
//   - Registry::Default() is a process-wide instance that is
//     intentionally leaked: worker threads may still bump counters
//     during static destruction.
//   - Tests that need isolation construct their own Registry and pass it
//     to components; every component that registers metrics takes a
//     `Registry*` defaulting to `&Registry::Default()`.
//   - Re-registering a name returns the same object (first help string
//     wins), so two components may share a metric deliberately.
//
// Series names follow Prometheus conventions: `frt_windows_total` for a
// bare series, `frt_stage_ms{stage="anonymize"}` for a labeled one (use
// WithLabel to build these — it escapes the value). RenderPrometheus
// emits the text exposition format, grouping label variants of a base
// name under one # TYPE line; histograms render as summaries
// (quantile series plus _sum/_count).
//
// Concurrent-read consistency: each metric is read with one (or for
// histogram cells, a few) relaxed atomic loads, so a render taken while
// writers are active is per-metric atomic but not a cross-metric
// snapshot. Once writers are quiesced (dispatcher joined), reads are
// exact — which is what makes shutdown values comparable bit-for-bit
// with the final report.

#ifndef FRT_OBS_REGISTRY_H_
#define FRT_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace frt::obs {

/// Monotone event counter. Inc is one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Set/value are single relaxed ops.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A lock-free multi-writer histogram cell sharing obs::Histogram's
/// bucket geometry. RecordN is one relaxed fetch_add per bucket plus CAS
/// loops for the exact min/max/sum side stats; Snapshot() rebuilds a
/// plain Histogram whose quantiles/mean match what a single-threaded
/// Histogram fed the same samples would report.
class HistogramCell {
 public:
  HistogramCell();

  void Record(double ms) { RecordN(ms, 1); }
  void RecordN(double ms, uint64_t n);

  /// Point-in-time copy. Exact once writers are quiesced; during
  /// concurrent writes individual fields are atomic but the count and
  /// buckets may be off by in-flight records.
  Histogram Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> min_ms_;  ///< +inf until the first record
  std::atomic<double> max_ms_{0.0};
  std::atomic<double> sum_ms_{0.0};
};

/// \brief Escapes a label value for the Prometheus text format
/// (backslash, double quote, newline).
std::string LabelEscape(std::string_view value);

/// \brief Builds `base{key="value"}` with the value escaped.
std::string WithLabel(std::string_view base, std::string_view key,
                      std::string_view value);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry (leaked: threads may record during static
  /// destruction).
  static Registry& Default();

  /// Registers (or finds) a metric. The pointer is stable for the
  /// registry's lifetime; callers cache it and never take the lock
  /// again. Registering an existing name with a different kind returns
  /// nullptr (a naming bug worth failing loudly in tests).
  Counter* GetCounter(std::string_view name, std::string_view help = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = {});
  HistogramCell* GetHistogram(std::string_view name,
                              std::string_view help = {});

  /// \brief Full Prometheus text exposition of every registered metric,
  /// sorted by series name, label variants grouped under one TYPE line.
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramCell> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view help,
                      Kind kind);

  mutable std::mutex mu_;  ///< guards entries_ (registration + render)
  std::map<std::string, Entry> entries_;
};

/// Single-writer publication point for an arbitrary snapshot object; any
/// number of readers. The only critical section is one shared_ptr
/// assignment — never held across I/O or allocation of the snapshot
/// itself — so a wedged reader (a slow admin scrape) can never block the
/// publisher (the dispatcher), and a reader always sees a complete,
/// immutable snapshot. This is the TSan-clean equivalent of a seqlock
/// over non-trivially-copyable data.
template <typename T>
class SnapshotBoard {
 public:
  void Publish(std::shared_ptr<const T> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = std::move(snapshot);
  }

  /// Latest published snapshot; nullptr before the first Publish.
  std::shared_ptr<const T> Read() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const T> latest_;
};

}  // namespace frt::obs

#endif  // FRT_OBS_REGISTRY_H_
