#include "obs/trace.h"

#include <algorithm>
#include <cstring>

#include "obs/registry.h"

namespace frt::obs {

namespace {

/// Fixed wire format of one ring slot: 64 bytes, serialized through
/// atomic words so a draining reader can never tear a read invisibly.
struct PackedEvent {
  char name[24];
  char feed[16];
  int64_t start_ns;
  int64_t dur_ns;
  uint64_t category;
};
constexpr size_t kSlotWords = sizeof(PackedEvent) / sizeof(uint64_t);
static_assert(sizeof(PackedEvent) == kSlotWords * sizeof(uint64_t),
              "PackedEvent must be whole atomic words");

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::string DecodeField(const char* src, size_t cap) {
  return std::string(src, strnlen(src, cap));
}

}  // namespace

const char* SpanCategoryName(SpanCategory category) {
  switch (category) {
    case SpanCategory::kIngest: return "ingest";
    case SpanCategory::kWindow: return "window";
    case SpanCategory::kQueue: return "queue";
    case SpanCategory::kAnonymize: return "anonymize";
    case SpanCategory::kIndex: return "index";
    case SpanCategory::kDurability: return "durability";
    case SpanCategory::kPublish: return "publish";
    case SpanCategory::kPool: return "pool";
    case SpanCategory::kNet: return "net";
  }
  return "?";
}

/// Per-slot seqlock: odd seq = write in progress. The single writer
/// bumps seq odd, stores the payload words, then bumps it even with
/// release; a reader that sees an odd or changed seq skips the slot.
struct Slot {
  std::atomic<uint32_t> seq{0};
  std::atomic<uint64_t> words[kSlotWords] = {};
};

struct TraceRecorder::ThreadBuffer {
  explicit ThreadBuffer(size_t cap)
      : capacity(cap), slots(new Slot[cap]) {}

  const size_t capacity;
  uint32_t tid = 0;
  std::string name;          ///< guarded by the recorder's mu_
  int64_t base_steady_ns = 0;
  /// Events ever emitted into this ring; the ring holds the newest
  /// min(head, capacity) of them.
  std::atomic<uint64_t> head{0};
  std::unique_ptr<Slot[]> slots;
};

struct TraceRecorder::Tls {
  std::shared_ptr<ThreadBuffer> buffer;
  uint64_t generation = 0;
  std::string pending_name;  ///< name set before the thread registered
};

TraceRecorder& TraceRecorder::Get() {
  // Leaked on purpose: detached threads may still emit during static
  // destruction.
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

TraceRecorder::Tls& TraceRecorder::GetTls() {
  static thread_local Tls tls;
  return tls;
}

bool TraceRecorder::Start(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return false;
  capacity_ = std::max<size_t>(options.buffer_events, 64);
  start_time_ = std::chrono::steady_clock::now();
  start_unix_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  // A new generation invalidates every thread's cached ring from prior
  // sessions; threads re-register lazily on their next Emit.
  generation_.fetch_add(1, std::memory_order_release);
  running_ = true;
  enabled_.store(true, std::memory_order_release);
  return true;
}

void TraceRecorder::SetCurrentThreadName(std::string_view name) {
  Tls& tls = GetTls();
  tls.pending_name.assign(name);
  if (tls.buffer != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    tls.buffer->name.assign(name);
  }
}

void TraceRecorder::RegisterThread(Tls* tls, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;  // raced with Stop; the event is simply lost
  (void)generation;
  auto buffer = std::make_shared<ThreadBuffer>(capacity_);
  buffer->tid = next_tid_++;
  buffer->name = tls->pending_name;
  buffer->base_steady_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start_time_.time_since_epoch())
          .count();
  buffers_.push_back(buffer);
  tls->buffer = std::move(buffer);
  tls->generation = generation_.load(std::memory_order_relaxed);
}

void TraceRecorder::Emit(const char* name, SpanCategory category,
                         std::string_view feed,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  if (!enabled()) return;
  Tls& tls = GetTls();
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (tls.buffer == nullptr || tls.generation != generation) {
    RegisterThread(&tls, generation);
    if (tls.buffer == nullptr || tls.generation != generation) return;
  }
  ThreadBuffer& buffer = *tls.buffer;

  PackedEvent event{};
  CopyTruncated(event.name, sizeof(event.name),
                name != nullptr ? std::string_view(name)
                                : std::string_view());
  CopyTruncated(event.feed, sizeof(event.feed), feed);
  int64_t start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start.time_since_epoch())
          .count() -
      buffer.base_steady_ns;
  int64_t dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       end - start)
                       .count();
  if (start_ns < 0) start_ns = 0;  // span began before the recorder did
  if (dur_ns < 0) dur_ns = 0;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.category = static_cast<uint64_t>(category);

  const uint64_t head = buffer.head.load(std::memory_order_relaxed);
  Slot& slot = buffer.slots[head % buffer.capacity];
  const uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: writing
  std::atomic_thread_fence(std::memory_order_release);
  uint64_t words[kSlotWords];
  std::memcpy(words, &event, sizeof(event));
  for (size_t i = 0; i < kSlotWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  buffer.head.store(head + 1, std::memory_order_release);
}

namespace {

bool ReadSlot(const Slot& slot, PackedEvent* out) {
  const uint32_t seq_before = slot.seq.load(std::memory_order_acquire);
  if ((seq_before & 1u) != 0) return false;  // writer mid-flight
  uint64_t words[kSlotWords];
  for (size_t i = 0; i < kSlotWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != seq_before) return false;
  std::memcpy(out, words, sizeof(*out));
  return true;
}

}  // namespace

TraceDump TraceRecorder::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  TraceDump dump;
  if (!running_) return dump;
  enabled_.store(false, std::memory_order_release);
  dump.start_unix_us = start_unix_us_;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    TraceThreadInfo info;
    info.tid = buffer->tid;
    info.name = buffer->name;
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(head, buffer->capacity);
    uint64_t dropped = head - kept;  // overwritten before the drain
    for (uint64_t i = head - kept; i < head; ++i) {
      PackedEvent packed;
      if (!ReadSlot(buffer->slots[i % buffer->capacity], &packed)) {
        ++dropped;  // torn by a still-running writer
        continue;
      }
      TraceEvent event;
      event.name = DecodeField(packed.name, sizeof(packed.name));
      event.feed = DecodeField(packed.feed, sizeof(packed.feed));
      event.category = static_cast<SpanCategory>(
          packed.category <= static_cast<uint64_t>(SpanCategory::kPool)
              ? packed.category
              : static_cast<uint64_t>(SpanCategory::kPool));
      event.tid = buffer->tid;
      event.start_ns = packed.start_ns;
      event.dur_ns = packed.dur_ns;
      dump.events.push_back(std::move(event));
    }
    info.dropped = dropped;
    dump.dropped += dropped;
    dump.threads.push_back(std::move(info));
  }
  buffers_.clear();  // thread-local shared_ptrs keep live writers safe
  running_ = false;
  if (dump.dropped > 0) {
    // Ring overwrites are otherwise only visible in the dump itself;
    // the registry counter makes them scrapeable across sessions.
    Registry::Default()
        .GetCounter("frt_trace_dropped_total",
                    "Trace spans overwritten before the ring was drained")
        ->Inc(dump.dropped);
  }
  std::sort(dump.events.begin(), dump.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  return dump;
}

}  // namespace frt::obs
