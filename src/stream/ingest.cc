#include "stream/ingest.h"

#include <algorithm>
#include <istream>
#include <utility>

#include "obs/trace.h"
#include "traj/io.h"

namespace frt {

TrajectoryReader::TrajectoryReader(std::istream& in,
                                   TrajectoryReaderOptions options)
    : in_(in), options_(options) {
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 1;
}

bool TrajectoryReader::Refill() {
  if (eof_) return false;
  // Compact the consumed prefix before growing the buffer, so memory stays
  // bounded by one chunk plus one partial line.
  if (scan_ > 0) {
    buffer_.erase(0, scan_);
    scan_ = 0;
  }
  // Block for the first byte only, then take whatever else the stream
  // already has buffered (capped at chunk_bytes). istream::read(n) would
  // instead block until all n bytes arrive, which on a slow live feed
  // (frt_stream --input - on a pipe) could stall for minutes with whole
  // windows' worth of data already parseable.
  const int ch = in_.get();
  if (ch == std::istream::traits_type::eof()) {
    eof_ = true;
    return false;
  }
  buffer_.push_back(static_cast<char>(ch));
  const std::streamsize avail = in_.rdbuf()->in_avail();
  if (avail > 0 && options_.chunk_bytes > 1) {
    const size_t want = std::min(static_cast<size_t>(avail),
                                 options_.chunk_bytes - 1);
    const size_t old_size = buffer_.size();
    buffer_.resize(old_size + want);
    in_.read(&buffer_[old_size], static_cast<std::streamsize>(want));
    buffer_.resize(old_size + static_cast<size_t>(in_.gcount()));
  }
  return true;
}

Status TrajectoryReader::ConsumeLine(std::string_view line,
                                     std::optional<Trajectory>* completed) {
  ++lines_read_;
  FRT_ASSIGN_OR_RETURN(const std::optional<CsvRecord> record,
                       ParseCsvRecord(line, lines_read_));
  if (!record.has_value()) return Status::OK();  // comment or blank
  ++records_read_;
  if (has_current_ && current_.id() != record->id) {
    *completed = std::move(current_);
    current_ = Trajectory(record->id);
  } else if (!has_current_) {
    current_ = Trajectory(record->id);
    has_current_ = true;
  }
  current_.Append(record->p, record->t);
  return Status::OK();
}

Result<std::optional<Trajectory>> TrajectoryReader::Next() {
  if (!error_.ok()) return error_;
  if (done_) return std::optional<Trajectory>();
  // Covers both the read wait and the parse work per trajectory.
  obs::ScopedSpan span("ingest_parse", obs::SpanCategory::kIngest);
  for (;;) {
    // Drain complete lines already buffered.
    size_t newline = buffer_.find('\n', scan_);
    while (newline != std::string::npos) {
      const std::string_view line(buffer_.data() + scan_, newline - scan_);
      scan_ = newline + 1;
      std::optional<Trajectory> completed;
      if (Status st = ConsumeLine(line, &completed); !st.ok()) {
        error_ = st;
        return error_;
      }
      if (completed.has_value()) {
        ++trajectories_read_;
        return completed;
      }
      newline = buffer_.find('\n', scan_);
    }
    if (Refill()) continue;
    // End of stream: the remaining bytes are one final unterminated line.
    if (scan_ < buffer_.size()) {
      const std::string_view line(buffer_.data() + scan_,
                                  buffer_.size() - scan_);
      scan_ = buffer_.size();
      std::optional<Trajectory> completed;
      if (Status st = ConsumeLine(line, &completed); !st.ok()) {
        error_ = st;
        return error_;
      }
      if (completed.has_value()) {
        ++trajectories_read_;
        return completed;
      }
    }
    done_ = true;
    if (has_current_ && !current_.empty()) {
      has_current_ = false;
      ++trajectories_read_;
      return std::optional<Trajectory>(std::move(current_));
    }
    return std::optional<Trajectory>();
  }
}

Result<Dataset> ReadDatasetFromStream(std::istream& in,
                                      TrajectoryReaderOptions options) {
  TrajectoryReader reader(in, options);
  Dataset dataset;
  for (;;) {
    FRT_ASSIGN_OR_RETURN(std::optional<Trajectory> next, reader.Next());
    if (!next.has_value()) break;
    FRT_RETURN_IF_ERROR(dataset.Add(std::move(*next)));
  }
  return dataset;
}

}  // namespace frt
