#include "stream/stream_runner.h"

#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/bounded_queue.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace frt {

StreamRunner::StreamRunner(StreamRunnerConfig config)
    : config_(std::move(config)) {
  if (config_.window_size == 0) config_.window_size = 1;
  if (config_.window_stride == 0 ||
      config_.window_stride > config_.window_size) {
    config_.window_stride = config_.window_size;
  }
  if (config_.queue_capacity == 0) {
    config_.queue_capacity = 2 * config_.window_size;
  }
}

namespace {

bool AdmitWholesaleImpl(const Dataset& window, size_t index,
                        double window_epsilon,
                        const PrivacyAccountant& accountant,
                        StreamReport* report,
                        const std::string& log_prefix) {
  if (!accountant.enforcing() ||
      accountant.remaining() + 1e-12 >= window_epsilon) {
    return true;
  }
  ++report->windows_refused;
  report->trajectories_refused += window.size();
  FRT_LOG(Warning) << log_prefix
                   << "privacy budget exhausted: refusing window #" << index
                   << " (" << window.size() << " trajectories); spent "
                   << accountant.spent() << " of "
                   << accountant.total_budget() << ", next window needs "
                   << window_epsilon;
  return false;
}

bool AdmitPerObjectImpl(Dataset* window, size_t index, double window_epsilon,
                        bool evict_exhausted,
                        const ObjectBudgetAccountant& accountant,
                        StreamReport* report, size_t* evicted,
                        const std::string& log_prefix) {
  if (!accountant.enforcing()) return true;
  std::vector<TrajId> ids;
  ids.reserve(window->size());
  for (const auto& t : window->trajectories()) ids.push_back(t.id());
  std::vector<TrajId> admissible, exhausted;
  accountant.FilterAdmissible(ids, window_epsilon, &admissible, &exhausted);
  if (exhausted.empty()) return true;
  if (!evict_exhausted || admissible.empty()) {
    ++report->windows_refused;
    report->trajectories_refused += window->size();
    FRT_LOG(Warning) << log_prefix
                     << "per-object budget exhausted: refusing window #"
                     << index << " (" << window->size() << " trajectories, "
                     << exhausted.size() << " exhausted object(s); object "
                     << exhausted.front() << " spent "
                     << accountant.spent(exhausted.front()) << " of "
                     << accountant.per_object_budget()
                     << ", next window needs " << window_epsilon << ")";
    return false;
  }
  std::unordered_set<TrajId> drop(exhausted.begin(), exhausted.end());
  std::vector<Trajectory> kept;
  kept.reserve(admissible.size());
  for (auto& t : window->mutable_trajectories()) {
    if (drop.count(t.id()) == 0) kept.push_back(std::move(t));
  }
  *window = Dataset(std::move(kept));
  *evicted = exhausted.size();
  report->trajectories_evicted += exhausted.size();
  FRT_LOG(Warning) << log_prefix << "per-object budget: evicting "
                   << exhausted.size()
                   << " exhausted object(s) from window #" << index << " ("
                   << window->size() << " remain; object "
                   << exhausted.front() << " spent "
                   << accountant.spent(exhausted.front()) << " of "
                   << accountant.per_object_budget() << ")";
  return true;
}

}  // namespace

bool AdmitWindowOnBudget(Dataset* window, size_t index,
                         double window_epsilon, BudgetAccounting accounting,
                         bool evict_exhausted,
                         const PrivacyAccountant& accountant,
                         const ObjectBudgetAccountant& object_accountant,
                         StreamReport* report, size_t* evicted,
                         const std::string& log_prefix) {
  return accounting == BudgetAccounting::kPerObject
             ? AdmitPerObjectImpl(window, index, window_epsilon,
                                  evict_exhausted, object_accountant,
                                  report, evicted, log_prefix)
             : AdmitWholesaleImpl(*window, index, window_epsilon, accountant,
                                  report, log_prefix);
}

Status StreamRunner::ProcessWindow(Dataset&& window, WindowClose reason,
                                   const WindowSink& sink, Rng& rng,
                                   WorkStealingPool* pool) {
  const size_t index = report_.windows_closed;
  ++report_.windows_closed;
  if (reason == WindowClose::kDeadline) ++report_.windows_deadline_closed;
  // Fork before the budget check so the RNG stream consumed per window is
  // independent of how much budget happens to remain.
  Rng window_rng = rng.Fork();
  const double window_epsilon = config_.batch.pipeline.epsilon_global +
                                config_.batch.pipeline.epsilon_local;
  size_t evicted = 0;
  const bool admitted = AdmitWindowOnBudget(
      &window, index, window_epsilon, config_.accounting,
      config_.evict_exhausted, accountant_, object_accountant_, &report_,
      &evicted, /*log_prefix=*/"");
  if (!admitted) {
    // Under kWholesale the per-window cost is constant, so no later
    // window can fit either; under kPerObject the latch only drives
    // stop_when_exhausted.
    refused_ = true;
    return Status::OK();
  }

  BatchRunnerConfig batch_config = config_.batch;
  batch_config.pool = pool;
  BatchRunner runner(batch_config);
  const auto anonymize_start = std::chrono::steady_clock::now();
  FRT_ASSIGN_OR_RETURN(Dataset published, runner.Anonymize(window, window_rng));
  obs::EmitSpan("anonymize", obs::SpanCategory::kAnonymize, {},
                anonymize_start, std::chrono::steady_clock::now());

  WindowReport window_report;
  window_report.index = index;
  window_report.close_reason = reason;
  window_report.trajectories = published.size();
  window_report.trajectories_evicted = evicted;
  window_report.epsilon_spent = runner.report().epsilon_spent;
  window_report.batch = runner.report();
  // The id lists are consumed below (per-object charge) and would
  // otherwise sit duplicated in every retained WindowReport; the bounded
  // report history keeps only the scalar diagnostics.
  window_report.batch.shard_object_ids.clear();
  if (window_report.epsilon_spent > 0.0) {
    if (config_.accounting == BudgetAccounting::kPerObject) {
      // Charge the released objects in one transaction, keyed off the ids
      // the batch actually consumed (BatchReport::shard_object_ids), at the
      // window's spend (max over shards — each object sat in one shard, and
      // uniform per-shard epsilons make the max exact, not just a bound).
      // SpendWindow re-verifies admission, so even a drifted caller could
      // never push an object past its budget.
      std::vector<TrajId> released;
      released.reserve(published.size());
      for (const auto& shard_ids : runner.report().shard_object_ids) {
        released.insert(released.end(), shard_ids.begin(), shard_ids.end());
      }
      FRT_RETURN_IF_ERROR(object_accountant_.SpendWindow(
          released, window_report.epsilon_spent));
    }
    // The wholesale ledger runs in both modes (enforcing only under
    // kWholesale), so per-object runs can report the pessimism gap between
    // the sequential sum and the true per-object maximum.
    FRT_RETURN_IF_ERROR(accountant_.Spend(
        window_report.epsilon_spent,
        "window " + std::to_string(index) + " (sequential composition)"));
  }
  const bool per_object =
      config_.accounting == BudgetAccounting::kPerObject;
  window_report.epsilon_total =
      per_object ? object_accountant_.max_spent() : accountant_.spent();
  report_.epsilon_spent = window_report.epsilon_total;
  report_.epsilon_wholesale_equivalent = accountant_.spent();
  // The budget above is spent either way, but the window only counts as
  // published once the sink accepted it.
  const auto sink_start = std::chrono::steady_clock::now();
  FRT_RETURN_IF_ERROR(sink(published, window_report));
  obs::EmitSpan("sink", obs::SpanCategory::kPublish, {}, sink_start,
                std::chrono::steady_clock::now());
  ++report_.windows_published;
  report_.trajectories_published += published.size();
  report_.windows.push_back(std::move(window_report));
  if (config_.max_window_reports > 0 &&
      report_.windows.size() > config_.max_window_reports) {
    report_.windows.erase(report_.windows.begin());
  }
  return Status::OK();
}

Status StreamRunner::Run(TrajectoryReader& reader, const WindowSink& sink,
                         Rng& rng) {
  report_ = StreamReport{};
  refused_ = false;
  accountant_ = (config_.accounting == BudgetAccounting::kWholesale &&
                 config_.total_budget > 0.0)
                    ? PrivacyAccountant(config_.total_budget)
                    : PrivacyAccountant();
  accountant_.set_max_ledger_entries(config_.max_window_reports);
  object_accountant_ = (config_.accounting == BudgetAccounting::kPerObject &&
                        config_.per_object_budget > 0.0)
                           ? ObjectBudgetAccountant(config_.per_object_budget)
                           : ObjectBudgetAccountant();
  object_accountant_.set_max_tracked_objects(config_.max_tracked_objects);
  // Spend recovered from a durable checkpoint of a previous run: the same
  // conservative carry the serving layer's idle eviction uses. A recovered
  // run can only under-grant remaining budget, never over-grant.
  if (config_.preload_wholesale_spent > 0.0) {
    accountant_.PreloadSpent(config_.preload_wholesale_spent,
                             "recovered from checkpoint");
  }
  if (config_.preload_object_floor > 0.0) {
    object_accountant_.PreloadFloor(config_.preload_object_floor);
  }
  Stopwatch wall;

  // One pool for the whole stream; every window's BatchRunner borrows it,
  // so worker threads are spawned once, not per window. Under kStatic
  // dispatch BatchRunner bypasses the pool entirely (ParallelFor spawns
  // and joins threads per window — the A/B baseline's cost model), so no
  // pool is constructed in that mode.
  std::unique_ptr<WorkStealingPool> pool;
  if (config_.batch.dispatch == ShardDispatch::kWorkStealing &&
      config_.batch.shards > 1) {
    pool = std::make_unique<WorkStealingPool>(config_.batch.threads);
  }

  BoundedQueue<Trajectory> queue(config_.queue_capacity);
  // Written by the producer only; read by this thread after join().
  Status ingest_status = Status::OK();
  std::thread producer([&] {
    obs::SetTraceThreadName("ingest");
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) {
        ingest_status = next.status();
        break;
      }
      if (!next->has_value()) break;
      // Push fails only when the consumer closed the queue early (abort).
      if (!queue.Push(std::move(**next))) break;
    }
    queue.Close();
  });

  // Ring buffer of pending trajectories (stream/window_assembler.h): a
  // window closes over the whole buffer once it holds window_size
  // arrivals — or, with close_after_ms, once its oldest uncovered arrival
  // has waited out the deadline — and the oldest `stride` then retire, so
  // with stride < window_size the remaining tail overlaps into the next
  // window.
  WindowAssembler assembler(config_.window_size, config_.window_stride);
  const bool timed = config_.close_after_ms > 0;
  const std::chrono::steady_clock::duration close_delay =
      CloseTimerDelay(config_.close_after_ms);
  std::chrono::steady_clock::time_point oldest_uncovered_at{};

  auto close_window = [&](WindowClose reason) -> Status {
    Result<Dataset> window = assembler.CloseWindow();
    if (!window.ok()) {
      return Status::InvalidArgument(
          "window " + std::to_string(report_.windows_closed) + ": " +
          window.status().message() +
          " (each object may appear once per window)");
    }
    return ProcessWindow(std::move(*window), reason, sink, rng, pool.get());
  };

  Status run_status = Status::OK();
  bool stopped_early = false;
  bool input_done = false;
  while (!input_done) {
    std::optional<Trajectory> t;
    if (timed && assembler.uncovered() > 0) {
      // Arrivals are pending a window: wait only until their closure
      // deadline, then publish what the buffer holds.
      Trajectory item;
      switch (queue.PopUntil(oldest_uncovered_at + close_delay, &item)) {
        case QueuePop::kItem:
          t = std::move(item);
          break;
        case QueuePop::kTimeout: {
          if (Status st = close_window(WindowClose::kDeadline); !st.ok()) {
            run_status = st;
            input_done = true;
          }
          if (refused_ && config_.stop_when_exhausted) {
            stopped_early = true;
            input_done = true;
          }
          continue;
        }
        case QueuePop::kClosed:
          input_done = true;
          continue;
      }
    } else {
      t = queue.Pop();
      if (!t.has_value()) break;
    }
    ++report_.trajectories_in;
    if (timed && assembler.uncovered() == 0) {
      oldest_uncovered_at = std::chrono::steady_clock::now();
    }
    assembler.Push(std::move(*t));
    if (assembler.WindowReady()) {
      if (Status st = close_window(WindowClose::kCount); !st.ok()) {
        run_status = st;
        break;
      }
      if (refused_ && config_.stop_when_exhausted) {
        stopped_early = true;
        break;
      }
    }
  }
  // Reap the producer BEFORE deciding about the trailing partial window: a
  // parse error mid-stream must fail the run without publishing (or
  // spending budget on) trajectories read ahead of the bad line. Close()
  // unblocks a producer stuck in Push(); one inside a blocking stream read
  // returns at the feed's next record or end of stream (see Run's doc
  // comment — blocking istream reads are not interruptible).
  queue.Close();
  producer.join();
  if (run_status.ok()) run_status = ingest_status;
  if (run_status.ok() && !stopped_early && assembler.uncovered() > 0) {
    // The partially-filled next window: under sliding windows it starts
    // with the overlap tail retained above, under tumbling windows it is
    // exactly the arrivals since the last close. Movable either way — the
    // stream is over, nothing re-enters a later window.
    Result<Dataset> window = assembler.CloseFinal();
    if (!window.ok()) {
      run_status = Status::InvalidArgument(
          "window " + std::to_string(report_.windows_closed) + ": " +
          window.status().message() +
          " (each object may appear once per window)");
    } else {
      run_status = ProcessWindow(std::move(*window), WindowClose::kFinal,
                                 sink, rng, pool.get());
    }
  }
  report_.wall_seconds = wall.ElapsedSeconds();
  return run_status;
}

}  // namespace frt
