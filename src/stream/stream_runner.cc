#include "stream/stream_runner.h"

#include <memory>
#include <thread>
#include <utility>

#include "common/bounded_queue.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace frt {

StreamRunner::StreamRunner(StreamRunnerConfig config)
    : config_(std::move(config)) {
  if (config_.window_size == 0) config_.window_size = 1;
  if (config_.queue_capacity == 0) {
    config_.queue_capacity = 2 * config_.window_size;
  }
}

Status StreamRunner::ProcessWindow(Dataset&& window, const WindowSink& sink,
                                   Rng& rng, WorkStealingPool* pool) {
  const size_t index = report_.windows_closed;
  ++report_.windows_closed;
  // Fork before the budget check so the RNG stream consumed per window is
  // independent of how much budget happens to remain.
  Rng window_rng = rng.Fork();
  const double window_epsilon =
      config_.batch.pipeline.epsilon_global + config_.batch.pipeline.epsilon_local;
  if (accountant_.enforcing() &&
      accountant_.remaining() + 1e-12 < window_epsilon) {
    ++report_.windows_refused;
    report_.trajectories_refused += window.size();
    // The per-window cost is constant, so no later window can fit either.
    exhausted_ = true;
    FRT_LOG(Warning) << "privacy budget exhausted: refusing window #" << index
                     << " (" << window.size() << " trajectories); spent "
                     << accountant_.spent() << " of "
                     << accountant_.total_budget() << ", next window needs "
                     << window_epsilon;
    return Status::OK();
  }

  BatchRunnerConfig batch_config = config_.batch;
  batch_config.pool = pool;
  BatchRunner runner(batch_config);
  FRT_ASSIGN_OR_RETURN(Dataset published, runner.Anonymize(window, window_rng));

  WindowReport window_report;
  window_report.index = index;
  window_report.trajectories = published.size();
  window_report.epsilon_spent = runner.report().epsilon_spent;
  window_report.batch = runner.report();
  if (window_report.epsilon_spent > 0.0) {
    FRT_RETURN_IF_ERROR(accountant_.Spend(
        window_report.epsilon_spent,
        "window " + std::to_string(index) + " (sequential composition)"));
  }
  window_report.epsilon_total = accountant_.spent();
  report_.epsilon_spent = accountant_.spent();
  // The budget above is spent either way, but the window only counts as
  // published once the sink accepted it.
  FRT_RETURN_IF_ERROR(sink(published, window_report));
  ++report_.windows_published;
  report_.trajectories_published += published.size();
  report_.windows.push_back(std::move(window_report));
  if (config_.max_window_reports > 0 &&
      report_.windows.size() > config_.max_window_reports) {
    report_.windows.erase(report_.windows.begin());
  }
  return Status::OK();
}

Status StreamRunner::Run(TrajectoryReader& reader, const WindowSink& sink,
                         Rng& rng) {
  report_ = StreamReport{};
  exhausted_ = false;
  accountant_ = config_.total_budget > 0.0
                    ? PrivacyAccountant(config_.total_budget)
                    : PrivacyAccountant();
  accountant_.set_max_ledger_entries(config_.max_window_reports);
  Stopwatch wall;

  // One pool for the whole stream; every window's BatchRunner borrows it,
  // so worker threads are spawned once, not per window. Under kStatic
  // dispatch BatchRunner bypasses the pool entirely (ParallelFor spawns
  // and joins threads per window — the A/B baseline's cost model), so no
  // pool is constructed in that mode.
  std::unique_ptr<WorkStealingPool> pool;
  if (config_.batch.dispatch == ShardDispatch::kWorkStealing &&
      config_.batch.shards > 1) {
    pool = std::make_unique<WorkStealingPool>(config_.batch.threads);
  }

  BoundedQueue<Trajectory> queue(config_.queue_capacity);
  // Written by the producer only; read by this thread after join().
  Status ingest_status = Status::OK();
  std::thread producer([&] {
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) {
        ingest_status = next.status();
        break;
      }
      if (!next->has_value()) break;
      // Push fails only when the consumer closed the queue early (abort).
      if (!queue.Push(std::move(**next))) break;
    }
    queue.Close();
  });

  Status run_status = Status::OK();
  Dataset window;
  bool stopped_early = false;
  while (true) {
    std::optional<Trajectory> t = queue.Pop();
    if (!t.has_value()) break;
    ++report_.trajectories_in;
    if (Status st = window.Add(std::move(*t)); !st.ok()) {
      // Duplicate id inside one window: the window's parallel-composition
      // argument needs each object in exactly one shard.
      run_status = Status::InvalidArgument(
          "window " + std::to_string(report_.windows_closed) + ": " +
          st.message() + " (each object may appear once per window)");
      break;
    }
    if (window.size() >= config_.window_size) {
      if (Status st = ProcessWindow(std::move(window), sink, rng, pool.get());
          !st.ok()) {
        run_status = st;
        break;
      }
      window = Dataset();
      if (exhausted_ && config_.stop_when_exhausted) {
        stopped_early = true;
        break;
      }
    }
  }
  // Reap the producer BEFORE deciding about the trailing partial window: a
  // parse error mid-stream must fail the run without publishing (or
  // spending budget on) trajectories read ahead of the bad line. Close()
  // unblocks a producer stuck in Push(); one inside a blocking stream read
  // returns at the feed's next record or end of stream (see Run's doc
  // comment — blocking istream reads are not interruptible).
  queue.Close();
  producer.join();
  if (run_status.ok()) run_status = ingest_status;
  if (run_status.ok() && !stopped_early && !window.empty()) {
    run_status = ProcessWindow(std::move(window), sink, rng, pool.get());
  }
  report_.wall_seconds = wall.ElapsedSeconds();
  return run_status;
}

}  // namespace frt
