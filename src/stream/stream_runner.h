// StreamRunner: long-running windowed anonymization service.
//
// Pipeline: an ingest thread pulls trajectories from a TrajectoryReader and
// pushes them through a BoundedQueue (backpressure caps in-flight memory);
// the caller's thread assembles windows of `window_size` trajectories from
// a ring buffer of pending arrivals (stream/window_assembler.h, shared
// with the multi-feed serving layer) and anonymizes each window with
// BatchRunner, sharing one WorkStealingPool across every window so no
// threads are re-spawned. Windows advance by `window_stride` arrivals:
// stride == size gives the classic tumbling windows, stride < size gives
// sliding (overlapping) windows where each trajectory is re-published with
// `window_size / stride` windows' worth of fresh context. With
// `close_after_ms` set, a window also closes when its oldest uncovered
// arrival has waited that long — the wall-clock latency SLO for trickle
// feeds. Each published window is handed to a sink callback immediately,
// so output is emitted incrementally instead of after the whole stream.
//
// Privacy accounting (the part that differs from batch): within one window
// every moving object appears in exactly one shard, so the window costs
// eps_G + eps_L by parallel composition. Across windows the same object-id
// space may reappear (the stream is a feed, not a partition), so an
// object's releases compose SEQUENTIALLY. Two selectable accountants
// enforce that:
//
//   kWholesale  — the PR 2 ledger: every window's spend is summed against
//                 `total_budget` regardless of which objects it contained.
//                 Sound but pessimistic (objects that never reappear are
//                 billed as if they did); kept as the A/B baseline.
//   kPerObject  — ObjectBudgetAccountant: a per-object-id ledger enforcing
//                 `per_object_budget` on each object's own cumulative
//                 spend, which is exactly the paper's per-object guarantee.
//                 A window is refused only when it contains an object that
//                 cannot afford it — and with `evict_exhausted` the
//                 exhausted objects are evicted from the window while the
//                 rest still publishes.
//
// Refused windows (and evicted trajectories) are counted and dropped,
// never published with a weaker guarantee.

#ifndef FRT_STREAM_STREAM_RUNNER_H_
#define FRT_STREAM_STREAM_RUNNER_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/accountant.h"
#include "dp/object_accountant.h"
#include "runtime/batch_runner.h"
#include "stream/ingest.h"
#include "stream/window_assembler.h"
#include "traj/dataset.h"

namespace frt {

/// Why a window left the assembler.
enum class WindowClose {
  kCount,     ///< the buffer reached window_size arrivals
  kDeadline,  ///< the oldest uncovered arrival hit close_after_ms
  kFinal,     ///< end of stream: the trailing partial window
};

/// \brief Delay before a close_after_ms timer fires.
///
/// The deadline is an SLO — the window must be CLOSED by then — so the
/// timer is armed a guard margin (an eighth of the deadline, at most
/// 25 ms) early; the close plus its scheduler wake-up slack then lands
/// before the deadline instead of straddling it, even on a loaded host.
inline std::chrono::steady_clock::duration CloseTimerDelay(
    int64_t close_after_ms) {
  const int64_t guard_ms =
      std::min<int64_t>(close_after_ms / 8 + 1, 25);
  return std::chrono::milliseconds(
      close_after_ms > guard_ms ? close_after_ms - guard_ms : 0);
}

/// Cross-window budget accounting mode (see file comment).
enum class BudgetAccounting {
  kWholesale,  ///< one sequential ledger over all windows (PR 2 baseline)
  kPerObject,  ///< per-object-id ledgers (paper's per-object guarantee)
};

/// Configuration of the streaming service.
struct StreamRunnerConfig {
  /// Per-window execution: pipeline budgets, shard count, threads,
  /// dispatch. `batch.pool` is managed by the runner and ignored here.
  BatchRunnerConfig batch;
  /// Trajectories per window. The final window may be smaller.
  size_t window_size = 1000;
  /// Arrivals between consecutive window starts. 0 (default) means
  /// window_size, i.e. tumbling windows; values in [1, window_size) give
  /// sliding windows overlapping by window_size - stride trajectories.
  /// Clamped to [1, window_size].
  size_t window_stride = 0;
  /// Which accountant enforces the cross-window guarantee.
  BudgetAccounting accounting = BudgetAccounting::kWholesale;
  /// kWholesale: total epsilon budget summed over every window. 0 disables
  /// enforcement: the ledger still tracks, but no window is ever refused.
  double total_budget = 0.0;
  /// kPerObject: epsilon budget each object-id may cumulatively spend
  /// across the windows that contain it. 0 disables enforcement.
  double per_object_budget = 0.0;
  /// kPerObject only: when a window contains exhausted objects, evict just
  /// those trajectories and publish the rest, instead of refusing the
  /// whole window. A window whose every object is exhausted is still
  /// refused outright.
  bool evict_exhausted = false;
  /// kPerObject only: per-object ledgers retained exactly; beyond this the
  /// lowest spenders fold into a conservative floor (see
  /// ObjectBudgetAccountant). Bounds memory on unbounded id spaces.
  /// 0 tracks every id exactly.
  size_t max_tracked_objects = 1 << 20;
  /// Capacity of the ingest queue, in trajectories; 0 means 2x window_size.
  size_t queue_capacity = 0;
  /// Most recent per-window reports (and wholesale ledger entries)
  /// retained; aggregate counters stay exact. Bounds the runner's memory
  /// on unbounded feeds. 0 keeps every window's report.
  size_t max_window_reports = 64;
  /// End the run at the first refused window instead of draining (and
  /// counting) the rest of the feed. Under kWholesale the per-window cost
  /// is constant, so the first refusal proves no later window can ever fit
  /// — on an unbounded feed this is the only way the run terminates once
  /// the budget is spent. Under kPerObject a later window of fresh objects
  /// could still fit; stopping is then simply "end service at the first
  /// refusal". Off by default: finite batch feeds usually want the
  /// refused-trajectory tally.
  bool stop_when_exhausted = false;
  /// Wall-clock closure deadline in milliseconds: a non-empty window is
  /// closed — and published, possibly short of window_size — no later than
  /// close_after_ms after its oldest uncovered arrival was ingested (the
  /// timer is armed a small guard early, see CloseTimerDelay). This is the
  /// latency-SLO lever for trickle feeds, where count-based closure alone
  /// would hold arrivals hostage until the feed fills a window. 0
  /// (default) disables: windows close on count or end of stream only, and
  /// the ingest path is byte-identical to previous releases.
  int64_t close_after_ms = 0;
  /// Budget state recovered from a durable checkpoint of a previous run
  /// (see service/checkpoint.h), preloaded before the first window: the
  /// exact wholesale spend via PrivacyAccountant::PreloadSpent, and the
  /// conservative per-object floor via
  /// ObjectBudgetAccountant::PreloadFloor. 0 (default) starts fresh.
  double preload_wholesale_spent = 0.0;
  double preload_object_floor = 0.0;
};

/// Diagnostics of one published window.
struct WindowReport {
  /// 0-based index in arrival order (refused windows keep their index).
  size_t index = 0;
  /// What closed this window: a full count, the close_after_ms deadline,
  /// or the end of the stream.
  WindowClose close_reason = WindowClose::kCount;
  /// Service diagnostics (multi-feed dispatcher only; 0 under the
  /// single-feed runner): oldest uncovered arrival -> close, and close ->
  /// publish. close_wait_ms is the latency --close-after-ms bounds.
  double close_wait_ms = 0.0;
  double publish_latency_ms = 0.0;
  size_t trajectories = 0;
  /// Exhausted objects evicted from this window before anonymization
  /// (kPerObject with evict_exhausted only).
  size_t trajectories_evicted = 0;
  /// Epsilon this window consumed (max over its shards).
  double epsilon_spent = 0.0;
  /// Running guarantee after this window: cumulative ledger total under
  /// kWholesale; maximum per-object cumulative spend under kPerObject.
  double epsilon_total = 0.0;
  /// Batch diagnostics (shard skew, edits, wall time) of this window.
  BatchReport batch;
};

/// Aggregated diagnostics of one streaming run.
struct StreamReport {
  size_t windows_closed = 0;     ///< assembled from the input
  size_t windows_published = 0;  ///< anonymized and emitted
  size_t windows_refused = 0;    ///< dropped: budget exhausted
  /// Windows closed by the close_after_ms deadline rather than by count
  /// or end of stream.
  size_t windows_deadline_closed = 0;
  size_t trajectories_in = 0;
  size_t trajectories_published = 0;
  size_t trajectories_refused = 0;
  /// Exhausted objects evicted from otherwise-published windows
  /// (kPerObject with evict_exhausted only).
  size_t trajectories_evicted = 0;
  /// End-to-end guarantee of the published stream: ledger total under
  /// kWholesale (sequential composition over windows); maximum per-object
  /// cumulative spend under kPerObject.
  double epsilon_spent = 0.0;
  /// kPerObject diagnostics: what the wholesale ledger would have charged
  /// (sum over published windows) — the pessimism gap versus epsilon_spent.
  double epsilon_wholesale_equivalent = 0.0;
  /// End-to-end wall time, ingest included.
  double wall_seconds = 0.0;
  /// Per-published-window diagnostics, in window order; bounded to the
  /// most recent `max_window_reports` when that is non-zero.
  std::vector<WindowReport> windows;
};

/// True when the run dropped anything on budget — a refused window or an
/// evicted trajectory. frt_stream maps this to exit code 3, so tests can
/// lock the CLI's exit behavior at the library layer.
inline bool StreamHadRefusals(const StreamReport& report) {
  return report.windows_refused > 0 || report.trajectories_evicted > 0;
}

/// \brief Shared budget admission control for one closed window — the
/// single implementation behind both the single-feed StreamRunner and the
/// multi-feed FeedSession, so the two layers cannot drift on tolerance,
/// eviction policy, or refusal accounting.
///
/// Under kWholesale the whole window is admitted or refused against
/// `accountant`. Under kPerObject (with `evict_exhausted`) exhausted
/// objects may instead be evicted from `window` in place, `*evicted`
/// counting them. Refusals/evictions are recorded in `report`'s counters;
/// diagnostics are logged with `log_prefix` (e.g. "feed taxi: ").
/// Returns true when the (possibly shrunk) window may run.
bool AdmitWindowOnBudget(Dataset* window, size_t index,
                         double window_epsilon, BudgetAccounting accounting,
                         bool evict_exhausted,
                         const PrivacyAccountant& accountant,
                         const ObjectBudgetAccountant& object_accountant,
                         StreamReport* report, size_t* evicted,
                         const std::string& log_prefix);

/// Receives each published window right after anonymization. A non-OK
/// return aborts the run. The Dataset holds only this window's
/// trajectories; with sliding windows (stride < size) the same trajectory
/// reappears in consecutive windows, and ids repeat across windows when
/// objects reappear in the feed.
using WindowSink =
    std::function<Status(const Dataset& published, const WindowReport&)>;

/// \brief Drives reader -> windows -> BatchRunner -> sink until the stream
/// ends or the run fails.
class StreamRunner {
 public:
  explicit StreamRunner(StreamRunnerConfig config);

  /// \brief Consumes the whole stream. Deterministic given `rng`'s state,
  /// the window geometry, and the shard count — each window anonymizes on
  /// its own fork of `rng`, in arrival order.
  ///
  /// Returns non-OK on ingest parse errors, duplicate ids within one
  /// window, pipeline failures, or sink failures. Budget exhaustion is NOT
  /// an error: remaining windows are counted as refused (with a logged
  /// diagnostic) and the run completes — or, with stop_when_exhausted,
  /// the run ends at the first refusal.
  ///
  /// Caveat for live feeds: the ingest thread uses blocking istream
  /// reads, which cannot be interrupted. If the run ends early (error or
  /// stop_when_exhausted) while the feed is silent, Run blocks until the
  /// feed's next record or end of stream before returning.
  Status Run(TrajectoryReader& reader, const WindowSink& sink, Rng& rng);

  /// Diagnostics of the most recent Run call.
  const StreamReport& report() const { return report_; }

  /// Wholesale cross-window ledger of the most recent Run call. Under
  /// kPerObject it still tracks (never refuses) so the pessimism gap is
  /// observable.
  const PrivacyAccountant& accountant() const { return accountant_; }

  /// Per-object ledger of the most recent Run call (kPerObject mode; a
  /// default-constructed tracker otherwise).
  const ObjectBudgetAccountant& object_accountant() const {
    return object_accountant_;
  }

  const StreamRunnerConfig& config() const { return config_; }

 private:
  Status ProcessWindow(Dataset&& window, WindowClose reason,
                       const WindowSink& sink, Rng& rng,
                       WorkStealingPool* pool);

  StreamRunnerConfig config_;
  StreamReport report_;
  PrivacyAccountant accountant_;
  ObjectBudgetAccountant object_accountant_;
  /// Latched by the first refused window. Under kWholesale refusal is
  /// permanent (constant per-window cost); under kPerObject it only drives
  /// stop_when_exhausted.
  bool refused_ = false;
};

}  // namespace frt

#endif  // FRT_STREAM_STREAM_RUNNER_H_
