// StreamRunner: long-running windowed anonymization service.
//
// Pipeline: an ingest thread pulls trajectories from a TrajectoryReader and
// pushes them through a BoundedQueue (backpressure caps in-flight memory);
// the caller's thread closes tumbling windows of `window_size` trajectories
// and anonymizes each window with BatchRunner, sharing one WorkStealingPool
// across every window so no threads are re-spawned. Each published window
// is handed to a sink callback immediately, so output is emitted
// incrementally instead of after the whole stream.
//
// Privacy accounting (the part that differs from batch): within one window
// every moving object appears in exactly one shard, so the window costs
// eps_G + eps_L by parallel composition. Across windows the same object-id
// space may reappear (the stream is a feed, not a partition), so windows
// compose SEQUENTIALLY: the cross-window ledger sums the per-window spends
// against `total_budget` and, once the next window no longer fits, refuses
// it — refused windows are counted and dropped, never published with a
// weaker guarantee.

#ifndef FRT_STREAM_STREAM_RUNNER_H_
#define FRT_STREAM_STREAM_RUNNER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/accountant.h"
#include "runtime/batch_runner.h"
#include "stream/ingest.h"
#include "traj/dataset.h"

namespace frt {

/// Configuration of the streaming service.
struct StreamRunnerConfig {
  /// Per-window execution: pipeline budgets, shard count, threads,
  /// dispatch. `batch.pool` is managed by the runner and ignored here.
  BatchRunnerConfig batch;
  /// Trajectories per tumbling window. The final window may be smaller.
  size_t window_size = 1000;
  /// Cross-window epsilon budget (sequential composition). 0 disables
  /// enforcement: the ledger still tracks, but no window is ever refused.
  double total_budget = 0.0;
  /// Capacity of the ingest queue, in trajectories; 0 means 2x window_size.
  size_t queue_capacity = 0;
  /// Most recent per-window reports (and accountant ledger entries)
  /// retained; aggregate counters stay exact. Bounds the runner's memory
  /// on unbounded feeds. 0 keeps every window's report.
  size_t max_window_reports = 64;
  /// End the run at the first refused window instead of draining (and
  /// counting) the rest of the feed. The per-window cost is constant, so
  /// the first refusal proves no later window can ever fit; on an
  /// unbounded feed this is the only way the run terminates once the
  /// budget is spent. Off by default: finite batch feeds usually want the
  /// refused-trajectory tally.
  bool stop_when_exhausted = false;
};

/// Diagnostics of one published window.
struct WindowReport {
  /// 0-based index in arrival order (refused windows keep their index).
  size_t index = 0;
  size_t trajectories = 0;
  /// Epsilon this window consumed from the cross-window ledger.
  double epsilon_spent = 0.0;
  /// Cumulative ledger total after this window.
  double epsilon_total = 0.0;
  /// Batch diagnostics (shard skew, edits, wall time) of this window.
  BatchReport batch;
};

/// Aggregated diagnostics of one streaming run.
struct StreamReport {
  size_t windows_closed = 0;     ///< assembled from the input
  size_t windows_published = 0;  ///< anonymized and emitted
  size_t windows_refused = 0;    ///< dropped: budget exhausted
  size_t trajectories_in = 0;
  size_t trajectories_published = 0;
  size_t trajectories_refused = 0;
  /// Ledger total across published windows (sequential composition).
  double epsilon_spent = 0.0;
  /// End-to-end wall time, ingest included.
  double wall_seconds = 0.0;
  /// Per-published-window diagnostics, in window order; bounded to the
  /// most recent `max_window_reports` when that is non-zero.
  std::vector<WindowReport> windows;
};

/// Receives each published window right after anonymization. A non-OK
/// return aborts the run. The Dataset holds only this window's
/// trajectories; ids repeat across windows when objects reappear.
using WindowSink =
    std::function<Status(const Dataset& published, const WindowReport&)>;

/// \brief Drives reader -> windows -> BatchRunner -> sink until the stream
/// ends or the run fails.
class StreamRunner {
 public:
  explicit StreamRunner(StreamRunnerConfig config);

  /// \brief Consumes the whole stream. Deterministic given `rng`'s state,
  /// the window size, and the shard count — each window anonymizes on its
  /// own fork of `rng`, in arrival order.
  ///
  /// Returns non-OK on ingest parse errors, duplicate ids within one
  /// window, pipeline failures, or sink failures. Budget exhaustion is NOT
  /// an error: remaining windows are counted as refused (with a logged
  /// diagnostic) and the run completes — or, with stop_when_exhausted,
  /// the run ends at the first refusal.
  ///
  /// Caveat for live feeds: the ingest thread uses blocking istream
  /// reads, which cannot be interrupted. If the run ends early (error or
  /// stop_when_exhausted) while the feed is silent, Run blocks until the
  /// feed's next record or end of stream before returning.
  Status Run(TrajectoryReader& reader, const WindowSink& sink, Rng& rng);

  /// Diagnostics of the most recent Run call.
  const StreamReport& report() const { return report_; }

  /// Cross-window privacy ledger of the most recent Run call.
  const PrivacyAccountant& accountant() const { return accountant_; }

  const StreamRunnerConfig& config() const { return config_; }

 private:
  Status ProcessWindow(Dataset&& window, const WindowSink& sink, Rng& rng,
                       WorkStealingPool* pool);

  StreamRunnerConfig config_;
  StreamReport report_;
  PrivacyAccountant accountant_;
  /// Latched by the first refused window (per-window cost is constant, so
  /// exhaustion is permanent for the rest of the run).
  bool exhausted_ = false;
};

}  // namespace frt

#endif  // FRT_STREAM_STREAM_RUNNER_H_
