// Incremental trajectory ingest for the streaming runtime.
//
// TrajectoryReader consumes the dataset CSV format (traj/io.h) from any
// std::istream — a file, a pipe, or stdin — in bounded chunks, and
// assembles complete trajectories from consecutive same-id lines without
// ever materializing the whole dataset. Memory held at any moment is one
// read chunk plus the trajectory currently being assembled, which is what
// lets frt_stream anonymize an unbounded feed with `--input -`.
//
// A trajectory is considered complete when a line with a different id (or
// end of stream) is seen, so inputs must keep each trajectory's lines
// contiguous — the same contract LoadDatasetCsv has always had.

#ifndef FRT_STREAM_INGEST_H_
#define FRT_STREAM_INGEST_H_

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>

#include "common/result.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace frt {

/// Tuning knobs of the incremental reader.
struct TrajectoryReaderOptions {
  /// Upper bound on bytes pulled from the stream per refill. A refill
  /// blocks only until the first byte is available and then takes what the
  /// stream already has buffered, so live feeds are consumed as they
  /// arrive. Small values are useful in tests to exercise chunk boundaries
  /// inside lines; the default amortizes syscall cost.
  size_t chunk_bytes = 1 << 16;
};

/// \brief Pull-based reader: one complete trajectory per Next() call.
class TrajectoryReader {
 public:
  /// The stream must outlive the reader. Reading starts at the stream's
  /// current position.
  explicit TrajectoryReader(std::istream& in,
                            TrajectoryReaderOptions options = {});

  /// \brief Returns the next complete trajectory, nullopt at clean end of
  /// stream, or an error Status on malformed input.
  ///
  /// After an error or end of stream, further calls return the same
  /// terminal state.
  Result<std::optional<Trajectory>> Next();

  /// Lines consumed so far (including comments and blanks).
  size_t lines_read() const { return lines_read_; }
  /// Sample records parsed so far.
  size_t records_read() const { return records_read_; }
  /// Complete trajectories returned so far.
  size_t trajectories_read() const { return trajectories_read_; }

 private:
  // Consumes one buffered line; sets *completed when a trajectory closed.
  Status ConsumeLine(std::string_view line, std::optional<Trajectory>* completed);
  // Pulls the next chunk into buffer_; false at end of stream.
  bool Refill();

  std::istream& in_;
  TrajectoryReaderOptions options_;
  std::string buffer_;    // unconsumed bytes; scan_ marks the parse frontier
  size_t scan_ = 0;
  bool eof_ = false;
  bool done_ = false;
  Status error_ = Status::OK();
  Trajectory current_;
  bool has_current_ = false;
  size_t lines_read_ = 0;
  size_t records_read_ = 0;
  size_t trajectories_read_ = 0;
};

/// \brief Drains `in` into a Dataset via the incremental reader. This is
/// the engine behind the CLIs' `--input -` mode. (LoadDatasetCsv keeps its
/// own loop over the shared ParseCsvRecord: traj/ must not depend on
/// stream/; stream_ingest_test locks the two paths' equivalence.)
Result<Dataset> ReadDatasetFromStream(
    std::istream& in, TrajectoryReaderOptions options = {});

}  // namespace frt

#endif  // FRT_STREAM_INGEST_H_
