// WindowAssembler: the ring-buffer window geometry shared by the
// single-feed StreamRunner and the multi-feed serving layer's FeedSession.
//
// Arrivals accumulate in a deque; a window "closes over" the whole buffer,
// then the oldest `stride` arrivals retire. stride == window_size gives
// tumbling windows (the buffer clears), stride < window_size gives sliding
// windows whose tail overlaps into the next window. `uncovered()` counts
// arrivals not yet part of any closed window — what a trailing partial
// window (end of stream, or a time-based closure deadline) must still
// cover.
//
// The assembler owns only the geometry. Policy — WHEN to close (count
// full, wall-clock deadline, end of stream) and what to do with the closed
// window (admission, anonymization, accounting) — stays with the caller,
// which is exactly what lets StreamRunner and FeedSession share it without
// sharing their very different execution models.

#ifndef FRT_STREAM_WINDOW_ASSEMBLER_H_
#define FRT_STREAM_WINDOW_ASSEMBLER_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "common/result.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace frt {

/// \brief Assembles count/stride windows from a stream of arrivals.
class WindowAssembler {
 public:
  /// Geometry is clamped the way StreamRunner always has: window_size 0
  /// becomes 1; stride 0 or > window_size becomes window_size (tumbling).
  explicit WindowAssembler(size_t window_size, size_t stride = 0)
      : window_size_(window_size == 0 ? 1 : window_size),
        stride_(stride == 0 || stride > window_size_ ? window_size_
                                                     : stride) {}

  /// Buffers one arrival.
  void Push(Trajectory t) {
    pending_.push_back(std::move(t));
    ++uncovered_;
  }

  /// True when the buffer holds a full window's worth of arrivals.
  bool WindowReady() const { return pending_.size() >= window_size_; }

  /// Arrivals not yet covered by any closed window. Non-zero means a
  /// deadline or end-of-stream closure still owes these a window.
  size_t uncovered() const { return uncovered_; }

  /// Arrivals currently buffered (covered overlap tail included).
  size_t pending() const { return pending_.size(); }

  size_t window_size() const { return window_size_; }
  size_t stride() const { return stride_; }

  /// \brief Closes a window over the whole buffer and retires the oldest
  /// `stride` arrivals (the remaining tail overlaps into the next window).
  ///
  /// Works for full windows and for deadline-closed partial ones alike —
  /// the buffer may hold fewer than window_size arrivals. Returns
  /// AlreadyExists (from Dataset::Add) when two buffered trajectories
  /// share an id; callers wrap it with their window index.
  Result<Dataset> CloseWindow() {
    Dataset window;
    // Within one window each object must appear exactly once (the
    // parallel-composition argument puts each object in one shard). With
    // overlap the tail re-enters the next window, so it must be copied,
    // not moved.
    const bool overlaps = stride_ < window_size_ && !pending_.empty();
    for (auto& t : pending_) {
      FRT_RETURN_IF_ERROR(overlaps ? window.Add(t)
                                   : window.Add(std::move(t)));
    }
    if (overlaps) {
      for (size_t i = 0; i < stride_ && !pending_.empty(); ++i) {
        pending_.pop_front();
      }
    } else {
      pending_.clear();
    }
    uncovered_ = 0;
    return window;
  }

  /// \brief Closes the end-of-stream window over the uncovered tail.
  /// Nothing re-enters a later window, so the buffer is moved out wholesale
  /// and left empty.
  Result<Dataset> CloseFinal() {
    Dataset window;
    for (auto& t : pending_) {
      FRT_RETURN_IF_ERROR(window.Add(std::move(t)));
    }
    pending_.clear();
    uncovered_ = 0;
    return window;
  }

 private:
  size_t window_size_;
  size_t stride_;
  std::deque<Trajectory> pending_;
  size_t uncovered_ = 0;
};

}  // namespace frt

#endif  // FRT_STREAM_WINDOW_ASSEMBLER_H_
