#include "core/global_mechanism.h"

#include <cmath>

#include "dp/laplace.h"

namespace frt {

Result<Dataset> GlobalMechanism::Apply(const Dataset& dataset,
                                       const SignatureSet& signatures,
                                       Rng& rng,
                                       PrivacyAccountant* accountant,
                                       GlobalReport* report) const {
  const LaplaceMechanism mechanism(/*sensitivity=*/1.0, config_.epsilon);
  FRT_RETURN_IF_ERROR(mechanism.Validate());
  if (accountant != nullptr) {
    FRT_RETURN_IF_ERROR(accountant->Spend(config_.epsilon, "global-TF"));
  }

  // Line 1: build the TF distribution over P from the *input* dataset.
  const TrajectoryFrequency tf =
      ComputeTrajectoryFrequency(dataset, *quantizer_);
  const int64_t n = static_cast<int64_t>(dataset.size());

  // Lines 2-6: perturb and round each TF value into [0, |D|].
  FrequencyDelta delta;
  for (const LocationKey key : signatures.candidate_set) {
    auto it = tf.find(key);
    const int64_t l = (it != tf.end()) ? it->second : 0;
    const double noisy = mechanism.Perturb(rng, static_cast<double>(l));
    const int64_t l_star = RoundToIntRange(noisy, 0, n);
    if (l_star != l) delta[key] = l_star - l;
    if (report != nullptr) {
      report->total_abs_tf_change += std::llabs(l_star - l);
      ++report->points_perturbed;
    }
  }

  // Line 7: GlobalEdit — inter-trajectory modification over the dataset.
  BBox region = dataset.Bounds();
  const double pad =
      std::max(1.0, 0.01 * std::max(region.Width(), region.Height()));
  region.min_x -= pad;
  region.min_y -= pad;
  region.max_x += pad;
  region.max_y += pad;
  GridSpec grid(region, config_.grid_levels);

  std::vector<EditableTrajectory> editables;
  editables.reserve(dataset.size());
  for (const Trajectory& t : dataset.trajectories()) {
    editables.emplace_back(t);
  }

  InterTrajectoryModifier modifier(quantizer_, config_.strategy, grid);
  ModifierStats stats;
  FRT_RETURN_IF_ERROR(modifier.Apply(&editables, delta, &stats));
  if (report != nullptr) report->edits.MergeFrom(stats);

  Dataset output;
  for (const EditableTrajectory& et : editables) {
    FRT_RETURN_IF_ERROR(output.Add(et.Materialize()));
  }
  return output;
}

}  // namespace frt
