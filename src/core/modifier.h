// Trajectory modification (paper §IV-B): making trajectories satisfy the
// perturbed frequency distributions with minimum utility loss.
//
//   * IntraTrajectoryModifier (Def. 9/10) adjusts one trajectory's PF: each
//     frequency increase becomes a K-nearest *segment* search for insertion
//     sites; each decrease deletes the cheapest existing occurrences.
//   * InterTrajectoryModifier (Def. 7/8) adjusts the dataset's TF: each TF
//     increase becomes a K-nearest *trajectory* search (the K distinct
//     trajectories whose best segment is nearest, among those not yet
//     containing the point); each decrease removes the point entirely from
//     the K trajectories with the cheapest complete-deletion loss.
//
// Both keep the segment index synchronized across edits (ModifyAndUpdate,
// Alg. 3 line 36), so the whole batch of modifications runs against live
// geometry.

#ifndef FRT_CORE_MODIFIER_H_
#define FRT_CORE_MODIFIER_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/edit.h"
#include "index/segment_index.h"
#include "traj/quantizer.h"

namespace frt {

/// Frequency deltas to apply: location key -> (perturbed - original) count.
using FrequencyDelta = std::unordered_map<LocationKey, int64_t>;

/// Edit accounting for reports and benches.
struct ModifierStats {
  size_t insertions = 0;
  size_t deletions = 0;
  double utility_loss = 0.0;     ///< accumulated Def. 5 + Def. 6 losses
  uint64_t knn_searches = 0;
  uint64_t distance_evaluations = 0;  ///< from the segment index

  void MergeFrom(const ModifierStats& o) {
    insertions += o.insertions;
    deletions += o.deletions;
    utility_loss += o.utility_loss;
    knn_searches += o.knn_searches;
    distance_evaluations += o.distance_evaluations;
  }
};

/// \brief Applies a PF delta to one trajectory (local mechanism back-end).
class IntraTrajectoryModifier {
 public:
  /// \param quantizer   location identity + representative coordinates.
  /// \param strategy    kNN search strategy (Fig. 5 competitors).
  /// \param grid_levels levels of the per-trajectory index grid.
  IntraTrajectoryModifier(const Quantizer* quantizer, SearchStrategy strategy,
                          int grid_levels = 10)
      : quantizer_(quantizer),
        strategy_(strategy),
        grid_levels_(grid_levels) {}

  /// Deletions are applied before insertions; within each phase, keys are
  /// processed in ascending order for determinism. Deleting more
  /// occurrences than exist is not an error (all occurrences go); this
  /// matches the clamp-at-zero post-processing of Algorithm 2.
  Status Apply(EditableTrajectory* traj, const FrequencyDelta& delta,
               ModifierStats* stats) const;

 private:
  const Quantizer* quantizer_;
  SearchStrategy strategy_;
  int grid_levels_;
};

/// \brief Applies a TF delta to a whole dataset (global mechanism back-end).
class InterTrajectoryModifier {
 public:
  /// \param grid index grid over the dataset region (paper: 512x512 finest).
  InterTrajectoryModifier(const Quantizer* quantizer, SearchStrategy strategy,
                          const GridSpec& grid)
      : quantizer_(quantizer), strategy_(strategy), grid_(grid) {}

  /// Applies all TF decreases (complete deletions from the cheapest
  /// trajectories), then all TF increases (single insertions into the
  /// nearest trajectories currently lacking the point).
  Status Apply(std::vector<EditableTrajectory>* trajs,
               const FrequencyDelta& delta, ModifierStats* stats) const;

 private:
  const Quantizer* quantizer_;
  SearchStrategy strategy_;
  GridSpec grid_;
};

}  // namespace frt

#endif  // FRT_CORE_MODIFIER_H_
