#include "core/local_mechanism.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dp/laplace.h"

namespace frt {

std::vector<LocationKey> LocalMechanism::SelectPoints(
    const std::vector<WeightedLocation>& own_signature,
    const SignatureSet& signatures, const PointFrequency& pf,
    Rng& rng) const {
  const size_t want = 2 * static_cast<size_t>(signatures.m);
  std::vector<LocationKey> selected;
  selected.reserve(want);
  std::unordered_set<LocationKey> taken;

  // 1) The trajectory's own top-m signature, best first.
  for (const WeightedLocation& wl : own_signature) {
    if (selected.size() >= want) break;
    if (taken.insert(wl.key).second) selected.push_back(wl.key);
  }

  // 2) Other locations of this trajectory that are in P (signature points
  //    of other users), preferred by their global rarity: raising them is
  //    "more convincing ... considering their PF and TF weights" (§III-B3).
  std::vector<std::pair<double, LocationKey>> in_p;
  for (const auto& [key, f] : pf) {
    if (taken.count(key) > 0) continue;
    auto it = signatures.tf_over_p.find(key);
    if (it == signatures.tf_over_p.end()) continue;
    // Rank by PF weight relative to TF (same spirit as signature weights).
    const double score =
        static_cast<double>(f) / (1.0 + static_cast<double>(it->second));
    in_p.emplace_back(score, key);
  }
  std::sort(in_p.begin(), in_p.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (const auto& [score, key] : in_p) {
    if (selected.size() >= want) break;
    if (taken.insert(key).second) selected.push_back(key);
  }

  // 3) Random remaining locations of the trajectory until 2m (or exhausted).
  std::vector<LocationKey> rest;
  for (const auto& [key, f] : pf) {
    if (taken.count(key) == 0) rest.push_back(key);
  }
  std::sort(rest.begin(), rest.end());
  while (selected.size() < want && !rest.empty()) {
    const size_t pick = rng.UniformInt(uint64_t{rest.size()});
    selected.push_back(rest[pick]);
    rest[pick] = rest.back();
    rest.pop_back();
  }
  return selected;
}

Result<Dataset> LocalMechanism::Apply(const Dataset& dataset,
                                      const SignatureSet& signatures,
                                      Rng& rng,
                                      PrivacyAccountant* accountant,
                                      LocalReport* report) const {
  const LaplaceMechanism mechanism(/*sensitivity=*/1.0, config_.epsilon);
  FRT_RETURN_IF_ERROR(mechanism.Validate());
  if (signatures.per_traj.size() != dataset.size()) {
    return Status::InvalidArgument(
        "signature set does not match dataset size");
  }
  if (accountant != nullptr) {
    FRT_RETURN_IF_ERROR(accountant->Spend(config_.epsilon, "local-PF"));
  }

  const int m = signatures.m;
  IntraTrajectoryModifier modifier(quantizer_, config_.strategy,
                                   config_.grid_levels);
  Dataset output;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Trajectory& traj = dataset[i];
    if (traj.empty()) {
      FRT_RETURN_IF_ERROR(output.Add(traj));
      continue;
    }
    const PointFrequency pf = ComputePointFrequency(traj, *quantizer_);
    const std::vector<LocationKey> selected =
        SelectPoints(signatures.per_traj[i], signatures, pf, rng);

    FrequencyDelta delta;
    // Stage 1: top-m ranked points, noise ~ Lap(-f_k, 1/eps_L).
    double mu_bar = 0.0;
    const int stage1_count =
        std::min<int>(m, static_cast<int>(selected.size()));
    for (int k = 0; k < stage1_count; ++k) {
      const LocationKey key = selected[k];
      const int64_t f = pf.count(key) > 0 ? pf.at(key) : 0;
      const double mu =
          config_.zero_mean_stage1 ? 0.0 : -static_cast<double>(f);
      const double noisy = mechanism.Perturb(rng, static_cast<double>(f),
                                             mu);
      const int64_t f_star = RoundToNonNegativeInt(noisy);
      mu_bar += static_cast<double>(f_star - f);  // the *actual* noise
      if (f_star != f) delta[key] = f_star - f;
    }
    if (stage1_count > 0) mu_bar /= static_cast<double>(stage1_count);

    // Stage 2: remaining m points, noise ~ Lap(-mu_bar, 1/eps_L). mu_bar is
    // typically negative, so -mu_bar raises these frequencies and keeps the
    // trajectory's cardinality roughly stable (§III-B3 "The Importance of
    // Stage-2").
    for (int k = config_.enable_stage2 ? stage1_count
                                       : static_cast<int>(selected.size());
         k < static_cast<int>(selected.size()); ++k) {
      const LocationKey key = selected[k];
      const int64_t f = pf.count(key) > 0 ? pf.at(key) : 0;
      const double noisy =
          mechanism.Perturb(rng, static_cast<double>(f), -mu_bar);
      const int64_t f_star = RoundToNonNegativeInt(noisy);
      if (f_star != f) delta[key] = f_star - f;
    }

    EditableTrajectory editable(traj);
    ModifierStats stats;
    FRT_RETURN_IF_ERROR(modifier.Apply(&editable, delta, &stats));
    if (report != nullptr) {
      report->edits.MergeFrom(stats);
      for (const auto& [key, d] : delta) {
        report->total_abs_frequency_change += std::llabs(d);
      }
      ++report->trajectories_processed;
    }
    FRT_RETURN_IF_ERROR(output.Add(editable.Materialize()));
  }
  return output;
}

}  // namespace frt
