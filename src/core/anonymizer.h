// Common interface of every trajectory anonymization method in FRT (the
// paper's mechanisms and all compared baselines), so the evaluation harness
// can run Table II generically.

#ifndef FRT_CORE_ANONYMIZER_H_
#define FRT_CORE_ANONYMIZER_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "traj/dataset.h"

namespace frt {

/// \brief A trajectory anonymization method.
class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  /// Display name used in reports (e.g. "GL", "SC", "DPT").
  virtual std::string name() const = 0;

  /// Produces the anonymized dataset. The input is never modified. The
  /// output preserves trajectory ids where the method is record-level
  /// (ours, SC/RSC, W4M); generative methods (DPT, AdaTrace) emit fresh
  /// synthetic trajectories with ids 0..n-1.
  virtual Result<Dataset> Anonymize(const Dataset& input, Rng& rng) = 0;
};

}  // namespace frt

#endif  // FRT_CORE_ANONYMIZER_H_
