#include "core/signature.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace frt {

Result<SignatureSet> SignatureExtractor::Extract(
    const Dataset& dataset) const {
  if (m_ <= 0) return Status::InvalidArgument("signature size m must be > 0");
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");

  SignatureSet out;
  out.m = m_;
  out.per_traj.resize(dataset.size());

  const TrajectoryFrequency tf = ComputeTrajectoryFrequency(dataset,
                                                            *quantizer_);
  const double n = static_cast<double>(dataset.size());

  std::unordered_set<LocationKey> candidate;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Trajectory& traj = dataset[i];
    if (traj.empty()) continue;
    const PointFrequency pf = ComputePointFrequency(traj, *quantizer_);
    std::vector<WeightedLocation> scored;
    scored.reserve(pf.size());
    const double len = static_cast<double>(traj.size());
    for (const auto& [key, f] : pf) {
      const int64_t l = tf.at(key);
      WeightedLocation wl;
      wl.key = key;
      wl.pf = f;
      wl.tf = l;
      // Representativeness f/|tau| times distinctiveness log(|D|/l). A
      // location visited by everyone has zero distinctiveness and can never
      // enter a signature.
      wl.weight = (static_cast<double>(f) / len) *
                  std::log(n / static_cast<double>(l));
      scored.push_back(wl);
    }
    std::sort(scored.begin(), scored.end(),
              [](const WeightedLocation& a, const WeightedLocation& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.key < b.key;
              });
    if (scored.size() > static_cast<size_t>(m_)) scored.resize(m_);
    for (const auto& wl : scored) candidate.insert(wl.key);
    out.per_traj[i] = std::move(scored);
  }

  out.candidate_set.assign(candidate.begin(), candidate.end());
  std::sort(out.candidate_set.begin(), out.candidate_set.end());
  for (const LocationKey key : out.candidate_set) {
    out.tf_over_p[key] = tf.at(key);
  }
  return out;
}

}  // namespace frt
