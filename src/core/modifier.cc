#include "core/modifier.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "index/search_context.h"
#include "obs/trace.h"

namespace frt {
namespace {

/// Handle mapper shared by the edit helpers: non-owning (the callables are
/// named lambdas in the Apply bodies, alive for the whole batch).
using HandleOf = FunctionRef<SegmentHandle(NodeHandle)>;

// Sorted keys with negative (deletion) and positive (insertion) deltas,
// split in one pass over `delta`; the fixed order keeps the whole
// modification deterministic.
struct SignedKeys {
  std::vector<LocationKey> neg;
  std::vector<LocationKey> pos;
};

SignedKeys SplitKeys(const FrequencyDelta& delta) {
  SignedKeys keys;
  keys.neg.reserve(delta.size());
  keys.pos.reserve(delta.size());
  for (const auto& [key, d] : delta) {
    if (d < 0) keys.neg.push_back(key);
    if (d > 0) keys.pos.push_back(key);
  }
  std::sort(keys.neg.begin(), keys.neg.end());
  std::sort(keys.pos.begin(), keys.pos.end());
  return keys;
}

// Deletes node `n` from `et`, keeping `index` synchronized. Returns the
// Def. 6 utility loss of the deletion.
double DeleteNodeSync(EditableTrajectory* et, NodeHandle n,
                      SegmentIndex* index, HandleOf h) {
  const double loss = et->DeletionLoss(n);
  const NodeHandle p = et->Prev(n);
  const NodeHandle x = et->Next(n);
  if (x != kInvalidNode) (void)index->Remove(h(n));
  if (p != kInvalidNode) (void)index->Remove(h(p));
  (void)et->Delete(n);
  if (p != kInvalidNode && x != kInvalidNode) {
    (void)index->Insert(SegmentEntry{h(p), et->id(), et->SegmentOf(p)});
  }
  return loss;
}

// Inserts `q` into the segment starting at `left`, keeping `index`
// synchronized. Returns the new node handle.
NodeHandle InsertPointSync(EditableTrajectory* et, NodeHandle left,
                           const Point& q, SegmentIndex* index, HandleOf h) {
  (void)index->Remove(h(left));
  auto res = et->InsertInto(left, q);
  const NodeHandle node = res.value();
  (void)index->Insert(SegmentEntry{h(left), et->id(), et->SegmentOf(left)});
  (void)index->Insert(SegmentEntry{h(node), et->id(), et->SegmentOf(node)});
  return node;
}

// Greedy minimum-loss deletion of up to `count` occurrences from `nodes`
// (all occurrences of one location in one trajectory). Recomputes losses
// after every deletion because deleting one occurrence of a dwell run
// changes its neighbors' reconnection cost.
double GreedyDeleteOccurrences(
    EditableTrajectory* et, std::vector<NodeHandle>* nodes, int64_t count,
    SegmentIndex* index, HandleOf h, size_t* deletions) {
  double loss = 0.0;
  for (int64_t i = 0; i < count && !nodes->empty(); ++i) {
    size_t best = 0;
    double best_loss = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < nodes->size(); ++j) {
      const double l = et->DeletionLoss((*nodes)[j]);
      if (l < best_loss) {
        best_loss = l;
        best = j;
      }
    }
    loss += DeleteNodeSync(et, (*nodes)[best], index, h);
    (*nodes)[best] = nodes->back();
    nodes->pop_back();
    ++(*deletions);
  }
  return loss;
}

}  // namespace

Status IntraTrajectoryModifier::Apply(EditableTrajectory* traj,
                                      const FrequencyDelta& delta,
                                      ModifierStats* stats) const {
  if (traj == nullptr || stats == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  if (delta.empty()) return Status::OK();
  const SignedKeys keys = SplitKeys(delta);
  if (traj->NumPoints() == 0) {
    // Degenerate input: no geometry to search; insertions simply extend
    // the (empty) trajectory with the representative points.
    for (const LocationKey key : keys.pos) {
      const Point q = quantizer_->PointOf(key);
      for (int64_t i = 0; i < delta.at(key); ++i) {
        if (traj->NumPoints() > 0) {
          stats->utility_loss += Distance(q, traj->PointAt(traj->Tail()).p);
        }
        traj->AppendPoint(q, 0);
        ++stats->insertions;
      }
    }
    return Status::OK();
  }

  // One pass over the live nodes gathers everything the index build needs:
  // the trajectory's extent, the segment entries, and the occurrence lists
  // for the keys that shrink.
  auto handle_of = [](NodeHandle n) {
    return static_cast<SegmentHandle>(static_cast<uint32_t>(n));
  };
  BBox region;
  std::vector<SegmentEntry> entries;
  entries.reserve(traj->NumPoints());
  std::unordered_map<LocationKey, std::vector<NodeHandle>> occurrences;
  occurrences.reserve(keys.neg.size());
  for (const NodeHandle n : traj->LiveNodes()) {
    region.Extend(traj->PointAt(n).p);
    if (traj->IsSegmentStart(n)) {
      entries.push_back(
          SegmentEntry{handle_of(n), traj->id(), traj->SegmentOf(n)});
    }
    const LocationKey key = quantizer_->KeyOf(traj->PointAt(n).p);
    auto it = delta.find(key);
    if (it != delta.end() && it->second < 0) occurrences[key].push_back(n);
  }

  // Index region: the trajectory's own extent, padded by two snap cells so
  // representative points (cell centroids of this trajectory's locations)
  // always fall strictly inside.
  const auto& snap_region = quantizer_->grid().region();
  const double cell = std::max(snap_region.Width(), snap_region.Height()) /
                      static_cast<double>(quantizer_->grid().Resolution(
                          quantizer_->snap_level()));
  const double pad = 2.0 * cell + 1.0;
  region.min_x -= pad;
  region.min_y -= pad;
  region.max_x += pad;
  region.max_y += pad;

  GridSpec grid(region, grid_levels_);
  auto index = MakeSegmentIndex(strategy_, grid);
  FRT_RETURN_IF_ERROR(index->Build(entries));

  const uint64_t evals_before = index->distance_evaluations();

  // Phase 1: deletions (Def. 10, NS^- comes from the occurrence list).
  for (const LocationKey key : keys.neg) {
    auto it = occurrences.find(key);
    if (it == occurrences.end()) continue;
    stats->utility_loss += GreedyDeleteOccurrences(
        traj, &it->second, -delta.at(key), index.get(), handle_of,
        &stats->deletions);
  }

  // Phase 2: insertions (Def. 10, NS^+ via K-nearest segment search).
  SearchContext ctx;  // reused across every search of this batch
  for (const LocationKey key : keys.pos) {
    int64_t remaining = delta.at(key);
    const Point q = quantizer_->PointOf(key);
    while (remaining > 0) {
      if (traj->NumPoints() < 2) {
        // No segment exists; extend at the tail (degenerate cost).
        const double loss =
            traj->NumPoints() == 0
                ? 0.0
                : Distance(q, traj->PointAt(traj->Tail()).p);
        const int64_t t = traj->NumPoints() == 0
                              ? 0
                              : traj->PointAt(traj->Tail()).t;
        const NodeHandle tail_before = traj->Tail();
        traj->AppendPoint(q, t);
        if (tail_before != kInvalidNode) {
          FRT_RETURN_IF_ERROR(index->Insert(SegmentEntry{
              handle_of(tail_before), traj->id(),
              traj->SegmentOf(tail_before)}));
        }
        stats->utility_loss += loss;
        ++stats->insertions;
        --remaining;
        continue;
      }
      SearchOptions options;
      options.k = static_cast<size_t>(remaining);
      options.group_by = GroupBy::kSegment;
      // Sampled 1-in-64: full coverage would dominate the trace buffer.
      const bool traced =
          obs::TraceEnabled() && (stats->knn_searches & 63) == 0;
      const auto knn_start = traced ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
      const auto neighbors = index->KNearest(q, options, &ctx);
      if (traced) {
        obs::EmitSpan("index_knn", obs::SpanCategory::kIndex, {}, knn_start,
                      std::chrono::steady_clock::now());
      }
      ++stats->knn_searches;
      if (neighbors.empty()) break;  // defensive; cannot happen with >=2 pts
      for (const Neighbor& nb : neighbors) {
        const NodeHandle left =
            static_cast<NodeHandle>(static_cast<uint32_t>(nb.entry.handle));
        InsertPointSync(traj, left, q, index.get(), handle_of);
        stats->utility_loss += nb.dist;
        ++stats->insertions;
        --remaining;
      }
    }
  }

  stats->distance_evaluations +=
      index->distance_evaluations() - evals_before;
  return Status::OK();
}

Status InterTrajectoryModifier::Apply(std::vector<EditableTrajectory>* trajs,
                                      const FrequencyDelta& delta,
                                      ModifierStats* stats) const {
  if (trajs == nullptr || stats == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  if (delta.empty() || trajs->empty()) return Status::OK();

  const SignedKeys keys = SplitKeys(delta);
  auto index = MakeSegmentIndex(strategy_, grid_);
  auto handle_of = [](size_t traj_idx, NodeHandle n) {
    return (static_cast<SegmentHandle>(traj_idx) << 32) |
           static_cast<uint32_t>(n);
  };

  // One pass over every trajectory's live nodes gathers the segment
  // entries for the bulk build, the per-(key, trajectory) occurrence
  // lists, and the TrajId -> slot mapping for result handling.
  std::vector<SegmentEntry> entries;
  size_t total_points = 0;
  for (const EditableTrajectory& et : *trajs) total_points += et.NumPoints();
  entries.reserve(total_points);
  std::unordered_map<LocationKey,
                     std::unordered_map<size_t, std::vector<NodeHandle>>>
      occurrences;
  occurrences.reserve(delta.size());
  std::unordered_map<TrajId, size_t> slot_of;
  slot_of.reserve(trajs->size());
  for (size_t i = 0; i < trajs->size(); ++i) {
    EditableTrajectory& et = (*trajs)[i];
    slot_of[et.id()] = i;
    for (const NodeHandle n : et.LiveNodes()) {
      if (et.IsSegmentStart(n)) {
        entries.push_back(
            SegmentEntry{handle_of(i, n), et.id(), et.SegmentOf(n)});
      }
      const LocationKey key = quantizer_->KeyOf(et.PointAt(n).p);
      if (delta.count(key) > 0) occurrences[key][i].push_back(n);
    }
  }
  FRT_RETURN_IF_ERROR(index->Build(entries));

  const uint64_t evals_before = index->distance_evaluations();

  // Phase 1: TF decreases — complete deletion of the point from the
  // Delta_l trajectories with the smallest total deletion loss (Def. 8).
  for (const LocationKey key : keys.neg) {
    auto oit = occurrences.find(key);
    if (oit == occurrences.end()) continue;
    auto& per_traj = oit->second;
    const int64_t want = -delta.at(key);

    std::vector<std::pair<double, size_t>> costs;  // (total loss, slot)
    costs.reserve(per_traj.size());
    for (const auto& [slot, nodes] : per_traj) {
      double total = 0.0;
      for (const NodeHandle n : nodes) {
        total += (*trajs)[slot].DeletionLoss(n);
      }
      costs.emplace_back(total, slot);
    }
    std::sort(costs.begin(), costs.end());
    const size_t take =
        std::min<size_t>(costs.size(), static_cast<size_t>(want));
    for (size_t c = 0; c < take; ++c) {
      const size_t slot = costs[c].second;
      EditableTrajectory& et = (*trajs)[slot];
      auto per_handle = [&](NodeHandle n) { return handle_of(slot, n); };
      auto& nodes = per_traj[slot];
      stats->utility_loss += GreedyDeleteOccurrences(
          &et, &nodes, static_cast<int64_t>(nodes.size()), index.get(),
          per_handle, &stats->deletions);
      per_traj.erase(slot);
    }
  }

  // Phase 2: TF increases — insert the point once into each of the Delta_l
  // nearest trajectories that do not currently contain it (Def. 8).
  SearchContext ctx;  // reused across every search of this batch
  for (const LocationKey key : keys.pos) {
    const int64_t want = delta.at(key);
    const Point q = quantizer_->PointOf(key);
    std::unordered_set<TrajId> occupied;
    auto oit = occurrences.find(key);
    if (oit != occurrences.end()) {
      for (const auto& [slot, nodes] : oit->second) {
        if (!nodes.empty()) occupied.insert((*trajs)[slot].id());
      }
    }
    const auto eligible = [&occupied](const SegmentEntry& e) {
      return occupied.count(e.traj) == 0;
    };
    SearchOptions options;
    options.k = static_cast<size_t>(want);
    options.group_by = GroupBy::kTrajectory;
    options.filter = eligible;
    // Sampled 1-in-64, matching the intra-trajectory phase.
    const bool traced =
        obs::TraceEnabled() && (stats->knn_searches & 63) == 0;
    const auto knn_start = traced ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    const auto neighbors = index->KNearest(q, options, &ctx);
    if (traced) {
      obs::EmitSpan("index_knn", obs::SpanCategory::kIndex, {}, knn_start,
                    std::chrono::steady_clock::now());
    }
    ++stats->knn_searches;
    for (const Neighbor& nb : neighbors) {
      const size_t slot = slot_of.at(nb.entry.traj);
      const NodeHandle left =
          static_cast<NodeHandle>(static_cast<uint32_t>(nb.entry.handle));
      EditableTrajectory& et = (*trajs)[slot];
      auto per_handle = [&](NodeHandle n) { return handle_of(slot, n); };
      InsertPointSync(&et, left, q, index.get(), per_handle);
      stats->utility_loss += nb.dist;
      ++stats->insertions;
    }
  }

  stats->distance_evaluations +=
      index->distance_evaluations() - evals_before;
  return Status::OK();
}

}  // namespace frt
