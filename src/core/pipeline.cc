#include "core/pipeline.h"

#include "common/stopwatch.h"

namespace frt {

std::string FrequencyRandomizer::name() const {
  const bool global = config_.epsilon_global > 0.0;
  const bool local = config_.epsilon_local > 0.0;
  if (global && local) return "GL";
  if (global) return "PureG";
  if (local) return "PureL";
  return "Identity";
}

Result<Dataset> FrequencyRandomizer::Anonymize(const Dataset& input,
                                               Rng& rng) {
  report_ = RandomizerReport{};
  if (input.empty()) return Status::InvalidArgument("empty dataset");

  // Location identity over the dataset extent.
  BBox region = input.Bounds();
  const double pad =
      std::max(1.0, 0.01 * std::max(region.Width(), region.Height()));
  region.min_x -= pad;
  region.min_y -= pad;
  region.max_x += pad;
  region.max_y += pad;
  Quantizer quantizer(region, config_.snap_levels);
  quantizer.RegisterDataset(input);

  // Signatures (and the candidate set P) come from the original input; both
  // mechanisms rebuild their frequency distributions from whatever dataset
  // they receive, so composition order is exchangeable.
  SignatureExtractor extractor(&quantizer, config_.m);
  FRT_ASSIGN_OR_RETURN(const SignatureSet signatures,
                       extractor.Extract(input));
  report_.candidate_set_size = signatures.candidate_set.size();

  const double total_budget = config_.epsilon_global + config_.epsilon_local;
  PrivacyAccountant accountant(total_budget);

  Dataset current = input.Clone();
  auto run_local = [&]() -> Status {
    if (config_.epsilon_local <= 0.0) return Status::OK();
    LocalMechanismConfig cfg;
    cfg.epsilon = config_.epsilon_local;
    cfg.strategy = config_.strategy;
    cfg.grid_levels = config_.index_levels;
    LocalMechanism mechanism(&quantizer, cfg);
    Stopwatch watch;
    FRT_ASSIGN_OR_RETURN(current,
                         mechanism.Apply(current, signatures, rng,
                                         &accountant, &report_.local));
    report_.local_seconds = watch.ElapsedSeconds();
    return Status::OK();
  };
  auto run_global = [&]() -> Status {
    if (config_.epsilon_global <= 0.0) return Status::OK();
    GlobalMechanismConfig cfg;
    cfg.epsilon = config_.epsilon_global;
    cfg.strategy = config_.strategy;
    cfg.grid_levels = config_.index_levels;
    GlobalMechanism mechanism(&quantizer, cfg);
    Stopwatch watch;
    FRT_ASSIGN_OR_RETURN(current,
                         mechanism.Apply(current, signatures, rng,
                                         &accountant, &report_.global));
    report_.global_seconds = watch.ElapsedSeconds();
    return Status::OK();
  };

  if (config_.order == MechanismOrder::kLocalFirst) {
    FRT_RETURN_IF_ERROR(run_local());
    FRT_RETURN_IF_ERROR(run_global());
  } else {
    FRT_RETURN_IF_ERROR(run_global());
    FRT_RETURN_IF_ERROR(run_local());
  }
  report_.epsilon_spent = accountant.spent();
  return current;
}

}  // namespace frt
