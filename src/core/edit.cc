#include "core/edit.h"

namespace frt {

EditableTrajectory::EditableTrajectory(const Trajectory& traj)
    : id_(traj.id()) {
  nodes_.reserve(traj.size() + 16);
  NodeHandle prev = kInvalidNode;
  for (const TimedPoint& tp : traj.points()) {
    const NodeHandle h = static_cast<NodeHandle>(nodes_.size());
    Node node;
    node.tp = tp;
    node.prev = prev;
    node.alive = true;
    nodes_.push_back(node);
    if (prev != kInvalidNode) {
      nodes_[prev].next = h;
    } else {
      head_ = h;
    }
    prev = h;
  }
  tail_ = prev;
  num_alive_ = traj.size();
}

Result<NodeHandle> EditableTrajectory::InsertInto(NodeHandle left,
                                                  const Point& q) {
  if (!IsSegmentStart(left)) {
    return Status::InvalidArgument("handle does not start a live segment");
  }
  const NodeHandle right = nodes_[left].next;
  const NodeHandle h = static_cast<NodeHandle>(nodes_.size());
  Node node;
  node.tp.p = q;
  node.tp.t = (nodes_[left].tp.t + nodes_[right].tp.t) / 2;
  node.prev = left;
  node.next = right;
  node.alive = true;
  nodes_.push_back(node);
  nodes_[left].next = h;
  nodes_[right].prev = h;
  ++num_alive_;
  return h;
}

NodeHandle EditableTrajectory::AppendPoint(const Point& q, int64_t t) {
  const NodeHandle h = static_cast<NodeHandle>(nodes_.size());
  Node node;
  node.tp.p = q;
  node.tp.t = t;
  node.prev = tail_;
  node.alive = true;
  nodes_.push_back(node);
  if (tail_ != kInvalidNode) {
    nodes_[tail_].next = h;
  } else {
    head_ = h;
  }
  tail_ = h;
  ++num_alive_;
  return h;
}

Status EditableTrajectory::Delete(NodeHandle n) {
  if (!IsAlive(n)) return Status::InvalidArgument("node not alive");
  const NodeHandle p = nodes_[n].prev;
  const NodeHandle x = nodes_[n].next;
  if (p != kInvalidNode) nodes_[p].next = x;
  if (x != kInvalidNode) nodes_[x].prev = p;
  if (head_ == n) head_ = x;
  if (tail_ == n) tail_ = p;
  nodes_[n].alive = false;
  nodes_[n].prev = kInvalidNode;
  nodes_[n].next = kInvalidNode;
  --num_alive_;
  return Status::OK();
}

double EditableTrajectory::DeletionLoss(NodeHandle n) const {
  const NodeHandle p = nodes_[n].prev;
  const NodeHandle x = nodes_[n].next;
  const Point& q = nodes_[n].tp.p;
  if (p != kInvalidNode && x != kInvalidNode) {
    return PointSegmentDistance(q, Segment{nodes_[p].tp.p, nodes_[x].tp.p});
  }
  if (p != kInvalidNode) return Distance(q, nodes_[p].tp.p);
  if (x != kInvalidNode) return Distance(q, nodes_[x].tp.p);
  return 0.0;  // deleting the sole remaining point
}

Trajectory EditableTrajectory::Materialize() const {
  Trajectory out(id_);
  for (NodeHandle n = head_; n != kInvalidNode; n = nodes_[n].next) {
    out.Append(nodes_[n].tp);
  }
  return out;
}

std::vector<NodeHandle> EditableTrajectory::LiveNodes() const {
  std::vector<NodeHandle> out;
  out.reserve(num_alive_);
  for (NodeHandle n = head_; n != kInvalidNode; n = nodes_[n].next) {
    out.push_back(n);
  }
  return out;
}

}  // namespace frt
