// Local PF randomization (paper Algorithm 2, Theorem 3).
//
// For each trajectory, 2m locations are selected: the trajectory's own
// top-m signature first, then other locations of the trajectory that appear
// in the candidate set P (signature points of other users — raising their
// frequency plants confusing evidence), then random locations until 2m.
//
// Stage 1 perturbs the top-m frequencies with the *negative-mean* Laplace
// noise Lap(-f_k, 1/eps_L), biasing toward erasing the user's identifying
// locations. Stage 2 perturbs the next m frequencies with Lap(-mu_bar,
// 1/eps_L) where mu_bar is the average noise actually applied in Stage 1
// (typically negative, so Stage 2 raises frequencies), which keeps the
// trajectory's cardinality roughly stable. Both stages round to
// non-negative integers (post-processing). Theorem 2/3: the shifted means
// do not weaken the eps_L-DP guarantee because the ratio bound depends only
// on the scale.

#ifndef FRT_CORE_LOCAL_MECHANISM_H_
#define FRT_CORE_LOCAL_MECHANISM_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/modifier.h"
#include "core/signature.h"
#include "dp/accountant.h"
#include "traj/dataset.h"

namespace frt {

/// Configuration of the local mechanism.
struct LocalMechanismConfig {
  /// Privacy budget eps_L.
  double epsilon = 0.5;
  /// kNN strategy for intra-trajectory modification.
  SearchStrategy strategy = SearchStrategy::kBottomUpDown;
  /// Levels of the per-trajectory index grid.
  int grid_levels = 10;
  /// --- ablation switches (papers §III-B3 design discussion) ---
  /// Disable Stage-2 to measure the trajectory-cardinality collapse the
  /// paper warns about ("purely conducting Stage-1 ... would result in a
  /// huge drop in the total number of points").
  bool enable_stage2 = true;
  /// Replace the non-trivial Lap(-f_k, 1/eps) of Stage-1 with the classic
  /// zero-mean Laplace, to measure how much the shifted mean contributes to
  /// erasing signature points.
  bool zero_mean_stage1 = false;
};

/// Diagnostics of one local-mechanism run.
struct LocalReport {
  ModifierStats edits;
  /// Total |noise| rounded into the PF distributions.
  int64_t total_abs_frequency_change = 0;
  size_t trajectories_processed = 0;
};

/// \brief The paper's local randomization mechanism.
class LocalMechanism {
 public:
  LocalMechanism(const Quantizer* quantizer, LocalMechanismConfig config)
      : quantizer_(quantizer), config_(config) {}

  /// Applies Algorithm 2 to every trajectory. `signatures` must have been
  /// extracted with the same quantizer. Spends eps_L on `accountant` when
  /// one is provided (Theorem 3: the mechanism is eps_L-DP per trajectory,
  /// and trajectories are disjoint users, so the dataset-level spend under
  /// one-trajectory adjacency is eps_L).
  Result<Dataset> Apply(const Dataset& dataset,
                        const SignatureSet& signatures, Rng& rng,
                        PrivacyAccountant* accountant,
                        LocalReport* report) const;

  /// \brief The 2m-location selection for one trajectory (exposed for
  /// tests): own signature keys first, then other candidate-set keys of the
  /// trajectory by weight, then random locations of the trajectory. `pf` is
  /// the trajectory's point-frequency distribution.
  std::vector<LocationKey> SelectPoints(
      const std::vector<WeightedLocation>& own_signature,
      const SignatureSet& signatures, const PointFrequency& pf,
      Rng& rng) const;

  const LocalMechanismConfig& config() const { return config_; }

 private:
  const Quantizer* quantizer_;
  LocalMechanismConfig config_;
};

}  // namespace frt

#endif  // FRT_CORE_LOCAL_MECHANISM_H_
