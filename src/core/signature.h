// Trajectory signatures (paper §III-B1).
//
// A signature point is *representative* (high point frequency PF within the
// user's own trajectory) and *distinctive* (low trajectory frequency TF
// across the dataset). Each location p in trajectory tau is weighted
//
//   weight(p, tau) = (f_p / |tau|) * log(|D| / l_p)
//
// and the top-m locations by weight form the signature s_m(tau). The union
// of all signatures is the candidate set P that both randomization
// mechanisms perturb.

#ifndef FRT_CORE_SIGNATURE_H_
#define FRT_CORE_SIGNATURE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "traj/dataset.h"
#include "traj/quantizer.h"

namespace frt {

/// \brief One scored location of a trajectory.
struct WeightedLocation {
  LocationKey key = 0;
  double weight = 0.0;          ///< representativeness x distinctiveness
  int64_t pf = 0;               ///< occurrences within the trajectory
  int64_t tf = 0;               ///< trajectories visiting the location
};

/// \brief Signatures of a whole dataset.
struct SignatureSet {
  /// Per trajectory (dataset order): top-m locations, best first.
  std::vector<std::vector<WeightedLocation>> per_traj;
  /// The candidate point set P (distinct keys of all signatures).
  std::vector<LocationKey> candidate_set;
  /// TF values over P (the global distribution L of Algorithm 1).
  std::unordered_map<LocationKey, int64_t> tf_over_p;
  /// Signature size used for extraction.
  int m = 0;
};

/// \brief Extracts top-m signatures per trajectory.
class SignatureExtractor {
 public:
  /// \param quantizer location-identity mapping; must outlive the extractor.
  /// \param m         signature size (paper default m = 10).
  SignatureExtractor(const Quantizer* quantizer, int m)
      : quantizer_(quantizer), m_(m) {}

  /// Scores every distinct location of every trajectory and keeps the top-m
  /// per trajectory. Deterministic: ties break on the location key.
  Result<SignatureSet> Extract(const Dataset& dataset) const;

  int m() const { return m_; }

 private:
  const Quantizer* quantizer_;
  int m_;
};

}  // namespace frt

#endif  // FRT_CORE_SIGNATURE_H_
