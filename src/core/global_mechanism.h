// Global TF randomization (paper Algorithm 1).
//
// The trajectory-frequency distribution L over the candidate set P is
// perturbed with classic Laplace noise Lap(1/eps_G) (a point-counting query
// over trajectories has sensitivity 1 under one-trajectory adjacency — the
// paper's analysis), then rounded into [0, |D|]. Inter-trajectory
// modification makes the dataset satisfy the noisy distribution L*: a TF
// increase inserts the point into the nearest eligible trajectories, a TF
// decrease removes the point entirely from the trajectories with the
// cheapest complete-deletion loss (Def. 7/8).

#ifndef FRT_CORE_GLOBAL_MECHANISM_H_
#define FRT_CORE_GLOBAL_MECHANISM_H_

#include "common/result.h"
#include "common/rng.h"
#include "core/modifier.h"
#include "core/signature.h"
#include "dp/accountant.h"
#include "traj/dataset.h"

namespace frt {

/// Configuration of the global mechanism.
struct GlobalMechanismConfig {
  /// Privacy budget eps_G.
  double epsilon = 0.5;
  /// kNN strategy for inter-trajectory modification.
  SearchStrategy strategy = SearchStrategy::kBottomUpDown;
  /// Levels of the dataset-wide index grid (paper: 512x512 finest => 10).
  int grid_levels = 10;
};

/// Diagnostics of one global-mechanism run.
struct GlobalReport {
  ModifierStats edits;
  /// Total |l* - l| over P after rounding.
  int64_t total_abs_tf_change = 0;
  size_t points_perturbed = 0;
};

/// \brief The paper's global randomization mechanism.
class GlobalMechanism {
 public:
  GlobalMechanism(const Quantizer* quantizer, GlobalMechanismConfig config)
      : quantizer_(quantizer), config_(config) {}

  /// Applies Algorithm 1. The TF distribution is rebuilt from `dataset`
  /// (which may already be the output of the local mechanism — the two
  /// mechanisms compose in either order); `signatures` only contributes the
  /// candidate set P. Spends eps_G on `accountant` when provided.
  Result<Dataset> Apply(const Dataset& dataset,
                        const SignatureSet& signatures, Rng& rng,
                        PrivacyAccountant* accountant,
                        GlobalReport* report) const;

  const GlobalMechanismConfig& config() const { return config_; }

 private:
  const Quantizer* quantizer_;
  GlobalMechanismConfig config_;
};

}  // namespace frt

#endif  // FRT_CORE_GLOBAL_MECHANISM_H_
