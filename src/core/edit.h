// Trajectory edit operations and their utility loss (paper §IV-A).
//
// Two primitives modify trajectories: OP_i inserts a new occurrence of a
// point into a segment (loss = distance from the point to the segment,
// Def. 5) and OP_d deletes an existing occurrence (loss = distance from the
// deleted point to the reconnected segment, Def. 6).
//
// EditableTrajectory supports both in O(1) via a doubly-linked node list
// with stable handles, so a segment index built over the trajectory stays
// consistent across a batch of edits: the segment <a, b> is identified by
// the handle of its left node `a`.

#ifndef FRT_CORE_EDIT_H_
#define FRT_CORE_EDIT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geo/segment.h"
#include "traj/trajectory.h"

namespace frt {

/// Stable identifier of a point node inside an EditableTrajectory.
using NodeHandle = int32_t;
constexpr NodeHandle kInvalidNode = -1;

/// \brief A trajectory under modification.
class EditableTrajectory {
 public:
  explicit EditableTrajectory(const Trajectory& traj);

  TrajId id() const { return id_; }

  /// Live point count.
  size_t NumPoints() const { return num_alive_; }

  /// Handle of the first / last live node (kInvalidNode when empty).
  NodeHandle Head() const { return head_; }
  NodeHandle Tail() const { return tail_; }

  /// Navigation. Handles must be alive.
  NodeHandle Next(NodeHandle n) const { return nodes_[n].next; }
  NodeHandle Prev(NodeHandle n) const { return nodes_[n].prev; }
  bool IsAlive(NodeHandle n) const {
    return n >= 0 && n < static_cast<NodeHandle>(nodes_.size()) &&
           nodes_[n].alive;
  }

  const TimedPoint& PointAt(NodeHandle n) const { return nodes_[n].tp; }

  /// True when `left` starts a segment (it is alive and not the tail).
  bool IsSegmentStart(NodeHandle left) const {
    return IsAlive(left) && nodes_[left].next != kInvalidNode;
  }

  /// Geometry of the segment starting at `left`.
  Segment SegmentOf(NodeHandle left) const {
    return Segment{nodes_[left].tp.p, nodes_[nodes_[left].next].tp.p};
  }

  /// \brief OP_i: inserts point q into the segment starting at `left`.
  ///
  /// The new node's timestamp is the midpoint of its neighbors'. Returns the
  /// new node's handle. Utility loss (Def. 5) is dist(q, segment) — compute
  /// it *before* the edit via InsertionLoss().
  Result<NodeHandle> InsertInto(NodeHandle left, const Point& q);

  /// \brief Appends q at the tail (used only when the trajectory has fewer
  /// than two points and no segment exists).
  NodeHandle AppendPoint(const Point& q, int64_t t);

  /// \brief OP_d: deletes the node `n`, reconnecting its neighbors.
  ///
  /// Utility loss (Def. 6) — compute before the edit via DeletionLoss().
  Status Delete(NodeHandle n);

  /// Utility loss of inserting q into the segment starting at `left`
  /// (Def. 5): dist(q, <left, next>).
  double InsertionLoss(NodeHandle left, const Point& q) const {
    return PointSegmentDistance(q, SegmentOf(left));
  }

  /// Utility loss of deleting node n (Def. 6): the distance from n's point
  /// to the segment <prev, next> that replaces it. When n is an endpoint
  /// the reconnected "segment" degenerates to the surviving neighbor point;
  /// deleting the last remaining point costs 0.
  double DeletionLoss(NodeHandle n) const;

  /// Materializes the current state as an ordinary trajectory.
  Trajectory Materialize() const;

  /// All live node handles in order (head to tail).
  std::vector<NodeHandle> LiveNodes() const;

 private:
  struct Node {
    TimedPoint tp;
    NodeHandle prev = kInvalidNode;
    NodeHandle next = kInvalidNode;
    bool alive = false;
  };

  std::vector<Node> nodes_;
  NodeHandle head_ = kInvalidNode;
  NodeHandle tail_ = kInvalidNode;
  size_t num_alive_ = 0;
  TrajId id_ = -1;
};

}  // namespace frt

#endif  // FRT_CORE_EDIT_H_
