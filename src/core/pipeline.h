// FrequencyRandomizer: the end-to-end publishing pipeline and the library's
// primary public API.
//
// Variants (paper §V-A):
//   * PureG — global TF perturbation only (eps = eps_G);
//   * PureL — local PF perturbation only (eps = eps_L);
//   * GL    — both, composed sequentially in either order, providing
//             eps = eps_G + eps_L by Theorem 1.

#ifndef FRT_CORE_PIPELINE_H_
#define FRT_CORE_PIPELINE_H_

#include <memory>
#include <string>

#include "core/anonymizer.h"
#include "core/global_mechanism.h"
#include "core/local_mechanism.h"
#include "core/signature.h"
#include "dp/accountant.h"

namespace frt {

/// Which mechanism runs first when both are enabled (exchangeable, §V-A).
enum class MechanismOrder {
  kLocalFirst,
  kGlobalFirst,
};

/// Configuration of the full pipeline.
struct FrequencyRandomizerConfig {
  /// Signature size (paper default m = 10).
  int m = 10;
  /// Privacy budgets; set one of them to 0 for the Pure variants. The total
  /// guarantee is their sum (Theorem 1).
  double epsilon_global = 0.5;
  double epsilon_local = 0.5;
  /// Both orders give the same eps (Theorem 1); global-first is the default
  /// because the local stage then has the last word on each trajectory's
  /// frequencies (the global stage cannot strip Stage-2's confusion points).
  MechanismOrder order = MechanismOrder::kGlobalFirst;
  /// kNN strategy used by both modification stages.
  SearchStrategy strategy = SearchStrategy::kBottomUpDown;
  /// Snap-grid levels defining location identity (2^(levels-1) per side).
  int snap_levels = 11;
  /// Index grid levels (paper: 512x512 finest => 10).
  int index_levels = 10;
};

/// Timing and edit diagnostics of one run.
struct RandomizerReport {
  double local_seconds = 0.0;
  double global_seconds = 0.0;
  LocalReport local;
  GlobalReport global;
  double epsilon_spent = 0.0;
  size_t candidate_set_size = 0;
};

/// \brief The paper's frequency-based randomization model.
class FrequencyRandomizer : public Anonymizer {
 public:
  explicit FrequencyRandomizer(FrequencyRandomizerConfig config)
      : config_(config) {}

  /// "PureG", "PureL" or "GL" depending on the enabled budgets.
  std::string name() const override;

  /// Runs signature extraction on `input`, then the enabled mechanisms in
  /// the configured order. Deterministic given `rng`'s state.
  Result<Dataset> Anonymize(const Dataset& input, Rng& rng) override;

  /// Diagnostics of the most recent Anonymize call.
  const RandomizerReport& report() const { return report_; }

  const FrequencyRandomizerConfig& config() const { return config_; }

 private:
  FrequencyRandomizerConfig config_;
  RandomizerReport report_;
};

}  // namespace frt

#endif  // FRT_CORE_PIPELINE_H_
