// Dataset: the collection D = {tau_1, ..., tau_|D|} of one trajectory per
// moving object, plus basic aggregate statistics.

#ifndef FRT_TRAJ_DATASET_H_
#define FRT_TRAJ_DATASET_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "geo/bbox.h"
#include "traj/trajectory.h"

namespace frt {

/// \brief A trajectory dataset; index-stable container with id lookup.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Trajectory> trajectories) {
    for (auto& t : trajectories) Add(std::move(t));
  }

  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }

  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }
  Trajectory& operator[](size_t i) { return trajectories_[i]; }

  const std::vector<Trajectory>& trajectories() const {
    return trajectories_;
  }
  std::vector<Trajectory>& mutable_trajectories() { return trajectories_; }

  /// Appends a trajectory; its id must be unique within the dataset.
  Status Add(Trajectory t) {
    if (by_id_.count(t.id()) > 0) {
      return Status::AlreadyExists("duplicate trajectory id " +
                                   std::to_string(t.id()));
    }
    by_id_[t.id()] = trajectories_.size();
    trajectories_.push_back(std::move(t));
    return Status::OK();
  }

  /// Index of the trajectory with the given id.
  Result<size_t> IndexOf(TrajId id) const {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) {
      return Status::NotFound("trajectory id " + std::to_string(id));
    }
    return it->second;
  }

  /// Total number of GPS points across all trajectories.
  size_t TotalPoints() const {
    size_t n = 0;
    for (const auto& t : trajectories_) n += t.size();
    return n;
  }

  /// Mean trajectory cardinality.
  double AvgLength() const {
    return empty() ? 0.0
                   : static_cast<double>(TotalPoints()) /
                         static_cast<double>(size());
  }

  /// Spatial extent of the whole dataset.
  BBox Bounds() const {
    BBox b;
    for (const auto& t : trajectories_) b.Extend(t.Bounds());
    return b;
  }

  /// Deep copy with the same ids (anonymizers transform copies).
  Dataset Clone() const { return *this; }

 private:
  std::vector<Trajectory> trajectories_;
  std::unordered_map<TrajId, size_t> by_id_;
};

}  // namespace frt

#endif  // FRT_TRAJ_DATASET_H_
