// Plain-text dataset I/O.
//
// Format: one CSV line per GPS sample, `traj_id,x,y,t`, sorted by
// (traj_id, position). Lines starting with '#' are comments. This mirrors
// the flat layout of public taxi datasets (T-Drive et al.) after projection.
//
// The line-level parser (ParseCsvRecord) is shared with the streaming
// ingest path (stream/ingest.h), which assembles trajectories incrementally
// from chunked reads; LoadDatasetCsv is the one-shot convenience built on
// the same machinery.

#ifndef FRT_TRAJ_IO_H_
#define FRT_TRAJ_IO_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "traj/dataset.h"

namespace frt {

/// One parsed CSV sample line.
struct CsvRecord {
  TrajId id = -1;
  Point p;
  int64_t t = 0;
};

/// \brief Parses one line of the dataset format.
///
/// Returns nullopt for blank and comment lines; an error Status names
/// `lineno` for malformed lines.
Result<std::optional<CsvRecord>> ParseCsvRecord(std::string_view line,
                                                size_t lineno);

/// Writes one trajectory as sample lines (no header). The single source of
/// the record format for batch, streaming, and multi-feed serialization.
/// `line_prefix` is prepended verbatim to every record line — the
/// multi-feed format passes "feed," to tag each sample with its feed id.
void WriteTrajectoryCsv(const Trajectory& trajectory, std::ostream& out,
                        std::string_view line_prefix = {});

/// Writes `dataset` in CSV form (header comment + one line per sample).
Status WriteDatasetCsv(const Dataset& dataset, std::ostream& out);

/// Writes `dataset` to `path` in CSV form. Overwrites existing files.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDatasetCsv (or any file in the
/// same format). Points of a trajectory must be contiguous lines.
Result<Dataset> LoadDatasetCsv(const std::string& path);

}  // namespace frt

#endif  // FRT_TRAJ_IO_H_
