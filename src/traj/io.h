// Plain-text dataset I/O.
//
// Format: one CSV line per GPS sample, `traj_id,x,y,t`, sorted by
// (traj_id, position). Lines starting with '#' are comments. This mirrors
// the flat layout of public taxi datasets (T-Drive et al.) after projection.

#ifndef FRT_TRAJ_IO_H_
#define FRT_TRAJ_IO_H_

#include <string>

#include "common/result.h"
#include "traj/dataset.h"

namespace frt {

/// Writes `dataset` to `path` in CSV form. Overwrites existing files.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDatasetCsv (or any file in the
/// same format). Points of a trajectory must be contiguous lines.
Result<Dataset> LoadDatasetCsv(const std::string& path);

}  // namespace frt

#endif  // FRT_TRAJ_IO_H_
