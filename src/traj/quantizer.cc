#include "traj/quantizer.h"

#include <unordered_set>

namespace frt {

PointFrequency ComputePointFrequency(const Trajectory& t,
                                     const Quantizer& quantizer) {
  PointFrequency pf;
  pf.reserve(t.size());
  for (const auto& tp : t.points()) {
    ++pf[quantizer.KeyOf(tp.p)];
  }
  return pf;
}

TrajectoryFrequency ComputeTrajectoryFrequency(const Dataset& d,
                                               const Quantizer& quantizer) {
  TrajectoryFrequency tf;
  std::unordered_set<LocationKey> seen;
  for (const auto& t : d.trajectories()) {
    seen.clear();
    for (const auto& tp : t.points()) {
      seen.insert(quantizer.KeyOf(tp.p));
    }
    for (const LocationKey k : seen) ++tf[k];
  }
  return tf;
}

}  // namespace frt
