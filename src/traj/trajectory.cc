#include "traj/trajectory.h"

#include <algorithm>

namespace frt {
namespace {

// Exact O(n^2) diameter for small n.
double ExactDiameter(const std::vector<TimedPoint>& pts) {
  double best2 = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      best2 = std::max(best2, Distance2(pts[i].p, pts[j].p));
    }
  }
  return std::sqrt(best2);
}

}  // namespace

double Trajectory::Diameter() const {
  if (points_.size() < 2) return 0.0;
  if (points_.size() <= 64) return ExactDiameter(points_);

  // For long trajectories, collect the extreme points along 8 directions;
  // the diameter endpoints are always hull vertices and the 8-direction
  // extremes bracket the hull tightly for GPS traces. This keeps Diameter()
  // O(n) while staying within a small relative error of the true value
  // (exact when the diameter endpoints are axis/diagonal extremes).
  static const double kDirs[8][2] = {
      {1, 0}, {0, 1}, {1, 1}, {1, -1}, {0.3827, 0.9239}, {0.9239, 0.3827},
      {0.9239, -0.3827}, {0.3827, -0.9239}};
  std::vector<TimedPoint> extremes;
  extremes.reserve(16);
  for (const auto& d : kDirs) {
    size_t lo = 0;
    size_t hi = 0;
    double lo_v = 1e300;
    double hi_v = -1e300;
    for (size_t i = 0; i < points_.size(); ++i) {
      const double v = points_[i].p.x * d[0] + points_[i].p.y * d[1];
      if (v < lo_v) {
        lo_v = v;
        lo = i;
      }
      if (v > hi_v) {
        hi_v = v;
        hi = i;
      }
    }
    extremes.push_back(points_[lo]);
    extremes.push_back(points_[hi]);
  }
  return ExactDiameter(extremes);
}

}  // namespace frt
