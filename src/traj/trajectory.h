// Trajectory and dataset model (paper Definition 4).
//
// A trajectory is a chronologically ordered sequence of timestamped spatial
// points; each moving object contributes exactly one trajectory covering its
// entire history, so |D| trajectories = |D| objects and the adjacency notion
// for differential privacy is "datasets differing in one trajectory".

#ifndef FRT_TRAJ_TRAJECTORY_H_
#define FRT_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace frt {

/// Identifier of a moving object / its trajectory.
using TrajId = int64_t;

/// \brief A single object's full movement history.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(TrajId id) : id_(id) {}
  Trajectory(TrajId id, std::vector<TimedPoint> points)
      : id_(id), points_(std::move(points)) {}

  TrajId id() const { return id_; }
  void set_id(TrajId id) { id_ = id; }

  const std::vector<TimedPoint>& points() const { return points_; }
  std::vector<TimedPoint>& mutable_points() { return points_; }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const TimedPoint& operator[](size_t i) const { return points_[i]; }
  TimedPoint& operator[](size_t i) { return points_[i]; }

  void Append(const TimedPoint& tp) { points_.push_back(tp); }
  void Append(const Point& p, int64_t t) { points_.push_back({p, t}); }

  /// Number of consecutive-point segments (size-1, or 0).
  size_t NumSegments() const {
    return points_.size() >= 2 ? points_.size() - 1 : 0;
  }

  /// The i-th segment <p_i, p_{i+1}>.
  Segment SegmentAt(size_t i) const {
    return Segment{points_[i].p, points_[i + 1].p};
  }

  /// Total polyline length in meters.
  double Length() const {
    double len = 0.0;
    for (size_t i = 0; i + 1 < points_.size(); ++i) {
      len += Distance(points_[i].p, points_[i + 1].p);
    }
    return len;
  }

  /// Spatial bounding box of all points.
  BBox Bounds() const {
    BBox b;
    for (const auto& tp : points_) b.Extend(tp.p);
    return b;
  }

  /// \brief Trajectory diameter: the maximum pairwise point distance.
  ///
  /// Computed exactly for short trajectories and via the bounding-box
  /// convex-extreme heuristic (exact on the 8 extreme points, which contain
  /// the true diameter endpoints for convex hull extremes) for long ones.
  double Diameter() const;

 private:
  TrajId id_ = -1;
  std::vector<TimedPoint> points_;
};

}  // namespace frt

#endif  // FRT_TRAJ_TRAJECTORY_H_
