#include "traj/io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace frt {

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << "# traj_id,x,y,t\n";
  char buf[160];
  for (const auto& t : dataset.trajectories()) {
    for (const auto& tp : t.points()) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 ",%.3f,%.3f,%" PRId64 "\n",
                    t.id(), tp.p.x, tp.p.y, tp.t);
      out << buf;
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  Dataset dataset;
  Trajectory current;
  bool has_current = false;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto fields = Split(stripped, ',');
    if (fields.size() != 4) {
      return Status::IOError("line " + std::to_string(lineno) +
                             ": expected 4 fields, got " +
                             std::to_string(fields.size()));
    }
    FRT_ASSIGN_OR_RETURN(const int64_t id, ParseInt64(fields[0]));
    FRT_ASSIGN_OR_RETURN(const double x, ParseDouble(fields[1]));
    FRT_ASSIGN_OR_RETURN(const double y, ParseDouble(fields[2]));
    FRT_ASSIGN_OR_RETURN(const int64_t t, ParseInt64(fields[3]));
    if (!has_current) {
      current = Trajectory(id);
      has_current = true;
    } else if (current.id() != id) {
      FRT_RETURN_IF_ERROR(dataset.Add(std::move(current)));
      current = Trajectory(id);
    }
    current.Append(Point{x, y}, t);
  }
  if (has_current && !current.empty()) {
    FRT_RETURN_IF_ERROR(dataset.Add(std::move(current)));
  }
  return dataset;
}

}  // namespace frt
