#include "traj/io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/strings.h"

namespace frt {

Result<std::optional<CsvRecord>> ParseCsvRecord(std::string_view line,
                                                size_t lineno) {
  const std::string_view stripped = StripAsciiWhitespace(line);
  if (stripped.empty() || stripped[0] == '#') return std::optional<CsvRecord>();
  const auto fields = Split(stripped, ',');
  if (fields.size() != 4) {
    return Status::IOError("line " + std::to_string(lineno) +
                           ": expected 4 fields, got " +
                           std::to_string(fields.size()));
  }
  CsvRecord record;
  FRT_ASSIGN_OR_RETURN(record.id, ParseInt64(fields[0]));
  FRT_ASSIGN_OR_RETURN(record.p.x, ParseDouble(fields[1]));
  FRT_ASSIGN_OR_RETURN(record.p.y, ParseDouble(fields[2]));
  FRT_ASSIGN_OR_RETURN(record.t, ParseInt64(fields[3]));
  return std::optional<CsvRecord>(record);
}

void WriteTrajectoryCsv(const Trajectory& trajectory, std::ostream& out,
                        std::string_view line_prefix) {
  char buf[160];
  for (const auto& tp : trajectory.points()) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 ",%.3f,%.3f,%" PRId64 "\n",
                  trajectory.id(), tp.p.x, tp.p.y, tp.t);
    if (!line_prefix.empty()) out << line_prefix;
    out << buf;
  }
}

Status WriteDatasetCsv(const Dataset& dataset, std::ostream& out) {
  out << "# traj_id,x,y,t\n";
  for (const auto& t : dataset.trajectories()) WriteTrajectoryCsv(t, out);
  out.flush();
  if (!out.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  if (auto st = WriteDatasetCsv(dataset, out); !st.ok()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  // Same grouping contract as stream/ingest.h's TrajectoryReader (which
  // must not be called from this lower layer); equivalence of the two
  // paths is locked by stream_ingest_test.
  Dataset dataset;
  Trajectory current;
  bool has_current = false;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    FRT_ASSIGN_OR_RETURN(const std::optional<CsvRecord> record,
                         ParseCsvRecord(line, lineno));
    if (!record.has_value()) continue;
    if (!has_current) {
      current = Trajectory(record->id);
      has_current = true;
    } else if (current.id() != record->id) {
      FRT_RETURN_IF_ERROR(dataset.Add(std::move(current)));
      current = Trajectory(record->id);
    }
    current.Append(record->p, record->t);
  }
  if (has_current && !current.empty()) {
    FRT_RETURN_IF_ERROR(dataset.Add(std::move(current)));
  }
  return dataset;
}

}  // namespace frt
