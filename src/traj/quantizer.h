// Location quantization: mapping raw coordinates to discrete location keys.
//
// The paper counts point frequencies (PF) and trajectory frequencies (TF) of
// "points", treating a point as a discrete location. Raw GPS doubles almost
// never repeat bit-for-bit, so FRT snaps coordinates onto a fine uniform
// grid and uses the cell as the location identity. All frequency counting,
// signature extraction and edit bookkeeping operate on LocationKey; geometry
// (utility loss, index search) keeps raw coordinates.

#ifndef FRT_TRAJ_QUANTIZER_H_
#define FRT_TRAJ_QUANTIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace frt {

/// Discrete location identity (packed snap-grid cell key).
using LocationKey = uint64_t;

/// \brief Maps coordinates to LocationKeys at a fixed snap resolution, and
/// maintains a representative coordinate per key for materializing edits.
class Quantizer {
 public:
  Quantizer() = default;

  /// \param region      spatial extent of the data.
  /// \param snap_levels dyadic levels; snap resolution is
  ///                    2^(snap_levels-1) per side (default 1024x1024).
  explicit Quantizer(const BBox& region, int snap_levels = 11)
      : grid_(region, snap_levels) {}

  const GridSpec& grid() const { return grid_; }
  int snap_level() const { return grid_.finest_level(); }

  /// Location key for a raw coordinate.
  LocationKey KeyOf(const Point& p) const {
    return grid_.CellAt(p, snap_level()).Key();
  }

  /// \brief Representative coordinate for a key.
  ///
  /// If RegisterDataset() has seen points for this key, returns the centroid
  /// of the observed occurrences (a realistic on-road position); otherwise
  /// the snap-cell center.
  Point PointOf(LocationKey key) const {
    auto it = representatives_.find(key);
    if (it != representatives_.end()) {
      const auto& acc = it->second;
      return {acc.sum_x / acc.n, acc.sum_y / acc.n};
    }
    return grid_.CellCenter(Unpack(key));
  }

  /// Accumulates representative coordinates from every point in `dataset`.
  void RegisterDataset(const Dataset& dataset) {
    for (const auto& t : dataset.trajectories()) {
      for (const auto& tp : t.points()) RegisterPoint(tp.p);
    }
  }

  /// Accumulates a single observation.
  void RegisterPoint(const Point& p) {
    auto& acc = representatives_[KeyOf(p)];
    acc.sum_x += p.x;
    acc.sum_y += p.y;
    acc.n += 1.0;
  }

  /// Unpacks a key back into its cell coordinate.
  static CellCoord Unpack(LocationKey key) {
    CellCoord c;
    c.level = static_cast<int32_t>(key >> 54);
    c.ix = static_cast<int32_t>((key >> 27) & ((1u << 27) - 1));
    c.iy = static_cast<int32_t>(key & ((1u << 27) - 1));
    return c;
  }

 private:
  struct Accum {
    double sum_x = 0.0;
    double sum_y = 0.0;
    double n = 0.0;
  };

  GridSpec grid_;
  std::unordered_map<LocationKey, Accum> representatives_;
};

/// \brief PF distribution of one trajectory: location key -> occurrence
/// count f_p (paper notation F(tau)).
using PointFrequency = std::unordered_map<LocationKey, int64_t>;

/// \brief TF distribution over a dataset: location key -> number of
/// trajectories visiting it at least once (paper notation L).
using TrajectoryFrequency = std::unordered_map<LocationKey, int64_t>;

/// Counts PF for a single trajectory.
PointFrequency ComputePointFrequency(const Trajectory& t,
                                     const Quantizer& quantizer);

/// Counts TF over the whole dataset.
TrajectoryFrequency ComputeTrajectoryFrequency(const Dataset& d,
                                               const Quantizer& quantizer);

}  // namespace frt

#endif  // FRT_TRAJ_QUANTIZER_H_
