// Planar geometry primitives.
//
// FRT works in a projected planar coordinate system with coordinates in
// meters (the synthetic city generator emits meters directly; real data
// should be projected before ingestion). All distances are Euclidean.

#ifndef FRT_GEO_POINT_H_
#define FRT_GEO_POINT_H_

#include <cmath>
#include <cstdint>
#include <functional>

namespace frt {

/// \brief A 2-D point in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  /// Squared Euclidean norm.
  double Norm2() const { return x * x + y * y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(Norm2()); }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt for comparisons).
inline double Distance2(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Linear interpolation between `a` and `b` at parameter t in [0, 1].
inline Point Lerp(const Point& a, const Point& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// \brief A GPS sample: position plus a timestamp in seconds since epoch.
struct TimedPoint {
  Point p;
  int64_t t = 0;  // seconds

  friend bool operator==(const TimedPoint& a, const TimedPoint& b) {
    return a.p == b.p && a.t == b.t;
  }
};

}  // namespace frt

namespace std {
template <>
struct hash<frt::Point> {
  size_t operator()(const frt::Point& p) const {
    const size_t hx = std::hash<double>()(p.x);
    const size_t hy = std::hash<double>()(p.y);
    return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
  }
};
}  // namespace std

#endif  // FRT_GEO_POINT_H_
