// Uniform and dyadic grid addressing over a rectangular region.
//
// The hierarchical grid index (paper §IV-C) uses dyadic levels: level L has
// 2^L x 2^L cells over the region, so level 0 is the single coarsest cell
// G_{r1} = 1x1 and level H-1 the finest (e.g. 512x512 for H = 10). A cell is
// addressed by (level, ix, iy); its parent at level-1 is (ix/2, iy/2) and
// its four children at level+1 are (2ix + {0,1}, 2iy + {0,1}).

#ifndef FRT_GEO_GRID_H_
#define FRT_GEO_GRID_H_

#include <algorithm>
#include <cstdint>
#include <functional>

#include "geo/bbox.h"
#include "geo/point.h"

namespace frt {

/// \brief Address of a cell in a dyadic grid hierarchy.
struct CellCoord {
  int32_t level = 0;  // 0 = coarsest (1x1)
  int32_t ix = 0;
  int32_t iy = 0;

  friend bool operator==(const CellCoord& a, const CellCoord& b) {
    return a.level == b.level && a.ix == b.ix && a.iy == b.iy;
  }
  friend bool operator!=(const CellCoord& a, const CellCoord& b) {
    return !(a == b);
  }

  /// The enclosing cell one level coarser. Level 0 is its own parent.
  CellCoord Parent() const {
    if (level == 0) return *this;
    return CellCoord{level - 1, ix >> 1, iy >> 1};
  }

  /// The idx-th (0..3) sub-cell one level finer.
  CellCoord Child(int idx) const {
    return CellCoord{level + 1, (ix << 1) | (idx & 1), (iy << 1) | (idx >> 1)};
  }

  /// True when `other` lies inside this cell's subtree (any finer level).
  bool IsAncestorOf(const CellCoord& other) const {
    if (other.level < level) return false;
    const int shift = other.level - level;
    return (other.ix >> shift) == ix && (other.iy >> shift) == iy;
  }

  /// Packs (level, ix, iy) into a hashable 64-bit key. Levels <= 27.
  uint64_t Key() const {
    return (static_cast<uint64_t>(level) << 54) |
           (static_cast<uint64_t>(static_cast<uint32_t>(ix)) << 27) |
           static_cast<uint64_t>(static_cast<uint32_t>(iy));
  }
};

/// \brief Geometry of a dyadic grid hierarchy over a fixed region.
///
/// Immutable; shared by the uniform-grid and hierarchical-grid indexes and
/// by the location quantizer.
class GridSpec {
 public:
  GridSpec() = default;

  /// \param region   the covered area; points outside are clamped onto the
  ///                 boundary cells.
  /// \param levels   number of dyadic levels; finest grid is
  ///                 2^(levels-1) x 2^(levels-1).
  GridSpec(const BBox& region, int levels)
      : region_(region), levels_(std::max(1, levels)) {}

  const BBox& region() const { return region_; }
  int levels() const { return levels_; }
  int finest_level() const { return levels_ - 1; }

  /// Cells per side at `level`.
  int64_t Resolution(int level) const { return int64_t{1} << level; }

  /// Cell containing point p at `level` (clamped to the region).
  CellCoord CellAt(const Point& p, int level) const {
    const int64_t n = Resolution(level);
    const double w = std::max(region_.Width(), 1e-12);
    const double h = std::max(region_.Height(), 1e-12);
    int64_t ix = static_cast<int64_t>((p.x - region_.min_x) / w * n);
    int64_t iy = static_cast<int64_t>((p.y - region_.min_y) / h * n);
    ix = std::clamp<int64_t>(ix, 0, n - 1);
    iy = std::clamp<int64_t>(iy, 0, n - 1);
    return CellCoord{level, static_cast<int32_t>(ix),
                     static_cast<int32_t>(iy)};
  }

  /// Geographic coverage of a cell.
  BBox CellBox(const CellCoord& c) const {
    const int64_t n = Resolution(c.level);
    const double w = region_.Width() / static_cast<double>(n);
    const double h = region_.Height() / static_cast<double>(n);
    BBox b;
    b.min_x = region_.min_x + w * c.ix;
    b.min_y = region_.min_y + h * c.iy;
    b.max_x = b.min_x + w;
    b.max_y = b.min_y + h;
    return b;
  }

  /// Center point of a cell; used to materialize cell-level outputs (DPT,
  /// AdaTrace, generalized baselines).
  Point CellCenter(const CellCoord& c) const { return CellBox(c).Center(); }

  /// \brief The best-fit cell of a segment (paper Definition 11): the finest
  /// cell that contains both endpoints, i.e. the deepest level at which the
  /// endpoints share a cell.
  CellCoord BestFitCell(const Point& a, const Point& b) const {
    CellCoord ca = CellAt(a, finest_level());
    CellCoord cb = CellAt(b, finest_level());
    while (ca != cb) {
      ca = ca.Parent();
      cb = cb.Parent();
    }
    return ca;
  }

 private:
  BBox region_;
  int levels_ = 1;
};

}  // namespace frt

namespace std {
template <>
struct hash<frt::CellCoord> {
  size_t operator()(const frt::CellCoord& c) const {
    uint64_t k = c.Key();
    // splitmix-style finalizer
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(k ^ (k >> 31));
  }
};
}  // namespace std

#endif  // FRT_GEO_GRID_H_
