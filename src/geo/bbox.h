// Axis-aligned bounding boxes and the point-rectangle MINdist of paper
// Definition 12 / Equation (4), used by the hierarchical grid pruning rule
// (Theorem 4).

#ifndef FRT_GEO_BBOX_H_
#define FRT_GEO_BBOX_H_

#include <algorithm>
#include <limits>

#include "geo/point.h"
#include "geo/segment.h"

namespace frt {

/// \brief Axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  /// An empty box (contains nothing; Extend() grows it).
  static BBox Empty() { return BBox{}; }

  /// Box spanning two corner points in any orientation.
  static BBox Of(const Point& a, const Point& b) {
    return BBox{std::min(a.x, b.x), std::min(a.y, b.y),
                std::max(a.x, b.x), std::max(a.y, b.y)};
  }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }

  /// Diagonal length; used as the trajectory-diameter upper bound.
  double Diagonal() const {
    if (IsEmpty()) return 0.0;
    const double w = Width();
    const double h = Height();
    return std::sqrt(w * w + h * h);
  }

  Point Center() const {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool ContainsSegment(const Segment& s) const {
    return Contains(s.a) && Contains(s.b);
  }

  bool Intersects(const BBox& o) const {
    return !(o.min_x > max_x || o.max_x < min_x || o.min_y > max_y ||
             o.max_y < min_y);
  }

  /// Grows the box to include `p`.
  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void Extend(const BBox& o) {
    if (o.IsEmpty()) return;
    min_x = std::min(min_x, o.min_x);
    min_y = std::min(min_y, o.min_y);
    max_x = std::max(max_x, o.max_x);
    max_y = std::max(max_y, o.max_y);
  }
};

/// \brief Squared MINdist(q, g) — the sqrt-free form the search pruning
/// rules compare against squared candidate distances (Theorem 4 holds in
/// squared space because sqrt is monotone).
inline double MinDist2PointBBox(const Point& q, const BBox& g) {
  const double dx = std::max({g.min_x - q.x, 0.0, q.x - g.max_x});
  const double dy = std::max({g.min_y - q.y, 0.0, q.y - g.max_y});
  return dx * dx + dy * dy;
}

/// \brief MINdist(q, g): 0 when q is inside g, otherwise the distance to the
/// closest edge of the rectangle — paper Definition 12 / Equation (4).
inline double MinDistPointBBox(const Point& q, const BBox& g) {
  return std::sqrt(MinDist2PointBBox(q, g));
}

}  // namespace frt

#endif  // FRT_GEO_BBOX_H_
