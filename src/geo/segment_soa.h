// Batched point-segment distance over structure-of-arrays geometry.
//
// The Eq. (3) distance loop is the innermost loop of every kNN search, but
// with array-of-structs SegmentEntry storage each candidate's endpoints are
// strided 40 bytes apart and the compiler cannot vectorize the kernel. This
// header holds the SoA mirror the indexes keep next to their entry storage:
// geometry is packed into fixed-width lane blocks (ax/ay/bx/by plus the
// precomputed direction dx/dy and reciprocal squared length), and
// PointSegmentDistance2Batch evaluates one whole block per call with a
// plain counted loop the compiler auto-vectorizes (8 doubles = one AVX-512
// register or two AVX2 registers per array).
//
// Exactness: the per-lane arithmetic is PointSegmentDistance2Kernel
// (geo/segment.h) verbatim — multiply by the precomputed reciprocal, clamp,
// dot — so batched distances are bit-identical to the scalar path. Padded
// tail lanes compute garbage that callers must ignore (they never read
// lanes >= size()).

#ifndef FRT_GEO_SEGMENT_SOA_H_
#define FRT_GEO_SEGMENT_SOA_H_

#include <cstddef>
#include <vector>

#include "geo/segment.h"

namespace frt {

/// Compile-time lane width of the batched distance kernel.
inline constexpr size_t kDistLanes = 8;

/// \brief One lane block of SoA segment geometry.
struct SegmentGeomBlock {
  double ax[kDistLanes];
  double ay[kDistLanes];
  double bx[kDistLanes];
  double by[kDistLanes];
  // Precomputed once at insert: direction and reciprocal squared length,
  // so the hot loop performs no division.
  double dx[kDistLanes];
  double dy[kDistLanes];
  double inv_len2[kDistLanes];
};

/// \brief Evaluates the squared distance from q to every lane of `block`,
/// writing kDistLanes results into `out`. Lanes past the caller's live
/// count hold garbage — skip them.
inline void PointSegmentDistance2Batch(const Point& q,
                                       const SegmentGeomBlock& block,
                                       double* __restrict out) {
  // A single counted loop over parallel arrays: every operation maps to a
  // packed-double instruction, and the identical expression tree keeps the
  // results bit-equal to PointSegmentDistance2Kernel per lane. (__restrict
  // spares GCC the runtime aliasing check it would otherwise version the
  // loop with; the vectorization itself additionally needs the project-wide
  // -fno-trapping-math so the clamp if-converts.)
  for (size_t lane = 0; lane < kDistLanes; ++lane) {
    const double rx = q.x - block.ax[lane];
    const double ry = q.y - block.ay[lane];
    double t = (rx * block.dx[lane] + ry * block.dy[lane]) *
               block.inv_len2[lane];
    t = t < 0.0 ? 0.0 : t;
    t = t > 1.0 ? 1.0 : t;
    const double ex = rx - block.dx[lane] * t;
    const double ey = ry - block.dy[lane] * t;
    out[lane] = ex * ex + ey * ey;
  }
}

/// \brief Growable SoA mirror of a cell's segment geometry.
///
/// Maintained in lockstep with the owning cell's SegmentEntry vector:
/// PushBack mirrors push_back, SwapRemove mirrors the swap-erase removal
/// idiom, so geometry lane i always belongs to entry i. Blocks keep their
/// capacity across clear() for the arena's free-list slot reuse.
class SegmentGeomSoA {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_blocks() const { return (size_ + kDistLanes - 1) / kDistLanes; }
  const SegmentGeomBlock& block(size_t b) const { return blocks_[b]; }

  void clear() { size_ = 0; }

  void PushBack(const Segment& s) {
    const size_t b = size_ / kDistLanes;
    if (b == blocks_.size()) blocks_.emplace_back();
    Set(size_, s);
    ++size_;
  }

  /// Removes lane i by moving the last lane into it (the swap-erase
  /// mirror). Padded tail lanes keep stale values; they are never read.
  void SwapRemove(size_t i) {
    const size_t last = size_ - 1;
    if (i != last) CopyLane(last, i);
    --size_;
  }

  /// Reserves block capacity for `n` lanes (bulk-build pre-sizing).
  void Reserve(size_t n) {
    blocks_.reserve((n + kDistLanes - 1) / kDistLanes);
  }

 private:
  void Set(size_t i, const Segment& s) {
    SegmentGeomBlock& blk = blocks_[i / kDistLanes];
    const size_t lane = i % kDistLanes;
    blk.ax[lane] = s.a.x;
    blk.ay[lane] = s.a.y;
    blk.bx[lane] = s.b.x;
    blk.by[lane] = s.b.y;
    const double dx = s.b.x - s.a.x;
    const double dy = s.b.y - s.a.y;
    blk.dx[lane] = dx;
    blk.dy[lane] = dy;
    blk.inv_len2[lane] = SegmentInvLen2(dx, dy);
  }

  void CopyLane(size_t from, size_t to) {
    const SegmentGeomBlock& src = blocks_[from / kDistLanes];
    SegmentGeomBlock& dst = blocks_[to / kDistLanes];
    const size_t fl = from % kDistLanes;
    const size_t tl = to % kDistLanes;
    dst.ax[tl] = src.ax[fl];
    dst.ay[tl] = src.ay[fl];
    dst.bx[tl] = src.bx[fl];
    dst.by[tl] = src.by[fl];
    dst.dx[tl] = src.dx[fl];
    dst.dy[tl] = src.dy[fl];
    dst.inv_len2[tl] = src.inv_len2[fl];
  }

  std::vector<SegmentGeomBlock> blocks_;
  size_t size_ = 0;
};

}  // namespace frt

#endif  // FRT_GEO_SEGMENT_SOA_H_
