// Line segments and the point-segment distance of paper Equation (3).

#ifndef FRT_GEO_SEGMENT_H_
#define FRT_GEO_SEGMENT_H_

#include <algorithm>

#include "geo/point.h"

namespace frt {

/// \brief A directed line segment <a, b>.
struct Segment {
  Point a;
  Point b;

  double Length() const { return Distance(a, b); }
  Point Midpoint() const { return Lerp(a, b, 0.5); }
};

/// \brief Closest point on segment s to query point q (paper Eq. 3 argmin).
inline Point ClosestPointOnSegment(const Point& q, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = d.Norm2();
  if (len2 <= 0.0) return s.a;  // degenerate segment
  double t = ((q.x - s.a.x) * d.x + (q.y - s.a.y) * d.y) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Lerp(s.a, s.b, t);
}

/// \brief dist(q, s) = min over points p̄ on s of dist(q, p̄) — paper Eq. 3.
inline double PointSegmentDistance(const Point& q, const Segment& s) {
  return Distance(q, ClosestPointOnSegment(q, s));
}

/// Squared variant for comparisons.
inline double PointSegmentDistance2(const Point& q, const Segment& s) {
  return Distance2(q, ClosestPointOnSegment(q, s));
}

}  // namespace frt

#endif  // FRT_GEO_SEGMENT_H_
