// Line segments and the point-segment distance of paper Equation (3).

#ifndef FRT_GEO_SEGMENT_H_
#define FRT_GEO_SEGMENT_H_

#include <algorithm>

#include "geo/point.h"

namespace frt {

/// \brief A directed line segment <a, b>.
struct Segment {
  Point a;
  Point b;

  double Length() const { return Distance(a, b); }
  Point Midpoint() const { return Lerp(a, b, 0.5); }
};

/// \brief Closest point on segment s to query point q (paper Eq. 3 argmin).
inline Point ClosestPointOnSegment(const Point& q, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = d.Norm2();
  if (len2 <= 0.0) return s.a;  // degenerate segment
  double t = ((q.x - s.a.x) * d.x + (q.y - s.a.y) * d.y) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Lerp(s.a, s.b, t);
}

/// \brief Reciprocal of the squared segment length, the precomputed factor
/// of the distance kernel below. 0 for degenerate segments (which forces
/// t = 0, i.e. distance to endpoint a).
inline double SegmentInvLen2(double dx, double dy) {
  const double len2 = dx * dx + dy * dy;
  return len2 > 0.0 ? 1.0 / len2 : 0.0;
}

/// \brief The point-segment squared-distance kernel over precomputed
/// components: r = q - a, t = clamp((r·d) · inv_len2, 0, 1), e = r - d·t,
/// dist² = e·e.
///
/// This exact operation sequence is the single source of truth for Eq. (3)
/// distances everywhere a search compares or reports them: the scalar
/// indexes and the batched SoA kernel (geo/segment_soa.h) both evaluate it
/// verbatim (multiply by the precomputed reciprocal, never divide), so
/// their results are bit-identical and the cross-strategy equivalence and
/// batched-vs-scalar exactness contracts hold exactly, not approximately.
/// The project builds with -ffp-contract=off so the compiler cannot fuse
/// differently between the scalar and auto-vectorized instantiations.
inline double PointSegmentDistance2Kernel(double qx, double qy, double ax,
                                          double ay, double dx, double dy,
                                          double inv_len2) {
  const double rx = qx - ax;
  const double ry = qy - ay;
  double t = (rx * dx + ry * dy) * inv_len2;
  t = t < 0.0 ? 0.0 : t;
  t = t > 1.0 ? 1.0 : t;
  const double ex = rx - dx * t;
  const double ey = ry - dy * t;
  return ex * ex + ey * ey;
}

/// Squared point-segment distance (avoids the sqrt for comparisons).
inline double PointSegmentDistance2(const Point& q, const Segment& s) {
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;
  return PointSegmentDistance2Kernel(q.x, q.y, s.a.x, s.a.y, dx, dy,
                                     SegmentInvLen2(dx, dy));
}

/// \brief dist(q, s) = min over points p̄ on s of dist(q, p̄) — paper Eq. 3.
inline double PointSegmentDistance(const Point& q, const Segment& s) {
  return std::sqrt(PointSegmentDistance2(q, s));
}

}  // namespace frt

#endif  // FRT_GEO_SEGMENT_H_
