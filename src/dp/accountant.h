// Privacy accounting via sequential composition (paper Theorem 1).
//
// Mechanisms register their spend; the accountant enforces an optional total
// budget and reports the consumed epsilon. The paper's GL pipeline composes
// the global (epsilon_G) and local (epsilon_L) mechanisms sequentially, so
// its guarantee is epsilon = epsilon_G + epsilon_L.

#ifndef FRT_DP_ACCOUNTANT_H_
#define FRT_DP_ACCOUNTANT_H_

#include <deque>
#include <limits>
#include <string>

#include "common/result.h"

namespace frt {

/// \brief Ledger of sequentially composed epsilon spends.
class PrivacyAccountant {
 public:
  /// Unbounded accountant (tracks but never rejects).
  PrivacyAccountant() = default;

  /// Accountant enforcing a hard total budget.
  explicit PrivacyAccountant(double total_budget)
      : total_budget_(total_budget), enforce_(true) {}

  /// Registers a spend. Fails without recording when the budget would be
  /// exceeded (enforcing accountants only).
  Status Spend(double epsilon, std::string label) {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon spend must be positive");
    }
    if (enforce_ && spent_ + epsilon > total_budget_ + 1e-12) {
      return Status::FailedPrecondition(
          "privacy budget exhausted: spent " + std::to_string(spent_) +
          " + requested " + std::to_string(epsilon) + " > total " +
          std::to_string(total_budget_));
    }
    spent_ += epsilon;
    ledger_.push_back({epsilon, std::move(label)});
    TrimLedger();
    return Status::OK();
  }

  /// Caps the retained ledger entries (oldest dropped first); `spent()`
  /// and enforcement stay exact. Long-running services set this so the
  /// ledger does not grow without bound. 0 (default) keeps everything.
  void set_max_ledger_entries(size_t n) { max_ledger_entries_ = n; }

  /// \brief Preloads spend carried over from a predecessor ledger — e.g. a
  /// serving session resuming a feed whose evicted session already spent
  /// part of the budget.
  ///
  /// Bypasses enforcement (the carried amount was admitted by the
  /// predecessor when it was spent) and may leave the ledger over budget,
  /// in which case every further Spend is refused — the correct fate of a
  /// feed that exhausted its budget before the hand-off.
  void PreloadSpent(double epsilon, std::string label) {
    if (!(epsilon > 0.0)) return;
    spent_ += epsilon;
    ledger_.push_back({epsilon, std::move(label)});
    TrimLedger();
  }

  /// Total epsilon consumed so far (sequential composition).
  double spent() const { return spent_; }

  /// Remaining budget; +inf when not enforcing.
  double remaining() const {
    return enforce_ ? total_budget_ - spent_
                    : std::numeric_limits<double>::infinity();
  }

  bool enforcing() const { return enforce_; }
  double total_budget() const { return total_budget_; }

  struct Entry {
    double epsilon;
    std::string label;
  };
  /// Retained entries, oldest first (a deque: the over-cap trim pops the
  /// front in O(1), where a vector erase would shift every entry on every
  /// spend of a long-running feed).
  const std::deque<Entry>& ledger() const { return ledger_; }

 private:
  void TrimLedger() {
    if (max_ledger_entries_ == 0) return;
    while (ledger_.size() > max_ledger_entries_) ledger_.pop_front();
  }

  double total_budget_ = 0.0;
  double spent_ = 0.0;
  bool enforce_ = false;
  size_t max_ledger_entries_ = 0;
  std::deque<Entry> ledger_;
};

}  // namespace frt

#endif  // FRT_DP_ACCOUNTANT_H_
