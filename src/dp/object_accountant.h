// Per-object privacy accounting for streaming publication.
//
// The paper's guarantee (Theorem 1) is per moving object: the GL pipeline
// is (eps_G + eps_L)-DP with respect to datasets differing in ONE object's
// trajectory. When the same object reappears across stream windows its
// releases compose sequentially, but objects that never co-occur do not
// add up — so the end-to-end guarantee of a windowed stream is
//
//   max over objects o of  sum over windows containing o of eps_window,
//
// not the sum over all windows. PrivacyAccountant (the PR 2 wholesale
// ledger) charges the latter, which is sound but pessimistic: a feed of
// ever-fresh objects is refused after budget/(eps_G+eps_L) windows even
// though no single object ever spent more than one window's epsilon.
// ObjectBudgetAccountant charges the former: a hash-keyed ledger per
// object-id, a window admitted iff the *maximum-spent* id in it can still
// afford the window's epsilon.
//
// Bounded retention: on an unbounded id space the map cannot grow forever.
// When the tracked-id cap is exceeded, the ids with the LOWEST spend are
// evicted and their spend is folded into a conservative floor: any id not
// found in the map is assumed to have already spent `evicted_floor()`
// (the maximum spend ever evicted). Unknown ids are thus over-charged,
// never under-charged, so enforcement stays sound — only utility (windows
// admitted) degrades, and only once the cap is actually hit. Aggregate
// counters (max spent over all objects, total window admissions, spend
// events) are maintained exactly regardless of eviction.
//
// Like PrivacyAccountant, this class is not thread-safe; the streaming
// runner drives it from the single window-closing thread. "Atomic" below
// means transactional: a SpendWindow either records every id's spend or
// records nothing.

#ifndef FRT_DP_OBJECT_ACCOUNTANT_H_
#define FRT_DP_OBJECT_ACCOUNTANT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "traj/trajectory.h"

namespace frt {

/// \brief Hash-keyed per-object sequential ledgers with an exact aggregate.
class ObjectBudgetAccountant {
 public:
  /// Unbounded accountant (tracks but never rejects).
  ObjectBudgetAccountant() = default;

  /// Accountant enforcing a hard per-object budget.
  explicit ObjectBudgetAccountant(double per_object_budget)
      : per_object_budget_(per_object_budget), enforce_(true) {}

  /// One object's sequential ledger: cumulative epsilon and release count.
  struct ObjectLedger {
    double spent = 0.0;
    uint32_t windows = 0;
  };

  /// \brief Atomically admits or refuses a whole window.
  ///
  /// Admission is decided by the maximum-spent id among `ids` (unknown ids
  /// are charged the eviction floor): if that id can still afford
  /// `epsilon`, every id's ledger is charged; otherwise nothing is
  /// recorded and FailedPrecondition is returned. `ids` must not contain
  /// duplicates (one trajectory per object per window — the same contract
  /// the window's parallel-composition argument needs).
  Status SpendWindow(const std::vector<TrajId>& ids, double epsilon) {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon spend must be positive");
    }
    if (enforce_) {
      double worst = 0.0;
      TrajId worst_id = 0;
      for (const TrajId id : ids) {
        const double s = spent(id);
        if (s > worst) {
          worst = s;
          worst_id = id;
        }
      }
      if (worst + epsilon > per_object_budget_ + kTolerance) {
        return Status::FailedPrecondition(
            "per-object budget exhausted: object " +
            std::to_string(worst_id) + " spent " + std::to_string(worst) +
            " + requested " + std::to_string(epsilon) + " > budget " +
            std::to_string(per_object_budget_));
      }
    }
    for (const TrajId id : ids) Charge(id, epsilon);
    ++windows_admitted_;
    aggregate_epsilon_ += epsilon * static_cast<double>(ids.size());
    MaybeEvict();
    return Status::OK();
  }

  /// \brief Splits `ids` into those that can still afford `epsilon` and
  /// those that cannot (per-object refusal: the caller evicts the
  /// exhausted objects from the window instead of dropping the window).
  /// Records nothing. Non-enforcing accountants admit everything.
  void FilterAdmissible(const std::vector<TrajId>& ids, double epsilon,
                        std::vector<TrajId>* admissible,
                        std::vector<TrajId>* exhausted) const {
    for (const TrajId id : ids) {
      const bool fits =
          !enforce_ || spent(id) + epsilon <= per_object_budget_ + kTolerance;
      (fits ? admissible : exhausted)->push_back(id);
    }
  }

  /// Cumulative epsilon charged to `id`; evicted/unseen ids report the
  /// conservative eviction floor.
  double spent(TrajId id) const {
    auto it = ledgers_.find(id);
    return it != ledgers_.end() ? it->second.spent : evicted_floor_;
  }

  /// Remaining budget of `id`; +inf when not enforcing.
  double remaining(TrajId id) const {
    return enforce_ ? per_object_budget_ - spent(id)
                    : std::numeric_limits<double>::infinity();
  }

  /// \brief Caps the per-object ledgers retained in memory. When exceeded,
  /// the lowest-spend ids are evicted into the conservative floor. 0
  /// (default) tracks every id exactly.
  void set_max_tracked_objects(size_t n) {
    max_tracked_objects_ = n;
    MaybeEvict();
  }

  /// \brief Raises the conservative floor directly: every id not tracked
  /// exactly is assumed to have already spent at least `floor`.
  ///
  /// The serving layer uses this when a feed session is idle-evicted and
  /// later resumes: the evicted session's exact ledgers are gone, so the
  /// fresh accountant starts every object at the old session's maximum
  /// spend — over-charging, never under-charging, exactly like bounded
  /// retention. The floor only ever rises. Also raises max_spent(): the
  /// carried guarantee must not shrink across the hand-off.
  void PreloadFloor(double floor) {
    if (floor <= evicted_floor_) return;
    evicted_floor_ = floor;
    max_spent_ = std::max(max_spent_, floor);
  }

  bool enforcing() const { return enforce_; }
  double per_object_budget() const { return per_object_budget_; }

  /// Exact maximum cumulative spend over ALL objects ever charged — the
  /// stream's end-to-end guarantee. Monotone, unaffected by eviction.
  double max_spent() const { return max_spent_; }

  /// Exact count of windows admitted (SpendWindow transactions recorded).
  size_t windows_admitted() const { return windows_admitted_; }

  /// Exact sum over admitted windows of epsilon * |ids| — the total
  /// object-release volume, unaffected by eviction.
  double aggregate_epsilon() const { return aggregate_epsilon_; }

  /// Ids currently tracked exactly (<= max_tracked_objects when bounded).
  size_t tracked_objects() const { return ledgers_.size(); }

  /// Ids folded into the floor so far.
  size_t evicted_objects() const { return evicted_objects_; }

  /// Spend assumed for any id not in the map (max spend ever evicted).
  double evicted_floor() const { return evicted_floor_; }

  const std::unordered_map<TrajId, ObjectLedger>& ledgers() const {
    return ledgers_;
  }

 private:
  // Matches PrivacyAccountant's enforcement slack so the wholesale and
  // per-object modes agree on exact-budget boundary cases.
  static constexpr double kTolerance = 1e-12;

  void Charge(TrajId id, double epsilon) {
    ObjectLedger& ledger = ledgers_[id];  // starts at the floor if unseen
    if (ledger.windows == 0 && ledger.spent == 0.0) {
      ledger.spent = evicted_floor_;
    }
    ledger.spent += epsilon;
    ++ledger.windows;
    max_spent_ = std::max(max_spent_, ledger.spent);
  }

  // Evicts the lowest spenders down to the cap: their spends are the
  // cheapest to fold into the floor (the floor only ever rises to the
  // largest evicted spend), so heavy spenders keep exact ledgers and the
  // conservative over-charge on returning evictees stays minimal.
  void MaybeEvict() {
    if (max_tracked_objects_ == 0 ||
        ledgers_.size() <= max_tracked_objects_) {
      return;
    }
    std::vector<std::pair<double, TrajId>> by_spend;
    by_spend.reserve(ledgers_.size());
    for (const auto& [id, ledger] : ledgers_) {
      by_spend.push_back({ledger.spent, id});
    }
    const size_t excess = ledgers_.size() - max_tracked_objects_;
    std::nth_element(by_spend.begin(), by_spend.begin() + excess - 1,
                     by_spend.end());
    for (size_t i = 0; i < excess; ++i) {
      evicted_floor_ = std::max(evicted_floor_, by_spend[i].first);
      ledgers_.erase(by_spend[i].second);
      ++evicted_objects_;
    }
  }

  double per_object_budget_ = 0.0;
  bool enforce_ = false;
  size_t max_tracked_objects_ = 0;
  std::unordered_map<TrajId, ObjectLedger> ledgers_;
  double evicted_floor_ = 0.0;
  size_t evicted_objects_ = 0;
  double max_spent_ = 0.0;
  size_t windows_admitted_ = 0;
  double aggregate_epsilon_ = 0.0;
};

}  // namespace frt

#endif  // FRT_DP_OBJECT_ACCOUNTANT_H_
