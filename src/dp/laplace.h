// Laplace mechanisms (paper §III-A and Theorem 2).
//
// The classic Laplace mechanism adds Lap(0, sensitivity/epsilon) noise to a
// query answer. The paper's local randomization additionally relies on a
// *non-zero-mean* Laplace mechanism Lap(mu, sensitivity/epsilon): shifting
// the center biases the noise direction (e.g. toward reducing a signature
// point's frequency) while Theorem 2 shows the privacy ratio bound — which
// only depends on the scale — still holds, so epsilon-DP is preserved.

#ifndef FRT_DP_LAPLACE_H_
#define FRT_DP_LAPLACE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/result.h"
#include "common/rng.h"

namespace frt {

/// \brief Samples Laplace noise calibrated to (sensitivity, epsilon).
class LaplaceMechanism {
 public:
  /// \param sensitivity L1 sensitivity of the query (paper Def. 2).
  /// \param epsilon     privacy budget of this mechanism.
  LaplaceMechanism(double sensitivity, double epsilon)
      : sensitivity_(sensitivity), epsilon_(epsilon) {}

  /// Validates parameters; call before first use when inputs are external.
  Status Validate() const {
    if (!(sensitivity_ > 0.0)) {
      return Status::InvalidArgument("sensitivity must be positive");
    }
    if (!(epsilon_ > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    return Status::OK();
  }

  double sensitivity() const { return sensitivity_; }
  double epsilon() const { return epsilon_; }

  /// Noise scale lambda = sensitivity / epsilon.
  double Scale() const { return sensitivity_ / epsilon_; }

  /// Classic zero-mean noise draw (paper Def. 3).
  double SampleNoise(Rng& rng) const { return rng.Laplace(0.0, Scale()); }

  /// Non-zero-mean draw (Theorem 2): Lap(mu, sensitivity/epsilon).
  double SampleNoise(Rng& rng, double mu) const {
    return rng.Laplace(mu, Scale());
  }

  /// Perturbs `value` with zero-mean noise.
  double Perturb(Rng& rng, double value) const {
    return value + SampleNoise(rng);
  }

  /// Perturbs `value` with noise centered at `mu`.
  double Perturb(Rng& rng, double value, double mu) const {
    return value + SampleNoise(rng, mu);
  }

 private:
  double sensitivity_;
  double epsilon_;
};

// ---- Post-processing (paper Alg. 1 line 5, Alg. 2 lines 8-9) ----
//
// Frequencies are integral and bounded by their semantics; rounding the
// noisy value is post-processing and does not affect the DP guarantee
// (Dwork & Roth).

/// Rounds to the nearest integer.
inline int64_t RoundToInt(double v) {
  return static_cast<int64_t>(std::llround(v));
}

/// Rounds to the nearest integer within [lo, hi] (Alg. 1's Round(v, [0,|D|])).
inline int64_t RoundToIntRange(double v, int64_t lo, int64_t hi) {
  return std::clamp<int64_t>(RoundToInt(v), lo, hi);
}

/// Rounds to a non-negative integer (Alg. 2's RoundInt + max(.,0)).
inline int64_t RoundToNonNegativeInt(double v) {
  return std::max<int64_t>(0, RoundToInt(v));
}

}  // namespace frt

#endif  // FRT_DP_LAPLACE_H_
