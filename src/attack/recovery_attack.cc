#include "attack/recovery_attack.h"

#include <vector>

#include "common/parallel.h"

namespace frt {

RecoveryScores EvaluateRecovery(const Workload& workload,
                                const Dataset& published,
                                const MapMatchConfig& config) {
  RecoveryScores agg;
  const HmmMapMatcher matcher(&workload.network, config);

  struct PerTraj {
    RouteScores route;
    double accuracy = 0.0;
    bool valid = false;
  };
  std::vector<PerTraj> results(published.size());

  ParallelFor(published.size(), [&](size_t i) {
    const Trajectory& traj = published[i];
    const TrajId id = traj.id();
    if (id < 0 ||
        id >= static_cast<TrajId>(workload.truth.route_edges.size())) {
      return;
    }
    const auto& truth_route = workload.truth.route_edges[id];
    if (truth_route.empty()) return;
    const MatchResult match = matcher.Match(traj);
    PerTraj r;
    r.route = CompareRoutes(workload.network, truth_route,
                            match.route_edges);
    r.accuracy = AlignedPointAccuracy(workload.truth.point_edges[id],
                                      match.matched_edges);
    r.valid = true;
    results[i] = r;
  });

  for (const PerTraj& r : results) {
    if (!r.valid) continue;
    agg.precision += r.route.precision;
    agg.recall += r.route.recall;
    agg.f_score += r.route.f_score;
    agg.rmf += r.route.rmf;
    agg.accuracy += r.accuracy;
    ++agg.evaluated;
  }
  if (agg.evaluated > 0) {
    const double n = static_cast<double>(agg.evaluated);
    agg.precision /= n;
    agg.recall /= n;
    agg.f_score /= n;
    agg.rmf /= n;
    agg.accuracy /= n;
  }
  return agg;
}

}  // namespace frt
