#include "attack/linker.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace frt {
namespace {

// Cosine similarity of two sparse vectors.
double Cosine(const std::unordered_map<uint64_t, double>& a,
              const std::unordered_map<uint64_t, double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [k, v] : small) {
    auto it = large.find(k);
    if (it != large.end()) dot += v * it->second;
  }
  if (dot <= 0.0) return 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (const auto& [k, v] : a) na += v * v;
  for (const auto& [k, v] : b) nb += v * v;
  return dot / std::sqrt(na * nb);
}

// Keeps the m highest-weight features (deterministic ties on key).
void KeepTopM(std::unordered_map<uint64_t, double>* profile, int m) {
  if (profile->size() <= static_cast<size_t>(m)) return;
  std::vector<std::pair<double, uint64_t>> order;
  order.reserve(profile->size());
  for (const auto& [k, w] : *profile) order.emplace_back(w, k);
  std::sort(order.begin(), order.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  order.resize(m);
  std::unordered_map<uint64_t, double> kept;
  for (const auto& [w, k] : order) kept[k] = w;
  *profile = std::move(kept);
}

double IdfWeight(double count, double total, double n, double df) {
  return (count / total) * std::log(n / std::min(n, std::max(1.0, df)));
}

}  // namespace

std::string_view SignatureTypeLabel(SignatureType t) {
  switch (t) {
    case SignatureType::kSpatial:
      return "LAs";
    case SignatureType::kTemporal:
      return "LAt";
    case SignatureType::kSpatioTemporal:
      return "LAst";
    case SignatureType::kSequential:
      return "LAsq";
  }
  return "?";
}

Linker::Linker(const BBox& region, LinkerConfig config)
    : region_(region),
      config_(config),
      grid_(region, config.cell_level + 1) {}

uint64_t Linker::SpatialKey(const Point& p) const {
  const CellCoord c = grid_.CellAt(p, config_.cell_level);
  return static_cast<uint64_t>(c.ix) *
             static_cast<uint64_t>(grid_.Resolution(config_.cell_level)) +
         static_cast<uint64_t>(c.iy);
}

uint64_t Linker::TemporalKey(int64_t t) const {
  const int64_t hour = (t / 3600) % 24;
  return static_cast<uint64_t>(hour * config_.hour_bins / 24);
}

uint64_t Linker::SpatioTemporalKey(const Point& p, int64_t t) const {
  const uint64_t bucket =
      static_cast<uint64_t>(((t / 3600) % 24) / config_.st_bucket_hours);
  return (SpatialKey(p) << 8) | bucket;
}

std::unordered_map<uint64_t, int64_t> Linker::CountDocumentFrequency(
    const Dataset& d, SignatureType type) const {
  std::unordered_map<uint64_t, int64_t> df;
  std::unordered_map<uint64_t, size_t> last;  // dedup within a trajectory
  for (size_t i = 0; i < d.size(); ++i) {
    for (const auto& tp : d[i].points()) {
      uint64_t key = 0;
      switch (type) {
        case SignatureType::kSpatial:
          key = SpatialKey(tp.p);
          break;
        case SignatureType::kTemporal:
          key = TemporalKey(tp.t);
          break;
        case SignatureType::kSpatioTemporal:
          key = SpatioTemporalKey(tp.p, tp.t);
          break;
        case SignatureType::kSequential:
          continue;  // handled by BuildAllProfiles
      }
      auto it = last.find(key);
      if (it == last.end() || it->second != i + 1) {
        last[key] = i + 1;
        ++df[key];
      }
    }
  }
  return df;
}

std::vector<uint64_t> Linker::TopSpatialCells(
    const Trajectory& traj,
    const std::unordered_map<uint64_t, int64_t>& spatial_df,
    size_t corpus_size) const {
  Profile weights;
  for (const auto& tp : traj.points()) {
    weights[SpatialKey(tp.p)] += 1.0;
  }
  double total = 0.0;
  for (const auto& [k, v] : weights) total += v;
  if (total <= 0.0) return {};
  const double n = static_cast<double>(std::max<size_t>(corpus_size, 2));
  for (auto& [k, v] : weights) {
    auto it = spatial_df.find(k);
    const double df =
        it == spatial_df.end() ? 1.0 : static_cast<double>(it->second);
    v = IdfWeight(v, total, n, df);
  }
  KeepTopM(&weights, config_.m);
  std::vector<uint64_t> out;
  out.reserve(weights.size());
  for (const auto& [k, v] : weights) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

Linker::Profile Linker::BuildProfile(
    const Trajectory& traj, SignatureType type,
    const std::unordered_map<uint64_t, int64_t>& document_frequency,
    size_t corpus_size) const {
  Profile counts;
  for (const auto& tp : traj.points()) {
    switch (type) {
      case SignatureType::kSpatial:
        counts[SpatialKey(tp.p)] += 1.0;
        break;
      case SignatureType::kTemporal:
        counts[TemporalKey(tp.t)] += 1.0;
        break;
      case SignatureType::kSpatioTemporal:
        counts[SpatioTemporalKey(tp.p, tp.t)] += 1.0;
        break;
      case SignatureType::kSequential:
        break;  // handled by BuildAllProfiles
    }
  }
  double total = 0.0;
  for (const auto& [k, v] : counts) total += v;
  if (total <= 0.0) return counts;

  // The temporal profile is a plain visiting-time distribution; the other
  // types weight frequency by rarity (PF x IDF), mirroring the
  // representative-and-distinctive signature notion.
  if (type == SignatureType::kTemporal) {
    for (auto& [k, v] : counts) v /= total;
    return counts;
  }
  const double n = static_cast<double>(std::max<size_t>(corpus_size, 2));
  for (auto& [k, v] : counts) {
    auto it = document_frequency.find(k);
    const double df =
        it == document_frequency.end() ? 1.0
                                       : static_cast<double>(it->second);
    v = IdfWeight(v, total, n, df);
  }
  KeepTopM(&counts, config_.m);
  return counts;
}

std::vector<Linker::Profile> Linker::BuildAllProfiles(
    const Dataset& d, SignatureType type) const {
  std::vector<Profile> profiles(d.size());
  if (type != SignatureType::kSequential) {
    const auto df = CountDocumentFrequency(d, type);
    ParallelFor(d.size(), [&](size_t i) {
      profiles[i] = BuildProfile(d[i], type, df, d.size());
    });
    return profiles;
  }

  // Sequential signatures: transitions between a trajectory's *significant*
  // cells only (its top-m spatial cells), not every road cell passed. This
  // matches the sequence-of-important-locations signature of [3] and makes
  // the feature sensitive to anchor removal and frequency randomization.
  const auto spatial_df = CountDocumentFrequency(d, SignatureType::kSpatial);
  std::vector<Profile> raw_counts(d.size());
  ParallelFor(d.size(), [&](size_t i) {
    const auto top = TopSpatialCells(d[i], spatial_df, d.size());
    if (top.size() < 2) return;
    uint64_t prev = ~0ULL;
    for (const auto& tp : d[i].points()) {
      const uint64_t cell = SpatialKey(tp.p);
      if (!std::binary_search(top.begin(), top.end(), cell)) continue;
      if (cell == prev) continue;
      if (prev != ~0ULL) {
        raw_counts[i][(prev << 32) | (cell & 0xffffffffULL)] += 1.0;
      }
      prev = cell;
    }
  });
  // Document frequency over the bigram features.
  std::unordered_map<uint64_t, int64_t> seq_df;
  for (const auto& counts : raw_counts) {
    for (const auto& [k, v] : counts) ++seq_df[k];
  }
  const double n = static_cast<double>(std::max<size_t>(d.size(), 2));
  ParallelFor(d.size(), [&](size_t i) {
    Profile& counts = raw_counts[i];
    double total = 0.0;
    for (const auto& [k, v] : counts) total += v;
    if (total <= 0.0) return;
    for (auto& [k, v] : counts) {
      v = IdfWeight(v, total, n,
                    static_cast<double>(seq_df.at(k)));
    }
    KeepTopM(&counts, config_.m);
  });
  for (size_t i = 0; i < d.size(); ++i) {
    profiles[i] = std::move(raw_counts[i]);
  }
  return profiles;
}

void Linker::Train(const Dataset& original) {
  user_ids_.clear();
  user_ids_.reserve(original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    user_ids_.push_back(original[i].id());
  }
  for (int t = 0; t < 4; ++t) {
    profiles_[t] =
        BuildAllProfiles(original, static_cast<SignatureType>(t));
  }
}

std::vector<TrajId> Linker::Link(const Dataset& published,
                                 SignatureType type) const {
  const int t = static_cast<int>(type);
  const std::vector<Profile> probes = BuildAllProfiles(published, type);
  std::vector<TrajId> predicted(published.size(), -1);
  ParallelFor(published.size(), [&](size_t i) {
    double best = -1.0;
    size_t best_user = 0;
    for (size_t u = 0; u < profiles_[t].size(); ++u) {
      const double s = Cosine(probes[i], profiles_[t][u]);
      if (s > best) {
        best = s;
        best_user = u;
      }
    }
    predicted[i] = user_ids_.empty() ? -1 : user_ids_[best_user];
  });
  return predicted;
}

double Linker::LinkingAccuracy(const Dataset& published,
                               SignatureType type) const {
  if (published.empty() || user_ids_.empty()) return 0.0;
  const auto predicted = Link(published, type);
  size_t correct = 0;
  for (size_t i = 0; i < published.size(); ++i) {
    if (predicted[i] == published[i].id()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(published.size());
}

}  // namespace frt
