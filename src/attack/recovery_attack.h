// Recovery attack driver (§V-B3): HMM map-matching of published
// trajectories against the road network, scored against the generator's
// ground-truth routes.

#ifndef FRT_ATTACK_RECOVERY_ATTACK_H_
#define FRT_ATTACK_RECOVERY_ATTACK_H_

#include "roadnet/map_matcher.h"
#include "roadnet/route_compare.h"
#include "synth/workload.h"
#include "traj/dataset.h"

namespace frt {

/// Dataset-level recovery scores (averaged per trajectory).
struct RecoveryScores {
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
  double rmf = 0.0;
  double accuracy = 0.0;  ///< point-based
  size_t evaluated = 0;   ///< trajectories with usable ground truth
};

/// \brief Runs the recovery attack on `published` and scores it against the
/// workload's ground truth.
///
/// Each published trajectory is map-matched onto the road network; the
/// reconstructed route is compared with the true route of the matching
/// original trajectory (paired by id). Trajectories without ground truth
/// (foreign ids) are skipped.
RecoveryScores EvaluateRecovery(const Workload& workload,
                                const Dataset& published,
                                const MapMatchConfig& config = {});

}  // namespace frt

#endif  // FRT_ATTACK_RECOVERY_ATTACK_H_
