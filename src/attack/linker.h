// Re-identification (linking) attack — the privacy measurement of §V-B1.
//
// Implements the signature-based moving-object linking model the paper
// evaluates with [3]: the adversary derives per-user signatures from the
// original dataset, computes the same kind of signature for each published
// (anonymized) trajectory, and links it to the most similar user. The
// reported Linking Accuracy (LA) is the fraction of published trajectories
// attributed to their true source.
//
// Four signature types mirror the paper's LAs / LAt / LAst / LAsq columns:
//   spatial        — top-m cells weighted by PF x IDF(TF);
//   temporal       — hour-of-day visiting profile;
//   spatiotemporal — top-m (cell, time-bucket) pairs weighted like spatial;
//   sequential     — top-m collapsed cell bigrams weighted by support IDF.

#ifndef FRT_ATTACK_LINKER_H_
#define FRT_ATTACK_LINKER_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/grid.h"
#include "traj/dataset.h"

namespace frt {

/// Signature flavor used for linking.
enum class SignatureType {
  kSpatial,
  kTemporal,
  kSpatioTemporal,
  kSequential,
};

/// Display name ("LAs", "LAt", "LAst", "LAsq").
std::string_view SignatureTypeLabel(SignatureType t);

/// Linker tuning.
struct LinkerConfig {
  /// Elements kept per signature side (paper: the linking model of [3]
  /// uses the same signature size m = 10 as the defense).
  int m = 10;
  /// Cell granularity of spatial features (2^level per side). Fine cells
  /// (~40 m at city scale) make the attack exploit exact anchor locations,
  /// matching the location granularity of the linking model in [3].
  int cell_level = 9;
  /// Hour-of-day bins for the temporal profile.
  int hour_bins = 24;
  /// Hours per bucket in the joint spatiotemporal key.
  int st_bucket_hours = 4;
};

/// \brief Signature-based re-identification model.
class Linker {
 public:
  Linker(const BBox& region, LinkerConfig config = {});

  /// Builds the per-user reference signatures from the original dataset.
  void Train(const Dataset& original);

  /// Links every trajectory of `published` against the trained users and
  /// returns the linking accuracy for the given signature type. Published
  /// trajectories keep their source's id in record-level methods, which is
  /// what the accuracy is scored against; synthetic datasets score at
  /// chance level by construction.
  double LinkingAccuracy(const Dataset& published, SignatureType type) const;

  /// Predicted source ids, aligned with `published` order (for tests).
  std::vector<TrajId> Link(const Dataset& published,
                           SignatureType type) const;

 private:
  /// Sparse feature vector: feature key -> weight.
  using Profile = std::unordered_map<uint64_t, double>;

  Profile BuildProfile(const Trajectory& traj, SignatureType type,
                       const std::unordered_map<uint64_t, int64_t>&
                           document_frequency,
                       size_t corpus_size) const;

  /// The trajectory's top-m spatial cells by PF x IDF; the sequential
  /// signature is built over transitions between these significant cells
  /// only (as in [3], sequences are over a user's important locations, not
  /// every road cell passed).
  std::vector<uint64_t> TopSpatialCells(
      const Trajectory& traj,
      const std::unordered_map<uint64_t, int64_t>& spatial_df,
      size_t corpus_size) const;

  /// Document frequencies (how many trajectories contain each feature) of
  /// the given dataset, for the IDF part of the weights.
  std::unordered_map<uint64_t, int64_t> CountDocumentFrequency(
      const Dataset& d, SignatureType type) const;

  /// Builds the signature profile of every trajectory in `d` (used both
  /// for training references and for probing published data).
  std::vector<Profile> BuildAllProfiles(const Dataset& d,
                                        SignatureType type) const;

  uint64_t SpatialKey(const Point& p) const;
  uint64_t TemporalKey(int64_t t) const;
  uint64_t SpatioTemporalKey(const Point& p, int64_t t) const;

  BBox region_;
  LinkerConfig config_;
  GridSpec grid_;
  std::vector<TrajId> user_ids_;
  std::vector<Profile> profiles_[4];  // per SignatureType
};

}  // namespace frt

#endif  // FRT_ATTACK_LINKER_H_
