#include "roadnet/map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "geo/segment.h"
#include "roadnet/shortest_path.h"

namespace frt {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct Candidate {
  EdgeId edge = -1;
  Point proj;        // projection of the observation onto the edge
  double dist = 0.0;  // perpendicular distance observation -> proj
  double off_u = 0.0;  // along-edge distance node u -> proj
  double off_v = 0.0;  // along-edge distance node v -> proj
};

// Candidate edges for one observation, closest-first, capped.
std::vector<Candidate> CandidatesFor(const RoadNetwork& net, const Point& p,
                                     const MapMatchConfig& cfg) {
  std::vector<Candidate> cands;
  for (const EdgeId e : net.EdgesNear(p, cfg.candidate_radius)) {
    const Segment s = net.EdgeSegment(e);
    Candidate c;
    c.edge = e;
    c.proj = ClosestPointOnSegment(p, s);
    c.dist = Distance(p, c.proj);
    c.off_u = Distance(s.a, c.proj);
    c.off_v = Distance(s.b, c.proj);
    cands.push_back(c);
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist < b.dist;
            });
  if (static_cast<int>(cands.size()) > cfg.max_candidates) {
    cands.resize(cfg.max_candidates);
  }
  return cands;
}

// Network route distance between two candidates' projections, using cached
// bounded Dijkstra trees rooted at the previous candidates' edge endpoints.
double RouteDistance(
    const Candidate& from, const Candidate& to, const RoadNetwork& net,
    double bound,
    std::unordered_map<NodeId, std::unordered_map<NodeId, double>>* cache) {
  if (from.edge == to.edge) {
    return std::fabs(from.off_u - to.off_u);
  }
  const RoadEdge& ef = net.edge(from.edge);
  const RoadEdge& et = net.edge(to.edge);
  auto tree = [&](NodeId root) -> const std::unordered_map<NodeId, double>& {
    auto it = cache->find(root);
    if (it == cache->end()) {
      it = cache->emplace(root, BoundedDistances(net, root, bound)).first;
    }
    return it->second;
  };
  auto leg = [&](NodeId a, double off_a, NodeId b, double off_b) {
    const auto& d = tree(a);
    auto it = d.find(b);
    if (it == d.end()) return std::numeric_limits<double>::infinity();
    return off_a + it->second + off_b;
  };
  double best = std::min(
      std::min(leg(ef.u, from.off_u, et.u, to.off_u),
               leg(ef.u, from.off_u, et.v, to.off_v)),
      std::min(leg(ef.v, from.off_v, et.u, to.off_u),
               leg(ef.v, from.off_v, et.v, to.off_v)));
  return best;
}

}  // namespace

HmmMapMatcher::HmmMapMatcher(const RoadNetwork* net, MapMatchConfig config)
    : net_(net), config_(config) {}

MatchResult HmmMapMatcher::Match(const Trajectory& traj) const {
  MatchResult result;
  const size_t n = traj.size();
  result.matched_edges.assign(n, -1);
  if (n == 0 || net_->NumEdges() == 0) return result;

  const double log_emission_scale = -0.5 / (config_.gps_sigma *
                                            config_.gps_sigma);

  // Per-observation candidate sets.
  std::vector<std::vector<Candidate>> cands(n);
  for (size_t t = 0; t < n; ++t) {
    cands[t] = CandidatesFor(*net_, traj[t].p, config_);
  }

  // Viterbi with restart-on-break. score[t][j], back[t][j].
  std::vector<std::vector<double>> score(n);
  std::vector<std::vector<int>> back(n);
  auto emit = [&](size_t t, size_t j) {
    const double d = cands[t][j].dist;
    return log_emission_scale * d * d;
  };

  std::vector<char> is_start(n, 0);
  for (size_t t = 0; t < n; ++t) {
    score[t].assign(cands[t].size(), kNegInf);
    back[t].assign(cands[t].size(), -1);
  }

  size_t prev_t = static_cast<size_t>(-1);  // last observation with candidates
  for (size_t t = 0; t < n; ++t) {
    if (cands[t].empty()) continue;
    bool restarted = false;
    if (prev_t == static_cast<size_t>(-1)) {
      restarted = true;
    } else {
      const double gap = Distance(traj[prev_t].p, traj[t].p);
      if (gap > config_.max_gap) restarted = true;
    }
    if (restarted) {
      for (size_t j = 0; j < cands[t].size(); ++j) score[t][j] = emit(t, j);
      is_start[t] = 1;
      if (t > 0) ++result.num_breaks;
      prev_t = t;
      continue;
    }

    const double straight = Distance(traj[prev_t].p, traj[t].p);
    const double bound = straight * config_.route_bound_factor +
                         config_.route_bound_slack;
    std::unordered_map<NodeId, std::unordered_map<NodeId, double>> cache;
    bool any = false;
    for (size_t j = 0; j < cands[t].size(); ++j) {
      double best = kNegInf;
      int best_i = -1;
      for (size_t i = 0; i < cands[prev_t].size(); ++i) {
        if (score[prev_t][i] == kNegInf) continue;
        const double route = RouteDistance(cands[prev_t][i], cands[t][j],
                                           *net_, bound, &cache);
        if (!std::isfinite(route)) continue;
        const double trans = -std::fabs(route - straight) / config_.beta;
        const double s = score[prev_t][i] + trans;
        if (s > best) {
          best = s;
          best_i = static_cast<int>(i);
        }
      }
      if (best_i >= 0) {
        score[t][j] = best + emit(t, j);
        back[t][j] = best_i;
        any = true;
      }
    }
    if (!any) {
      // All transitions impossible within the bound: break and restart.
      for (size_t j = 0; j < cands[t].size(); ++j) score[t][j] = emit(t, j);
      is_start[t] = 1;
      ++result.num_breaks;
    }
    prev_t = t;
  }

  // Backtrack each segment from its last observation.
  std::vector<int> chosen(n, -1);
  size_t seg_end = n;
  while (seg_end > 0) {
    // Find the last observation with candidates before seg_end.
    size_t t = seg_end;
    while (t > 0 && cands[t - 1].empty()) --t;
    if (t == 0) break;
    --t;  // last obs of this segment
    // argmax over states at t
    int j = 0;
    for (size_t k = 1; k < score[t].size(); ++k) {
      if (score[t][k] > score[t][j]) j = static_cast<int>(k);
    }
    // Walk back through the segment.
    size_t cur = t;
    while (true) {
      chosen[cur] = j;
      if (is_start[cur] || back[cur][j] < 0) break;
      const int pj = back[cur][j];
      // previous obs with candidates
      size_t p = cur;
      do {
        --p;
      } while (p > 0 && cands[p].empty());
      j = pj;
      cur = p;
      if (cands[cur].empty()) break;  // defensive; should not happen
    }
    seg_end = cur;  // continue with everything before this segment
    if (cur == 0) break;
  }

  for (size_t t = 0; t < n; ++t) {
    if (chosen[t] >= 0) {
      result.matched_edges[t] = cands[t][chosen[t]].edge;
    }
  }

  // Stitch the route: matched edges plus shortest-path connectors between
  // consecutive matched observations within a segment.
  std::unordered_set<EdgeId> route;
  size_t last_matched = static_cast<size_t>(-1);
  for (size_t t = 0; t < n; ++t) {
    if (chosen[t] < 0) continue;
    const Candidate& c = cands[t][chosen[t]];
    route.insert(c.edge);
    if (last_matched != static_cast<size_t>(-1) && !is_start[t]) {
      const Candidate& pc = cands[last_matched][chosen[last_matched]];
      if (pc.edge != c.edge) {
        // Connect via the cheaper endpoint pair.
        const RoadEdge& pe = net_->edge(pc.edge);
        const RoadEdge& ce = net_->edge(c.edge);
        const NodeId from =
            (pc.off_u <= pc.off_v) ? pe.u : pe.v;  // nearer endpoint
        const NodeId to = (c.off_u <= c.off_v) ? ce.u : ce.v;
        auto path = ShortestPath(*net_, from, to);
        if (path.ok()) {
          for (const EdgeId e : path->edges) route.insert(e);
        }
      }
    }
    last_matched = t;
  }
  result.route_edges.assign(route.begin(), route.end());
  std::sort(result.route_edges.begin(), result.route_edges.end());
  for (const EdgeId e : result.route_edges) {
    result.route_length += net_->edge(e).length;
  }
  return result;
}

}  // namespace frt
