// Road-network graph substrate.
//
// An undirected weighted graph embedded in the plane. Used by the synthetic
// workload generator (to route realistic trajectories) and by the HMM
// map-matcher (the recovery attack of paper §V-B3). Nodes carry a POI
// semantic category, which the KLT baseline's l-diversity/t-closeness
// constraints consume.

#ifndef FRT_ROADNET_GRAPH_H_
#define FRT_ROADNET_GRAPH_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "geo/bbox.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace frt {

/// Semantic category of the dominant POI around a node (paper: KLT protects
/// "the categories of POIs").
enum class PoiCategory : int8_t {
  kResidential = 0,
  kOffice = 1,
  kShopping = 2,
  kTransport = 3,
  kLeisure = 4,
  kMedical = 5,
  kEducation = 6,
  kOther = 7,
};

constexpr int kNumPoiCategories = 8;

/// Stable display name of a category.
std::string_view PoiCategoryName(PoiCategory c);

using NodeId = int32_t;
using EdgeId = int32_t;

/// \brief A road intersection.
struct RoadNode {
  Point p;
  PoiCategory category = PoiCategory::kOther;
};

/// \brief An undirected road segment between two intersections.
struct RoadEdge {
  NodeId u = -1;
  NodeId v = -1;
  double length = 0.0;

  /// The endpoint opposite to `n`.
  NodeId Other(NodeId n) const { return n == u ? v : u; }
};

/// \brief Immutable-after-Build road network with spatial lookup support.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// Adds a node; returns its id.
  NodeId AddNode(const Point& p,
                 PoiCategory category = PoiCategory::kOther);

  /// Adds an undirected edge; length is computed from node positions.
  /// Parallel edges and self-loops are rejected.
  Result<EdgeId> AddEdge(NodeId u, NodeId v);

  /// Finalizes the spatial index; must be called after the last mutation
  /// and before any spatial query.
  void Build();

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const RoadNode& node(NodeId id) const { return nodes_[id]; }
  const RoadEdge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<RoadNode>& nodes() const { return nodes_; }
  const std::vector<RoadEdge>& edges() const { return edges_; }

  /// Geometric segment of an edge.
  Segment EdgeSegment(EdgeId id) const {
    const RoadEdge& e = edges_[id];
    return Segment{nodes_[e.u].p, nodes_[e.v].p};
  }

  /// Outgoing (edge, neighbor) pairs of a node.
  struct Arc {
    EdgeId edge;
    NodeId to;
    double length;
  };
  const std::vector<Arc>& Adjacent(NodeId n) const { return adj_[n]; }

  /// True when an edge connects u and v.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Spatial extent of all nodes.
  const BBox& Bounds() const { return bounds_; }

  /// Nearest node to `p` (linear fallback if Build() not called).
  NodeId NearestNode(const Point& p) const;

  /// All edges whose segment passes within `radius` of `p`.
  std::vector<EdgeId> EdgesNear(const Point& p, double radius) const;

  /// Nearest edge to `p`; -1 when the network has no edges.
  EdgeId NearestEdge(const Point& p) const;

  /// Whether every node can reach every other node.
  bool IsConnected() const;

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<Arc>> adj_;

  // Spatial buckets (uniform grid) for nodes and edges.
  BBox bounds_;
  GridSpec bucket_grid_;
  int bucket_level_ = 0;
  std::unordered_map<uint64_t, std::vector<NodeId>> node_buckets_;
  std::unordered_map<uint64_t, std::vector<EdgeId>> edge_buckets_;
  bool built_ = false;
};

}  // namespace frt

#endif  // FRT_ROADNET_GRAPH_H_
