#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace frt {
namespace {

struct QueueEntry {
  double priority;  // g + h for A*, g for Dijkstra
  NodeId node;
  bool operator>(const QueueEntry& o) const { return priority > o.priority; }
};

using MinHeap =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>;

}  // namespace

Result<Path> ShortestPath(const RoadNetwork& net, NodeId src, NodeId dst) {
  const NodeId n = static_cast<NodeId>(net.NumNodes());
  if (src < 0 || dst < 0 || src >= n || dst >= n) {
    return Status::InvalidArgument("node id out of range");
  }
  if (src == dst) {
    Path p;
    p.nodes.push_back(src);
    return p;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> g(n, kInf);
  std::vector<NodeId> prev_node(n, -1);
  std::vector<EdgeId> prev_edge(n, -1);
  std::vector<char> settled(n, 0);

  const Point goal = net.node(dst).p;
  auto h = [&](NodeId u) { return Distance(net.node(u).p, goal); };

  MinHeap heap;
  g[src] = 0.0;
  heap.push({h(src), src});
  while (!heap.empty()) {
    const auto [prio, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    if (u == dst) break;
    for (const auto& arc : net.Adjacent(u)) {
      if (settled[arc.to]) continue;
      const double cand = g[u] + arc.length;
      if (cand < g[arc.to]) {
        g[arc.to] = cand;
        prev_node[arc.to] = u;
        prev_edge[arc.to] = arc.edge;
        heap.push({cand + h(arc.to), arc.to});
      }
    }
  }
  if (!settled[dst]) {
    return Status::NotFound("no path " + std::to_string(src) + " -> " +
                            std::to_string(dst));
  }

  Path path;
  path.length = g[dst];
  for (NodeId at = dst; at != -1; at = prev_node[at]) {
    path.nodes.push_back(at);
    if (prev_edge[at] != -1) path.edges.push_back(prev_edge[at]);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::unordered_map<NodeId, double> BoundedDistances(const RoadNetwork& net,
                                                    NodeId src,
                                                    double max_dist) {
  std::unordered_map<NodeId, double> dist;
  if (src < 0 || src >= static_cast<NodeId>(net.NumNodes())) return dist;
  MinHeap heap;
  dist[src] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    auto it = dist.find(u);
    if (it != dist.end() && d > it->second) continue;  // stale entry
    for (const auto& arc : net.Adjacent(u)) {
      const double cand = d + arc.length;
      if (cand > max_dist) continue;
      auto [vit, inserted] = dist.try_emplace(arc.to, cand);
      if (!inserted) {
        if (cand >= vit->second) continue;
        vit->second = cand;
      }
      heap.push({cand, arc.to});
    }
  }
  return dist;
}

}  // namespace frt
