#include "roadnet/graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace frt {

std::string_view PoiCategoryName(PoiCategory c) {
  switch (c) {
    case PoiCategory::kResidential:
      return "residential";
    case PoiCategory::kOffice:
      return "office";
    case PoiCategory::kShopping:
      return "shopping";
    case PoiCategory::kTransport:
      return "transport";
    case PoiCategory::kLeisure:
      return "leisure";
    case PoiCategory::kMedical:
      return "medical";
    case PoiCategory::kEducation:
      return "education";
    case PoiCategory::kOther:
      return "other";
  }
  return "unknown";
}

NodeId RoadNetwork::AddNode(const Point& p, PoiCategory category) {
  nodes_.push_back(RoadNode{p, category});
  adj_.emplace_back();
  built_ = false;
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId u, NodeId v) {
  if (u < 0 || v < 0 || u >= static_cast<NodeId>(nodes_.size()) ||
      v >= static_cast<NodeId>(nodes_.size())) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop rejected");
  if (HasEdge(u, v)) {
    return Status::AlreadyExists("parallel edge " + std::to_string(u) + "-" +
                                 std::to_string(v));
  }
  const double len = Distance(nodes_[u].p, nodes_[v].p);
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(RoadEdge{u, v, len});
  adj_[u].push_back(Arc{id, v, len});
  adj_[v].push_back(Arc{id, u, len});
  built_ = false;
  return id;
}

bool RoadNetwork::HasEdge(NodeId u, NodeId v) const {
  if (u < 0 || u >= static_cast<NodeId>(adj_.size())) return false;
  for (const Arc& a : adj_[u]) {
    if (a.to == v) return true;
  }
  return false;
}

void RoadNetwork::Build() {
  bounds_ = BBox::Empty();
  for (const auto& n : nodes_) bounds_.Extend(n.p);
  // Pad the region slightly so boundary points stay strictly inside.
  const double pad =
      std::max(1.0, 0.01 * std::max(bounds_.Width(), bounds_.Height()));
  bounds_.min_x -= pad;
  bounds_.min_y -= pad;
  bounds_.max_x += pad;
  bounds_.max_y += pad;

  // Aim for O(1) nodes per bucket: pick level so the grid has roughly as
  // many cells as nodes.
  int level = 1;
  while ((int64_t{1} << (2 * level)) <
             static_cast<int64_t>(nodes_.size()) &&
         level < 12) {
    ++level;
  }
  bucket_level_ = level;
  bucket_grid_ = GridSpec(bounds_, level + 1);

  node_buckets_.clear();
  edge_buckets_.clear();
  for (NodeId i = 0; i < static_cast<NodeId>(nodes_.size()); ++i) {
    node_buckets_[bucket_grid_.CellAt(nodes_[i].p, bucket_level_).Key()]
        .push_back(i);
  }
  // Register each edge in every bucket its bounding box overlaps; edges are
  // short relative to the region so this is a handful of cells each.
  for (EdgeId e = 0; e < static_cast<EdgeId>(edges_.size()); ++e) {
    const Segment s = EdgeSegment(e);
    const CellCoord ca = bucket_grid_.CellAt(s.a, bucket_level_);
    const CellCoord cb = bucket_grid_.CellAt(s.b, bucket_level_);
    const int32_t x0 = std::min(ca.ix, cb.ix);
    const int32_t x1 = std::max(ca.ix, cb.ix);
    const int32_t y0 = std::min(ca.iy, cb.iy);
    const int32_t y1 = std::max(ca.iy, cb.iy);
    for (int32_t x = x0; x <= x1; ++x) {
      for (int32_t y = y0; y <= y1; ++y) {
        edge_buckets_[CellCoord{bucket_level_, x, y}.Key()].push_back(e);
      }
    }
  }
  built_ = true;
}

NodeId RoadNetwork::NearestNode(const Point& p) const {
  if (nodes_.empty()) return -1;
  if (!built_) {
    NodeId best = 0;
    double best2 = Distance2(p, nodes_[0].p);
    for (NodeId i = 1; i < static_cast<NodeId>(nodes_.size()); ++i) {
      const double d2 = Distance2(p, nodes_[i].p);
      if (d2 < best2) {
        best2 = d2;
        best = i;
      }
    }
    return best;
  }
  // Expanding ring search over buckets.
  const CellCoord c0 = bucket_grid_.CellAt(p, bucket_level_);
  const int64_t n = bucket_grid_.Resolution(bucket_level_);
  NodeId best = -1;
  double best2 = std::numeric_limits<double>::infinity();
  const double cell_w = bucket_grid_.region().Width() / static_cast<double>(n);
  const double cell_h =
      bucket_grid_.region().Height() / static_cast<double>(n);
  const double cell_min = std::min(cell_w, cell_h);
  for (int radius = 0; radius < static_cast<int>(n); ++radius) {
    // Once we hold a candidate, stop as soon as the next ring cannot beat it.
    if (best >= 0) {
      const double ring_min = (radius - 1) * cell_min;
      if (ring_min > 0.0 && ring_min * ring_min > best2) break;
    }
    bool any_cell = false;
    for (int dx = -radius; dx <= radius; ++dx) {
      for (int dy = -radius; dy <= radius; ++dy) {
        if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
        const int32_t x = c0.ix + dx;
        const int32_t y = c0.iy + dy;
        if (x < 0 || y < 0 || x >= n || y >= n) continue;
        any_cell = true;
        auto it =
            node_buckets_.find(CellCoord{bucket_level_, x, y}.Key());
        if (it == node_buckets_.end()) continue;
        for (const NodeId id : it->second) {
          const double d2 = Distance2(p, nodes_[id].p);
          if (d2 < best2) {
            best2 = d2;
            best = id;
          }
        }
      }
    }
    if (!any_cell && radius > 0 && best >= 0) break;
  }
  return best;
}

std::vector<EdgeId> RoadNetwork::EdgesNear(const Point& p,
                                           double radius) const {
  std::vector<EdgeId> out;
  if (edges_.empty()) return out;
  std::vector<char> seen(edges_.size(), 0);
  auto consider = [&](EdgeId e) {
    if (seen[e]) return;
    seen[e] = 1;
    if (PointSegmentDistance(p, EdgeSegment(e)) <= radius) out.push_back(e);
  };
  if (!built_) {
    for (EdgeId e = 0; e < static_cast<EdgeId>(edges_.size()); ++e) {
      consider(e);
    }
    return out;
  }
  const int64_t n = bucket_grid_.Resolution(bucket_level_);
  const double cell_w = bucket_grid_.region().Width() / static_cast<double>(n);
  const double cell_h =
      bucket_grid_.region().Height() / static_cast<double>(n);
  const int rx = static_cast<int>(radius / cell_w) + 1;
  const int ry = static_cast<int>(radius / cell_h) + 1;
  const CellCoord c0 = bucket_grid_.CellAt(p, bucket_level_);
  for (int dx = -rx; dx <= rx; ++dx) {
    for (int dy = -ry; dy <= ry; ++dy) {
      const int32_t x = c0.ix + dx;
      const int32_t y = c0.iy + dy;
      if (x < 0 || y < 0 || x >= n || y >= n) continue;
      auto it = edge_buckets_.find(CellCoord{bucket_level_, x, y}.Key());
      if (it == edge_buckets_.end()) continue;
      for (const EdgeId e : it->second) consider(e);
    }
  }
  return out;
}

EdgeId RoadNetwork::NearestEdge(const Point& p) const {
  if (edges_.empty()) return -1;
  // Try growing radii through the bucket index before the linear fallback.
  if (built_) {
    const double base =
        std::max(bounds_.Width(), bounds_.Height()) /
        static_cast<double>(bucket_grid_.Resolution(bucket_level_));
    for (double r = base; r <= 8 * base; r *= 2) {
      const auto near = EdgesNear(p, r);
      if (!near.empty()) {
        EdgeId best = near[0];
        double bestd = PointSegmentDistance(p, EdgeSegment(best));
        for (size_t i = 1; i < near.size(); ++i) {
          const double d = PointSegmentDistance(p, EdgeSegment(near[i]));
          if (d < bestd) {
            bestd = d;
            best = near[i];
          }
        }
        return best;
      }
    }
  }
  EdgeId best = 0;
  double bestd = PointSegmentDistance(p, EdgeSegment(0));
  for (EdgeId e = 1; e < static_cast<EdgeId>(edges_.size()); ++e) {
    const double d = PointSegmentDistance(p, EdgeSegment(e));
    if (d < bestd) {
      bestd = d;
      best = e;
    }
  }
  return best;
}

bool RoadNetwork::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<char> seen(nodes_.size(), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  size_t visited = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Arc& a : adj_[u]) {
      if (!seen[a.to]) {
        seen[a.to] = 1;
        ++visited;
        q.push(a.to);
      }
    }
  }
  return visited == nodes_.size();
}

}  // namespace frt
