// HMM map-matching (Newson & Krumm, SIGSPATIAL 2009) — the engine of the
// paper's *recovery attack* (§V-B3): reconstructing the road-level route a
// published (anonymized) trajectory was driven on.
//
// Model: candidate road edges within a radius of each observation are HMM
// states; the emission probability of a candidate falls off as a Gaussian of
// its perpendicular distance; the transition probability between consecutive
// candidates falls off exponentially in |route distance - straight-line
// distance|. Viterbi decoding yields the most probable candidate sequence,
// which is stitched into a route with shortest paths.

#ifndef FRT_ROADNET_MAP_MATCHER_H_
#define FRT_ROADNET_MAP_MATCHER_H_

#include <vector>

#include "common/result.h"
#include "roadnet/graph.h"
#include "traj/trajectory.h"

namespace frt {

/// Tuning parameters of the HMM map-matcher.
struct MapMatchConfig {
  /// Emission model: GPS noise standard deviation (meters).
  double gps_sigma = 25.0;
  /// Transition model scale beta (meters): larger tolerates more detour.
  double beta = 120.0;
  /// Radius for candidate edge retrieval around each observation (meters).
  double candidate_radius = 150.0;
  /// Maximum candidates kept per observation (closest first).
  int max_candidates = 4;
  /// Observations farther apart than this start a new HMM segment (meters).
  double max_gap = 5000.0;
  /// Route-distance search bound = straight_line * factor + slack.
  double route_bound_factor = 3.0;
  double route_bound_slack = 1200.0;
};

/// Result of matching one trajectory.
struct MatchResult {
  /// Matched edge per observation; -1 when no candidate was in range.
  std::vector<EdgeId> matched_edges;
  /// Distinct edges on the stitched route (candidate edges plus all edges on
  /// the connecting shortest paths).
  std::vector<EdgeId> route_edges;
  /// Total length of route_edges (each edge counted once).
  double route_length = 0.0;
  /// Number of HMM breaks (observations where decoding restarted).
  size_t num_breaks = 0;
};

/// \brief Matches trajectories onto a road network.
class HmmMapMatcher {
 public:
  /// The network must outlive the matcher and be Build()-finalized.
  HmmMapMatcher(const RoadNetwork* net, MapMatchConfig config = {});

  /// Matches one trajectory. Trajectories with no in-range candidates at all
  /// produce an empty route (not an error: that is a protection success for
  /// the anonymizer under attack).
  MatchResult Match(const Trajectory& traj) const;

  const MapMatchConfig& config() const { return config_; }

 private:
  const RoadNetwork* net_;
  MapMatchConfig config_;
};

}  // namespace frt

#endif  // FRT_ROADNET_MAP_MATCHER_H_
