// Shortest-path routines over RoadNetwork: A* point-to-point search (used by
// the workload generator to route trips) and bounded multi-source Dijkstra
// (used by the HMM map-matcher's transition model).

#ifndef FRT_ROADNET_SHORTEST_PATH_H_
#define FRT_ROADNET_SHORTEST_PATH_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "roadnet/graph.h"

namespace frt {

/// \brief A path through the network.
struct Path {
  std::vector<NodeId> nodes;  ///< visited nodes, src first, dst last
  std::vector<EdgeId> edges;  ///< edges between consecutive nodes
  double length = 0.0;        ///< total metric length

  bool empty() const { return nodes.empty(); }
};

/// \brief A*: shortest path from `src` to `dst` using the Euclidean lower
/// bound as heuristic (admissible since edge weights are metric lengths).
///
/// Returns NotFound when dst is unreachable.
Result<Path> ShortestPath(const RoadNetwork& net, NodeId src, NodeId dst);

/// \brief Dijkstra truncated at `max_dist`: network distances from `src` to
/// every node within `max_dist`; absent keys are farther than the bound.
std::unordered_map<NodeId, double> BoundedDistances(const RoadNetwork& net,
                                                    NodeId src,
                                                    double max_dist);

}  // namespace frt

#endif  // FRT_ROADNET_SHORTEST_PATH_H_
