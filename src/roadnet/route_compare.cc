#include "roadnet/route_compare.h"

#include <cstdlib>
#include <unordered_set>

namespace frt {

RouteScores CompareRoutes(const RoadNetwork& net,
                          const std::vector<EdgeId>& truth,
                          const std::vector<EdgeId>& recovered) {
  RouteScores s;
  std::unordered_set<EdgeId> truth_set(truth.begin(), truth.end());
  std::unordered_set<EdgeId> rec_set(recovered.begin(), recovered.end());

  double len_truth = 0.0;
  double len_rec = 0.0;
  double len_overlap = 0.0;
  for (const EdgeId e : truth_set) len_truth += net.edge(e).length;
  for (const EdgeId e : rec_set) {
    len_rec += net.edge(e).length;
    if (truth_set.count(e) > 0) len_overlap += net.edge(e).length;
  }
  if (len_truth <= 0.0) return s;

  s.precision = (len_rec > 0.0) ? len_overlap / len_rec : 0.0;
  s.recall = len_overlap / len_truth;
  s.f_score = (s.precision + s.recall > 0.0)
                  ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
                  : 0.0;
  const double added = len_rec - len_overlap;    // d+
  const double missed = len_truth - len_overlap;  // d-
  s.rmf = (added + missed) / len_truth;
  return s;
}

double AlignedPointAccuracy(const std::vector<EdgeId>& true_point_edges,
                            const std::vector<EdgeId>& matched_point_edges) {
  if (true_point_edges.empty()) return 0.0;
  const size_t n = std::min(true_point_edges.size(),
                            matched_point_edges.size());
  size_t hit = 0;
  for (size_t i = 0; i < n; ++i) {
    if (true_point_edges[i] >= 0 &&
        true_point_edges[i] == matched_point_edges[i]) {
      ++hit;
    }
  }
  return static_cast<double>(hit) /
         static_cast<double>(true_point_edges.size());
}

double PointAccuracy(const std::vector<EdgeId>& true_point_edges,
                     const std::vector<EdgeId>& recovered_route) {
  if (true_point_edges.empty()) return 0.0;
  std::unordered_set<EdgeId> rec_set(recovered_route.begin(),
                                     recovered_route.end());
  size_t hit = 0;
  size_t total = 0;
  for (const EdgeId e : true_point_edges) {
    if (e < 0) continue;  // point had no ground-truth edge
    ++total;
    if (rec_set.count(e) > 0) ++hit;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hit) / static_cast<double>(total);
}

}  // namespace frt
