// Route comparison metrics for the recovery experiment (§V-B3):
// route-based Precision / Recall / F-score, the length-based Route Mismatch
// Fraction (RMF), and point-based Accuracy.

#ifndef FRT_ROADNET_ROUTE_COMPARE_H_
#define FRT_ROADNET_ROUTE_COMPARE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "roadnet/graph.h"

namespace frt {

/// Per-trajectory recovery scores.
struct RouteScores {
  double precision = 0.0;  ///< overlap length / recovered length
  double recall = 0.0;     ///< overlap length / true length
  double f_score = 0.0;    ///< harmonic mean of the two
  double rmf = 0.0;        ///< (erroneously added + missed) / true length;
                           ///< may exceed 1 when the recovered route is long
};

/// \brief Compares a recovered edge set against the ground-truth route.
///
/// Both inputs are *distinct* edge id lists; lengths are taken from `net`.
/// An empty truth route yields all-zero scores (skipped by aggregators).
RouteScores CompareRoutes(const RoadNetwork& net,
                          const std::vector<EdgeId>& truth,
                          const std::vector<EdgeId>& recovered);

/// \brief Point-based accuracy: the fraction of per-point true edges that
/// appear in the recovered route (visit-weighted variant of recall; follows
/// the point-matching evaluation of map-matching surveys).
double PointAccuracy(const std::vector<EdgeId>& true_point_edges,
                     const std::vector<EdgeId>& recovered_route);

/// \brief Strict sequence-aligned point accuracy — the point-matching
/// evaluation style of [35] the paper reports as "Accuracy".
///
/// Position i of the published trajectory is scored against position i of
/// the original: a hit requires the matched road edge to equal the edge the
/// original point was emitted on. The denominator is the original length.
/// Any insertion or deletion desynchronizes the remainder of the sequence,
/// so record-level edits collapse this metric even when they are
/// utility-cheap — the paper's GL scores 0.008 while pure removal (SC)
/// retains the prefix before its first edit (0.162).
double AlignedPointAccuracy(const std::vector<EdgeId>& true_point_edges,
                            const std::vector<EdgeId>& matched_point_edges);

}  // namespace frt

#endif  // FRT_ROADNET_ROUTE_COMPARE_H_
