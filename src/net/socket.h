// Thin POSIX socket layer for the ingress tier: Unix-domain sockets first
// (the single-host edge/aggregator deployment CI exercises), TCP behind
// the same Endpoint abstraction for multi-host fan-in.
//
// Endpoints are spelled on the command line as
//
//   unix:/path/to/socket        stream Unix-domain socket
//   tcp:HOST:PORT               IPv4 TCP (numeric or resolvable host)
//
// Backpressure is the kernel's: WriteAll blocks once the peer's socket
// buffer fills, which is exactly how an aggregator's bounded arrival
// queue (dispatcher Offer blocking) propagates upstream to every edge —
// no application-level flow control protocol needed.
//
// SIGPIPE never fires from here: WriteAll sends with MSG_NOSIGNAL, so a
// peer disconnect surfaces as an EPIPE IOError the caller can handle
// instead of a process-killing signal. Server CLIs additionally ignore
// SIGPIPE outright (belt and suspenders for any stdio writes to a dead
// pipe).

#ifndef FRT_NET_SOCKET_H_
#define FRT_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace frt::net {

/// A parsed listen/connect address.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem path of the socket
  std::string host;  ///< kTcp: host name or numeric address
  uint16_t port = 0; ///< kTcp
};

/// \brief Parses "unix:PATH" or "tcp:HOST:PORT". InvalidArgument on any
/// other spelling (strict, like the numeric CLI flags).
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// RAII owner of one socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int Release();
  void Close();
  /// \brief shutdown(2) both directions — wakes a thread blocked in
  /// ReadFull/WriteAll on this socket without racing the close.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// \brief Binds + listens on `endpoint`. For unix endpoints a stale
/// socket file left by a dead process is removed first.
Result<Socket> ListenOn(const Endpoint& endpoint, int backlog = 16);

/// \brief True when `err` (an accept(2) errno) is a transient condition
/// — aborted handshake (ECONNABORTED), fd exhaustion (EMFILE/ENFILE),
/// or kernel memory pressure — that an accept loop should retry with
/// bounded backoff rather than treat as fatal to the listener.
bool IsTransientAcceptError(int err);

/// \brief Accepts one connection (blocking, EINTR-safe). Returns an
/// invalid Socket (not an error) when the listener was shut down. On an
/// IOError, `transient` (when non-null) is set to whether the condition
/// is retryable per IsTransientAcceptError.
Result<Socket> Accept(const Socket& listener, bool* transient = nullptr);

/// \brief Connects to `endpoint` (blocking).
Result<Socket> ConnectTo(const Endpoint& endpoint);

/// \brief Port the listener actually bound (tcp:HOST:0 picks one).
Result<uint16_t> LocalPort(const Socket& listener);

/// \brief Removes a unix endpoint's socket file (listener cleanup).
void UnlinkIfUnix(const Endpoint& endpoint);

/// \brief Reads exactly `size` bytes. Returns false on clean EOF before
/// the first byte (the peer closed between frames); EOF mid-buffer is an
/// IOError (truncated frame).
Result<bool> ReadFull(int fd, void* buf, size_t size);

/// \brief Writes all of `data` (EINTR-safe, MSG_NOSIGNAL — a dead peer
/// yields an EPIPE IOError, never SIGPIPE).
Status WriteAll(int fd, const void* data, size_t size);

}  // namespace frt::net

#endif  // FRT_NET_SOCKET_H_
