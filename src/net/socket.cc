#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace frt::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + spec +
                                     "'");
    }
    // sun_path is a fixed-size buffer; refuse what cannot fit rather than
    // silently truncating to a different path.
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + ep.path);
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("want tcp:HOST:PORT, got '" + spec +
                                     "'");
    }
    ep.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    errno = 0;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (errno != 0 || end == port_str.c_str() || *end != '\0' || port < 0 ||
        port > 65535) {
      return Status::InvalidArgument("bad TCP port '" + port_str + "' in '" +
                                     spec + "'");
    }
    ep.port = static_cast<uint16_t>(port);
    return ep;
  }
  return Status::InvalidArgument(
      "endpoint must be unix:PATH or tcp:HOST:PORT, got '" + spec + "'");
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

Result<Socket> ListenUnix(const Endpoint& endpoint, int backlog) {
  Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Status::IOError(Errno("socket(AF_UNIX)"));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, endpoint.path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(endpoint.path.c_str());  // stale socket from a dead process
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(Errno("bind(" + endpoint.path + ")"));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Status::IOError(Errno("listen(" + endpoint.path + ")"));
  }
  return sock;
}

Result<sockaddr_in> ResolveTcp(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(endpoint.host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::IOError("cannot resolve host '" + endpoint.host +
                           "': " + ::gai_strerror(rc));
  }
  addr.sin_addr =
      reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

Result<Socket> ListenTcp(const Endpoint& endpoint, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Status::IOError(Errno("socket(AF_INET)"));
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto addr = ResolveTcp(endpoint);
  if (!addr.ok()) return addr.status();
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return Status::IOError(Errno("bind(" + endpoint.host + ":" +
                                 std::to_string(endpoint.port) + ")"));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Status::IOError(Errno("listen(tcp)"));
  }
  return sock;
}

}  // namespace

Result<Socket> ListenOn(const Endpoint& endpoint, int backlog) {
  return endpoint.kind == Endpoint::Kind::kUnix
             ? ListenUnix(endpoint, backlog)
             : ListenTcp(endpoint, backlog);
}

bool IsTransientAcceptError(int err) {
  switch (err) {
    case ECONNABORTED:  // peer gave up while queued — next accept is fine
    case EMFILE:        // fd exhaustion: transient once a conn closes
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
#ifdef EPROTO
    case EPROTO:
#endif
      return true;
    default:
      return false;
  }
}

Result<Socket> Accept(const Socket& listener, bool* transient) {
  if (transient != nullptr) *transient = false;
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // The listener was shut down / closed under us: a clean stop, not an
    // error the caller needs to report. Transient conditions (aborted
    // handshake, fd/buffer exhaustion) are flagged through `transient`
    // so accept loops retry with backoff instead of dying.
    if (errno == EINVAL || errno == EBADF) return Socket();
    if (transient != nullptr) *transient = IsTransientAcceptError(errno);
    return Status::IOError(Errno("accept"));
  }
}

Result<Socket> ConnectTo(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid()) return Status::IOError(Errno("socket(AF_UNIX)"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return Status::IOError(Errno("connect(" + endpoint.path + ")"));
    }
    return sock;
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Status::IOError(Errno("socket(AF_INET)"));
  auto addr = ResolveTcp(endpoint);
  if (!addr.ok()) return addr.status();
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0) {
    return Status::IOError(Errno("connect(" + endpoint.host + ":" +
                                 std::to_string(endpoint.port) + ")"));
  }
  return sock;
}

Result<uint16_t> LocalPort(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Status::IOError(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

void UnlinkIfUnix(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint.path.c_str());
  }
}

Result<bool> ReadFull(int fd, void* buf, size_t size) {
  auto* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      return Status::IOError("connection closed mid-frame (" +
                             std::to_string(got) + " of " +
                             std::to_string(size) + " bytes)");
    }
    if (errno == EINTR) continue;
    return Status::IOError(Errno("read"));
  }
  return true;
}

Status WriteAll(int fd, const void* data, size_t size) {
  const auto* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(Errno("send"));
  }
  return Status::OK();
}

}  // namespace frt::net
