// IngressServer: the aggregator side of the distributed ingress tier.
//
// Accepts framed edge connections (net/frame.h) on one listen endpoint and
// pumps every decoded trajectory into the service through an OfferFn —
// normally ServiceDispatcher::Offer, whose bounded arrival queue is the
// backpressure: when the dispatcher falls behind, Offer blocks, the reader
// thread stops draining its socket, the kernel buffers fill, and the edge's
// WriteAll blocks in turn. No acks, no windowed flow control protocol.
//
// Error containment is two-tiered, mirroring the frame format's contract:
//
//   - Framing-level faults (bad magic/version/type, oversized length, CRC
//     mismatch, EOF mid-frame, disconnect without a kBye) mean the byte
//     stream can no longer be trusted. The connection is torn down and
//     every feed it had delivered is reported through QuarantineFn — the
//     service quarantines those feeds (drops their backlog, refuses further
//     arrivals) but keeps serving everyone else.
//   - Semantic faults (a CRC-clean kTrajectory payload that fails strict
//     decoding) leave the stream aligned: only the feed named in the
//     payload is quarantined and the connection keeps going. When even the
//     feed id is unreadable the fault degrades to framing-level.
//
// One reader thread per connection; a process that expects N edges can set
// Options::max_connections = N and Wait() returns once all N streams end.
// Readers emit "frame_read" (blocking socket read) and "frame_decode"
// (CRC + payload decode) spans under the "net" trace category.

#ifndef FRT_NET_INGRESS_H_
#define FRT_NET_INGRESS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "obs/registry.h"
#include "traj/trajectory.h"

namespace frt::net {

/// Sinks one decoded arrival into the service. Blocking is the
/// backpressure; returning false means the service is finishing and the
/// connection should wind down.
using OfferFn = std::function<bool(std::string feed, Trajectory t)>;

/// Reports a feed whose stream can no longer be trusted. Must be
/// idempotent per feed (multiple edges, or a framing fault after a
/// semantic one, may report the same feed twice).
using QuarantineFn =
    std::function<void(const std::string& feed, const std::string& reason)>;

class IngressServer {
 public:
  struct Options {
    Endpoint endpoint;
    /// Stop accepting after this many connections (0 = accept until
    /// Stop()); Wait() then returns once the last reader drains.
    size_t max_connections = 0;
    int backlog = 16;
    /// Registry the frt_ingress_* counters register into. Stats stays
    /// per-instance; the registry mirror is the scrapeable home.
    obs::Registry* registry = &obs::Registry::Default();
  };

  struct Stats {
    uint64_t connections = 0;
    uint64_t frames = 0;        ///< frames fully read and CRC-verified
    uint64_t trajectories = 0;  ///< trajectories offered downstream
    uint64_t quarantine_events = 0;  ///< QuarantineFn invocations
  };

  IngressServer(Options options, OfferFn offer, QuarantineFn quarantine);
  ~IngressServer();

  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  /// \brief Binds the listen endpoint and spawns the accept thread.
  Status Start();

  /// \brief Blocks until the accept loop ends (max_connections reached or
  /// Stop()) and every reader thread drains, then returns. Never returns
  /// a per-connection error — those became quarantine reports.
  void Wait();

  /// \brief Asynchronously stops accepting and unblocks Wait(). In-flight
  /// readers finish their current frame and exit.
  void Stop();

  /// Valid after Wait().
  const Stats& stats() const { return stats_; }

 private:
  void AcceptLoop();
  void ReadConnection(Socket conn, size_t index);

  Options options_;
  OfferFn offer_;
  QuarantineFn quarantine_;
  Socket listener_;
  std::thread accept_thread_;
  std::vector<std::thread> readers_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  Stats stats_;
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> trajectories_{0};
  std::atomic<uint64_t> quarantine_events_{0};
  /// Registry mirrors of the per-instance counters above, plus the
  /// transient accept-retry count (which has no per-instance twin).
  obs::Counter* connections_total_ = nullptr;
  obs::Counter* frames_total_ = nullptr;
  obs::Counter* trajectories_total_ = nullptr;
  obs::Counter* quarantine_total_ = nullptr;
  obs::Counter* accept_retries_ = nullptr;
};

}  // namespace frt::net

#endif  // FRT_NET_INGRESS_H_
