#include "net/frame.h"

#include <cstring>

namespace frt::net {

namespace {

// Little-endian scalar append/read. memcpy keeps it alignment-safe; the
// byte swizzle keeps it endian-safe without <endian.h>.

void AppendU16(std::string* out, uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff),
                         static_cast<char>((v >> 8) & 0xff)};
  out->append(bytes, 2);
}

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 8);
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Cursor over a payload; every read checks the remaining length.
struct Reader {
  const unsigned char* p;
  size_t remaining;

  bool ReadU16(uint16_t* v) {
    if (remaining < 2) return false;
    *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    remaining -= 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    remaining -= 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    remaining -= 8;
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool ReadBytes(std::string* out, size_t n) {
    if (remaining < n) return false;
    out->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    remaining -= n;
    return true;
  }
};

/// Reflected IEEE CRC-32 table, built once.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static const bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  AppendU32(out, kFrameMagic);
  out->push_back(static_cast<char>(kFrameVersion));
  out->push_back(static_cast<char>(type));
  AppendU16(out, 0);  // reserved
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

Result<FrameHeader> DecodeFrameHeader(const void* buf) {
  Reader r{static_cast<const unsigned char*>(buf), kFrameHeaderSize};
  uint32_t magic = 0;
  (void)r.ReadU32(&magic);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic (not an FRT stream)");
  }
  FrameHeader header;
  header.version = r.p[0];
  const uint8_t type = r.p[1];
  r.p += 2;
  r.remaining -= 2;
  if (header.version != kFrameVersion) {
    return Status::InvalidArgument("unsupported frame version " +
                                   std::to_string(header.version));
  }
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kBye)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  header.type = static_cast<FrameType>(type);
  uint16_t reserved = 0;
  (void)r.ReadU16(&reserved);
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved frame header bits");
  }
  (void)r.ReadU32(&header.payload_len);
  (void)r.ReadU32(&header.payload_crc);
  if (header.payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "oversized frame payload (" + std::to_string(header.payload_len) +
        " bytes, limit " + std::to_string(kMaxFramePayload) + ")");
  }
  return header;
}

Status VerifyFramePayload(const FrameHeader& header,
                          std::string_view payload) {
  if (payload.size() != header.payload_len) {
    return Status::InvalidArgument("frame payload length mismatch");
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());
  if (crc != header.payload_crc) {
    return Status::IOError("frame CRC mismatch (corrupt frame)");
  }
  return Status::OK();
}

std::string EncodeTrajectoryPayload(std::string_view feed,
                                    const Trajectory& trajectory) {
  std::string out;
  out.reserve(2 + feed.size() + 12 + trajectory.size() * 24);
  AppendU16(&out, static_cast<uint16_t>(feed.size()));
  out.append(feed.data(), feed.size());
  AppendI64(&out, trajectory.id());
  AppendU32(&out, static_cast<uint32_t>(trajectory.size()));
  for (const TimedPoint& tp : trajectory.points()) {
    AppendF64(&out, tp.p.x);
    AppendF64(&out, tp.p.y);
    AppendI64(&out, tp.t);
  }
  return out;
}

Result<FeedTrajectory> DecodeTrajectoryPayload(std::string_view payload) {
  Reader r{reinterpret_cast<const unsigned char*>(payload.data()),
           payload.size()};
  uint16_t feed_len = 0;
  FeedTrajectory out;
  if (!r.ReadU16(&feed_len) || !r.ReadBytes(&out.feed, feed_len)) {
    return Status::InvalidArgument("truncated trajectory frame (feed id)");
  }
  if (out.feed.empty()) {
    return Status::InvalidArgument("trajectory frame with empty feed id");
  }
  int64_t id = 0;
  uint32_t points = 0;
  if (!r.ReadI64(&id) || !r.ReadU32(&points)) {
    return Status::InvalidArgument("truncated trajectory frame for feed '" +
                                   out.feed + "'");
  }
  if (r.remaining != static_cast<size_t>(points) * 24) {
    return Status::InvalidArgument(
        "trajectory frame for feed '" + out.feed + "' declares " +
        std::to_string(points) + " point(s) but carries " +
        std::to_string(r.remaining) + " payload byte(s)");
  }
  out.trajectory = Trajectory(id);
  for (uint32_t i = 0; i < points; ++i) {
    double x = 0.0;
    double y = 0.0;
    int64_t t = 0;
    (void)r.ReadF64(&x);
    (void)r.ReadF64(&y);
    (void)r.ReadI64(&t);
    out.trajectory.Append(Point{x, y}, t);
  }
  return out;
}

}  // namespace frt::net
