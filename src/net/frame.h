// Wire framing for the distributed ingress tier.
//
// Every message on an edge -> aggregator connection is one length-prefixed
// binary frame with a versioned header and a per-frame CRC:
//
//   offset  size  field
//        0     4  magic "FRTN" (little-endian u32 0x4E545246)
//        4     1  version (kFrameVersion)
//        5     1  type (FrameType)
//        6     2  reserved, must be 0
//        8     4  payload length in bytes (little-endian u32)
//       12     4  CRC-32 (IEEE) of the payload (little-endian u32)
//       16     -  payload
//
// All multi-byte fields are little-endian regardless of host order.
// Design choices, in order of importance:
//
//   - Length prefix + bounded payload (kMaxFramePayload): the reader
//     always knows how many bytes the frame claims before trusting any of
//     them, and an absurd length (line noise, a non-FRT peer) is rejected
//     at the header instead of allocating gigabytes.
//   - Per-frame CRC: a flipped bit anywhere in the payload is detected at
//     the receiver, where it quarantines the offending feed instead of
//     poisoning the anonymized output (service/dispatcher.h).
//   - Versioned header: kFrameVersion bumps on any layout change, and a
//     reader refuses versions it does not speak — no silent
//     reinterpretation across rolling upgrades.
//
// A framing-level error (bad magic, unknown version/type, oversized
// length, CRC mismatch) is NOT recoverable: the stream offset can no
// longer be trusted, so the connection must be torn down. A frame that
// passes the CRC but fails semantic payload decoding leaves the stream
// aligned — only the feed it names is affected.
//
// The trajectory payload (FrameType::kTrajectory) is
//
//   u16 feed-id length, feed-id bytes,
//   i64 trajectory id, u32 point count,
//   per point: f64 x, f64 y, i64 t   (doubles as IEEE-754 bit patterns)
//
// so a trajectory round-trips bit-identically — the solo-vs-multiplexed
// bit-identity guarantee must survive the wire.

#ifndef FRT_NET_FRAME_H_
#define FRT_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "traj/trajectory.h"

namespace frt::net {

inline constexpr uint32_t kFrameMagic = 0x4E545246u;  // "FRTN" on the wire
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;
/// Frames larger than this are rejected at the header — nothing the edge
/// sends legitimately comes close (one trajectory frame is ~24 B/point).
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

enum class FrameType : uint8_t {
  /// Connection preamble: payload is the peer's display name (diagnostics
  /// only; feeds are named per trajectory frame).
  kHello = 1,
  /// One trajectory of one feed (see payload layout above).
  kTrajectory = 2,
  /// Clean end of stream; the sender is done and will close.
  kBye = 3,
};

struct FrameHeader {
  uint8_t version = kFrameVersion;
  FrameType type = FrameType::kTrajectory;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// A decoded kTrajectory payload.
struct FeedTrajectory {
  std::string feed;
  Trajectory trajectory{0};
};

/// \brief CRC-32 (IEEE 802.3 polynomial, reflected) of `data`.
uint32_t Crc32(const void* data, size_t size);

/// \brief Appends one complete frame (header + payload) to `out`.
void AppendFrame(std::string* out, FrameType type, std::string_view payload);

/// \brief Decodes and validates a 16-byte header. InvalidArgument on bad
/// magic, unknown version or type, nonzero reserved bits, or a payload
/// length above kMaxFramePayload — all framing-level (fatal to the
/// connection).
Result<FrameHeader> DecodeFrameHeader(const void* buf);

/// \brief Verifies `payload` against the header's CRC. A mismatch is a
/// framing-level error (DataLoss would fit; IOError is what the Status
/// vocabulary has).
Status VerifyFramePayload(const FrameHeader& header,
                          std::string_view payload);

/// \brief Serializes one trajectory of `feed` as a kTrajectory payload.
std::string EncodeTrajectoryPayload(std::string_view feed,
                                    const Trajectory& trajectory);

/// \brief Strictly decodes a kTrajectory payload: truncation, an empty
/// feed id, a point count that disagrees with the payload length, or
/// trailing bytes are InvalidArgument. The stream itself stays aligned
/// (the CRC already passed), so the caller quarantines only the feed —
/// when the feed id is decodable, it is reported in the error message.
Result<FeedTrajectory> DecodeTrajectoryPayload(std::string_view payload);

}  // namespace frt::net

#endif  // FRT_NET_FRAME_H_
