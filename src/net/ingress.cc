#include "net/ingress.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "net/frame.h"
#include "obs/trace.h"

namespace frt::net {

namespace {

/// Best-effort extraction of the feed id from a kTrajectory payload whose
/// full decode failed: if the id itself is readable the fault can be
/// pinned on that feed; otherwise it degrades to a connection-level fault.
std::string PeekFeedId(std::string_view payload) {
  if (payload.size() < 2) return {};
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  const size_t len = static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
  if (len == 0 || payload.size() < 2 + len) return {};
  return std::string(payload.substr(2, len));
}

}  // namespace

IngressServer::IngressServer(Options options, OfferFn offer,
                             QuarantineFn quarantine)
    : options_(std::move(options)),
      offer_(std::move(offer)),
      quarantine_(std::move(quarantine)) {
  obs::Registry* registry = options_.registry;
  connections_total_ = registry->GetCounter(
      "frt_ingress_connections_total", "Edge connections accepted");
  frames_total_ = registry->GetCounter(
      "frt_ingress_frames_total", "Frames fully read and CRC-verified");
  trajectories_total_ = registry->GetCounter(
      "frt_ingress_trajectories_total",
      "Trajectories decoded and offered downstream");
  quarantine_total_ = registry->GetCounter(
      "frt_ingress_quarantine_events_total",
      "Per-feed quarantine reports raised by ingress readers");
  accept_retries_ = registry->GetCounter(
      "frt_ingress_accept_retries_total",
      "Transient ingress accept() failures retried with backoff");
}

IngressServer::~IngressServer() {
  Stop();
  Wait();
}

Status IngressServer::Start() {
  if (started_) return Status::FailedPrecondition("ingress already started");
  auto listener = ListenOn(options_.endpoint, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void IngressServer::Wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  stats_.frames = frames_.load(std::memory_order_relaxed);
  stats_.trajectories = trajectories_.load(std::memory_order_relaxed);
  stats_.quarantine_events =
      quarantine_events_.load(std::memory_order_relaxed);
}

void IngressServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Wakes a blocking accept(); readers notice stop_ between frames.
  listener_.ShutdownBoth();
}

void IngressServer::AcceptLoop() {
  obs::SetTraceThreadName("ingress-accept");
  size_t accepted = 0;
  int backoff_ms = 1;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Poll with a timeout so a Stop() that raced the shutdown() wakeup is
    // still noticed promptly.
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    bool transient = false;
    auto conn = Accept(listener_, &transient);
    if (!conn.ok()) {
      if (transient) {
        // An aborted handshake or fd exhaustion must not kill the
        // listener while N-1 healthy edges are still connecting: retry
        // with bounded backoff (the sleep also lets fds drain under
        // EMFILE) and leave an audit trail in the registry.
        accept_retries_->Inc();
        FRT_LOG(Warning) << "ingress accept failed (retrying in "
                         << backoff_ms
                         << " ms): " << conn.status().message();
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 200);
        continue;
      }
      FRT_LOG(Warning) << "ingress accept failed: "
                       << conn.status().message();
      break;
    }
    if (!conn->valid()) break;  // listener shut down
    backoff_ms = 1;
    const size_t index = ++accepted;
    stats_.connections = accepted;
    connections_total_->Inc();
    readers_.emplace_back(&IngressServer::ReadConnection, this,
                          std::move(conn).value(), index);
    if (options_.max_connections != 0 &&
        accepted >= options_.max_connections) {
      break;
    }
  }
  listener_.Close();
  UnlinkIfUnix(options_.endpoint);
}

void IngressServer::ReadConnection(Socket conn, size_t index) {
  obs::SetTraceThreadName("ingress-" + std::to_string(index));
  std::string peer = "conn-" + std::to_string(index);
  // Feeds this connection has delivered: on a framing-level fault every
  // one of them is suspect (the corrupt stream may have already fed them).
  std::vector<std::string> feeds_seen;
  std::unordered_set<std::string> seen_set;
  std::unordered_set<std::string> quarantined;
  std::string fatal;  // framing-level fault, tears the connection down
  bool clean_bye = false;

  char header_buf[kFrameHeaderSize];
  std::string payload;

  const auto quarantine_one = [&](const std::string& feed,
                                  const std::string& reason) {
    if (!quarantined.insert(feed).second) return;
    quarantine_events_.fetch_add(1, std::memory_order_relaxed);
    quarantine_total_->Inc();
    quarantine_(feed, reason);
  };

  while (!clean_bye && fatal.empty() &&
         !stop_.load(std::memory_order_relaxed)) {
    const auto read_start = std::chrono::steady_clock::now();
    auto got_header = ReadFull(conn.fd(), header_buf, kFrameHeaderSize);
    if (!got_header.ok()) {
      fatal = got_header.status().message();
      break;
    }
    if (!*got_header) {
      // EOF at a frame boundary but before kBye: the peer died (or was
      // killed) mid-stream. Its feeds may be missing trajectories.
      fatal = "peer '" + peer + "' disconnected without bye";
      break;
    }
    auto header = DecodeFrameHeader(header_buf);
    if (!header.ok()) {
      fatal = header.status().message();
      break;
    }
    payload.resize(header->payload_len);
    if (header->payload_len > 0) {
      auto got_payload =
          ReadFull(conn.fd(), payload.data(), payload.size());
      if (!got_payload.ok() || !*got_payload) {
        fatal = got_payload.ok()
                    ? "connection closed before frame payload"
                    : got_payload.status().message();
        break;
      }
    }
    const auto decode_start = std::chrono::steady_clock::now();
    obs::EmitSpan("frame_read", obs::SpanCategory::kNet, {}, read_start,
                  decode_start);

    if (const Status crc = VerifyFramePayload(*header, payload);
        !crc.ok()) {
      obs::EmitSpan("frame_decode", obs::SpanCategory::kNet, {},
                    decode_start, std::chrono::steady_clock::now());
      fatal = crc.message();
      break;
    }
    frames_.fetch_add(1, std::memory_order_relaxed);
    frames_total_->Inc();

    switch (header->type) {
      case FrameType::kHello:
        if (!payload.empty()) peer = payload;
        FRT_LOG(Info) << "ingress: hello from '" << peer << "'";
        break;
      case FrameType::kBye:
        clean_bye = true;
        break;
      case FrameType::kTrajectory: {
        auto decoded = DecodeTrajectoryPayload(payload);
        obs::EmitSpan("frame_decode", obs::SpanCategory::kNet,
                      decoded.ok() ? std::string_view(decoded->feed)
                                   : std::string_view{},
                      decode_start, std::chrono::steady_clock::now());
        if (!decoded.ok()) {
          // Semantic fault with the stream still aligned: quarantine only
          // the feed the payload names — if even that is unreadable, the
          // whole connection is suspect.
          const std::string feed = PeekFeedId(payload);
          if (feed.empty()) {
            fatal = decoded.status().message();
          } else {
            quarantine_one(feed, decoded.status().message());
          }
          break;
        }
        if (seen_set.insert(decoded->feed).second) {
          feeds_seen.push_back(decoded->feed);
        }
        if (quarantined.count(decoded->feed) != 0) break;  // already dead
        trajectories_.fetch_add(1, std::memory_order_relaxed);
        trajectories_total_->Inc();
        if (!offer_(decoded->feed, std::move(decoded->trajectory))) {
          // Service is finishing; stop draining this socket.
          clean_bye = true;
        }
        break;
      }
    }
  }

  if (!fatal.empty()) {
    // Framing-level fault: the stream offset is untrustworthy, so every
    // feed this connection delivered is quarantined and the socket dies.
    FRT_LOG(Warning) << "ingress: fatal frame error on connection from '"
                     << peer << "': " << fatal;
    for (const std::string& feed : feeds_seen) {
      quarantine_one(feed, "connection from '" + peer + "': " + fatal);
    }
  }
  conn.Close();
}

}  // namespace frt::net
