// Umbrella header: the FRT public API in one include.
//
//   #include "frt.h"
//
// pulls in the trajectory model, the FrequencyRandomizer pipeline (the
// paper's contribution), the baselines, both attacks, and the evaluation
// metrics. Fine-grained headers remain available for selective inclusion.

#ifndef FRT_FRT_H_
#define FRT_FRT_H_

// Foundation
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

// Data model
#include "geo/bbox.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/segment.h"
#include "traj/dataset.h"
#include "traj/io.h"
#include "traj/quantizer.h"
#include "traj/trajectory.h"

// Substrates
#include "index/segment_index.h"
#include "roadnet/graph.h"
#include "roadnet/map_matcher.h"
#include "roadnet/shortest_path.h"
#include "synth/road_gen.h"
#include "synth/workload.h"

// Differential privacy
#include "dp/accountant.h"
#include "dp/laplace.h"

// The paper's contribution
#include "core/anonymizer.h"
#include "core/pipeline.h"
#include "core/signature.h"

// Batch runtime (sharded execution)
#include "runtime/batch_runner.h"
#include "runtime/shard_plan.h"
#include "runtime/window_audit.h"
#include "runtime/work_stealing_pool.h"

// Streaming runtime (windowed ingest-to-publish service)
#include "common/bounded_queue.h"
#include "stream/ingest.h"
#include "stream/stream_runner.h"

// Baselines
#include "baselines/adatrace.h"
#include "baselines/dpt.h"
#include "baselines/glove.h"
#include "baselines/identity.h"
#include "baselines/signature_closure.h"
#include "baselines/w4m.h"

// Attacks and metrics
#include "attack/linker.h"
#include "attack/recovery_attack.h"
#include "metrics/utility.h"

#endif  // FRT_FRT_H_
