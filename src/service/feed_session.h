// FeedSession: per-feed state of the multi-feed anonymization service.
//
// The paper's guarantee is per moving object within one feed; feeds are
// independent datasets, so their budgets must never interact. A session
// therefore owns everything whose sharing would couple feeds:
//
//   - its ring-buffer WindowAssembler (stream/window_assembler.h, the same
//     geometry the single-feed StreamRunner uses),
//   - its PrivacyAccountant / ObjectBudgetAccountant pair (wholesale or
//     per-object cross-window accounting, per feed),
//   - its RNG stream, derived deterministically from (master seed, feed
//     id, session generation) — NOT from arrival interleaving — so a
//     feed's published windows are bit-identical whether it is served solo
//     or multiplexed with any number of other feeds,
//   - its backlog of closed-but-not-yet-anonymized windows and its report.
//
// The session is a passive state machine driven exclusively by the
// ServiceDispatcher's single consumer thread; nothing here is
// thread-safe. Anonymization itself happens elsewhere (a WindowJob on the
// shared pool); the session hands jobs out (NextSubmittable, which is
// where admission control runs) and absorbs their results (Complete,
// which charges the accountants and finalizes the WindowReport).
//
// Sessions are evictable: when a feed goes idle its session can be torn
// down to reclaim the assembler and ledger memory, and a later arrival
// opens a fresh session (next generation). Budget state survives the
// hand-off conservatively — the wholesale spend is carried exactly, and
// every object of the resumed feed starts at the evicted session's
// maximum per-object spend (ObjectBudgetAccountant::PreloadFloor), so
// eviction can only over-charge, never leak budget.

#ifndef FRT_SERVICE_FEED_SESSION_H_
#define FRT_SERVICE_FEED_SESSION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/rng.h"
#include "dp/accountant.h"
#include "dp/object_accountant.h"
#include "stream/stream_runner.h"
#include "stream/window_assembler.h"
#include "traj/dataset.h"

namespace frt {

/// \brief Deterministic per-feed RNG seed: a pure function of the master
/// seed, the feed id, and the session generation. Independent of arrival
/// interleaving, session creation order, and every other feed — the root
/// of the solo-vs-multiplexed bit-identity guarantee.
inline uint64_t FeedStreamSeed(uint64_t master_seed, const std::string& feed,
                               uint64_t generation) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 over the feed id
  for (const char c : feed) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  uint64_t s = master_seed;
  uint64_t mixed = SplitMix64(s) ^ h;
  mixed += generation * 0x9e3779b97f4a7c15ULL;
  return SplitMix64(mixed);
}

/// One closed window on its way to the shared pool. Self-contained: the
/// worker needs nothing from the session (whose lifetime it must not
/// depend on) beyond this job and the shared batch config.
struct WindowJob {
  std::string feed;
  uint64_t generation = 0;
  /// Per-feed window index, cumulative across session generations.
  size_t index = 0;
  WindowClose reason = WindowClose::kCount;
  Dataset window;
  /// Forked from the session stream at close time, in close order.
  Rng rng;
  /// Exhausted objects evicted at admission (per-object mode).
  size_t evicted = 0;
  std::chrono::steady_clock::time_point oldest_arrival{};
  std::chrono::steady_clock::time_point closed_at{};
  /// Oldest uncovered arrival -> close, the SLO --close-after-ms bounds.
  double close_wait_ms = 0.0;
};

/// State carried from an evicted session into its successor.
struct FeedBudgetCarry {
  double wholesale_spent = 0.0;   ///< exact ledger total at eviction
  double per_object_floor = 0.0;  ///< max per-object spend at eviction
  /// Windows the feed closed across all prior generations, so window
  /// indices keep counting up instead of restarting at 0 per session.
  size_t windows_closed = 0;
};

/// \brief Per-feed session state machine (see file comment). Driven only
/// by the dispatcher thread.
class FeedSession {
 public:
  /// `config` is the per-feed streaming config shared by every session of
  /// the service (window geometry, budgets, batch pipeline). `carry` is
  /// zeroed for generation 0 and holds the evicted predecessor's budget
  /// state otherwise.
  FeedSession(std::string feed, const StreamRunnerConfig& config,
              uint64_t master_seed, uint64_t generation,
              const FeedBudgetCarry& carry);

  /// Buffers one arrival and stamps the idle/deadline clocks.
  void Offer(Trajectory t, std::chrono::steady_clock::time_point now);

  /// True when a full count-based window is buffered.
  bool WindowReady() const { return assembler_.WindowReady(); }

  /// Deadline at which the buffered partial window must close
  /// (close_after_ms armed via CloseTimerDelay); nullopt when nothing is
  /// pending or time-based closure is off.
  std::optional<std::chrono::steady_clock::time_point> CloseDeadline() const;

  /// \brief Closes the next window over the buffer and appends it to the
  /// backlog. Fails (InvalidArgument naming the per-feed window index)
  /// when two buffered trajectories share an object id.
  Status CloseWindow(WindowClose reason,
                     std::chrono::steady_clock::time_point now);

  /// \brief Pops the next backlog window that survives admission control,
  /// marking the session busy. Windows refused on budget are recorded and
  /// skipped. Returns nullopt when the backlog drains (or the session is
  /// already busy — per-feed windows execute strictly one at a time, so
  /// admission always sees the predecessor's spend).
  std::optional<WindowJob> NextSubmittable();

  /// \brief Absorbs a finished job: charges the accountants with the ids
  /// the batch actually consumed, finalizes the WindowReport (recorded in
  /// the session report), and frees the session for its next submission.
  /// `publish_latency_ms` is close -> completion-handled.
  Result<WindowReport> Complete(const WindowJob& job,
                                const Dataset& published,
                                const BatchReport& batch,
                                double publish_latency_ms);

  /// Counts a completed window as published and retains its report. The
  /// dispatcher calls this only after the sink accepted the window, so a
  /// sink failure leaves the budget spent but the window unpublished —
  /// the same ordering the single-feed runner enforces.
  void RecordPublished(const WindowReport& window_report);

  /// Releases the busy latch without charging anything — the dispatcher's
  /// path for jobs whose results are discarded (failed pipeline, aborted
  /// service).
  void Abandon() { busy_ = false; }

  /// True when nothing is pending anywhere: no uncovered arrivals, no
  /// backlog, no job in flight. The only state an eviction may tear down.
  bool Drained() const {
    return !busy_ && backlog_.empty() && assembler_.uncovered() == 0;
  }

  /// Budget state a successor session must inherit if this one is evicted.
  FeedBudgetCarry Carry() const;

  const std::string& feed() const { return feed_; }
  uint64_t generation() const { return generation_; }
  bool busy() const { return busy_; }
  size_t backlog_size() const { return backlog_.size(); }
  size_t uncovered() const { return assembler_.uncovered(); }
  std::chrono::steady_clock::time_point last_arrival() const {
    return last_arrival_;
  }
  bool evict_when_drained() const { return evict_when_drained_; }
  void set_evict_when_drained(bool v) { evict_when_drained_ = v; }

  /// Session-local report (same shape as the single-feed runner's).
  const StreamReport& report() const { return report_; }
  const ObjectBudgetAccountant& object_accountant() const {
    return object_accountant_;
  }
  const PrivacyAccountant& accountant() const { return accountant_; }
  bool had_refusals() const { return StreamHadRefusals(report_); }

 private:
  std::string feed_;
  const StreamRunnerConfig& config_;
  uint64_t generation_ = 0;
  /// Windows closed by prior generations; added to every per-feed window
  /// index this session emits.
  size_t index_offset_ = 0;
  WindowAssembler assembler_;
  Rng rng_;
  PrivacyAccountant accountant_;
  ObjectBudgetAccountant object_accountant_;
  std::deque<WindowJob> backlog_;
  StreamReport report_;
  bool busy_ = false;
  bool evict_when_drained_ = false;
  std::chrono::steady_clock::time_point last_arrival_{};
  std::chrono::steady_clock::time_point oldest_uncovered_at_{};
};

}  // namespace frt

#endif  // FRT_SERVICE_FEED_SESSION_H_
