#include "service/metrics_exporter.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace frt {

namespace {

int64_t UnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MetricsExporter::MetricsExporter(Options options)
    : options_(std::move(options)) {
  if (options_.interval_ms < 1) options_.interval_ms = 1;
  interval_ms_.store(options_.interval_ms, std::memory_order_relaxed);
}

MetricsExporter::~MetricsExporter() { Stop(); }

Status MetricsExporter::Start() {
  if (started_) {
    return Status::FailedPrecondition("metrics exporter already started");
  }
  if (options_.path.empty()) {
    return Status::InvalidArgument("metrics output path must not be empty");
  }
  if (options_.path == "-") {
    out_ = stderr;
    owns_out_ = false;
  } else {
    out_ = std::fopen(options_.path.c_str(), "a");
    if (out_ == nullptr) {
      return Status::IOError("cannot open metrics output " + options_.path +
                             ": " + std::strerror(errno));
    }
    owns_out_ = true;
  }
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsExporter::Publish(MetricsSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  latest_ = std::move(snapshot);
  has_snapshot_ = true;
}

void MetricsExporter::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  started_ = false;
  // Final flush: the loop never emits on the stop wakeup (it might race a
  // Publish that landed between the wake and the copy), so the last
  // partial interval is written here, after the join, where the latest
  // snapshot is guaranteed to be the publisher's final word.
  bool emit_final = false;
  MetricsSnapshot final_snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_snapshot_ && writable_) {
      final_snapshot = latest_;
      emit_final = true;
    }
  }
  if (emit_final) {
    const bool ok = Emit(final_snapshot);
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
      ++lines_written_;
    } else {
      writable_ = false;
    }
  }
  if (owns_out_ && out_ != nullptr) std::fclose(out_);
  out_ = nullptr;
}

void MetricsExporter::SetIntervalMs(int64_t ms) {
  interval_ms_.store(std::max<int64_t>(ms, 1), std::memory_order_relaxed);
  cv_.notify_all();
}

size_t MetricsExporter::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

void MetricsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Re-read every iteration: /control may retune the cadence mid-run.
    const auto interval = std::chrono::milliseconds(
        interval_ms_.load(std::memory_order_relaxed));
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) return;  // the final line is emitted by Stop(), post-join
    if (has_snapshot_ && writable_) {
      // Copy under the lock, format/write outside it: a slow disk never
      // blocks Publish().
      const MetricsSnapshot snapshot = latest_;
      lock.unlock();
      const bool ok = Emit(snapshot);
      lock.lock();
      if (ok) {
        ++lines_written_;
      } else {
        writable_ = false;
      }
    }
  }
}

bool MetricsExporter::Emit(const MetricsSnapshot& s) {
  const int64_t ts = UnixMillis();
  // Delta throughput between consecutive snapshots; 0 until two distinct
  // uptimes have been seen.
  double publish_per_s = 0.0;
  if (have_prev_ && s.uptime_ms > prev_uptime_ms_) {
    publish_per_s =
        1000.0 *
        static_cast<double>(s.trajectories_published - prev_published_) /
        static_cast<double>(s.uptime_ms - prev_uptime_ms_);
  }
  have_prev_ = true;
  prev_published_ = s.trajectories_published;
  prev_uptime_ms_ = s.uptime_ms;

  std::string line = StrFormat(
      "frt_metrics ts_ms=%lld seq=%llu uptime_ms=%lld feeds=%zu "
      "active_sessions=%zu queue_depth=%zu backlog_windows=%zu "
      "in_flight=%zu windows_closed=%zu windows_published=%zu "
      "windows_refused=%zu windows_deadline_closed=%zu trajs_in=%zu "
      "trajs_published=%zu feeds_quarantined=%zu publish_per_s=%.1f "
      "close_wait_p50_ms=%.2f "
      "close_wait_p99_ms=%.2f publish_p50_ms=%.2f publish_p99_ms=%.2f "
      "eps_spent_max=%.6f ckpt_seq=%llu ckpt_age_ms=%.0f ckpt_written=%zu "
      "ckpt_errors=%zu\n",
      static_cast<long long>(ts), static_cast<unsigned long long>(s.seq),
      static_cast<long long>(s.uptime_ms), s.feeds, s.active_sessions,
      s.queue_depth, s.backlog_windows, s.in_flight, s.windows_closed,
      s.windows_published, s.windows_refused, s.windows_deadline_closed,
      s.trajectories_in, s.trajectories_published, s.feeds_quarantined,
      publish_per_s,
      s.close_wait_p50_ms, s.close_wait_p99_ms, s.publish_p50_ms,
      s.publish_p99_ms, s.epsilon_spent_max,
      static_cast<unsigned long long>(s.checkpoint_seq), s.checkpoint_age_ms,
      s.checkpoints_written, s.checkpoint_errors);
  if (options_.per_feed) {
    for (const MetricsSnapshot::Feed& feed : s.feeds_detail) {
      line += StrFormat(
          "frt_feed ts_ms=%lld feed=%s eps_spent=%.6f eps_remaining=%g "
          "windows_published=%zu windows_refused=%zu\n",
          static_cast<long long>(ts), feed.feed.c_str(), feed.epsilon_spent,
          feed.epsilon_remaining, feed.windows_published,
          feed.windows_refused);
    }
  }
  if (options_.histograms) {
    for (const MetricsSnapshot::Stage& stage : s.stages) {
      line += StrFormat(
          "frt_stage ts_ms=%lld stage=%s count=%llu p50_ms=%.3f "
          "p99_ms=%.3f max_ms=%.3f mean_ms=%.3f\n",
          static_cast<long long>(ts), stage.stage.c_str(),
          static_cast<unsigned long long>(stage.count), stage.p50_ms,
          stage.p99_ms, stage.max_ms, stage.mean_ms);
    }
  }
  if (std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
      std::fflush(out_) != 0) {
    std::fprintf(stderr,
                 "metrics exporter: write to %s failed (%s); metrics "
                 "disabled for the rest of the run\n",
                 options_.path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace frt
