// ServiceDispatcher: the multi-feed anonymization service.
//
// One dispatcher multiplexes many independent trajectory feeds through one
// shared WorkStealingPool:
//
//   ingest threads --Offer--> [arrival BoundedQueue]      (backpressure)
//                                   |
//                         dispatcher thread
//                 route -> FeedSession -> close windows
//                 (count, --close-after-ms deadline, final)
//                                   |
//                     admission (per-feed budgets)
//                                   |
//                  pool.Submit(window anonymization job)
//                                   |
//            workers --> [completion BoundedQueue] --> dispatcher
//                 charge budgets -> sink (per-feed window order)
//
// Threading model. Offer() is called from any number of ingest threads and
// blocks on the bounded arrival queue — that is the service's ingress
// backpressure. ONE dispatcher thread owns every session (assembler,
// accountants, reports), so budget accounting needs no locks; the only
// work it delegates is the pure (window, rng) -> published-dataset batch
// job, which runs on the shared pool with per-window state it owns
// outright. Workers hand results back through the completion queue, whose
// capacity equals the in-flight cap, so a worker never blocks on it.
//
// Ordering and determinism. Windows of ONE feed execute strictly one at a
// time, in close order: admission always sees the predecessor's recorded
// spend, sinks observe each feed in window order, and the per-feed RNG
// stream (seeded from master seed + feed id + generation, forked per
// window at close) never depends on other feeds. Cross-feed concurrency —
// up to max_in_flight window jobs from distinct feeds — is where the pool
// earns its keep. Consequence: a feed's published windows are
// bit-identical between a solo run and any multiplexed run at the same
// seed, which is also what makes per-feed budget isolation testable.
//
// Window closure. Count (the buffer reached window_size), wall-clock
// deadline (--close-after-ms: a non-empty window is published no later
// than that many ms after its oldest uncovered arrival; the latency SLO
// for trickle feeds), and final (input finished). Idle sessions
// (--evict-idle-ms) are flushed and torn down; their budget carries into
// any successor session conservatively (see feed_session.h).

#ifndef FRT_SERVICE_DISPATCHER_H_
#define FRT_SERVICE_DISPATCHER_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "common/bounded_queue.h"
#include "common/result.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "runtime/work_stealing_pool.h"
#include "service/checkpoint.h"
#include "service/feed_session.h"
#include "service/metrics_exporter.h"
#include "stream/stream_runner.h"
#include "traj/dataset.h"

namespace frt {

/// Configuration of the multi-feed service.
struct ServiceConfig {
  /// Per-feed streaming behavior: window geometry, budgets/accounting,
  /// close_after_ms, batch pipeline. Every session applies this config to
  /// its own feed; `stream.batch.pool`, threads and dispatch are managed
  /// by the service (window jobs run single-threaded on the shared pool —
  /// parallelism is across windows, not within one).
  StreamRunnerConfig stream;
  /// Shared pool workers. 0 picks max(2, hardware concurrency): even on
  /// one core the service needs a worker besides the dispatcher so feeds
  /// overlap.
  unsigned pool_threads = 0;
  /// Concurrent window jobs across all feeds; backpressure on submission.
  /// 0 means 2x pool workers.
  size_t max_in_flight = 0;
  /// Arrival queue capacity, in trajectories; the ingress backpressure
  /// bound. 0 means 4x window_size.
  size_t arrival_queue_capacity = 0;
  /// Closed-but-not-yet-executed windows held across all sessions before
  /// the dispatcher pauses ingress (arrivals then pile into the bounded
  /// queue and Offer blocks — end-to-end backpressure when feeds outrun
  /// the pool). 0 means 4x max_in_flight.
  size_t max_backlog_windows = 0;
  /// Sessions with no arrival for this long are flushed and evicted
  /// (budget state carries into any successor). 0 disables eviction.
  int64_t idle_evict_ms = 0;
  /// DEPRECATED no-op. Latency aggregates moved from sorted sample rings
  /// to fixed-size obs::Histogram instances (O(1) memory, always on), so
  /// this cap no longer bounds anything. Setting it away from the default
  /// logs one warning; the key is kept so existing configs keep parsing.
  size_t max_latency_samples = 1 << 14;
  /// Durable budget ledgers: when non-empty, per-feed ledger snapshots are
  /// checkpointed into this directory and recovered from it on Start()
  /// through the conservative PreloadSpent/PreloadFloor carry path. The
  /// write-ahead rule: a snapshot covering a window's spend is made
  /// durable BEFORE that window reaches the sink, so a crash can only
  /// under-grant remaining budget, never over-grant (see
  /// service/checkpoint.h). Empty disables checkpointing.
  std::string state_dir;
  /// Cadence (ms) for interval snapshots covering ledger changes with no
  /// publish to ride on (session revivals, evictions). Publish-driven
  /// write-ahead snapshots ignore this — they are mandatory.
  int64_t checkpoint_interval_ms = 1000;
  /// Optional metrics exporter (not owned; must outlive the service). The
  /// dispatcher publishes a MetricsSnapshot every metrics_interval_ms; the
  /// exporter's own thread does all formatting and IO.
  MetricsExporter* metrics = nullptr;
  int64_t metrics_interval_ms = 1000;
  /// Registry the frt_serve_* counters/gauges register into (not owned;
  /// must outlive the service). The per-run ServiceReport stays the
  /// authoritative per-instance accounting; the registry carries additive
  /// process-wide mirrors for the pull plane. Tests that need bit-exact
  /// registry values construct their own Registry here.
  obs::Registry* registry = &obs::Registry::Default();
};

/// Read-only view of the service for the admin plane, rebuilt on the
/// dispatcher thread at every metrics tick (and always at start and
/// shutdown, even with no exporter configured) and published through an
/// obs::SnapshotBoard. Admin handlers read the latest copy without
/// touching any dispatcher-owned state.
struct ServiceIntrospection {
  /// Monotone tick counter; a scraper that sees the same seq twice with a
  /// growing published_at age is looking at a wedged dispatcher.
  uint64_t seq = 0;
  int64_t uptime_ms = 0;
  /// When this view was built (steady clock) — readers derive staleness.
  std::chrono::steady_clock::time_point published_at{};
  /// The dispatcher loop has exited (final view).
  bool finished = false;
  /// The run hit a fatal error (error surfaces through Finish()).
  bool aborted = false;
  size_t feeds = 0;
  size_t active_sessions = 0;
  size_t queue_depth = 0;
  size_t backlog_windows = 0;
  size_t in_flight = 0;
  size_t feeds_quarantined = 0;
  uint64_t checkpoint_seq = 0;
  double checkpoint_age_ms = -1.0;  ///< negative: checkpointing off/idle
  size_t checkpoints_written = 0;
  size_t checkpoint_errors = 0;

  struct Feed {
    std::string feed;
    /// Cumulative guarantee, same accounting the frt_feed lines report.
    double epsilon_spent = 0.0;
    /// max(0, budget - spent); +inf when the ledger is not enforcing.
    /// Computed with the exporter's exact expression so the shutdown view
    /// is bit-identical to the final frt_feed lines.
    double epsilon_remaining = 0.0;
    size_t windows_published = 0;
    size_t windows_refused = 0;
    /// Closed-but-unsubmitted windows this feed holds right now.
    size_t backlog = 0;
    bool quarantined = false;
    std::string quarantine_reason;
  };
  /// Every feed ever seen, in first-seen order.
  std::vector<Feed> feeds_detail;
};

/// Per-feed outcome, merged across the feed's session generations.
struct FeedReport {
  std::string feed;
  /// Session generations this feed went through (1 = never evicted).
  uint64_t sessions = 1;
  /// True when the feed's session was idle-evicted and not re-opened.
  bool evicted = false;
  /// True when the feed was quarantined (malformed input, decode failure,
  /// or a per-feed pipeline error): its session was torn down, its backlog
  /// dropped, and further arrivals were refused — without failing the
  /// sibling feeds.
  bool quarantined = false;
  /// First fault that quarantined the feed (empty unless quarantined).
  std::string quarantine_reason;
  /// Merged per-feed streaming report. Counters are summed across
  /// generations; epsilon fields are the latest session's (which already
  /// carry the predecessors' spend).
  StreamReport stream;
  /// Per-feed latency aggregates across every generation, mirroring the
  /// service-wide fields (close wait: oldest arrival -> close; publish:
  /// close -> sink-ready).
  double close_wait_p50_ms = 0.0;
  double close_wait_p99_ms = 0.0;
  double close_wait_max_ms = 0.0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  double publish_max_ms = 0.0;
};

/// Service-wide aggregates over one Run.
struct ServiceReport {
  size_t feeds = 0;
  size_t sessions_created = 0;
  size_t sessions_evicted = 0;
  size_t peak_active_sessions = 0;
  size_t windows_closed = 0;
  size_t windows_published = 0;
  size_t windows_refused = 0;
  size_t windows_deadline_closed = 0;
  size_t trajectories_in = 0;
  size_t trajectories_published = 0;
  size_t trajectories_refused = 0;
  size_t trajectories_evicted = 0;
  double wall_seconds = 0.0;
  /// Oldest-arrival -> window-close latency percentiles in ms — the
  /// distribution --close-after-ms bounds.
  double close_wait_p50_ms = 0.0;
  double close_wait_p99_ms = 0.0;
  double close_wait_max_ms = 0.0;
  /// Window-close -> published (queueing + anonymization) in ms.
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  double publish_max_ms = 0.0;
  /// Durability (state_dir set): snapshots written this run, the last
  /// durable sequence number, and feeds revived from a prior snapshot.
  size_t checkpoints_written = 0;
  uint64_t checkpoint_sequence = 0;
  size_t feeds_recovered = 0;
  /// Feeds quarantined by per-feed faults this run (see FeedReport).
  size_t feeds_quarantined = 0;
  /// Per-feed reports, sorted by feed id.
  std::vector<FeedReport> feeds_report;
};

/// True when any feed dropped anything on budget; frt_serve maps this to
/// exit code 3.
bool ServiceHadRefusals(const ServiceReport& report);

/// Receives each published window on the dispatcher thread, per feed in
/// window order (feeds interleave). A non-OK return aborts the service.
using ServiceSink = std::function<Status(
    const std::string& feed, const Dataset& published, const WindowReport&)>;

/// \brief Session-oriented serving front-end (see file comment).
class ServiceDispatcher {
 public:
  ServiceDispatcher(ServiceConfig config, ServiceSink sink);
  /// Finishes (abandoning queued input) if the caller never called
  /// Finish().
  ~ServiceDispatcher();

  ServiceDispatcher(const ServiceDispatcher&) = delete;
  ServiceDispatcher& operator=(const ServiceDispatcher&) = delete;

  /// \brief Spawns the shared pool and the dispatcher thread. `seed` is
  /// the master seed every per-feed RNG stream derives from.
  Status Start(uint64_t seed);

  /// \brief Hands one arrival to the service, blocking when the arrival
  /// queue is full (ingress backpressure). Thread-safe. Returns false once
  /// the service is finishing or aborted — the producer should stop.
  bool Offer(std::string feed, Trajectory t);

  /// \brief Reports `feed` as untrustworthy (malformed frame, decode
  /// failure): the dispatcher tears down its session, drops its backlog,
  /// and refuses its further arrivals, leaving every other feed
  /// untouched. Thread-safe and idempotent; ordered with Offer() calls
  /// from the same producer thread (both ride the arrival queue). Returns
  /// false once the service is finishing or aborted.
  bool OfferQuarantine(std::string feed, std::string reason);

  /// \brief Closes ingress, drains every session (final partial windows
  /// included), waits for all in-flight jobs, and joins the dispatcher.
  /// Returns the first error the run hit (ingest routing, pipeline, sink,
  /// or accounting); budget refusals are NOT errors — see report().
  Status Finish();

  /// Aggregated diagnostics; valid after Finish().
  const ServiceReport& report() const { return report_; }

  const ServiceConfig& config() const { return config_; }

  /// \brief Latest introspection view (nullptr before Start()). Safe from
  /// any thread at any time; never blocks the dispatcher (see
  /// obs::SnapshotBoard).
  std::shared_ptr<const ServiceIntrospection> Introspect() const {
    return introspection_.Read();
  }

  /// \brief Retunes the metrics/introspection cadence at runtime (admin
  /// /control). Thread-safe; takes effect at the next dispatcher wakeup.
  void SetMetricsIntervalMs(int64_t ms) {
    metrics_interval_ms_.store(std::max<int64_t>(ms, 1),
                               std::memory_order_relaxed);
  }

 private:
  struct Completion {
    WindowJob job;
    Result<Dataset> published = Status::Internal("job not executed");
    BatchReport batch;
    /// When the worker picked the job up (queue wait ends) and how long
    /// the anonymization ran, stamped by the worker for the dispatcher's
    /// stage histograms.
    std::chrono::steady_clock::time_point started_at{};
    double run_ms = 0.0;
  };
  struct Arrival {
    std::string feed;
    Trajectory trajectory;
    /// OfferQuarantine marker: no trajectory, `reason` set instead.
    bool quarantine = false;
    std::string reason;
  };
  /// A feed's state across session generations (dispatcher thread only).
  struct FeedSlot {
    std::unique_ptr<FeedSession> session;  ///< null while evicted
    FeedBudgetCarry carry;
    uint64_t generations = 0;
    /// Counters merged out of evicted generations.
    StreamReport merged;
    bool ever_evicted = false;
    /// The feed was declared untrustworthy: session gone, backlog
    /// dropped, arrivals refused. Never revived.
    bool quarantined = false;
    std::string quarantine_reason;
    /// Membership flag for live_order_ (lazy compaction).
    bool in_live_order = false;
    /// Earliest deadline currently pushed on the heap for this feed
    /// (time_point::max() when none): a new deadline only pushes when it
    /// beats this, so the heap never grows faster than one entry per
    /// arrival batch. Reset on eviction/quarantine so a revived session
    /// re-arms from scratch.
    std::chrono::steady_clock::time_point armed_deadline =
        std::chrono::steady_clock::time_point::max();
    /// Per-feed latency histograms, surviving across generations (the
    /// fixed obs::Histogram footprint is what makes per-feed aggregates
    /// affordable where the old sample rings were not).
    obs::Histogram close_wait_hist;
    obs::Histogram publish_hist;
  };
  /// Min-heap entry: the earliest moment `feed` may need attention
  /// (deadline window closure or idle eviction). Entries are lazy — a
  /// deadline that moved later or disappeared leaves a stale entry that
  /// is discarded at pop — so arming is push-only and the dispatcher's
  /// per-iteration deadline lookup is O(1) instead of a scan of every
  /// feed ever seen.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point when;
    std::string feed;
  };
  struct DeadlineLater {
    bool operator()(const DeadlineEntry& a, const DeadlineEntry& b) const {
      return a.when > b.when;
    }
  };
  /// A completed window whose spend is charged but whose output has not
  /// yet been handed to the sink — it waits for the write-ahead checkpoint
  /// covering that spend.
  struct PendingPublish {
    std::string feed;
    Dataset published;
    WindowReport report;
  };

  void DispatcherLoop();
  /// Routes one arrival into its session (reviving evicted feeds;
  /// dropping arrivals of quarantined feeds). A window-closure failure is
  /// a per-feed fault — the feed is quarantined, the service survives.
  void Route(Arrival&& arrival, std::chrono::steady_clock::time_point now);
  /// Earliest future moment `slot` needs attention: its close_after_ms
  /// window deadline or its idle-eviction time, whichever comes first.
  std::optional<std::chrono::steady_clock::time_point> EffectiveDeadline(
      const FeedSlot& slot) const;
  /// Pushes `slot`'s effective deadline onto the heap if it beats the
  /// entry already armed for it.
  void ArmDeadline(const std::string& feed, FeedSlot& slot);
  /// Pops every due heap entry and services it: deadline window closure,
  /// then idle eviction, then re-arm. O(log feeds) per wakeup; stale
  /// entries are discarded.
  void ProcessDueDeadlines(std::chrono::steady_clock::time_point now);
  /// Closes one window on `slot`'s session, keeping the running backlog
  /// counter. A closure failure (duplicate object id, ...) quarantines
  /// the feed; returns false in that case.
  bool CloseSessionWindow(const std::string& feed, FeedSlot& slot,
                          WindowClose reason,
                          std::chrono::steady_clock::time_point now);
  /// Declares `feed` untrustworthy: merges and tears down its session,
  /// drops its backlog, marks the slot so arrivals and revivals are
  /// refused. Idempotent. Never touches sibling feeds.
  void QuarantineFeed(const std::string& feed, std::string reason);
  /// Submits admissible backlog windows while in-flight capacity lasts.
  void SubmitReady();
  /// Absorbs one finished job: charges budgets, samples latency, and
  /// queues the output for FlushPublishes. Does NOT sink.
  void AbsorbCompletion(std::unique_ptr<Completion> completion);
  /// Publishes every pending window: one durable checkpoint covering all
  /// their spend (state_dir set), then the sink calls, then the
  /// drained-session evictions. Must run before CloseExpired/EvictIdle/
  /// SubmitReady at every absorb site so eviction never outruns a pending
  /// publish.
  void FlushPublishes();
  /// Snapshots every feed's carry state and durably replaces the
  /// on-disk checkpoint.
  Status WriteCheckpointNow();
  /// Interval snapshot for dirty ledgers with no publish to ride on.
  void MaybeCheckpoint(std::chrono::steady_clock::time_point now);
  /// Publishes a MetricsSnapshot when the metrics interval elapsed.
  void MaybePublishMetrics(std::chrono::steady_clock::time_point now);
  void PublishMetricsNow(std::chrono::steady_clock::time_point now);
  /// Records a fatal error once and stops admitting new work.
  void Abort(Status status);
  /// Merges `session`'s report into its slot and tears the session down.
  void EvictSession(FeedSlot* slot);
  void BuildFinalReport();

  ServiceConfig config_;
  ServiceSink sink_;
  uint64_t master_seed_ = 0;
  std::unique_ptr<WorkStealingPool> pool_;
  std::unique_ptr<BoundedQueue<Arrival>> arrivals_;
  std::unique_ptr<BoundedQueue<std::unique_ptr<Completion>>> completions_;
  std::thread dispatcher_;
  bool started_ = false;
  bool finished_ = false;

  // Dispatcher-thread state.
  std::unordered_map<std::string, FeedSlot> feeds_;
  std::vector<std::string> feed_order_;  ///< first-seen order (reports)
  /// Feeds with a live session — the only ones SubmitReady scans. Entries
  /// whose session died (evicted or quarantined) are compacted out lazily
  /// at the next scan (live_order_dirty_), so a long-lived service that
  /// has seen N feeds but serves k pays O(k), not O(N), per scan.
  std::vector<std::string> live_order_;
  bool live_order_dirty_ = false;
  /// Lazy min-heap over every live feed's next deadline (see
  /// DeadlineEntry) — replaces the per-iteration scan of all feeds.
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      DeadlineLater>
      deadlines_;
  /// Closed-but-not-yet-submitted windows across all sessions, maintained
  /// incrementally (close: +1, submit/refusal: -delta, quarantine:
  /// -backlog) — the backpressure test no longer scans every session.
  size_t backlog_windows_ = 0;
  size_t active_sessions_ = 0;
  size_t in_flight_ = 0;
  /// Start of the next SubmitReady scan: rotated to just past the last
  /// feed that actually got a submission slot, so with more backlogged
  /// feeds than slots the grant cycles round-robin instead of re-serving
  /// the scan's front-runners every call.
  size_t submit_rr_ = 0;
  bool aborted_ = false;
  /// stream.stop_when_exhausted tripped: ingress is closed and discarded,
  /// closed windows drain, and the run ends cleanly (not an error).
  bool stopping_ = false;
  Status error_ = Status::OK();
  /// Service-wide per-stage latency histograms (dispatcher thread only).
  /// Bounded memory, merged per-feed views live in each FeedSlot.
  obs::Histogram close_wait_hist_;
  obs::Histogram publish_hist_;
  obs::Histogram queue_wait_hist_;
  obs::Histogram anonymize_hist_;
  obs::Histogram checkpoint_hist_;
  obs::Histogram sink_hist_;
  // Durability + metrics (dispatcher thread only, except store_ creation
  // and recovery, which Start() runs before the thread spawns).
  std::optional<CheckpointStore> store_;
  std::vector<PendingPublish> pending_;
  uint64_t checkpoint_seq_ = 0;  ///< resumes from the recovered snapshot
  size_t checkpoints_written_ = 0;
  /// Snapshot writes that failed (each aborts the run; surfaced in
  /// metrics so an operator sees WHY the service died).
  size_t checkpoint_errors_ = 0;
  /// Ledger state changed since the last snapshot (spend, generation, or
  /// window-counter movement).
  bool ledger_dirty_ = false;
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point last_checkpoint_{};
  std::chrono::steady_clock::time_point last_metrics_{};
  uint64_t metrics_seq_ = 0;
  ServiceReport report_;
  /// The loop's final tick is running: the introspection view it builds
  /// carries finished=true so /readyz can flip before Finish() returns.
  bool final_tick_ = false;
  /// Runtime-tunable metrics cadence (SetMetricsIntervalMs, any thread);
  /// seeded from config_.metrics_interval_ms at construction.
  std::atomic<int64_t> metrics_interval_ms_{1000};
  /// Admin-plane publication point (see ServiceIntrospection).
  obs::SnapshotBoard<ServiceIntrospection> introspection_;
  /// Registry mirrors (see ServiceConfig::registry). Counters are bumped
  /// at the same sites as the per-run report fields; gauges are set each
  /// metrics tick; cells shadow the plain per-run histograms.
  obs::Counter* ctr_sessions_created_ = nullptr;
  obs::Counter* ctr_sessions_evicted_ = nullptr;
  obs::Counter* ctr_windows_closed_ = nullptr;
  obs::Counter* ctr_windows_published_ = nullptr;
  obs::Counter* ctr_windows_refused_ = nullptr;
  obs::Counter* ctr_windows_deadline_closed_ = nullptr;
  obs::Counter* ctr_trajectories_in_ = nullptr;
  obs::Counter* ctr_trajectories_published_ = nullptr;
  obs::Counter* ctr_feeds_quarantined_ = nullptr;
  obs::Counter* ctr_checkpoints_written_ = nullptr;
  obs::Counter* ctr_checkpoint_errors_ = nullptr;
  obs::Gauge* g_active_sessions_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_backlog_windows_ = nullptr;
  obs::Gauge* g_in_flight_ = nullptr;
  obs::Gauge* g_feeds_ = nullptr;
  obs::Gauge* g_eps_spent_max_ = nullptr;
  obs::HistogramCell* cell_close_wait_ = nullptr;
  obs::HistogramCell* cell_publish_ = nullptr;
  obs::HistogramCell* cell_queue_wait_ = nullptr;
  obs::HistogramCell* cell_anonymize_ = nullptr;
  obs::HistogramCell* cell_checkpoint_ = nullptr;
  obs::HistogramCell* cell_sink_ = nullptr;
};

}  // namespace frt

#endif  // FRT_SERVICE_DISPATCHER_H_
