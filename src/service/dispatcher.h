// ServiceDispatcher: the multi-feed anonymization service.
//
// One dispatcher multiplexes many independent trajectory feeds through one
// shared WorkStealingPool:
//
//   ingest threads --Offer--> [arrival BoundedQueue]      (backpressure)
//                                   |
//                         dispatcher thread
//                 route -> FeedSession -> close windows
//                 (count, --close-after-ms deadline, final)
//                                   |
//                     admission (per-feed budgets)
//                                   |
//                  pool.Submit(window anonymization job)
//                                   |
//            workers --> [completion BoundedQueue] --> dispatcher
//                 charge budgets -> sink (per-feed window order)
//
// Threading model. Offer() is called from any number of ingest threads and
// blocks on the bounded arrival queue — that is the service's ingress
// backpressure. ONE dispatcher thread owns every session (assembler,
// accountants, reports), so budget accounting needs no locks; the only
// work it delegates is the pure (window, rng) -> published-dataset batch
// job, which runs on the shared pool with per-window state it owns
// outright. Workers hand results back through the completion queue, whose
// capacity equals the in-flight cap, so a worker never blocks on it.
//
// Ordering and determinism. Windows of ONE feed execute strictly one at a
// time, in close order: admission always sees the predecessor's recorded
// spend, sinks observe each feed in window order, and the per-feed RNG
// stream (seeded from master seed + feed id + generation, forked per
// window at close) never depends on other feeds. Cross-feed concurrency —
// up to max_in_flight window jobs from distinct feeds — is where the pool
// earns its keep. Consequence: a feed's published windows are
// bit-identical between a solo run and any multiplexed run at the same
// seed, which is also what makes per-feed budget isolation testable.
//
// Window closure. Count (the buffer reached window_size), wall-clock
// deadline (--close-after-ms: a non-empty window is published no later
// than that many ms after its oldest uncovered arrival; the latency SLO
// for trickle feeds), and final (input finished). Idle sessions
// (--evict-idle-ms) are flushed and torn down; their budget carries into
// any successor session conservatively (see feed_session.h).

#ifndef FRT_SERVICE_DISPATCHER_H_
#define FRT_SERVICE_DISPATCHER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "common/result.h"
#include "obs/histogram.h"
#include "runtime/work_stealing_pool.h"
#include "service/checkpoint.h"
#include "service/feed_session.h"
#include "service/metrics_exporter.h"
#include "stream/stream_runner.h"
#include "traj/dataset.h"

namespace frt {

/// Configuration of the multi-feed service.
struct ServiceConfig {
  /// Per-feed streaming behavior: window geometry, budgets/accounting,
  /// close_after_ms, batch pipeline. Every session applies this config to
  /// its own feed; `stream.batch.pool`, threads and dispatch are managed
  /// by the service (window jobs run single-threaded on the shared pool —
  /// parallelism is across windows, not within one).
  StreamRunnerConfig stream;
  /// Shared pool workers. 0 picks max(2, hardware concurrency): even on
  /// one core the service needs a worker besides the dispatcher so feeds
  /// overlap.
  unsigned pool_threads = 0;
  /// Concurrent window jobs across all feeds; backpressure on submission.
  /// 0 means 2x pool workers.
  size_t max_in_flight = 0;
  /// Arrival queue capacity, in trajectories; the ingress backpressure
  /// bound. 0 means 4x window_size.
  size_t arrival_queue_capacity = 0;
  /// Closed-but-not-yet-executed windows held across all sessions before
  /// the dispatcher pauses ingress (arrivals then pile into the bounded
  /// queue and Offer blocks — end-to-end backpressure when feeds outrun
  /// the pool). 0 means 4x max_in_flight.
  size_t max_backlog_windows = 0;
  /// Sessions with no arrival for this long are flushed and evicted
  /// (budget state carries into any successor). 0 disables eviction.
  int64_t idle_evict_ms = 0;
  /// DEPRECATED no-op. Latency aggregates moved from sorted sample rings
  /// to fixed-size obs::Histogram instances (O(1) memory, always on), so
  /// this cap no longer bounds anything. Setting it away from the default
  /// logs one warning; the key is kept so existing configs keep parsing.
  size_t max_latency_samples = 1 << 14;
  /// Durable budget ledgers: when non-empty, per-feed ledger snapshots are
  /// checkpointed into this directory and recovered from it on Start()
  /// through the conservative PreloadSpent/PreloadFloor carry path. The
  /// write-ahead rule: a snapshot covering a window's spend is made
  /// durable BEFORE that window reaches the sink, so a crash can only
  /// under-grant remaining budget, never over-grant (see
  /// service/checkpoint.h). Empty disables checkpointing.
  std::string state_dir;
  /// Cadence (ms) for interval snapshots covering ledger changes with no
  /// publish to ride on (session revivals, evictions). Publish-driven
  /// write-ahead snapshots ignore this — they are mandatory.
  int64_t checkpoint_interval_ms = 1000;
  /// Optional metrics exporter (not owned; must outlive the service). The
  /// dispatcher publishes a MetricsSnapshot every metrics_interval_ms; the
  /// exporter's own thread does all formatting and IO.
  MetricsExporter* metrics = nullptr;
  int64_t metrics_interval_ms = 1000;
};

/// Per-feed outcome, merged across the feed's session generations.
struct FeedReport {
  std::string feed;
  /// Session generations this feed went through (1 = never evicted).
  uint64_t sessions = 1;
  /// True when the feed's session was idle-evicted and not re-opened.
  bool evicted = false;
  /// Merged per-feed streaming report. Counters are summed across
  /// generations; epsilon fields are the latest session's (which already
  /// carry the predecessors' spend).
  StreamReport stream;
  /// Per-feed latency aggregates across every generation, mirroring the
  /// service-wide fields (close wait: oldest arrival -> close; publish:
  /// close -> sink-ready).
  double close_wait_p50_ms = 0.0;
  double close_wait_p99_ms = 0.0;
  double close_wait_max_ms = 0.0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  double publish_max_ms = 0.0;
};

/// Service-wide aggregates over one Run.
struct ServiceReport {
  size_t feeds = 0;
  size_t sessions_created = 0;
  size_t sessions_evicted = 0;
  size_t peak_active_sessions = 0;
  size_t windows_closed = 0;
  size_t windows_published = 0;
  size_t windows_refused = 0;
  size_t windows_deadline_closed = 0;
  size_t trajectories_in = 0;
  size_t trajectories_published = 0;
  size_t trajectories_refused = 0;
  size_t trajectories_evicted = 0;
  double wall_seconds = 0.0;
  /// Oldest-arrival -> window-close latency percentiles in ms — the
  /// distribution --close-after-ms bounds.
  double close_wait_p50_ms = 0.0;
  double close_wait_p99_ms = 0.0;
  double close_wait_max_ms = 0.0;
  /// Window-close -> published (queueing + anonymization) in ms.
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  double publish_max_ms = 0.0;
  /// Durability (state_dir set): snapshots written this run, the last
  /// durable sequence number, and feeds revived from a prior snapshot.
  size_t checkpoints_written = 0;
  uint64_t checkpoint_sequence = 0;
  size_t feeds_recovered = 0;
  /// Per-feed reports, sorted by feed id.
  std::vector<FeedReport> feeds_report;
};

/// True when any feed dropped anything on budget; frt_serve maps this to
/// exit code 3.
bool ServiceHadRefusals(const ServiceReport& report);

/// Receives each published window on the dispatcher thread, per feed in
/// window order (feeds interleave). A non-OK return aborts the service.
using ServiceSink = std::function<Status(
    const std::string& feed, const Dataset& published, const WindowReport&)>;

/// \brief Session-oriented serving front-end (see file comment).
class ServiceDispatcher {
 public:
  ServiceDispatcher(ServiceConfig config, ServiceSink sink);
  /// Finishes (abandoning queued input) if the caller never called
  /// Finish().
  ~ServiceDispatcher();

  ServiceDispatcher(const ServiceDispatcher&) = delete;
  ServiceDispatcher& operator=(const ServiceDispatcher&) = delete;

  /// \brief Spawns the shared pool and the dispatcher thread. `seed` is
  /// the master seed every per-feed RNG stream derives from.
  Status Start(uint64_t seed);

  /// \brief Hands one arrival to the service, blocking when the arrival
  /// queue is full (ingress backpressure). Thread-safe. Returns false once
  /// the service is finishing or aborted — the producer should stop.
  bool Offer(std::string feed, Trajectory t);

  /// \brief Closes ingress, drains every session (final partial windows
  /// included), waits for all in-flight jobs, and joins the dispatcher.
  /// Returns the first error the run hit (ingest routing, pipeline, sink,
  /// or accounting); budget refusals are NOT errors — see report().
  Status Finish();

  /// Aggregated diagnostics; valid after Finish().
  const ServiceReport& report() const { return report_; }

  const ServiceConfig& config() const { return config_; }

 private:
  struct Completion {
    WindowJob job;
    Result<Dataset> published = Status::Internal("job not executed");
    BatchReport batch;
    /// When the worker picked the job up (queue wait ends) and how long
    /// the anonymization ran, stamped by the worker for the dispatcher's
    /// stage histograms.
    std::chrono::steady_clock::time_point started_at{};
    double run_ms = 0.0;
  };
  struct Arrival {
    std::string feed;
    Trajectory trajectory;
  };
  /// A feed's state across session generations (dispatcher thread only).
  struct FeedSlot {
    std::unique_ptr<FeedSession> session;  ///< null while evicted
    FeedBudgetCarry carry;
    uint64_t generations = 0;
    /// Counters merged out of evicted generations.
    StreamReport merged;
    bool ever_evicted = false;
    /// Per-feed latency histograms, surviving across generations (the
    /// fixed obs::Histogram footprint is what makes per-feed aggregates
    /// affordable where the old sample rings were not).
    obs::Histogram close_wait_hist;
    obs::Histogram publish_hist;
  };
  /// A completed window whose spend is charged but whose output has not
  /// yet been handed to the sink — it waits for the write-ahead checkpoint
  /// covering that spend.
  struct PendingPublish {
    std::string feed;
    Dataset published;
    WindowReport report;
  };

  void DispatcherLoop();
  /// Routes one arrival into its session (reviving evicted feeds).
  Status Route(Arrival&& arrival, std::chrono::steady_clock::time_point now);
  /// Closes windows whose close_after_ms deadline has passed.
  Status CloseExpired(std::chrono::steady_clock::time_point now);
  /// Flushes and tears down sessions idle past idle_evict_ms.
  Status EvictIdle(std::chrono::steady_clock::time_point now);
  /// Submits admissible backlog windows while in-flight capacity lasts.
  void SubmitReady();
  /// Absorbs one finished job: charges budgets, samples latency, and
  /// queues the output for FlushPublishes. Does NOT sink.
  void AbsorbCompletion(std::unique_ptr<Completion> completion);
  /// Publishes every pending window: one durable checkpoint covering all
  /// their spend (state_dir set), then the sink calls, then the
  /// drained-session evictions. Must run before CloseExpired/EvictIdle/
  /// SubmitReady at every absorb site so eviction never outruns a pending
  /// publish.
  void FlushPublishes();
  /// Snapshots every feed's carry state and durably replaces the
  /// on-disk checkpoint.
  Status WriteCheckpointNow();
  /// Interval snapshot for dirty ledgers with no publish to ride on.
  void MaybeCheckpoint(std::chrono::steady_clock::time_point now);
  /// Publishes a MetricsSnapshot when the metrics interval elapsed.
  void MaybePublishMetrics(std::chrono::steady_clock::time_point now);
  void PublishMetricsNow(std::chrono::steady_clock::time_point now);
  /// Records a fatal error once and stops admitting new work.
  void Abort(Status status);
  /// Merges `session`'s report into its slot and tears the session down.
  void EvictSession(FeedSlot* slot);
  void BuildFinalReport();

  ServiceConfig config_;
  ServiceSink sink_;
  uint64_t master_seed_ = 0;
  std::unique_ptr<WorkStealingPool> pool_;
  std::unique_ptr<BoundedQueue<Arrival>> arrivals_;
  std::unique_ptr<BoundedQueue<std::unique_ptr<Completion>>> completions_;
  std::thread dispatcher_;
  bool started_ = false;
  bool finished_ = false;

  // Dispatcher-thread state.
  std::unordered_map<std::string, FeedSlot> feeds_;
  std::vector<std::string> feed_order_;  ///< first-seen order
  size_t active_sessions_ = 0;
  size_t in_flight_ = 0;
  /// Rotating start of the SubmitReady scan, so no feed owns the front of
  /// the submission order when slots are scarce.
  size_t submit_rr_ = 0;
  bool aborted_ = false;
  /// stream.stop_when_exhausted tripped: ingress is closed and discarded,
  /// closed windows drain, and the run ends cleanly (not an error).
  bool stopping_ = false;
  Status error_ = Status::OK();
  /// Service-wide per-stage latency histograms (dispatcher thread only).
  /// Bounded memory, merged per-feed views live in each FeedSlot.
  obs::Histogram close_wait_hist_;
  obs::Histogram publish_hist_;
  obs::Histogram queue_wait_hist_;
  obs::Histogram anonymize_hist_;
  obs::Histogram checkpoint_hist_;
  obs::Histogram sink_hist_;
  // Durability + metrics (dispatcher thread only, except store_ creation
  // and recovery, which Start() runs before the thread spawns).
  std::optional<CheckpointStore> store_;
  std::vector<PendingPublish> pending_;
  uint64_t checkpoint_seq_ = 0;  ///< resumes from the recovered snapshot
  size_t checkpoints_written_ = 0;
  /// Ledger state changed since the last snapshot (spend, generation, or
  /// window-counter movement).
  bool ledger_dirty_ = false;
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point last_checkpoint_{};
  std::chrono::steady_clock::time_point last_metrics_{};
  uint64_t metrics_seq_ = 0;
  ServiceReport report_;
};

}  // namespace frt

#endif  // FRT_SERVICE_DISPATCHER_H_
