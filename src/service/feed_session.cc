#include "service/feed_session.h"

#include <vector>

#include "obs/trace.h"

namespace frt {

FeedSession::FeedSession(std::string feed, const StreamRunnerConfig& config,
                         uint64_t master_seed, uint64_t generation,
                         const FeedBudgetCarry& carry)
    : feed_(std::move(feed)),
      config_(config),
      generation_(generation),
      index_offset_(carry.windows_closed),
      assembler_(config.window_size, config.window_stride),
      rng_(FeedStreamSeed(master_seed, feed_, generation)) {
  accountant_ = (config_.accounting == BudgetAccounting::kWholesale &&
                 config_.total_budget > 0.0)
                    ? PrivacyAccountant(config_.total_budget)
                    : PrivacyAccountant();
  accountant_.set_max_ledger_entries(config_.max_window_reports);
  object_accountant_ =
      (config_.accounting == BudgetAccounting::kPerObject &&
       config_.per_object_budget > 0.0)
          ? ObjectBudgetAccountant(config_.per_object_budget)
          : ObjectBudgetAccountant();
  object_accountant_.set_max_tracked_objects(config_.max_tracked_objects);
  if (carry.wholesale_spent > 0.0) {
    accountant_.PreloadSpent(carry.wholesale_spent,
                             "carried from evicted session");
  }
  if (carry.per_object_floor > 0.0) {
    object_accountant_.PreloadFloor(carry.per_object_floor);
  }
  report_.epsilon_spent = config_.accounting == BudgetAccounting::kPerObject
                              ? object_accountant_.max_spent()
                              : accountant_.spent();
  report_.epsilon_wholesale_equivalent = accountant_.spent();
}

void FeedSession::Offer(Trajectory t,
                        std::chrono::steady_clock::time_point now) {
  last_arrival_ = now;
  if (assembler_.uncovered() == 0) oldest_uncovered_at_ = now;
  assembler_.Push(std::move(t));
  ++report_.trajectories_in;
}

std::optional<std::chrono::steady_clock::time_point>
FeedSession::CloseDeadline() const {
  if (config_.close_after_ms <= 0 || assembler_.uncovered() == 0) {
    return std::nullopt;
  }
  return oldest_uncovered_at_ + CloseTimerDelay(config_.close_after_ms);
}

Status FeedSession::CloseWindow(WindowClose reason,
                                std::chrono::steady_clock::time_point now) {
  const std::chrono::steady_clock::time_point oldest = oldest_uncovered_at_;
  Result<Dataset> window = reason == WindowClose::kFinal
                               ? assembler_.CloseFinal()
                               : assembler_.CloseWindow();
  if (!window.ok()) {
    return Status::InvalidArgument(
        "feed " + feed_ + " window " +
        std::to_string(index_offset_ + report_.windows_closed) + ": " +
        window.status().message() +
        " (each object may appear once per window)");
  }
  WindowJob job;
  job.feed = feed_;
  job.generation = generation_;
  // Indices continue across session generations (index_offset_), so a
  // revived feed's windows never repeat an index.
  job.index = index_offset_ + report_.windows_closed;
  job.reason = reason;
  job.window = std::move(*window);
  // Fork at close time, in close order, BEFORE admission: the per-feed RNG
  // stream is then a pure function of the feed's own arrival sequence,
  // never of how much budget remains or what other feeds are doing.
  job.rng = rng_.Fork();
  job.oldest_arrival = oldest;
  job.closed_at = now;
  job.close_wait_ms =
      std::chrono::duration<double, std::milli>(now - oldest).count();
  // The window's assembly phase: oldest uncovered arrival -> close.
  obs::EmitSpan("assemble", obs::SpanCategory::kWindow, feed_, oldest, now);
  ++report_.windows_closed;
  if (reason == WindowClose::kDeadline) ++report_.windows_deadline_closed;
  backlog_.push_back(std::move(job));
  return Status::OK();
}

std::optional<WindowJob> FeedSession::NextSubmittable() {
  if (busy_) return std::nullopt;
  const double window_epsilon = config_.batch.pipeline.epsilon_global +
                                config_.batch.pipeline.epsilon_local;
  while (!backlog_.empty()) {
    WindowJob job = std::move(backlog_.front());
    backlog_.pop_front();
    // Shared admission control with the single-feed runner (see
    // AdmitWindowOnBudget) — only the log prefix differs.
    const bool admitted = AdmitWindowOnBudget(
        &job.window, job.index, window_epsilon, config_.accounting,
        config_.evict_exhausted, accountant_, object_accountant_, &report_,
        &job.evicted, "feed " + feed_ + ": ");
    if (!admitted) continue;
    busy_ = true;
    return job;
  }
  return std::nullopt;
}

Result<WindowReport> FeedSession::Complete(const WindowJob& job,
                                           const Dataset& published,
                                           const BatchReport& batch,
                                           double publish_latency_ms) {
  busy_ = false;
  WindowReport window_report;
  window_report.index = job.index;
  window_report.close_reason = job.reason;
  window_report.close_wait_ms = job.close_wait_ms;
  window_report.publish_latency_ms = publish_latency_ms;
  window_report.trajectories = published.size();
  window_report.trajectories_evicted = job.evicted;
  window_report.epsilon_spent = batch.epsilon_spent;
  window_report.batch = batch;
  // The id lists are consumed below; the bounded report history keeps only
  // the scalar diagnostics (same policy as StreamRunner).
  window_report.batch.shard_object_ids.clear();
  if (window_report.epsilon_spent > 0.0) {
    if (config_.accounting == BudgetAccounting::kPerObject) {
      // Charge exactly the ids the batch consumed, at the window's spend
      // (max over shards; uniform per-shard epsilons make it exact).
      // SpendWindow re-verifies admission transactionally.
      std::vector<TrajId> released;
      released.reserve(published.size());
      for (const auto& shard_ids : batch.shard_object_ids) {
        released.insert(released.end(), shard_ids.begin(), shard_ids.end());
      }
      FRT_RETURN_IF_ERROR(object_accountant_.SpendWindow(
          released, window_report.epsilon_spent));
    }
    // The wholesale ledger tracks in both modes so per-object feeds can
    // report the pessimism gap.
    FRT_RETURN_IF_ERROR(accountant_.Spend(
        window_report.epsilon_spent,
        "feed " + feed_ + " window " + std::to_string(job.index) +
            " (sequential composition)"));
  }
  const bool per_object =
      config_.accounting == BudgetAccounting::kPerObject;
  window_report.epsilon_total = per_object ? object_accountant_.max_spent()
                                           : accountant_.spent();
  report_.epsilon_spent = window_report.epsilon_total;
  report_.epsilon_wholesale_equivalent = accountant_.spent();
  return window_report;
}

void FeedSession::RecordPublished(const WindowReport& window_report) {
  // Split from Complete so the budget is spent either way but the window
  // only counts as published once the sink accepted it — the same
  // ordering StreamRunner::ProcessWindow has always had.
  ++report_.windows_published;
  report_.trajectories_published += window_report.trajectories;
  report_.windows.push_back(window_report);
  if (config_.max_window_reports > 0 &&
      report_.windows.size() > config_.max_window_reports) {
    report_.windows.erase(report_.windows.begin());
  }
}

FeedBudgetCarry FeedSession::Carry() const {
  FeedBudgetCarry carry;
  carry.wholesale_spent = accountant_.spent();
  carry.per_object_floor = object_accountant_.max_spent();
  carry.windows_closed = index_offset_ + report_.windows_closed;
  return carry;
}

}  // namespace frt
