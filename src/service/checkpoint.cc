#include "service/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"

namespace frt {

namespace {

constexpr char kMagic[] = "frt-checkpoint";
constexpr int kVersion = 1;
constexpr char kSnapshotFile[] = "budget_ledgers.ckpt";

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// %.17g survives a text round trip bit-exactly for every finite double.
std::string FormatDouble(double v) { return StrFormat("%.17g", v); }

Status Corrupt(const std::string& detail) {
  return Status::IOError("corrupt checkpoint: " + detail);
}

/// Pops the next space-delimited token off `line`; empty when exhausted.
std::string_view NextToken(std::string_view* line) {
  const size_t space = line->find(' ');
  std::string_view token;
  if (space == std::string_view::npos) {
    token = *line;
    *line = std::string_view();
  } else {
    token = line->substr(0, space);
    *line = line->substr(space + 1);
  }
  return token;
}

Result<uint64_t> ParseU64Token(std::string_view token,
                               const std::string& what) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size() ||
      token.empty()) {
    return Corrupt("malformed " + what + " '" + std::string(token) + "'");
  }
  return value;
}

Result<double> ParseDoubleToken(std::string_view token,
                                const std::string& what) {
  Result<double> parsed = ParseDouble(token);
  if (!parsed.ok()) {
    return Corrupt("malformed " + what + " '" + std::string(token) + "'");
  }
  return *parsed;
}

}  // namespace

std::string EncodeCheckpoint(const ServiceCheckpoint& checkpoint) {
  std::ostringstream body;
  body << kMagic << ' ' << kVersion << '\n';
  body << "seq " << checkpoint.sequence << '\n';
  body << "budgets " << FormatDouble(checkpoint.total_budget) << ' '
       << FormatDouble(checkpoint.per_object_budget) << '\n';
  body << "feeds " << checkpoint.feeds.size() << '\n';
  for (const FeedCheckpoint& feed : checkpoint.feeds) {
    // The name goes LAST so feed ids containing spaces stay parseable;
    // names cannot contain newlines (they come from line-oriented input).
    body << "feed " << feed.generations << ' ' << feed.windows_closed << ' '
         << FormatDouble(feed.wholesale_spent) << ' '
         << FormatDouble(feed.per_object_floor) << ' ' << feed.feed << '\n';
  }
  std::string text = body.str();
  text += StrFormat("checksum %016llx\n",
                    static_cast<unsigned long long>(Fnv1a64(text)));
  return text;
}

Result<ServiceCheckpoint> DecodeCheckpoint(std::string_view text) {
  // The checksum line authenticates every byte before it; locate it first
  // so truncation anywhere (including mid-checksum) is caught up front.
  if (text.empty() || text.back() != '\n') {
    return Corrupt("truncated (missing trailing newline)");
  }
  const size_t last_line_start = text.rfind('\n', text.size() - 2);
  const size_t checksum_at =
      last_line_start == std::string_view::npos ? 0 : last_line_start + 1;
  std::string_view checksum_line =
      text.substr(checksum_at, text.size() - checksum_at - 1);
  if (NextToken(&checksum_line) != "checksum") {
    return Corrupt("truncated (missing checksum line)");
  }
  const std::string_view checksum_token = NextToken(&checksum_line);
  uint64_t expected = 0;
  const auto [checksum_end, checksum_ec] =
      std::from_chars(checksum_token.data(),
                      checksum_token.data() + checksum_token.size(),
                      expected, 16);
  if (checksum_ec != std::errc() ||
      checksum_end != checksum_token.data() + checksum_token.size() ||
      checksum_token.size() != 16 || !checksum_line.empty()) {
    return Corrupt("malformed checksum line");
  }
  const std::string_view body = text.substr(0, checksum_at);
  if (Fnv1a64(body) != expected) {
    return Corrupt("checksum mismatch (torn or tampered snapshot)");
  }

  ServiceCheckpoint checkpoint;
  std::unordered_set<std::string> seen;
  size_t declared_feeds = 0;
  int line_no = 0;
  size_t pos = 0;
  while (pos < body.size()) {
    const size_t eol = body.find('\n', pos);
    std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line_no == 1) {
      std::string_view magic = NextToken(&line);
      FRT_ASSIGN_OR_RETURN(const uint64_t version,
                           ParseU64Token(NextToken(&line), "version"));
      if (magic != kMagic || !line.empty()) {
        return Corrupt("bad magic '" + std::string(magic) + "'");
      }
      if (version != static_cast<uint64_t>(kVersion)) {
        return Corrupt("unsupported version " + std::to_string(version));
      }
      continue;
    }
    const std::string_view key = NextToken(&line);
    if (key == "seq") {
      FRT_ASSIGN_OR_RETURN(checkpoint.sequence,
                           ParseU64Token(NextToken(&line), "sequence"));
    } else if (key == "budgets") {
      FRT_ASSIGN_OR_RETURN(
          checkpoint.total_budget,
          ParseDoubleToken(NextToken(&line), "total budget"));
      FRT_ASSIGN_OR_RETURN(
          checkpoint.per_object_budget,
          ParseDoubleToken(NextToken(&line), "per-object budget"));
    } else if (key == "feeds") {
      FRT_ASSIGN_OR_RETURN(declared_feeds,
                           ParseU64Token(NextToken(&line), "feed count"));
    } else if (key == "feed") {
      FeedCheckpoint feed;
      FRT_ASSIGN_OR_RETURN(feed.generations,
                           ParseU64Token(NextToken(&line), "generations"));
      FRT_ASSIGN_OR_RETURN(
          feed.windows_closed,
          ParseU64Token(NextToken(&line), "windows_closed"));
      FRT_ASSIGN_OR_RETURN(
          feed.wholesale_spent,
          ParseDoubleToken(NextToken(&line), "wholesale spend"));
      FRT_ASSIGN_OR_RETURN(
          feed.per_object_floor,
          ParseDoubleToken(NextToken(&line), "per-object floor"));
      feed.feed = std::string(line);  // remainder, spaces allowed
      if (feed.feed.empty()) return Corrupt("feed entry without a name");
      if (feed.wholesale_spent < 0.0 || feed.per_object_floor < 0.0) {
        return Corrupt("negative spend for feed '" + feed.feed + "'");
      }
      if (!seen.insert(feed.feed).second) {
        return Corrupt("duplicate feed '" + feed.feed + "'");
      }
      checkpoint.feeds.push_back(std::move(feed));
    } else {
      return Corrupt("unknown record '" + std::string(key) + "'");
    }
    if (!line.empty() && key != "feed") {
      return Corrupt("trailing garbage on '" + std::string(key) + "' line");
    }
  }
  if (line_no < 4) return Corrupt("truncated header");
  if (checkpoint.feeds.size() != declared_feeds) {
    return Corrupt("feed count mismatch: declared " +
                   std::to_string(declared_feeds) + ", found " +
                   std::to_string(checkpoint.feeds.size()));
  }
  return checkpoint;
}

CheckpointStore::CheckpointStore(std::string dir)
    : dir_(std::move(dir)),
      path_(dir_ + "/" + kSnapshotFile),
      tmp_path_(path_ + ".tmp") {}

Result<CheckpointStore> CheckpointStore::Open(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("checkpoint state dir must not be empty");
  }
  // mkdir -p: create every missing component so `--state-dir a/b/c` works
  // on first boot.
  for (size_t slash = dir.find('/', 1); slash != std::string::npos;
       slash = dir.find('/', slash + 1)) {
    const std::string prefix = dir.substr(0, slash);
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::IOError("cannot create state dir " + prefix + ": " +
                             std::strerror(errno));
    }
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create state dir " + dir + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("state dir " + dir + " is not a directory");
  }
  return CheckpointStore(dir);
}

Result<std::optional<ServiceCheckpoint>> CheckpointStore::Load() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) {
    if (errno == ENOENT) return std::optional<ServiceCheckpoint>();
    return Status::IOError("cannot read checkpoint " + path_ + ": " +
                           std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed on checkpoint " + path_);
  }
  FRT_ASSIGN_OR_RETURN(ServiceCheckpoint checkpoint,
                       DecodeCheckpoint(buffer.str()));
  return std::optional<ServiceCheckpoint>(std::move(checkpoint));
}

Status CheckpointStore::Write(const ServiceCheckpoint& checkpoint) {
  obs::ScopedSpan span("checkpoint_write", obs::SpanCategory::kDurability);
  const std::string text = EncodeCheckpoint(checkpoint);
  // Write-to-temp + fsync + rename + directory fsync: the visible snapshot
  // is always a complete old or complete new image, never a torn write.
  const int fd = ::open(tmp_path_.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create " + tmp_path_ + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp_path_.c_str());
      return Status::IOError("write failed on " + tmp_path_ + ": " + err);
    }
    written += static_cast<size_t>(n);
  }
  // fdatasync: data plus the size metadata needed to read it back is all
  // the rename depends on; the temp file's other metadata is irrelevant.
  const auto fsync_start = std::chrono::steady_clock::now();
  if (::fdatasync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp_path_.c_str());
    return Status::IOError("fdatasync failed on " + tmp_path_ + ": " + err);
  }
  obs::EmitSpan("fsync", obs::SpanCategory::kDurability, {}, fsync_start,
                std::chrono::steady_clock::now());
  if (::close(fd) != 0) {
    ::unlink(tmp_path_.c_str());
    return Status::IOError("close failed on " + tmp_path_ + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp_path_.c_str());
    return Status::IOError("rename to " + path_ + " failed: " + err);
  }
  // Make the rename itself durable. A failure here means the snapshot
  // may vanish on power loss even though the rename is visible — the
  // caller must treat the write as NOT durable.
  return SyncDir();
}

Status CheckpointStore::SyncDir() const {
  const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    return Status::IOError("cannot open state dir " + dir_ +
                           " for fsync: " + std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(dir_fd);
    return Status::IOError("fsync failed on state dir " + dir_ + ": " + err);
  }
  if (::close(dir_fd) != 0) {
    return Status::IOError("close failed on state dir " + dir_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace frt
