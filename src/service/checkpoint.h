// Durable budget-ledger checkpoints for the serving layer.
//
// The paper's guarantee (Theorem 1, sequential composition) only holds if
// spent epsilon is never forgotten: a service that loses its
// PrivacyAccountant / ObjectBudgetAccountant state on restart silently
// re-grants budget that was already spent — a privacy bug, not an ops gap.
// This module makes the per-feed ledgers durable:
//
//   - ServiceCheckpoint / FeedCheckpoint: the snapshot image. Per feed it
//     carries exactly the state FeedBudgetCarry already hands across idle
//     eviction — the wholesale spent total, the conservative per-object
//     floor (the maximum per-object spend; every object of a recovered
//     feed is assumed to have spent it, via
//     ObjectBudgetAccountant::PreloadFloor), the cumulative window count,
//     and the session-generation counter. Recovery therefore flows through
//     the SAME conservative-carry path eviction uses
//     (PrivacyAccountant::PreloadSpent / PreloadFloor): a crash can only
//     under-grant remaining budget, never over-grant.
//
//   - Encode/Decode: a versioned, line-oriented text format ending in an
//     FNV-1a 64 checksum line. Decoding is strict — wrong magic, missing
//     fields, trailing garbage, a truncated tail, or a checksum mismatch
//     all fail — so a torn or corrupted snapshot is rejected instead of
//     silently seeding wrong ledgers.
//
//   - CheckpointStore: atomic persistence. Write() serializes to
//     <dir>/budget_ledgers.ckpt.tmp, fsyncs the file, renames it over
//     <dir>/budget_ledgers.ckpt, and fsyncs the directory, so the snapshot
//     on disk is always a complete old or complete new image. Load()
//     returns nullopt when no snapshot exists (first boot) and an error
//     for unreadable/corrupt snapshots.
//
// Write-ahead discipline (enforced by ServiceDispatcher, documented here
// because the format is the contract): a snapshot covering a window's
// spend is made durable BEFORE that window's output is handed to the
// sink. Whatever the crash point, the ledger state on disk is then always
// >= the epsilon actually published, which is exactly the invariant the
// kill-recover tests assert.

#ifndef FRT_SERVICE_CHECKPOINT_H_
#define FRT_SERVICE_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace frt {

/// One feed's durable budget state — the same fields FeedBudgetCarry
/// hands from an evicted session to its successor.
struct FeedCheckpoint {
  std::string feed;
  /// Session generations created so far; a recovered feed's next session
  /// continues the count (fresh RNG stream, continued window indices).
  uint64_t generations = 0;
  /// Windows closed across all generations (window indices keep rising).
  uint64_t windows_closed = 0;
  /// Exact wholesale ledger total (PrivacyAccountant::spent()).
  double wholesale_spent = 0.0;
  /// Maximum per-object cumulative spend
  /// (ObjectBudgetAccountant::max_spent()) — the conservative floor every
  /// object of the recovered feed starts at.
  double per_object_floor = 0.0;
};

/// A whole service snapshot: every feed's ledger state plus the budget
/// configuration it was taken under (recorded for diagnostics; recovery
/// carries spend regardless — spent epsilon stays spent even if the
/// operator changes budgets across the restart).
struct ServiceCheckpoint {
  /// Monotone snapshot counter; survives restarts (recovery resumes it).
  uint64_t sequence = 0;
  double total_budget = 0.0;
  double per_object_budget = 0.0;
  std::vector<FeedCheckpoint> feeds;
};

/// \brief Serializes a snapshot into the versioned text format, checksum
/// line included.
std::string EncodeCheckpoint(const ServiceCheckpoint& checkpoint);

/// \brief Strictly parses a snapshot. Any deviation — bad magic/version,
/// malformed numbers, duplicate feeds, truncation before the checksum
/// line, checksum mismatch, bytes after the checksum — is an error.
Result<ServiceCheckpoint> DecodeCheckpoint(std::string_view text);

/// \brief Atomic snapshot persistence in one state directory (see file
/// comment). Not thread-safe; the dispatcher thread owns it.
class CheckpointStore {
 public:
  /// \brief Opens (creating if needed) the state directory.
  static Result<CheckpointStore> Open(const std::string& dir);

  /// \brief Reads and verifies the current snapshot. nullopt when none
  /// exists yet; an error when one exists but cannot be trusted.
  Result<std::optional<ServiceCheckpoint>> Load() const;

  /// \brief Durably replaces the snapshot: write temp, fsync, atomic
  /// rename, fsync directory. Every step's failure — the directory
  /// fsync included — is an IOError: a rename that is not yet durable
  /// would silently void the write-ahead guarantee on power loss.
  Status Write(const ServiceCheckpoint& checkpoint);

  /// \brief Makes the latest rename durable: open + fsync + close of the
  /// state directory. Split out of Write() so the failure paths (a
  /// deleted or unreadable state directory) are testable directly.
  Status SyncDir() const;

  /// Snapshot path (<dir>/budget_ledgers.ckpt).
  const std::string& path() const { return path_; }

 private:
  explicit CheckpointStore(std::string dir);

  std::string dir_;
  std::string path_;
  std::string tmp_path_;
};

}  // namespace frt

#endif  // FRT_SERVICE_CHECKPOINT_H_
