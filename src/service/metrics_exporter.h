// Interval metrics exporter for the serving layer.
//
// Follows the LDMS sampler / storage-policy split: the data-plane thread
// (the ServiceDispatcher's dispatcher thread, or a CLI's sink callback)
// PUBLISHES point-in-time MetricsSnapshots — plain structs it can build
// from state it already owns, with no locks on the hot path beyond one
// swap — and a dedicated exporter thread STORES them: every interval it
// formats the latest snapshot as one machine-readable `frt_metrics`
// key=value line (plus optional `frt_feed` per-feed lines) and appends it
// to a file or stderr. A slow disk therefore never backpressures the
// dispatcher, and a wedged dispatcher is still visible (the exporter
// re-emits the last snapshot with a fresh timestamp, so consumers can
// alert on a stale `seq`).
//
// Line format (stable, parse-with-awk friendly; one record per line):
//
//   frt_metrics ts_ms=<unix ms> seq=<n> uptime_ms=... feeds=...
//     active_sessions=... queue_depth=... backlog_windows=... in_flight=...
//     windows_closed=... windows_published=... windows_refused=...
//     windows_deadline_closed=... trajs_in=... trajs_published=...
//     feeds_quarantined=... publish_per_s=<delta throughput>
//     close_wait_p50_ms=...
//     close_wait_p99_ms=... publish_p50_ms=... publish_p99_ms=...
//     eps_spent_max=... ckpt_seq=... ckpt_age_ms=... ckpt_written=...
//     ckpt_errors=...
//
//   frt_feed ts_ms=... feed=<id> eps_spent=... eps_remaining=...
//     windows_published=... windows_refused=...
//
// With Options::histograms, one per-stage line per interval and stage
// (close_wait, queue_wait, anonymize, publish, sink, checkpoint), read
// out of the dispatcher's bounded obs::Histogram instances — cumulative
// over the run, exact counts, ~1.6% quantile error:
//
//   frt_stage ts_ms=... stage=<name> count=<samples> p50_ms=...
//     p99_ms=... max_ms=... mean_ms=...
//
// `publish_per_s` is computed by the exporter from consecutive snapshots
// (delta trajectories / delta uptime), so the publisher only ever reports
// monotone counters — the LDMS rule that samplers sample and storage
// policies derive.

#ifndef FRT_SERVICE_METRICS_EXPORTER_H_
#define FRT_SERVICE_METRICS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"

namespace frt {

/// Point-in-time view of the service, built by the data-plane thread.
struct MetricsSnapshot {
  /// Publisher-side monotone sequence; lets consumers detect a stalled
  /// data plane under a live exporter.
  uint64_t seq = 0;
  /// Milliseconds since the service started.
  int64_t uptime_ms = 0;
  size_t feeds = 0;
  size_t active_sessions = 0;
  size_t queue_depth = 0;       ///< arrival queue occupancy
  size_t backlog_windows = 0;   ///< closed-but-unsubmitted windows
  size_t in_flight = 0;         ///< window jobs on the pool
  size_t windows_closed = 0;
  size_t windows_published = 0;
  size_t windows_refused = 0;
  size_t windows_deadline_closed = 0;
  size_t trajectories_in = 0;
  size_t trajectories_published = 0;
  /// Feeds quarantined so far (malformed input / per-feed faults).
  size_t feeds_quarantined = 0;
  double close_wait_p50_ms = 0.0;
  double close_wait_p99_ms = 0.0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  /// Largest per-feed guarantee so far (max over feeds of the feed's
  /// epsilon_spent — wholesale total or max per-object spend).
  double epsilon_spent_max = 0.0;
  /// Durability lag: sequence/age of the last durable snapshot, and how
  /// many were written. Zero/negative age when checkpointing is off.
  uint64_t checkpoint_seq = 0;
  double checkpoint_age_ms = -1.0;
  size_t checkpoints_written = 0;
  /// Failed snapshot writes (each aborts the run; non-zero explains an
  /// unexpected exit).
  size_t checkpoint_errors = 0;

  struct Feed {
    std::string feed;
    double epsilon_spent = 0.0;
    /// Remaining budget; +inf when the feed's ledger is not enforcing.
    double epsilon_remaining = 0.0;
    size_t windows_published = 0;
    size_t windows_refused = 0;
  };
  /// Per-feed detail (emitted as `frt_feed` lines when enabled).
  std::vector<Feed> feeds_detail;

  struct Stage {
    std::string stage;
    uint64_t count = 0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    double mean_ms = 0.0;
  };
  /// Per-stage latency detail (emitted as `frt_stage` lines when
  /// enabled), read from the publisher's histograms.
  std::vector<Stage> stages;
};

/// \brief Interval exporter thread (see file comment). Start() spawns it,
/// Stop() flushes a final line and joins; Publish() may be called from any
/// thread.
class MetricsExporter {
 public:
  struct Options {
    /// Output: a file path (appended, created if missing) or "-" for
    /// stderr.
    std::string path;
    /// Emission interval.
    int64_t interval_ms = 1000;
    /// Also emit one `frt_feed` line per feed each interval. Off by
    /// default: with tens of thousands of feeds the per-feed lines
    /// dominate the file.
    bool per_feed = false;
    /// Also emit one `frt_stage` histogram line per stage each interval.
    bool histograms = false;
  };

  explicit MetricsExporter(Options options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// \brief Opens the output and spawns the exporter thread.
  Status Start();

  /// \brief Replaces the latest snapshot (cheap: one lock + swap).
  void Publish(MetricsSnapshot snapshot);

  /// \brief Joins the exporter thread, then synchronously emits one final
  /// line for the latest snapshot — the file always ends with the
  /// end-of-run state, even when the last Publish landed mid-interval
  /// (publishers must be quiesced before Stop, which every caller's
  /// shutdown order guarantees). Idempotent.
  void Stop();

  /// Milliseconds between emitted lines.
  int64_t interval_ms() const {
    return interval_ms_.load(std::memory_order_relaxed);
  }

  /// \brief Changes the emission interval at runtime (admin /control).
  /// Takes effect after the wait already in progress — at most one stale
  /// interval.
  void SetIntervalMs(int64_t ms);

  /// Whether per-feed `frt_feed` lines are emitted — publishers may skip
  /// building feeds_detail otherwise.
  bool per_feed() const { return options_.per_feed; }

  /// Whether per-stage `frt_stage` lines are emitted — publishers may
  /// skip building stages otherwise.
  bool histograms() const { return options_.histograms; }

  /// Lines written so far (tests).
  size_t lines_written() const;

 private:
  void Loop();
  /// Formats and appends one line set for `snapshot`. Returns false on a
  /// write error (reported once to stderr; the exporter then stops
  /// writing but never takes the service down — metrics are diagnostics,
  /// not data).
  bool Emit(const MetricsSnapshot& snapshot);

  Options options_;
  std::atomic<int64_t> interval_ms_{1000};
  std::FILE* out_ = nullptr;
  bool owns_out_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  MetricsSnapshot latest_;
  bool has_snapshot_ = false;
  bool stop_ = false;
  bool writable_ = true;  ///< cleared after the first write error
  size_t lines_written_ = 0;

  // Exporter-thread state for delta throughput.
  bool have_prev_ = false;
  size_t prev_published_ = 0;
  int64_t prev_uptime_ms_ = 0;

  std::thread thread_;
  bool started_ = false;
};

}  // namespace frt

#endif  // FRT_SERVICE_METRICS_EXPORTER_H_
