#include "service/dispatcher.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "runtime/batch_runner.h"

namespace frt {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// How often the dispatcher checks the completion queue while jobs are in
/// flight and no arrival wakes it sooner. Window jobs are tens of
/// milliseconds, so a 1 ms poll adds negligible latency and negligible
/// load to the single consumer thread.
constexpr std::chrono::milliseconds kCompletionPoll(1);

/// Folds one session generation's report into a feed's running totals.
/// Counters sum; epsilon fields take the newer generation's values (its
/// accountants were preloaded with the predecessors' spend, so they are
/// already cumulative); the bounded window history appends.
void MergeStreamReport(StreamReport* into, const StreamReport& from,
                       size_t max_window_reports) {
  into->windows_closed += from.windows_closed;
  into->windows_published += from.windows_published;
  into->windows_refused += from.windows_refused;
  into->windows_deadline_closed += from.windows_deadline_closed;
  into->trajectories_in += from.trajectories_in;
  into->trajectories_published += from.trajectories_published;
  into->trajectories_refused += from.trajectories_refused;
  into->trajectories_evicted += from.trajectories_evicted;
  into->epsilon_spent = from.epsilon_spent;
  into->epsilon_wholesale_equivalent = from.epsilon_wholesale_equivalent;
  into->windows.insert(into->windows.end(), from.windows.begin(),
                       from.windows.end());
  if (max_window_reports > 0 && into->windows.size() > max_window_reports) {
    into->windows.erase(into->windows.begin(),
                        into->windows.end() -
                            static_cast<ptrdiff_t>(max_window_reports));
  }
}

}  // namespace

bool ServiceHadRefusals(const ServiceReport& report) {
  return report.windows_refused > 0 || report.trajectories_evicted > 0;
}

ServiceDispatcher::ServiceDispatcher(ServiceConfig config, ServiceSink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {
  // Normalize the window geometry exactly as StreamRunner does, then the
  // service-level knobs.
  if (config_.stream.window_size == 0) config_.stream.window_size = 1;
  if (config_.stream.window_stride == 0 ||
      config_.stream.window_stride > config_.stream.window_size) {
    config_.stream.window_stride = config_.stream.window_size;
  }
  if (config_.pool_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config_.pool_threads = std::max(2u, hw);
  }
  if (config_.max_in_flight == 0) {
    config_.max_in_flight = 2 * config_.pool_threads;
  }
  if (config_.arrival_queue_capacity == 0) {
    config_.arrival_queue_capacity = 4 * config_.stream.window_size;
  }
  if (config_.max_backlog_windows == 0) {
    config_.max_backlog_windows = 4 * config_.max_in_flight;
  }
  if (config_.max_latency_samples != (size_t{1} << 14)) {
    FRT_LOG(Warning)
        << "ServiceConfig::max_latency_samples is deprecated and ignored: "
           "latency aggregates use fixed-size histograms now (O(1) memory, "
           "always on)";
  }
  metrics_interval_ms_.store(std::max<int64_t>(config_.metrics_interval_ms, 1),
                             std::memory_order_relaxed);
  obs::Registry& reg = *config_.registry;
  ctr_sessions_created_ = reg.GetCounter(
      "frt_serve_sessions_created_total", "Feed sessions opened (all generations)");
  ctr_sessions_evicted_ = reg.GetCounter(
      "frt_serve_sessions_evicted_total", "Feed sessions idle-evicted");
  ctr_windows_closed_ = reg.GetCounter(
      "frt_serve_windows_closed_total", "Windows closed (count, deadline, or final)");
  ctr_windows_published_ = reg.GetCounter(
      "frt_serve_windows_published_total", "Windows anonymized and handed to the sink");
  ctr_windows_refused_ = reg.GetCounter(
      "frt_serve_windows_refused_total", "Windows refused by budget admission");
  ctr_windows_deadline_closed_ = reg.GetCounter(
      "frt_serve_windows_deadline_closed_total",
      "Windows closed by the close-after-ms deadline");
  ctr_trajectories_in_ = reg.GetCounter(
      "frt_serve_trajectories_in_total", "Trajectories routed into sessions");
  ctr_trajectories_published_ = reg.GetCounter(
      "frt_serve_trajectories_published_total", "Trajectories in published windows");
  ctr_feeds_quarantined_ = reg.GetCounter(
      "frt_serve_feeds_quarantined_total", "Feeds quarantined by per-feed faults");
  ctr_checkpoints_written_ = reg.GetCounter(
      "frt_serve_checkpoints_written_total", "Durable ledger snapshots written");
  ctr_checkpoint_errors_ = reg.GetCounter(
      "frt_serve_checkpoint_errors_total", "Failed ledger snapshot writes");
  g_active_sessions_ = reg.GetGauge(
      "frt_serve_active_sessions", "Feed sessions currently live");
  g_queue_depth_ = reg.GetGauge(
      "frt_serve_queue_depth", "Arrival queue occupancy");
  g_backlog_windows_ = reg.GetGauge(
      "frt_serve_backlog_windows", "Closed-but-unsubmitted windows");
  g_in_flight_ = reg.GetGauge(
      "frt_serve_in_flight", "Window jobs on the pool");
  g_feeds_ = reg.GetGauge("frt_serve_feeds", "Feeds ever seen");
  g_eps_spent_max_ = reg.GetGauge(
      "frt_serve_eps_spent_max", "Largest per-feed epsilon spent so far");
  const auto stage_cell = [&reg](std::string_view stage) {
    return reg.GetHistogram(
        obs::WithLabel("frt_stage_ms", "stage", stage),
        "Per-stage latency (ms) across the whole process");
  };
  cell_close_wait_ = stage_cell("close_wait");
  cell_publish_ = stage_cell("publish");
  cell_queue_wait_ = stage_cell("queue_wait");
  cell_anonymize_ = stage_cell("anonymize");
  cell_checkpoint_ = stage_cell("checkpoint");
  cell_sink_ = stage_cell("sink");
}

ServiceDispatcher::~ServiceDispatcher() {
  if (started_ && !finished_) (void)Finish();
}

Status ServiceDispatcher::Start(uint64_t seed) {
  if (started_) return Status::FailedPrecondition("service already started");
  master_seed_ = seed;
  if (!config_.state_dir.empty()) {
    // Open the store and recover BEFORE the dispatcher thread exists: a
    // corrupt snapshot must fail the start (running without the recovered
    // spend would re-grant budget), and the recovered slots are handed to
    // the thread through its creation.
    Result<CheckpointStore> store = CheckpointStore::Open(config_.state_dir);
    if (!store.ok()) return store.status();
    store_.emplace(*std::move(store));
    FRT_ASSIGN_OR_RETURN(std::optional<ServiceCheckpoint> snapshot,
                         store_->Load());
    if (snapshot.has_value()) {
      checkpoint_seq_ = snapshot->sequence;
      for (FeedCheckpoint& feed : snapshot->feeds) {
        FeedSlot& slot = feeds_[feed.feed];
        feed_order_.push_back(feed.feed);
        // The recovered feed looks exactly like an idle-evicted one: its
        // first arrival opens the next session generation, whose
        // constructor preloads this carry through PreloadSpent /
        // PreloadFloor — recovery can only under-grant, never over-grant.
        slot.generations = feed.generations;
        slot.carry.wholesale_spent = feed.wholesale_spent;
        slot.carry.per_object_floor = feed.per_object_floor;
        slot.carry.windows_closed =
            static_cast<size_t>(feed.windows_closed);
        slot.ever_evicted = true;
        // Surface the carried spend in reports even if the feed stays
        // dormant this run (a revived session's cumulative epsilon
        // overwrites these on merge).
        slot.merged.epsilon_spent =
            config_.stream.accounting == BudgetAccounting::kWholesale
                ? feed.wholesale_spent
                : feed.per_object_floor;
        slot.merged.epsilon_wholesale_equivalent = feed.wholesale_spent;
      }
      report_.feeds_recovered = snapshot->feeds.size();
    }
  }
  pool_ = std::make_unique<WorkStealingPool>(config_.pool_threads);
  arrivals_ =
      std::make_unique<BoundedQueue<Arrival>>(config_.arrival_queue_capacity);
  // Capacity == the in-flight cap, so a worker delivering a completion can
  // never block: at most max_in_flight completions exist at once.
  completions_ = std::make_unique<BoundedQueue<std::unique_ptr<Completion>>>(
      config_.max_in_flight);
  started_ = true;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  return Status::OK();
}

bool ServiceDispatcher::Offer(std::string feed, Trajectory t) {
  if (!started_) return false;
  Arrival arrival;
  arrival.feed = std::move(feed);
  arrival.trajectory = std::move(t);
  return arrivals_->Push(std::move(arrival));
}

bool ServiceDispatcher::OfferQuarantine(std::string feed,
                                        std::string reason) {
  if (!started_) return false;
  // Rides the arrival queue so it lands on the dispatcher thread in order
  // with the producer's earlier Offer() calls — the feed's already-queued
  // good arrivals are still routed before the fault takes effect.
  Arrival arrival;
  arrival.feed = std::move(feed);
  arrival.quarantine = true;
  arrival.reason = std::move(reason);
  return arrivals_->Push(std::move(arrival));
}

Status ServiceDispatcher::Finish() {
  if (!started_) return Status::FailedPrecondition("service never started");
  if (finished_) return error_;
  arrivals_->Close();
  dispatcher_.join();
  finished_ = true;
  return error_;
}

void ServiceDispatcher::Abort(Status status) {
  if (aborted_) return;
  aborted_ = true;
  error_ = std::move(status);
  // Fail ingress fast: producers blocked in Offer() observe the close and
  // stop; arrivals already queued are drained and discarded.
  arrivals_->Close();
}

void ServiceDispatcher::Route(Arrival&& arrival,
                              SteadyClock::time_point now) {
  auto [it, inserted] = feeds_.try_emplace(arrival.feed);
  FeedSlot& slot = it->second;
  if (inserted) feed_order_.push_back(arrival.feed);
  // A quarantined feed never revives: its stream already proved
  // untrustworthy, so everything it sends after the fault is dropped.
  if (slot.quarantined) return;
  if (!slot.session) {
    // Generation 0, or a revival of an idle-evicted feed: the carry
    // preloads the predecessor's budget state conservatively.
    slot.session = std::make_unique<FeedSession>(
        arrival.feed, config_.stream, master_seed_, slot.generations,
        slot.carry);
    ++slot.generations;
    // Generation bumps must be durable (a successor session's RNG stream
    // derives from them); an interval snapshot picks this up.
    ledger_dirty_ = true;
    ++report_.sessions_created;
    ctr_sessions_created_->Inc();
    ++active_sessions_;
    report_.peak_active_sessions =
        std::max(report_.peak_active_sessions, active_sessions_);
  }
  if (!slot.in_live_order) {
    slot.in_live_order = true;
    live_order_.push_back(arrival.feed);
  }
  const std::string feed = arrival.feed;
  slot.session->set_evict_when_drained(false);  // the feed is live again
  slot.session->Offer(std::move(arrival.trajectory), now);
  ctr_trajectories_in_->Inc();
  while (slot.session && slot.session->WindowReady()) {
    if (!CloseSessionWindow(feed, slot, WindowClose::kCount, now)) return;
  }
  ArmDeadline(feed, slot);
}

std::optional<SteadyClock::time_point> ServiceDispatcher::EffectiveDeadline(
    const FeedSlot& slot) const {
  if (!slot.session || slot.quarantined) return std::nullopt;
  std::optional<SteadyClock::time_point> deadline =
      slot.session->CloseDeadline();
  if (config_.idle_evict_ms > 0 && !slot.session->evict_when_drained()) {
    const SteadyClock::time_point idle_at =
        slot.session->last_arrival() +
        std::chrono::milliseconds(config_.idle_evict_ms);
    deadline = deadline.has_value() ? std::min(*deadline, idle_at) : idle_at;
  }
  return deadline;
}

void ServiceDispatcher::ArmDeadline(const std::string& feed,
                                    FeedSlot& slot) {
  const std::optional<SteadyClock::time_point> deadline =
      EffectiveDeadline(slot);
  if (!deadline.has_value() || *deadline >= slot.armed_deadline) return;
  slot.armed_deadline = *deadline;
  deadlines_.push(DeadlineEntry{*deadline, feed});
}

void ServiceDispatcher::ProcessDueDeadlines(SteadyClock::time_point now) {
  while (!deadlines_.empty() && deadlines_.top().when <= now) {
    const DeadlineEntry entry = deadlines_.top();
    deadlines_.pop();
    const auto it = feeds_.find(entry.feed);
    if (it == feeds_.end()) continue;
    FeedSlot& slot = it->second;
    // Only the entry the slot considers armed is live; anything else was
    // superseded by a smaller push and that smaller entry will serve the
    // feed.
    if (entry.when != slot.armed_deadline) continue;
    slot.armed_deadline = SteadyClock::time_point::max();
    if (!slot.session || slot.quarantined) continue;
    if (config_.stream.close_after_ms > 0) {
      const auto close_deadline = slot.session->CloseDeadline();
      if (close_deadline.has_value() && now >= *close_deadline) {
        if (!CloseSessionWindow(entry.feed, slot, WindowClose::kDeadline,
                                now)) {
          continue;
        }
      }
    }
    if (config_.idle_evict_ms > 0 && !slot.session->evict_when_drained() &&
        now - slot.session->last_arrival() >=
            std::chrono::milliseconds(config_.idle_evict_ms)) {
      // Flush the trailing partial window first — eviction publishes, it
      // never drops.
      if (slot.session->uncovered() > 0) {
        if (!CloseSessionWindow(entry.feed, slot, WindowClose::kFinal,
                                now)) {
          continue;
        }
      }
      if (slot.session->Drained()) {
        EvictSession(&slot);
      } else {
        slot.session->set_evict_when_drained(true);
      }
    }
    if (slot.session && !slot.quarantined) ArmDeadline(entry.feed, slot);
  }
}

bool ServiceDispatcher::CloseSessionWindow(const std::string& feed,
                                           FeedSlot& slot,
                                           WindowClose reason,
                                           SteadyClock::time_point now) {
  if (Status st = slot.session->CloseWindow(reason, now); !st.ok()) {
    QuarantineFeed(feed, st.ToString());
    return false;
  }
  ++backlog_windows_;
  ctr_windows_closed_->Inc();
  if (reason == WindowClose::kDeadline) ctr_windows_deadline_closed_->Inc();
  return true;
}

void ServiceDispatcher::QuarantineFeed(const std::string& feed,
                                       std::string reason) {
  auto [it, inserted] = feeds_.try_emplace(feed);
  FeedSlot& slot = it->second;
  if (inserted) feed_order_.push_back(feed);
  if (slot.quarantined) return;  // first fault wins
  slot.quarantined = true;
  slot.quarantine_reason = std::move(reason);
  ctr_feeds_quarantined_->Inc();
  slot.armed_deadline = SteadyClock::time_point::max();
  live_order_dirty_ = true;
  FRT_LOG(Warning) << "service: quarantined feed '" << feed
                   << "': " << slot.quarantine_reason;
  if (slot.session) {
    // Tear the session down, keeping what it already did for the final
    // report. The backlog is dropped (its windows never execute); spend
    // already charged stays charged, same rule as every discard path. An
    // in-flight job is self-contained and its completion is ignored.
    backlog_windows_ -= slot.session->backlog_size();
    MergeStreamReport(&slot.merged, slot.session->report(),
                      config_.stream.max_window_reports);
    slot.carry = slot.session->Carry();
    slot.session.reset();
    ledger_dirty_ = true;
    --active_sessions_;
  }
}

void ServiceDispatcher::EvictSession(FeedSlot* slot) {
  MergeStreamReport(&slot->merged, slot->session->report(),
                    config_.stream.max_window_reports);
  slot->carry = slot->session->Carry();
  slot->ever_evicted = true;
  slot->session.reset();
  slot->armed_deadline = SteadyClock::time_point::max();
  live_order_dirty_ = true;
  ledger_dirty_ = true;
  ++report_.sessions_evicted;
  ctr_sessions_evicted_->Inc();
  --active_sessions_;
}

void ServiceDispatcher::SubmitReady() {
  if (aborted_) return;
  // The running counter makes the no-work case O(1): with no closed
  // window waiting anywhere there is nothing to submit, no refusal to
  // notice, and no refusal-drained session to evict (those are handled
  // where their last job lands, in FlushPublishes), so the per-feed scan
  // below — O(live feeds) — is skipped entirely. Arrivals on one hot
  // feed no longer pay for thousands of dormant siblings.
  if (backlog_windows_ == 0) return;
  // Lazy compaction: drop entries whose session died (evicted or
  // quarantined) since the last scan, so the scan length tracks LIVE
  // feeds — a service that has seen 10k feeds but serves 20 pays for 20.
  if (live_order_dirty_) {
    // Keep the rotation anchored on the same feed across the compaction.
    const std::string anchor =
        live_order_.empty() ? std::string()
                            : live_order_[submit_rr_ % live_order_.size()];
    live_order_.erase(
        std::remove_if(live_order_.begin(), live_order_.end(),
                       [this](const std::string& name) {
                         FeedSlot& slot = feeds_.at(name);
                         const bool dead =
                             !slot.session || slot.quarantined;
                         if (dead) slot.in_live_order = false;
                         return dead;
                       }),
        live_order_.end());
    live_order_dirty_ = false;
    submit_rr_ = 0;
    for (size_t i = 0; i < live_order_.size(); ++i) {
      if (live_order_[i] == anchor) {
        submit_rr_ = i;
        break;
      }
    }
  }
  if (live_order_.empty()) return;
  // The scan starts where the last one granted its final slot: feeds that
  // were served rotate to the back, so scarce in-flight slots cycle
  // round-robin over the backlogged feeds instead of re-serving the
  // front of the list every call.
  const size_t n = live_order_.size();
  size_t last_granted = submit_rr_;
  bool granted = false;
  for (size_t k = 0; k < n; ++k) {
    if (in_flight_ >= config_.max_in_flight) break;
    const size_t pos = (submit_rr_ + k) % n;
    const std::string& name = live_order_[pos];
    FeedSlot& slot = feeds_.at(name);
    if (!slot.session || slot.quarantined) continue;  // died mid-scan
    const size_t backlog_before = slot.session->backlog_size();
    std::optional<WindowJob> job = slot.session->NextSubmittable();
    // Admission refusals and the submission both shrink the backlog; the
    // running counter absorbs whatever NextSubmittable consumed.
    const size_t consumed = backlog_before - slot.session->backlog_size();
    backlog_windows_ -= consumed;
    // Whatever NextSubmittable consumed beyond the granted job (if any)
    // was refused by budget admission.
    if (const size_t refused = consumed - (job.has_value() ? 1 : 0);
        refused > 0) {
      ctr_windows_refused_->Inc(refused);
    }
    if (config_.stream.stop_when_exhausted && !stopping_ &&
        slot.session->had_refusals()) {
      // End service at the first refusal (mirrors StreamRunner's
      // stop_when_exhausted): stop ingesting, drain what already closed,
      // finish cleanly.
      stopping_ = true;
      arrivals_->Close();
    }
    if (!job.has_value()) {
      // The backlog may have just drained through admission refusals (no
      // completion will fire): an eviction waiting on that drain runs now.
      if (slot.session->evict_when_drained() && slot.session->Drained()) {
        EvictSession(&slot);
      }
      continue;
    }
    ++in_flight_;
    granted = true;
    last_granted = pos;
    // The job is self-contained: the worker touches nothing owned by the
    // session (which could be evicted only when drained — and it is busy
    // now, so it cannot drain before this completion lands).
    auto shared_job = std::make_shared<WindowJob>(std::move(*job));
    BatchRunnerConfig batch_config = config_.stream.batch;
    // Window jobs run single-threaded: the service's parallelism is
    // across windows of distinct feeds, not within one window. Sharding
    // still applies (smaller per-shard candidate sets), executed inline.
    batch_config.pool = nullptr;
    batch_config.dispatch = ShardDispatch::kStatic;
    batch_config.threads = 1;
    BoundedQueue<std::unique_ptr<Completion>>* completions =
        completions_.get();
    pool_->Submit([shared_job, completions, batch_config] {
      auto completion = std::make_unique<Completion>();
      const SteadyClock::time_point started = SteadyClock::now();
      // close -> pickup is the pool scheduling delay this feed paid.
      obs::EmitSpan("queue_wait", obs::SpanCategory::kQueue,
                    shared_job->feed, shared_job->closed_at, started);
      BatchRunner runner(batch_config);
      completion->published =
          runner.Anonymize(shared_job->window, shared_job->rng);
      const SteadyClock::time_point ended = SteadyClock::now();
      obs::EmitSpan("anonymize", obs::SpanCategory::kAnonymize,
                    shared_job->feed, started, ended);
      completion->started_at = started;
      completion->run_ms =
          std::chrono::duration<double, std::milli>(ended - started)
              .count();
      completion->batch = runner.report();
      completion->job = std::move(*shared_job);
      completion->job.window = Dataset();  // the copy has served its purpose
      completions->Push(std::move(completion));
    });
  }
  // A scan that granted nothing keeps its anchor — rotating on empty
  // scans would shuffle the order without serving anyone.
  if (granted) submit_rr_ = (last_granted + 1) % n;
}

void ServiceDispatcher::AbsorbCompletion(
    std::unique_ptr<Completion> completion) {
  --in_flight_;
  FeedSlot& slot = feeds_.at(completion->job.feed);
  if (!slot.session) {
    // The feed was quarantined while this job was in flight; the session
    // is gone and the result is discarded (spend already merged into the
    // slot's carry at teardown).
    return;
  }
  FeedSession& session = *slot.session;
  if (aborted_) {
    session.Abandon();
    return;
  }
  if (!completion->published.ok()) {
    // A failed window pipeline poisons only its own feed: quarantine it
    // and keep serving the siblings.
    session.Abandon();
    QuarantineFeed(completion->job.feed,
                   completion->published.status().ToString());
    return;
  }
  const SteadyClock::time_point now = SteadyClock::now();
  const double publish_ms =
      std::chrono::duration<double, std::milli>(now -
                                                completion->job.closed_at)
          .count();
  // The whole close -> published interval, attributed to the feed.
  obs::EmitSpan("publish", obs::SpanCategory::kPublish,
                completion->job.feed, completion->job.closed_at, now);
  Result<WindowReport> window_report = session.Complete(
      completion->job, *completion->published, completion->batch,
      publish_ms);
  if (!window_report.ok()) {
    QuarantineFeed(completion->job.feed, window_report.status().ToString());
    return;
  }
  ledger_dirty_ = true;  // Complete() charged the accountants
  const double queue_wait_ms =
      std::chrono::duration<double, std::milli>(completion->started_at -
                                                completion->job.closed_at)
          .count();
  close_wait_hist_.Record(completion->job.close_wait_ms);
  publish_hist_.Record(publish_ms);
  queue_wait_hist_.Record(queue_wait_ms);
  anonymize_hist_.Record(completion->run_ms);
  cell_close_wait_->Record(completion->job.close_wait_ms);
  cell_publish_->Record(publish_ms);
  cell_queue_wait_->Record(queue_wait_ms);
  cell_anonymize_->Record(completion->run_ms);
  slot.close_wait_hist.Record(completion->job.close_wait_ms);
  slot.publish_hist.Record(publish_ms);
  // The spend is charged; the output waits in pending_ until
  // FlushPublishes has made a checkpoint covering it durable.
  PendingPublish pending;
  pending.feed = completion->job.feed;
  pending.published = *std::move(completion->published);
  pending.report = *window_report;
  pending_.push_back(std::move(pending));
}

void ServiceDispatcher::FlushPublishes() {
  if (pending_.empty()) return;
  if (aborted_) {
    // Outputs are discarded on abort; the budget above stays spent (same
    // rule as a failed sink: never publish what the ledger might not
    // cover, never refund what a worker already consumed).
    pending_.clear();
    return;
  }
  // Write-ahead: one durable snapshot covers every pending window's spend
  // (Complete() already charged it, so Carry() includes it). Only then may
  // the outputs leave the process. Batching amortizes the fsync across
  // every completion absorbed this round.
  if (store_.has_value()) {
    if (Status st = WriteCheckpointNow(); !st.ok()) {
      Abort(st);
      pending_.clear();
      return;
    }
  }
  for (PendingPublish& pending : pending_) {
    if (aborted_) break;
    FeedSlot& slot = feeds_.at(pending.feed);
    if (!slot.session) {
      // Quarantined after the window completed but before this flush: the
      // output is discarded (its spend stays charged and checkpointed).
      continue;
    }
    const SteadyClock::time_point sink_start = SteadyClock::now();
    if (Status st = sink_(pending.feed, pending.published, pending.report);
        !st.ok()) {
      Abort(st);
      break;
    }
    const SteadyClock::time_point sink_end = SteadyClock::now();
    obs::EmitSpan("sink", obs::SpanCategory::kPublish, pending.feed,
                  sink_start, sink_end);
    const double sink_ms =
        std::chrono::duration<double, std::milli>(sink_end - sink_start)
            .count();
    sink_hist_.Record(sink_ms);
    cell_sink_->Record(sink_ms);
    ctr_windows_published_->Inc();
    ctr_trajectories_published_->Inc(pending.report.trajectories);
    slot.session->RecordPublished(pending.report);
    if (slot.session->evict_when_drained() && slot.session->Drained()) {
      EvictSession(&slot);
    }
  }
  pending_.clear();
}

Status ServiceDispatcher::WriteCheckpointNow() {
  ServiceCheckpoint image;
  image.sequence = checkpoint_seq_ + 1;
  image.total_budget = config_.stream.total_budget;
  image.per_object_budget = config_.stream.per_object_budget;
  image.feeds.reserve(feed_order_.size());
  for (const auto& name : feed_order_) {
    const FeedSlot& slot = feeds_.at(name);
    FeedCheckpoint feed;
    feed.feed = name;
    feed.generations = slot.generations;
    const FeedBudgetCarry carry =
        slot.session ? slot.session->Carry() : slot.carry;
    feed.windows_closed = carry.windows_closed;
    feed.wholesale_spent = carry.wholesale_spent;
    feed.per_object_floor = carry.per_object_floor;
    image.feeds.push_back(std::move(feed));
  }
  const SteadyClock::time_point write_start = SteadyClock::now();
  if (Status st = store_->Write(image); !st.ok()) {
    // Counted before the abort so the last metrics tick shows WHY the
    // service died (satellite to the dir-fsync propagation fix).
    ++checkpoint_errors_;
    ctr_checkpoint_errors_->Inc();
    return st;
  }
  checkpoint_seq_ = image.sequence;
  ++checkpoints_written_;
  ctr_checkpoints_written_->Inc();
  ledger_dirty_ = false;
  last_checkpoint_ = SteadyClock::now();
  const double write_ms = std::chrono::duration<double, std::milli>(
                              last_checkpoint_ - write_start)
                              .count();
  checkpoint_hist_.Record(write_ms);
  cell_checkpoint_->Record(write_ms);
  return Status::OK();
}

void ServiceDispatcher::MaybeCheckpoint(SteadyClock::time_point now) {
  if (!store_.has_value() || !ledger_dirty_ || aborted_) return;
  if (now - last_checkpoint_ <
      std::chrono::milliseconds(std::max<int64_t>(
          config_.checkpoint_interval_ms, 1))) {
    return;
  }
  if (Status st = WriteCheckpointNow(); !st.ok()) Abort(st);
}

void ServiceDispatcher::MaybePublishMetrics(SteadyClock::time_point now) {
  // Runs with or without an exporter: the introspection board must tick
  // so /healthz staleness detection and /feedz stay live.
  if (now - last_metrics_ <
      std::chrono::milliseconds(
          metrics_interval_ms_.load(std::memory_order_relaxed))) {
    return;
  }
  PublishMetricsNow(now);
}

void ServiceDispatcher::PublishMetricsNow(SteadyClock::time_point now) {
  MetricsSnapshot s;
  auto intro = std::make_shared<ServiceIntrospection>();
  s.seq = ++metrics_seq_;
  s.uptime_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - started_at_)
                    .count();
  s.feeds = feed_order_.size();
  s.active_sessions = active_sessions_;
  s.queue_depth = arrivals_->size();
  s.in_flight = in_flight_;
  s.backlog_windows = backlog_windows_;
  s.checkpoint_errors = checkpoint_errors_;
  const bool per_feed =
      config_.metrics != nullptr && config_.metrics->per_feed();
  const double budget =
      config_.stream.accounting == BudgetAccounting::kWholesale
          ? config_.stream.total_budget
          : config_.stream.per_object_budget;
  intro->feeds_detail.reserve(feed_order_.size());
  for (const auto& name : feed_order_) {
    const FeedSlot& slot = feeds_.at(name);
    // Merged (evicted-generation) counters plus the live session's; the
    // live session's epsilon is already cumulative (its accountants were
    // preloaded with the predecessors' spend).
    size_t windows_closed = slot.merged.windows_closed;
    size_t windows_published = slot.merged.windows_published;
    size_t windows_refused = slot.merged.windows_refused;
    size_t windows_deadline = slot.merged.windows_deadline_closed;
    size_t trajectories_in = slot.merged.trajectories_in;
    size_t trajectories_published = slot.merged.trajectories_published;
    double epsilon_spent = slot.merged.epsilon_spent;
    if (slot.quarantined) ++s.feeds_quarantined;
    if (slot.session) {
      const StreamReport& live = slot.session->report();
      windows_closed += live.windows_closed;
      windows_published += live.windows_published;
      windows_refused += live.windows_refused;
      windows_deadline += live.windows_deadline_closed;
      trajectories_in += live.trajectories_in;
      trajectories_published += live.trajectories_published;
      epsilon_spent = live.epsilon_spent;
    }
    s.windows_closed += windows_closed;
    s.windows_published += windows_published;
    s.windows_refused += windows_refused;
    s.windows_deadline_closed += windows_deadline;
    s.trajectories_in += trajectories_in;
    s.trajectories_published += trajectories_published;
    s.epsilon_spent_max = std::max(s.epsilon_spent_max, epsilon_spent);
    // Same expression as the frt_feed lines — bit-identical on purpose,
    // so a shutdown /feedz scrape matches the final report exactly.
    const double epsilon_remaining =
        budget > 0.0 ? std::max(0.0, budget - epsilon_spent)
                     : std::numeric_limits<double>::infinity();
    if (per_feed) {
      MetricsSnapshot::Feed detail;
      detail.feed = name;
      detail.epsilon_spent = epsilon_spent;
      detail.epsilon_remaining = epsilon_remaining;
      detail.windows_published = windows_published;
      detail.windows_refused = windows_refused;
      s.feeds_detail.push_back(std::move(detail));
    }
    ServiceIntrospection::Feed feed;
    feed.feed = name;
    feed.epsilon_spent = epsilon_spent;
    feed.epsilon_remaining = epsilon_remaining;
    feed.windows_published = windows_published;
    feed.windows_refused = windows_refused;
    feed.backlog = slot.session ? slot.session->backlog_size() : 0;
    feed.quarantined = slot.quarantined;
    feed.quarantine_reason = slot.quarantine_reason;
    intro->feeds_detail.push_back(std::move(feed));
  }
  // Histogram reads are O(buckets), not O(n log n) over a sample ring:
  // the metrics tick no longer re-sorts anything.
  s.close_wait_p50_ms = close_wait_hist_.Quantile(0.50);
  s.close_wait_p99_ms = close_wait_hist_.Quantile(0.99);
  s.publish_p50_ms = publish_hist_.Quantile(0.50);
  s.publish_p99_ms = publish_hist_.Quantile(0.99);
  if (config_.metrics != nullptr && config_.metrics->histograms()) {
    auto stage = [&s](const char* name, const obs::Histogram& h) {
      MetricsSnapshot::Stage out;
      out.stage = name;
      out.count = h.count();
      out.p50_ms = h.Quantile(0.50);
      out.p99_ms = h.Quantile(0.99);
      out.max_ms = h.max_ms();
      out.mean_ms = h.mean_ms();
      s.stages.push_back(std::move(out));
    };
    stage("close_wait", close_wait_hist_);
    stage("queue_wait", queue_wait_hist_);
    stage("anonymize", anonymize_hist_);
    stage("publish", publish_hist_);
    stage("sink", sink_hist_);
    stage("checkpoint", checkpoint_hist_);
  }
  s.checkpoint_seq = checkpoint_seq_;
  s.checkpoints_written = checkpoints_written_;
  if (store_.has_value() && checkpoints_written_ > 0) {
    s.checkpoint_age_ms =
        std::chrono::duration<double, std::milli>(now - last_checkpoint_)
            .count();
  }
  // Registry gauges: the scrapeable point-in-time twins of the snapshot.
  g_active_sessions_->Set(static_cast<double>(s.active_sessions));
  g_queue_depth_->Set(static_cast<double>(s.queue_depth));
  g_backlog_windows_->Set(static_cast<double>(s.backlog_windows));
  g_in_flight_->Set(static_cast<double>(s.in_flight));
  g_feeds_->Set(static_cast<double>(s.feeds));
  g_eps_spent_max_->Set(s.epsilon_spent_max);
  intro->seq = s.seq;
  intro->uptime_ms = s.uptime_ms;
  intro->published_at = now;
  intro->finished = final_tick_;
  intro->aborted = aborted_;
  intro->feeds = s.feeds;
  intro->active_sessions = s.active_sessions;
  intro->queue_depth = s.queue_depth;
  intro->backlog_windows = s.backlog_windows;
  intro->in_flight = s.in_flight;
  intro->feeds_quarantined = s.feeds_quarantined;
  intro->checkpoint_seq = s.checkpoint_seq;
  intro->checkpoint_age_ms = s.checkpoint_age_ms;
  intro->checkpoints_written = s.checkpoints_written;
  intro->checkpoint_errors = s.checkpoint_errors;
  introspection_.Publish(std::move(intro));
  if (config_.metrics != nullptr) config_.metrics->Publish(std::move(s));
  last_metrics_ = now;
}

void ServiceDispatcher::BuildFinalReport() {
  report_.feeds = feed_order_.size();
  for (const auto& name : feed_order_) {
    FeedSlot& slot = feeds_.at(name);
    FeedReport feed_report;
    feed_report.feed = name;
    feed_report.sessions = slot.generations;
    feed_report.evicted = !slot.session && slot.ever_evicted;
    feed_report.quarantined = slot.quarantined;
    feed_report.quarantine_reason = slot.quarantine_reason;
    if (slot.quarantined) ++report_.feeds_quarantined;
    feed_report.stream = slot.merged;
    if (slot.session) {
      MergeStreamReport(&feed_report.stream, slot.session->report(),
                        config_.stream.max_window_reports);
    }
    feed_report.close_wait_p50_ms = slot.close_wait_hist.Quantile(0.50);
    feed_report.close_wait_p99_ms = slot.close_wait_hist.Quantile(0.99);
    feed_report.close_wait_max_ms = slot.close_wait_hist.max_ms();
    feed_report.publish_p50_ms = slot.publish_hist.Quantile(0.50);
    feed_report.publish_p99_ms = slot.publish_hist.Quantile(0.99);
    feed_report.publish_max_ms = slot.publish_hist.max_ms();
    report_.windows_closed += feed_report.stream.windows_closed;
    report_.windows_published += feed_report.stream.windows_published;
    report_.windows_refused += feed_report.stream.windows_refused;
    report_.windows_deadline_closed +=
        feed_report.stream.windows_deadline_closed;
    report_.trajectories_in += feed_report.stream.trajectories_in;
    report_.trajectories_published +=
        feed_report.stream.trajectories_published;
    report_.trajectories_refused += feed_report.stream.trajectories_refused;
    report_.trajectories_evicted += feed_report.stream.trajectories_evicted;
    report_.feeds_report.push_back(std::move(feed_report));
  }
  std::sort(report_.feeds_report.begin(), report_.feeds_report.end(),
            [](const FeedReport& a, const FeedReport& b) {
              return a.feed < b.feed;
            });
  report_.checkpoints_written = checkpoints_written_;
  report_.checkpoint_sequence = checkpoint_seq_;
  report_.close_wait_p50_ms = close_wait_hist_.Quantile(0.50);
  report_.close_wait_p99_ms = close_wait_hist_.Quantile(0.99);
  report_.close_wait_max_ms = close_wait_hist_.max_ms();
  report_.publish_p50_ms = publish_hist_.Quantile(0.50);
  report_.publish_p99_ms = publish_hist_.Quantile(0.99);
  report_.publish_max_ms = publish_hist_.max_ms();
}

void ServiceDispatcher::DispatcherLoop() {
  obs::SetTraceThreadName("dispatcher");
  Stopwatch wall;
  started_at_ = SteadyClock::now();
  last_checkpoint_ = started_at_;
  last_metrics_ = started_at_;
  // An immediate first snapshot: even a sub-interval run leaves one line
  // behind when the exporter flushes at Stop().
  PublishMetricsNow(started_at_);
  bool input_done = false;
  while (!input_done) {
    // Absorb whatever the workers finished, then publish it (write-ahead
    // checkpoint first), then top the pool back up.
    std::unique_ptr<Completion> completion;
    while (completions_->TryPop(&completion)) {
      AbsorbCompletion(std::move(completion));
    }
    FlushPublishes();
    SubmitReady();

    // Sleep until the next arrival — but no later than the earliest armed
    // session deadline, and no later than the completion poll when jobs
    // are in flight. The deadline heap makes this O(1) per iteration
    // where it used to scan every feed ever seen: the top entry may be
    // stale (its deadline moved later), which only costs one spurious
    // wakeup that pops and re-arms it.
    SteadyClock::time_point deadline = SteadyClock::time_point::max();
    bool timed = false;
    if (!aborted_ && !deadlines_.empty()) {
      deadline = deadlines_.top().when;
      timed = true;
    }
    // Housekeeping deadlines: the next metrics/introspection tick
    // (unconditional — the admin plane needs a fresh board even with no
    // exporter), and the interval snapshot for dirty ledgers that have no
    // publish to ride on.
    deadline = std::min(
        deadline,
        last_metrics_ + std::chrono::milliseconds(metrics_interval_ms_.load(
                            std::memory_order_relaxed)));
    timed = true;
    if (store_.has_value() && ledger_dirty_ && !aborted_) {
      deadline = std::min(
          deadline,
          last_checkpoint_ + std::chrono::milliseconds(std::max<int64_t>(
                                 config_.checkpoint_interval_ms, 1)));
      timed = true;
    }

    if (!aborted_ && backlog_windows_ >= config_.max_backlog_windows) {
      // The pool is the bottleneck: pause ingress (arrivals pile into the
      // bounded queue until Offer blocks — end-to-end backpressure) and
      // wait directly for a completion to drain the backlog. A session
      // with backlog is busy or about to be, so a completion is coming.
      std::unique_ptr<Completion> completion;
      const SteadyClock::time_point wait_until =
          std::min(deadline, SteadyClock::now() + kCompletionPoll * 20);
      if (completions_->PopUntil(wait_until, &completion) ==
          QueuePop::kItem) {
        AbsorbCompletion(std::move(completion));
      }
      FlushPublishes();
      const SteadyClock::time_point now = SteadyClock::now();
      if (!aborted_ && !stopping_) ProcessDueDeadlines(now);
      MaybeCheckpoint(now);
      MaybePublishMetrics(now);
      continue;
    }
    if (in_flight_ > 0) {
      deadline = std::min(deadline, SteadyClock::now() + kCompletionPoll);
      timed = true;
    }

    Arrival arrival;
    QueuePop popped;
    if (timed) {
      popped = arrivals_->PopUntil(deadline, &arrival);
    } else {
      std::optional<Arrival> item = arrivals_->Pop();
      if (item.has_value()) {
        arrival = std::move(*item);
        popped = QueuePop::kItem;
      } else {
        popped = QueuePop::kClosed;
      }
    }
    const SteadyClock::time_point now = SteadyClock::now();
    switch (popped) {
      case QueuePop::kItem:
        // After an abort or a stop_when_exhausted trip the remaining
        // ingress is drained and discarded.
        if (!aborted_ && !stopping_) {
          if (arrival.quarantine) {
            QuarantineFeed(arrival.feed, std::move(arrival.reason));
          } else {
            Route(std::move(arrival), now);
          }
        }
        break;
      case QueuePop::kTimeout:
        break;
      case QueuePop::kClosed:
        input_done = true;
        break;
    }
    if (!aborted_ && !stopping_) ProcessDueDeadlines(now);
    MaybeCheckpoint(now);
    MaybePublishMetrics(now);
  }

  // Ingress finished: flush every session's trailing partial window, then
  // drain the backlog and the in-flight jobs to zero. A stop_when_exhausted
  // trip skips the flush — the run ends at the refusal, like the
  // single-feed runner.
  if (!aborted_ && !stopping_) {
    const SteadyClock::time_point now = SteadyClock::now();
    for (const auto& name : feed_order_) {
      FeedSlot& slot = feeds_.at(name);
      if (slot.session && !slot.quarantined &&
          slot.session->uncovered() > 0) {
        // A final-flush closure failure (duplicate object id in the
        // trailing partial window) quarantines that feed; the siblings
        // still drain and publish.
        (void)CloseSessionWindow(name, slot, WindowClose::kFinal, now);
      }
    }
  }
  SubmitReady();
  while (in_flight_ > 0) {
    std::optional<std::unique_ptr<Completion>> completion =
        completions_->Pop();
    if (!completion.has_value()) break;  // defensive; queue is not closed
    AbsorbCompletion(std::move(*completion));
    FlushPublishes();
    SubmitReady();
    MaybePublishMetrics(SteadyClock::now());
  }
  pool_->WaitIdle();
  completions_->Close();
  // Clean-shutdown snapshot: the final generations/window counters become
  // durable even when the tail had no publish to ride on. After an abort
  // the attempt is still made (recording MORE spend is always safe), but
  // its failure cannot mask the original error.
  if (store_.has_value()) {
    if (Status st = WriteCheckpointNow(); !st.ok() && !aborted_) Abort(st);
  }
  BuildFinalReport();
  report_.wall_seconds = wall.ElapsedSeconds();
  // The final tick: everything is quiesced, so the introspection board,
  // the exporter's last line, and the final report all agree bit for bit.
  final_tick_ = true;
  PublishMetricsNow(SteadyClock::now());
}

}  // namespace frt
