#include "service/dispatcher.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "runtime/batch_runner.h"

namespace frt {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// How often the dispatcher checks the completion queue while jobs are in
/// flight and no arrival wakes it sooner. Window jobs are tens of
/// milliseconds, so a 1 ms poll adds negligible latency and negligible
/// load to the single consumer thread.
constexpr std::chrono::milliseconds kCompletionPoll(1);

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  const double rank = p * static_cast<double>(samples.size() - 1);
  const size_t k = static_cast<size_t>(rank + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<ptrdiff_t>(k),
                   samples.end());
  return samples[k];
}

double MaxSample(const std::vector<double>& samples) {
  return samples.empty()
             ? 0.0
             : *std::max_element(samples.begin(), samples.end());
}

/// Folds one session generation's report into a feed's running totals.
/// Counters sum; epsilon fields take the newer generation's values (its
/// accountants were preloaded with the predecessors' spend, so they are
/// already cumulative); the bounded window history appends.
void MergeStreamReport(StreamReport* into, const StreamReport& from,
                       size_t max_window_reports) {
  into->windows_closed += from.windows_closed;
  into->windows_published += from.windows_published;
  into->windows_refused += from.windows_refused;
  into->windows_deadline_closed += from.windows_deadline_closed;
  into->trajectories_in += from.trajectories_in;
  into->trajectories_published += from.trajectories_published;
  into->trajectories_refused += from.trajectories_refused;
  into->trajectories_evicted += from.trajectories_evicted;
  into->epsilon_spent = from.epsilon_spent;
  into->epsilon_wholesale_equivalent = from.epsilon_wholesale_equivalent;
  into->windows.insert(into->windows.end(), from.windows.begin(),
                       from.windows.end());
  if (max_window_reports > 0 && into->windows.size() > max_window_reports) {
    into->windows.erase(into->windows.begin(),
                        into->windows.end() -
                            static_cast<ptrdiff_t>(max_window_reports));
  }
}

}  // namespace

bool ServiceHadRefusals(const ServiceReport& report) {
  return report.windows_refused > 0 || report.trajectories_evicted > 0;
}

ServiceDispatcher::ServiceDispatcher(ServiceConfig config, ServiceSink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {
  // Normalize the window geometry exactly as StreamRunner does, then the
  // service-level knobs.
  if (config_.stream.window_size == 0) config_.stream.window_size = 1;
  if (config_.stream.window_stride == 0 ||
      config_.stream.window_stride > config_.stream.window_size) {
    config_.stream.window_stride = config_.stream.window_size;
  }
  if (config_.pool_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config_.pool_threads = std::max(2u, hw);
  }
  if (config_.max_in_flight == 0) {
    config_.max_in_flight = 2 * config_.pool_threads;
  }
  if (config_.arrival_queue_capacity == 0) {
    config_.arrival_queue_capacity = 4 * config_.stream.window_size;
  }
  if (config_.max_backlog_windows == 0) {
    config_.max_backlog_windows = 4 * config_.max_in_flight;
  }
}

ServiceDispatcher::~ServiceDispatcher() {
  if (started_ && !finished_) (void)Finish();
}

Status ServiceDispatcher::Start(uint64_t seed) {
  if (started_) return Status::FailedPrecondition("service already started");
  master_seed_ = seed;
  pool_ = std::make_unique<WorkStealingPool>(config_.pool_threads);
  arrivals_ =
      std::make_unique<BoundedQueue<Arrival>>(config_.arrival_queue_capacity);
  // Capacity == the in-flight cap, so a worker delivering a completion can
  // never block: at most max_in_flight completions exist at once.
  completions_ = std::make_unique<BoundedQueue<std::unique_ptr<Completion>>>(
      config_.max_in_flight);
  started_ = true;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  return Status::OK();
}

bool ServiceDispatcher::Offer(std::string feed, Trajectory t) {
  if (!started_) return false;
  Arrival arrival;
  arrival.feed = std::move(feed);
  arrival.trajectory = std::move(t);
  return arrivals_->Push(std::move(arrival));
}

Status ServiceDispatcher::Finish() {
  if (!started_) return Status::FailedPrecondition("service never started");
  if (finished_) return error_;
  arrivals_->Close();
  dispatcher_.join();
  finished_ = true;
  return error_;
}

void ServiceDispatcher::Abort(Status status) {
  if (aborted_) return;
  aborted_ = true;
  error_ = std::move(status);
  // Fail ingress fast: producers blocked in Offer() observe the close and
  // stop; arrivals already queued are drained and discarded.
  arrivals_->Close();
}

Status ServiceDispatcher::Route(Arrival&& arrival,
                                SteadyClock::time_point now) {
  auto [it, inserted] = feeds_.try_emplace(arrival.feed);
  FeedSlot& slot = it->second;
  if (inserted) feed_order_.push_back(arrival.feed);
  if (!slot.session) {
    // Generation 0, or a revival of an idle-evicted feed: the carry
    // preloads the predecessor's budget state conservatively.
    slot.session = std::make_unique<FeedSession>(
        arrival.feed, config_.stream, master_seed_, slot.generations,
        slot.carry);
    ++slot.generations;
    ++report_.sessions_created;
    ++active_sessions_;
    report_.peak_active_sessions =
        std::max(report_.peak_active_sessions, active_sessions_);
  }
  slot.session->set_evict_when_drained(false);  // the feed is live again
  slot.session->Offer(std::move(arrival.trajectory), now);
  while (slot.session->WindowReady()) {
    FRT_RETURN_IF_ERROR(
        slot.session->CloseWindow(WindowClose::kCount, now));
  }
  return Status::OK();
}

Status ServiceDispatcher::CloseExpired(SteadyClock::time_point now) {
  if (config_.stream.close_after_ms <= 0) return Status::OK();
  for (const auto& name : feed_order_) {
    FeedSlot& slot = feeds_.at(name);
    if (!slot.session) continue;
    const auto deadline = slot.session->CloseDeadline();
    if (deadline.has_value() && now >= *deadline) {
      FRT_RETURN_IF_ERROR(
          slot.session->CloseWindow(WindowClose::kDeadline, now));
    }
  }
  return Status::OK();
}

Status ServiceDispatcher::EvictIdle(SteadyClock::time_point now) {
  if (config_.idle_evict_ms <= 0) return Status::OK();
  const auto idle = std::chrono::milliseconds(config_.idle_evict_ms);
  for (const auto& name : feed_order_) {
    FeedSlot& slot = feeds_.at(name);
    if (!slot.session) continue;
    if (slot.session->evict_when_drained()) {
      // A flagged session normally falls to HandleCompletion's eviction,
      // but one whose backlog drained through admission REFUSALS never
      // gets a completion — catch it here.
      if (slot.session->Drained()) EvictSession(&slot);
      continue;
    }
    if (now - slot.session->last_arrival() < idle) continue;
    // Flush the trailing partial window first — eviction publishes, it
    // never drops.
    if (slot.session->uncovered() > 0) {
      FRT_RETURN_IF_ERROR(
          slot.session->CloseWindow(WindowClose::kFinal, now));
    }
    if (slot.session->Drained()) {
      EvictSession(&slot);
    } else {
      slot.session->set_evict_when_drained(true);
    }
  }
  return Status::OK();
}

void ServiceDispatcher::EvictSession(FeedSlot* slot) {
  MergeStreamReport(&slot->merged, slot->session->report(),
                    config_.stream.max_window_reports);
  slot->carry = slot->session->Carry();
  slot->ever_evicted = true;
  slot->session.reset();
  ++report_.sessions_evicted;
  --active_sessions_;
}

void ServiceDispatcher::SubmitReady() {
  if (aborted_ || feed_order_.empty()) return;
  // Rotate the scan start each call: with more backlogged feeds than
  // in-flight slots, a fixed order would let the earliest feeds
  // monopolize the pool and starve the tail.
  const size_t n = feed_order_.size();
  submit_rr_ = (submit_rr_ + 1) % n;
  for (size_t k = 0; k < n; ++k) {
    if (in_flight_ >= config_.max_in_flight) return;
    const std::string& name = feed_order_[(submit_rr_ + k) % n];
    FeedSlot& slot = feeds_.at(name);
    if (!slot.session) continue;
    std::optional<WindowJob> job = slot.session->NextSubmittable();
    if (config_.stream.stop_when_exhausted && !stopping_ &&
        slot.session->had_refusals()) {
      // End service at the first refusal (mirrors StreamRunner's
      // stop_when_exhausted): stop ingesting, drain what already closed,
      // finish cleanly.
      stopping_ = true;
      arrivals_->Close();
    }
    if (!job.has_value()) {
      // The backlog may have just drained through admission refusals (no
      // completion will fire): an eviction waiting on that drain runs now.
      if (slot.session->evict_when_drained() && slot.session->Drained()) {
        EvictSession(&slot);
      }
      continue;
    }
    ++in_flight_;
    // The job is self-contained: the worker touches nothing owned by the
    // session (which could be evicted only when drained — and it is busy
    // now, so it cannot drain before this completion lands).
    auto shared_job = std::make_shared<WindowJob>(std::move(*job));
    BatchRunnerConfig batch_config = config_.stream.batch;
    // Window jobs run single-threaded: the service's parallelism is
    // across windows of distinct feeds, not within one window. Sharding
    // still applies (smaller per-shard candidate sets), executed inline.
    batch_config.pool = nullptr;
    batch_config.dispatch = ShardDispatch::kStatic;
    batch_config.threads = 1;
    BoundedQueue<std::unique_ptr<Completion>>* completions =
        completions_.get();
    pool_->Submit([shared_job, completions, batch_config] {
      auto completion = std::make_unique<Completion>();
      BatchRunner runner(batch_config);
      completion->published =
          runner.Anonymize(shared_job->window, shared_job->rng);
      completion->batch = runner.report();
      completion->job = std::move(*shared_job);
      completion->job.window = Dataset();  // the copy has served its purpose
      completions->Push(std::move(completion));
    });
  }
}

void ServiceDispatcher::HandleCompletion(
    std::unique_ptr<Completion> completion) {
  --in_flight_;
  FeedSlot& slot = feeds_.at(completion->job.feed);
  FeedSession& session = *slot.session;
  if (aborted_) {
    session.Abandon();
    return;
  }
  if (!completion->published.ok()) {
    session.Abandon();
    Abort(completion->published.status());
    return;
  }
  const double publish_ms =
      std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                completion->job.closed_at)
          .count();
  Result<WindowReport> window_report = session.Complete(
      completion->job, *completion->published, completion->batch,
      publish_ms);
  if (!window_report.ok()) {
    Abort(window_report.status());
    return;
  }
  if (config_.max_latency_samples > 0) {
    auto push = [&](std::vector<double>* samples, size_t* next, double x) {
      if (samples->size() < config_.max_latency_samples) {
        samples->push_back(x);
      } else {
        (*samples)[*next] = x;
        *next = (*next + 1) % samples->size();
      }
    };
    push(&close_wait_samples_, &close_wait_next_,
         completion->job.close_wait_ms);
    push(&publish_samples_, &publish_next_, publish_ms);
  }
  if (Status st = sink_(completion->job.feed, *completion->published,
                        *window_report);
      !st.ok()) {
    Abort(st);
    return;
  }
  session.RecordPublished(*window_report);
  if (session.evict_when_drained() && session.Drained()) {
    EvictSession(&slot);
  }
}

void ServiceDispatcher::BuildFinalReport() {
  report_.feeds = feed_order_.size();
  for (const auto& name : feed_order_) {
    FeedSlot& slot = feeds_.at(name);
    FeedReport feed_report;
    feed_report.feed = name;
    feed_report.sessions = slot.generations;
    feed_report.evicted = !slot.session && slot.ever_evicted;
    feed_report.stream = slot.merged;
    if (slot.session) {
      MergeStreamReport(&feed_report.stream, slot.session->report(),
                        config_.stream.max_window_reports);
    }
    report_.windows_closed += feed_report.stream.windows_closed;
    report_.windows_published += feed_report.stream.windows_published;
    report_.windows_refused += feed_report.stream.windows_refused;
    report_.windows_deadline_closed +=
        feed_report.stream.windows_deadline_closed;
    report_.trajectories_in += feed_report.stream.trajectories_in;
    report_.trajectories_published +=
        feed_report.stream.trajectories_published;
    report_.trajectories_refused += feed_report.stream.trajectories_refused;
    report_.trajectories_evicted += feed_report.stream.trajectories_evicted;
    report_.feeds_report.push_back(std::move(feed_report));
  }
  std::sort(report_.feeds_report.begin(), report_.feeds_report.end(),
            [](const FeedReport& a, const FeedReport& b) {
              return a.feed < b.feed;
            });
  report_.close_wait_p50_ms = Percentile(close_wait_samples_, 0.50);
  report_.close_wait_p99_ms = Percentile(close_wait_samples_, 0.99);
  report_.close_wait_max_ms = MaxSample(close_wait_samples_);
  report_.publish_p50_ms = Percentile(publish_samples_, 0.50);
  report_.publish_p99_ms = Percentile(publish_samples_, 0.99);
  report_.publish_max_ms = MaxSample(publish_samples_);
}

void ServiceDispatcher::DispatcherLoop() {
  Stopwatch wall;
  bool input_done = false;
  while (!input_done) {
    // Absorb whatever the workers finished, then top the pool back up.
    std::unique_ptr<Completion> completion;
    while (completions_->TryPop(&completion)) {
      HandleCompletion(std::move(completion));
    }
    SubmitReady();

    // Sleep until the next arrival — but no later than the earliest
    // closure/eviction deadline, and no later than the completion poll
    // when jobs are in flight. Sessions whose eviction cannot fire yet
    // (already flagged evict_when_drained, waiting on a completion) are
    // excluded from the deadline, or their stale past-due deadline would
    // turn this loop into a busy spin.
    SteadyClock::time_point deadline = SteadyClock::time_point::max();
    bool timed = false;
    size_t backlog_windows = 0;
    if (!aborted_) {
      for (const auto& name : feed_order_) {
        const FeedSlot& slot = feeds_.at(name);
        if (!slot.session) continue;
        backlog_windows += slot.session->backlog_size();
        if (const auto d = slot.session->CloseDeadline(); d.has_value()) {
          deadline = std::min(deadline, *d);
          timed = true;
        }
        if (config_.idle_evict_ms > 0 &&
            !slot.session->evict_when_drained()) {
          deadline = std::min(
              deadline,
              slot.session->last_arrival() +
                  std::chrono::milliseconds(config_.idle_evict_ms));
          timed = true;
        }
      }
    }

    if (!aborted_ && backlog_windows >= config_.max_backlog_windows) {
      // The pool is the bottleneck: pause ingress (arrivals pile into the
      // bounded queue until Offer blocks — end-to-end backpressure) and
      // wait directly for a completion to drain the backlog. A session
      // with backlog is busy or about to be, so a completion is coming.
      std::unique_ptr<Completion> completion;
      const SteadyClock::time_point wait_until =
          std::min(deadline, SteadyClock::now() + kCompletionPoll * 20);
      if (completions_->PopUntil(wait_until, &completion) ==
          QueuePop::kItem) {
        HandleCompletion(std::move(completion));
      }
      const SteadyClock::time_point now = SteadyClock::now();
      if (!aborted_ && !stopping_) {
        if (Status st = CloseExpired(now); !st.ok()) Abort(st);
        if (Status st = EvictIdle(now); !st.ok()) Abort(st);
      }
      continue;
    }
    if (in_flight_ > 0) {
      deadline = std::min(deadline, SteadyClock::now() + kCompletionPoll);
      timed = true;
    }

    Arrival arrival;
    QueuePop popped;
    if (timed) {
      popped = arrivals_->PopUntil(deadline, &arrival);
    } else {
      std::optional<Arrival> item = arrivals_->Pop();
      if (item.has_value()) {
        arrival = std::move(*item);
        popped = QueuePop::kItem;
      } else {
        popped = QueuePop::kClosed;
      }
    }
    const SteadyClock::time_point now = SteadyClock::now();
    switch (popped) {
      case QueuePop::kItem:
        // After an abort or a stop_when_exhausted trip the remaining
        // ingress is drained and discarded.
        if (!aborted_ && !stopping_) {
          if (Status st = Route(std::move(arrival), now); !st.ok()) {
            Abort(st);
          }
        }
        break;
      case QueuePop::kTimeout:
        break;
      case QueuePop::kClosed:
        input_done = true;
        break;
    }
    if (!aborted_ && !stopping_) {
      if (Status st = CloseExpired(now); !st.ok()) Abort(st);
      if (Status st = EvictIdle(now); !st.ok()) Abort(st);
    }
  }

  // Ingress finished: flush every session's trailing partial window, then
  // drain the backlog and the in-flight jobs to zero. A stop_when_exhausted
  // trip skips the flush — the run ends at the refusal, like the
  // single-feed runner.
  if (!aborted_ && !stopping_) {
    const SteadyClock::time_point now = SteadyClock::now();
    for (const auto& name : feed_order_) {
      FeedSlot& slot = feeds_.at(name);
      if (slot.session && slot.session->uncovered() > 0) {
        if (Status st = slot.session->CloseWindow(WindowClose::kFinal, now);
            !st.ok()) {
          Abort(st);
          break;
        }
      }
    }
  }
  SubmitReady();
  while (in_flight_ > 0) {
    std::optional<std::unique_ptr<Completion>> completion =
        completions_->Pop();
    if (!completion.has_value()) break;  // defensive; queue is not closed
    HandleCompletion(std::move(*completion));
    SubmitReady();
  }
  pool_->WaitIdle();
  completions_->Close();
  BuildFinalReport();
  report_.wall_seconds = wall.ElapsedSeconds();
}

}  // namespace frt
