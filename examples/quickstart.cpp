// Quickstart: anonymize a small trajectory dataset with the paper's GL
// model in ~30 lines of user code.
//
//   build/examples/quickstart
//
// Steps: generate a toy city + taxi fleet, run the frequency-based
// randomizer with an even eps split, report what changed, and write the
// published dataset to CSV.

#include <cstdio>

#include "core/pipeline.h"
#include "synth/workload.h"
#include "traj/io.h"

int main() {
  // 1) Data. Any Dataset works; here we synthesize a small taxi fleet
  //    (see examples/taxi_fleet.cpp for the full-scale pipeline).
  frt::WorkloadConfig workload_config;
  workload_config.num_taxis = 40;
  workload_config.target_points = 150;
  frt::RoadGenConfig road_config;
  road_config.cols = 16;
  road_config.rows = 16;
  auto workload =
      frt::GenerateTaxiWorkload(workload_config, road_config, /*seed=*/7);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const frt::Dataset& original = workload->dataset;

  // 2) Configure the privacy model: total budget eps = 1.0, split evenly
  //    between the global TF and local PF mechanisms (the paper's GL).
  frt::FrequencyRandomizerConfig config;
  config.m = 10;              // signature size
  config.epsilon_global = 0.5;
  config.epsilon_local = 0.5;
  frt::FrequencyRandomizer randomizer(config);

  // 3) Anonymize.
  frt::Rng rng(/*seed=*/42);
  auto published = randomizer.Anonymize(original, rng);
  if (!published.ok()) {
    std::fprintf(stderr, "anonymize: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }

  // 4) Inspect the run.
  const frt::RandomizerReport& report = randomizer.report();
  std::printf("model: %s (eps spent = %.2f)\n", randomizer.name().c_str(),
              report.epsilon_spent);
  std::printf("candidate signature points |P| = %zu\n",
              report.candidate_set_size);
  std::printf("local edits:  %zu insertions, %zu deletions, "
              "utility loss %.0f m\n",
              report.local.edits.insertions, report.local.edits.deletions,
              report.local.edits.utility_loss);
  std::printf("global edits: %zu insertions, %zu deletions, "
              "utility loss %.0f m\n",
              report.global.edits.insertions,
              report.global.edits.deletions,
              report.global.edits.utility_loss);
  std::printf("points: %zu -> %zu\n", original.TotalPoints(),
              published->TotalPoints());

  // 5) Publish.
  const char* out_path = "quickstart_published.csv";
  if (auto st = frt::SaveDatasetCsv(*published, out_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("published dataset written to %s\n", out_path);
  return 0;
}
