// Full publishing pipeline on a realistic taxi fleet: generate the T-Drive
// substitute, compare the three model variants (PureG / PureL / GL) on
// privacy + utility, and export the GL output.
//
//   build/examples/taxi_fleet [num_taxis] [points_per_taxi]

#include <cstdio>
#include <cstdlib>

#include "attack/linker.h"
#include "common/stopwatch.h"
#include "core/pipeline.h"
#include "metrics/utility.h"
#include "synth/workload.h"
#include "traj/io.h"

int main(int argc, char** argv) {
  const int num_taxis = argc > 1 ? std::atoi(argv[1]) : 120;
  const int points = argc > 2 ? std::atoi(argv[2]) : 200;

  std::printf("generating %d taxis x ~%d points...\n", num_taxis, points);
  frt::WorkloadConfig workload_config;
  workload_config.num_taxis = num_taxis;
  workload_config.target_points = points;
  auto workload = frt::GenerateTaxiWorkload(workload_config,
                                            frt::RoadGenConfig{}, 2024);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const frt::Dataset& original = workload->dataset;
  std::printf("  %zu trajectories, %zu points, %zu road nodes\n\n",
              original.size(), original.TotalPoints(),
              workload->network.NumNodes());

  // The adversary's linking model, trained on the original data.
  frt::Linker linker(original.Bounds());
  linker.Train(original);
  frt::UtilityEvaluator utility(original.Bounds());

  std::printf("%-6s %8s %8s %8s | %8s %8s %8s %8s | %9s\n", "model",
              "LAs", "LAst", "LAsq", "INF", "DE", "TE", "FFP", "time(s)");
  for (const auto& [eps_g, eps_l] :
       {std::pair{1.0, 0.0}, {0.0, 1.0}, {0.5, 0.5}}) {
    frt::FrequencyRandomizerConfig config;
    config.m = 10;
    config.epsilon_global = eps_g;
    config.epsilon_local = eps_l;
    frt::FrequencyRandomizer randomizer(config);
    frt::Rng rng(7);
    frt::Stopwatch watch;
    auto published = randomizer.Anonymize(original, rng);
    if (!published.ok()) {
      std::fprintf(stderr, "%s\n", published.status().ToString().c_str());
      return 1;
    }
    const double seconds = watch.ElapsedSeconds();
    const auto u = utility.EvaluateAll(original, *published);
    std::printf(
        "%-6s %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f %8.3f | %9.2f\n",
        randomizer.name().c_str(),
        linker.LinkingAccuracy(*published, frt::SignatureType::kSpatial),
        linker.LinkingAccuracy(*published,
                               frt::SignatureType::kSpatioTemporal),
        linker.LinkingAccuracy(*published,
                               frt::SignatureType::kSequential),
        u.inf, u.de, u.te, u.ffp, seconds);

    if (eps_g > 0.0 && eps_l > 0.0) {
      const char* path = "taxi_fleet_gl.csv";
      if (frt::SaveDatasetCsv(*published, path).ok()) {
        std::printf("\nGL output written to %s\n", path);
      }
    }
  }
  return 0;
}
