// Attack laboratory: run the two attacks the paper defends against —
// signature-based re-identification and HMM map-matching recovery —
// against raw data, signature removal (SC), and the paper's GL model.
//
//   build/examples/attack_lab

#include <cstdio>

#include "attack/linker.h"
#include "attack/recovery_attack.h"
#include "baselines/signature_closure.h"
#include "core/pipeline.h"
#include "synth/workload.h"

namespace {

void Report(const char* name, const frt::Workload& workload,
            const frt::Dataset& published, const frt::Linker& linker) {
  const double la_s =
      linker.LinkingAccuracy(published, frt::SignatureType::kSpatial);
  const double la_sq =
      linker.LinkingAccuracy(published, frt::SignatureType::kSequential);
  const frt::RecoveryScores rec =
      frt::EvaluateRecovery(workload, published);
  std::printf("%-6s | re-id: LAs=%.3f LAsq=%.3f | recovery: F=%.3f "
              "RMF=%.3f point-Acc=%.3f\n",
              name, la_s, la_sq, rec.f_score, rec.rmf, rec.accuracy);
}

}  // namespace

int main() {
  std::printf("building city + fleet...\n");
  frt::WorkloadConfig workload_config;
  workload_config.num_taxis = 100;
  workload_config.target_points = 180;
  auto workload = frt::GenerateTaxiWorkload(workload_config,
                                            frt::RoadGenConfig{}, 99);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("training the adversary's linking model on the original "
              "data...\n\n");
  frt::Linker linker(workload->dataset.Bounds());
  linker.Train(workload->dataset);

  // 1) Publish raw data: both attacks succeed.
  Report("Raw", *workload, workload->dataset, linker);

  // 2) Remove signature points (SC): re-identification drops, but the
  //    route is still recoverable by map matching — the recovery attack
  //    the paper warns about.
  frt::SignatureClosureConfig sc_config;
  sc_config.m = 10;
  frt::SignatureClosure sc(sc_config);
  frt::Rng rng_sc(5);
  auto sc_out = sc.Anonymize(workload->dataset, rng_sc);
  if (sc_out.ok()) Report("SC", *workload, *sc_out, linker);

  // 3) The paper's GL model: frequency randomization defeats both.
  frt::FrequencyRandomizerConfig gl_config;
  gl_config.m = 10;
  gl_config.epsilon_global = 0.5;
  gl_config.epsilon_local = 0.5;
  frt::FrequencyRandomizer gl(gl_config);
  frt::Rng rng_gl(5);
  auto gl_out = gl.Anonymize(workload->dataset, rng_gl);
  if (gl_out.ok()) Report("GL", *workload, *gl_out, linker);

  std::printf("\nsmaller LAs/point-Acc and larger RMF = better "
              "protection.\n");
  return 0;
}
