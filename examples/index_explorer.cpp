// Index explorer: builds the paper's hierarchical grid over a trajectory
// dataset and contrasts the five kNN search strategies on the same queries
// — the cell-pruning behaviour behind Fig. 5. Finishes with the batched
// kernel exactness check: the SoA 8-lane sweep must reproduce the scalar
// path's results and distance_evaluations bit for bit on this
// deterministic workload.
//
//   build/examples/index_explorer

#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "index/hierarchical_grid_index.h"
#include "index/search_context.h"
#include "index/segment_index.h"
#include "synth/workload.h"

int main() {
  frt::WorkloadConfig workload_config;
  workload_config.num_taxis = 60;
  workload_config.target_points = 200;
  auto workload = frt::GenerateTaxiWorkload(workload_config,
                                            frt::RoadGenConfig{}, 11);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  frt::BBox region = workload->dataset.Bounds();
  frt::GridSpec grid(region, 10);  // 512x512 finest, as in the paper

  const frt::SearchStrategy strategies[] = {
      frt::SearchStrategy::kLinear, frt::SearchStrategy::kUniformGrid,
      frt::SearchStrategy::kTopDown, frt::SearchStrategy::kBottomUp,
      frt::SearchStrategy::kBottomUpDown};

  std::printf("%-8s %10s %12s %14s %12s\n", "strategy", "build(ms)",
              "1k queries", "dist-evals", "cells");
  for (const auto strategy : strategies) {
    frt::Stopwatch build_watch;
    auto index = frt::MakeSegmentIndex(strategy, grid);
    frt::SegmentHandle handle = 0;
    for (const auto& traj : workload->dataset.trajectories()) {
      handle += frt::IndexTrajectory(traj, index.get(), handle);
    }
    const double build_ms = build_watch.ElapsedMillis();

    frt::Rng rng(123);
    frt::SearchOptions options;
    options.k = 8;
    frt::Stopwatch query_watch;
    for (int q = 0; q < 1000; ++q) {
      const frt::Point p{rng.Uniform(region.min_x, region.max_x),
                         rng.Uniform(region.min_y, region.max_y)};
      auto result = index->KNearest(p, options);
      if (result.size() != options.k) {
        std::fprintf(stderr, "unexpected result size\n");
        return 1;
      }
    }
    const double query_ms = query_watch.ElapsedMillis();

    size_t cells = 0;
    if (auto* hg =
            dynamic_cast<frt::HierarchicalGridIndex*>(index.get())) {
      cells = hg->NumCells();
    }
    std::printf("%-8s %10.1f %10.1fms %14llu %12zu\n",
                std::string(frt::SearchStrategyName(strategy)).c_str(),
                build_ms, query_ms,
                static_cast<unsigned long long>(
                    index->distance_evaluations()),
                cells);
  }

  std::printf("\n%zu segments indexed; HG+ touches far fewer segments per "
              "query than a linear scan (Theorem 4 pruning).\n",
              static_cast<size_t>(workload->dataset.TotalPoints() -
                                  workload->dataset.size()));

  // Batched-vs-scalar A/B on HG+: same queries, both kernel paths; any
  // divergence in results or eval counts is a hard failure.
  {
    auto index =
        frt::MakeSegmentIndex(frt::SearchStrategy::kBottomUpDown, grid);
    frt::SegmentHandle handle = 0;
    for (const auto& traj : workload->dataset.trajectories()) {
      handle += frt::IndexTrajectory(traj, index.get(), handle);
    }
    frt::SearchContext ctx;
    frt::SearchOptions options;
    options.k = 8;
    for (const bool batched : {true, false}) {
      options.use_batched_kernel = batched;
      frt::Rng rng(123);
      for (int q = 0; q < 1000; ++q) {
        const frt::Point p{rng.Uniform(region.min_x, region.max_x),
                           rng.Uniform(region.min_y, region.max_y)};
        const auto hits = index->KNearest(p, options, &ctx);
        // Fold every (handle, distance) pair into a checksum; the scalar
        // pass must reproduce the batched pass exactly for it to match.
        static unsigned long long checksum[2];
        for (const auto& n : hits) {
          double d = n.dist;
          unsigned long long bits;
          static_assert(sizeof(bits) == sizeof(d));
          __builtin_memcpy(&bits, &d, sizeof(bits));
          checksum[batched ? 0 : 1] ^= bits + 0x9e3779b97f4a7c15ull *
                                                  (n.entry.handle + 1);
        }
        if (q == 999 && !batched) {
          const unsigned long long evals = index->distance_evaluations();
          if (checksum[0] != checksum[1] || evals % 2 != 0) {
            std::fprintf(stderr,
                         "batched/scalar divergence: checksums %llx vs "
                         "%llx, total evals %llu\n",
                         checksum[0], checksum[1], evals);
            return 1;
          }
          std::printf("batched kernel A/B: bit-identical over 1000 HG+ "
                      "queries (checksum %llx, %llu evals split evenly)\n",
                      checksum[0], evals);
        }
      }
    }
  }
  return 0;
}
