// Property tests on the end-to-end pipeline, parameterized over variants
// and search strategies: invariants that must hold for ANY run —
// id/cardinality preservation, deterministic replay, exact budget
// accounting, and strategy-independence of the privacy spend.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "synth/workload.h"

namespace frt {
namespace {

struct PipelineCase {
  double epsilon_global;
  double epsilon_local;
  SearchStrategy strategy;
  MechanismOrder order;
};

class PipelinePropertyTest
    : public ::testing::TestWithParam<PipelineCase> {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig wcfg;
    wcfg.num_taxis = 14;
    wcfg.target_points = 90;
    RoadGenConfig rcfg;
    rcfg.cols = 9;
    rcfg.rows = 9;
    auto w = GenerateTaxiWorkload(wcfg, rcfg, 55);
    ASSERT_TRUE(w.ok());
    dataset_ = new Dataset(std::move(w->dataset));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* PipelinePropertyTest::dataset_ = nullptr;

FrequencyRandomizerConfig MakeConfig(const PipelineCase& c) {
  FrequencyRandomizerConfig cfg;
  cfg.m = 5;
  cfg.epsilon_global = c.epsilon_global;
  cfg.epsilon_local = c.epsilon_local;
  cfg.strategy = c.strategy;
  cfg.order = c.order;
  return cfg;
}

TEST_P(PipelinePropertyTest, PreservesTrajectoryIdsAndCount) {
  FrequencyRandomizer randomizer(MakeConfig(GetParam()));
  Rng rng(7);
  auto out = randomizer.Anonymize(*dataset_, rng);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), dataset_->size());
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_EQ((*out)[i].id(), (*dataset_)[i].id());
  }
}

TEST_P(PipelinePropertyTest, SpendsExactlyTheConfiguredBudget) {
  const PipelineCase& c = GetParam();
  FrequencyRandomizer randomizer(MakeConfig(c));
  Rng rng(7);
  auto out = randomizer.Anonymize(*dataset_, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(randomizer.report().epsilon_spent,
                   c.epsilon_global + c.epsilon_local);
}

TEST_P(PipelinePropertyTest, DeterministicReplay) {
  FrequencyRandomizer a(MakeConfig(GetParam()));
  FrequencyRandomizer b(MakeConfig(GetParam()));
  Rng ra(99);
  Rng rb(99);
  auto out_a = a.Anonymize(*dataset_, ra);
  auto out_b = b.Anonymize(*dataset_, rb);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  ASSERT_EQ(out_a->TotalPoints(), out_b->TotalPoints());
  for (size_t i = 0; i < out_a->size(); ++i) {
    ASSERT_EQ((*out_a)[i].points(), (*out_b)[i].points()) << "traj " << i;
  }
}

TEST_P(PipelinePropertyTest, OutputStaysInsideExpandedRegion) {
  // Edits may only use representative coordinates of observed locations,
  // so published points stay within (a slightly padded) original extent.
  FrequencyRandomizer randomizer(MakeConfig(GetParam()));
  Rng rng(7);
  auto out = randomizer.Anonymize(*dataset_, rng);
  ASSERT_TRUE(out.ok());
  BBox region = dataset_->Bounds();
  const double pad =
      0.05 * std::max(region.Width(), region.Height()) + 100.0;
  region.min_x -= pad;
  region.min_y -= pad;
  region.max_x += pad;
  region.max_y += pad;
  for (const auto& t : out->trajectories()) {
    for (const auto& tp : t.points()) {
      ASSERT_TRUE(region.Contains(tp.p));
    }
  }
}

TEST_P(PipelinePropertyTest, TimestampsRemainOrdered) {
  FrequencyRandomizer randomizer(MakeConfig(GetParam()));
  Rng rng(7);
  auto out = randomizer.Anonymize(*dataset_, rng);
  ASSERT_TRUE(out.ok());
  for (const auto& t : out->trajectories()) {
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      ASSERT_LE(t[i].t, t[i + 1].t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, PipelinePropertyTest,
    ::testing::Values(
        PipelineCase{1.0, 0.0, SearchStrategy::kBottomUpDown,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{0.0, 1.0, SearchStrategy::kBottomUpDown,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{0.5, 0.5, SearchStrategy::kBottomUpDown,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{0.5, 0.5, SearchStrategy::kBottomUpDown,
                     MechanismOrder::kLocalFirst},
        PipelineCase{0.5, 0.5, SearchStrategy::kLinear,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{0.5, 0.5, SearchStrategy::kUniformGrid,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{0.5, 0.5, SearchStrategy::kTopDown,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{0.5, 0.5, SearchStrategy::kBottomUp,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{0.1, 0.1, SearchStrategy::kBottomUpDown,
                     MechanismOrder::kGlobalFirst},
        PipelineCase{5.0, 5.0, SearchStrategy::kBottomUpDown,
                     MechanismOrder::kGlobalFirst}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      const auto& c = info.param;
      std::string name;
      if (c.epsilon_global > 0 && c.epsilon_local > 0) {
        name = "GL";
      } else if (c.epsilon_global > 0) {
        name = "PureG";
      } else {
        name = "PureL";
      }
      name += "_";
      name += std::string(SearchStrategyName(c.strategy));
      name += c.order == MechanismOrder::kGlobalFirst ? "_gfirst"
                                                      : "_lfirst";
      name += "_e" + std::to_string(static_cast<int>(
                         (c.epsilon_global + c.epsilon_local) * 10));
      for (char& ch : name) {
        if (ch == '+') ch = 'P';
      }
      return name;
    });

}  // namespace
}  // namespace frt
