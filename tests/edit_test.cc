// Tests for core/edit: the editable trajectory and the Def. 5/6 utility
// losses of the insertion/deletion operations.

#include <gtest/gtest.h>

#include "core/edit.h"

namespace frt {
namespace {

Trajectory Line(TrajId id, int n, double spacing = 100.0) {
  Trajectory t(id);
  for (int i = 0; i < n; ++i) {
    t.Append(Point{i * spacing, 0.0}, i * 60);
  }
  return t;
}

TEST(EditTest, ConstructionMirrorsTrajectory) {
  const Trajectory t = Line(3, 4);
  EditableTrajectory et(t);
  EXPECT_EQ(et.id(), 3);
  EXPECT_EQ(et.NumPoints(), 4u);
  const auto nodes = et.LiveNodes();
  ASSERT_EQ(nodes.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(et.PointAt(nodes[i]).p, t[i].p);
  }
  EXPECT_EQ(et.Materialize().points(), t.points());
}

TEST(EditTest, InsertIntoSegment) {
  EditableTrajectory et(Line(1, 3));  // (0,0) (100,0) (200,0)
  const NodeHandle head = et.Head();
  // Def. 5: the loss equals the point-segment distance.
  EXPECT_DOUBLE_EQ(et.InsertionLoss(head, {50, 40}), 40.0);
  auto node = et.InsertInto(head, {50, 40});
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(et.NumPoints(), 4u);
  const Trajectory out = et.Materialize();
  EXPECT_EQ(out[1].p, (Point{50, 40}));
  // Timestamp interpolates the neighbors.
  EXPECT_EQ(out[1].t, (out[0].t + out[2].t) / 2);
}

TEST(EditTest, InsertIntoInvalidHandleFails) {
  EditableTrajectory et(Line(1, 2));
  const NodeHandle tail = et.Tail();
  EXPECT_FALSE(et.InsertInto(tail, {0, 0}).ok());  // tail starts no segment
  EXPECT_FALSE(et.InsertInto(999, {0, 0}).ok());
}

TEST(EditTest, DeleteMiddleReconnects) {
  EditableTrajectory et(Line(1, 3));
  const NodeHandle mid = et.Next(et.Head());
  // Def. 6: loss is the distance from the deleted point to the reconnected
  // segment <prev, next>; collinear here, so zero.
  EXPECT_DOUBLE_EQ(et.DeletionLoss(mid), 0.0);
  ASSERT_TRUE(et.Delete(mid).ok());
  EXPECT_EQ(et.NumPoints(), 2u);
  const Trajectory out = et.Materialize();
  EXPECT_EQ(out[0].p, (Point{0, 0}));
  EXPECT_EQ(out[1].p, (Point{200, 0}));
}

TEST(EditTest, DeleteOffAxisPointHasPositiveLoss) {
  Trajectory t(1);
  t.Append({0, 0}, 0);
  t.Append({100, 80}, 60);  // off the (0,0)-(200,0) line by 80
  t.Append({200, 0}, 120);
  EditableTrajectory et(t);
  EXPECT_DOUBLE_EQ(et.DeletionLoss(et.Next(et.Head())), 80.0);
}

TEST(EditTest, DeleteEndpointsDegenerateLoss) {
  EditableTrajectory et(Line(1, 3));
  // Head: loss is the distance to the surviving neighbor.
  EXPECT_DOUBLE_EQ(et.DeletionLoss(et.Head()), 100.0);
  ASSERT_TRUE(et.Delete(et.Head()).ok());
  EXPECT_EQ(et.NumPoints(), 2u);
  EXPECT_EQ(et.PointAt(et.Head()).p, (Point{100, 0}));
  // Tail of the 2-point remainder.
  EXPECT_DOUBLE_EQ(et.DeletionLoss(et.Tail()), 100.0);
  ASSERT_TRUE(et.Delete(et.Tail()).ok());
  EXPECT_EQ(et.NumPoints(), 1u);
  // Sole remaining point costs nothing to delete.
  EXPECT_DOUBLE_EQ(et.DeletionLoss(et.Head()), 0.0);
  ASSERT_TRUE(et.Delete(et.Head()).ok());
  EXPECT_EQ(et.NumPoints(), 0u);
  EXPECT_EQ(et.Head(), kInvalidNode);
  EXPECT_EQ(et.Tail(), kInvalidNode);
}

TEST(EditTest, DeleteDeadNodeFails) {
  EditableTrajectory et(Line(1, 2));
  const NodeHandle head = et.Head();
  ASSERT_TRUE(et.Delete(head).ok());
  EXPECT_FALSE(et.Delete(head).ok());
}

TEST(EditTest, AppendPointExtendsTail) {
  EditableTrajectory et(Line(1, 1));
  const NodeHandle n = et.AppendPoint({50, 50}, 77);
  EXPECT_EQ(et.Tail(), n);
  EXPECT_EQ(et.NumPoints(), 2u);
  const Trajectory out = et.Materialize();
  EXPECT_EQ(out[1].p, (Point{50, 50}));
  EXPECT_EQ(out[1].t, 77);
}

TEST(EditTest, AppendToEmptyCreatesHead) {
  EditableTrajectory et(Trajectory(9));
  EXPECT_EQ(et.NumPoints(), 0u);
  et.AppendPoint({1, 2}, 3);
  EXPECT_EQ(et.NumPoints(), 1u);
  EXPECT_EQ(et.Head(), et.Tail());
}

TEST(EditTest, SegmentHandlesSurviveEdits) {
  EditableTrajectory et(Line(1, 5));
  const auto nodes = et.LiveNodes();
  // Delete node 2; segment starting at node 1 now spans to node 3.
  ASSERT_TRUE(et.Delete(nodes[2]).ok());
  ASSERT_TRUE(et.IsSegmentStart(nodes[1]));
  const Segment s = et.SegmentOf(nodes[1]);
  EXPECT_EQ(s.a, (Point{100, 0}));
  EXPECT_EQ(s.b, (Point{300, 0}));
  // Insert into that segment; the new node becomes a segment start.
  auto inserted = et.InsertInto(nodes[1], {150, 10});
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(et.IsSegmentStart(*inserted));
  EXPECT_EQ(et.SegmentOf(*inserted).b, (Point{300, 0}));
}

TEST(EditTest, InterleavedEditsKeepOrderConsistent) {
  EditableTrajectory et(Line(1, 4));
  auto n1 = et.InsertInto(et.Head(), {10, 5});
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(et.Delete(et.Tail()).ok());
  auto n2 = et.InsertInto(*n1, {60, -5});
  ASSERT_TRUE(n2.ok());
  const Trajectory out = et.Materialize();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].p, (Point{0, 0}));
  EXPECT_EQ(out[1].p, (Point{10, 5}));
  EXPECT_EQ(out[2].p, (Point{60, -5}));
  EXPECT_EQ(out[3].p, (Point{100, 0}));
  EXPECT_EQ(out[4].p, (Point{200, 0}));
  // Forward and backward traversal agree.
  std::vector<NodeHandle> fwd = et.LiveNodes();
  NodeHandle cur = et.Tail();
  for (auto it = fwd.rbegin(); it != fwd.rend(); ++it) {
    ASSERT_EQ(*it, cur);
    cur = et.Prev(cur);
  }
}

}  // namespace
}  // namespace frt
