// Unit tests for runtime/batch_runner.h: shard semantics, determinism,
// merge order, report aggregation, and parallel-composition accounting.

#include "runtime/batch_runner.h"

#include <gtest/gtest.h>

#include <vector>

#include "synth/workload.h"
#include "testing_util.h"

namespace frt {
namespace {

using frt::testing::DatasetsEqual;
using frt::testing::SmallPipeline;

Dataset SmallFleet(int taxis, uint64_t seed) {
  return frt::testing::TaxiFleet(taxis, /*target_points=*/60,
                                 /*grid_cols_rows=*/12, seed);
}

TEST(BatchRunnerTest, EmptyDatasetIsRejected) {
  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 4;
  BatchRunner runner(config);
  Rng rng(1);
  auto out = runner.Anonymize(Dataset(), rng);
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST(BatchRunnerTest, SingleShardMatchesForkedSingleShot) {
  // BatchRunner(K=1) must reproduce a plain pipeline run that consumes the
  // first fork of the same master stream.
  const Dataset input = SmallFleet(24, 11);

  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 1;
  BatchRunner runner(config);
  Rng batch_rng(123);
  auto batched = runner.Anonymize(input, batch_rng);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  FrequencyRandomizer pipeline(SmallPipeline());
  Rng master(123);
  Rng forked = master.Fork();
  auto single = pipeline.Anonymize(input, forked);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  EXPECT_TRUE(DatasetsEqual(*batched, *single));
  EXPECT_EQ(runner.report().epsilon_spent, pipeline.report().epsilon_spent);
}

TEST(BatchRunnerTest, ShardedRunEqualsConcatenationOfPerShardRuns) {
  // K shards with the batch runner == running the pipeline by hand on each
  // contiguous partition with the matching forked stream, concatenated.
  const Dataset input = SmallFleet(30, 17);
  const int kShards = 3;

  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = kShards;
  config.threads = 2;
  BatchRunner runner(config);
  Rng batch_rng(99);
  auto batched = runner.Anonymize(input, batch_rng);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  Rng master(99);
  const auto plan = PlanShards(input.size(), kShards);
  ASSERT_EQ(plan.size(), static_cast<size_t>(kShards));
  std::vector<Rng> streams;
  for (size_t i = 0; i < plan.size(); ++i) streams.push_back(master.Fork());

  Dataset expected;
  for (size_t i = 0; i < plan.size(); ++i) {
    Dataset shard;
    for (size_t j = plan[i].begin; j < plan[i].end; ++j) {
      ASSERT_TRUE(shard.Add(input[j]).ok());
    }
    FrequencyRandomizer pipeline(SmallPipeline());
    auto out = pipeline.Anonymize(shard, streams[i]);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (auto& t : out->mutable_trajectories()) {
      ASSERT_TRUE(expected.Add(std::move(t)).ok());
    }
  }
  EXPECT_TRUE(DatasetsEqual(*batched, expected));
}

TEST(BatchRunnerTest, DeterministicAcrossThreadCounts) {
  // Same seed and shard count => identical output no matter how many
  // worker threads execute the shards.
  const Dataset input = SmallFleet(24, 5);
  auto run = [&](unsigned threads) {
    BatchRunnerConfig config;
    config.pipeline = SmallPipeline();
    config.shards = 4;
    config.threads = threads;
    BatchRunner runner(config);
    Rng rng(2024);
    auto out = runner.Anonymize(input, rng);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return *std::move(out);
  };
  const Dataset base = run(1);
  EXPECT_TRUE(DatasetsEqual(base, run(2)));
  EXPECT_TRUE(DatasetsEqual(base, run(8)));
}

TEST(BatchRunnerTest, PreservesTrajectoryIdsInInputOrder) {
  const Dataset input = SmallFleet(20, 3);
  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 4;
  BatchRunner runner(config);
  Rng rng(7);
  auto out = runner.Anonymize(input, rng);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ((*out)[i].id(), input[i].id());
  }
}

TEST(BatchRunnerTest, ParallelCompositionAccounting) {
  // Every shard spends eps_G + eps_L on a disjoint sub-population, so the
  // dataset-level guarantee is the per-shard maximum — identical to the
  // single-shot spend, regardless of K.
  const Dataset input = SmallFleet(24, 29);
  for (const int shards : {1, 2, 4, 8}) {
    BatchRunnerConfig config;
    config.pipeline = SmallPipeline();
    config.shards = shards;
    BatchRunner runner(config);
    Rng rng(31);
    auto out = runner.Anonymize(input, rng);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_DOUBLE_EQ(runner.report().epsilon_spent, 1.0) << shards;
    EXPECT_DOUBLE_EQ(runner.accountant().spent(), 1.0) << shards;
    EXPECT_EQ(runner.accountant().ledger().size(), 1u) << shards;
    ASSERT_EQ(runner.report().per_shard.size(),
              static_cast<size_t>(runner.report().shards_run));
    for (const auto& shard_report : runner.report().per_shard) {
      EXPECT_DOUBLE_EQ(shard_report.epsilon_spent, 1.0);
    }
  }
}

TEST(BatchRunnerTest, ShardCountClampedToDatasetSize) {
  const Dataset input = SmallFleet(6, 13);
  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 64;
  BatchRunner runner(config);
  Rng rng(17);
  auto out = runner.Anonymize(input, rng);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(runner.report().shards_run, 6);
  EXPECT_EQ(out->size(), input.size());
}

TEST(BatchRunnerTest, CombinedReportSumsShardEdits) {
  const Dataset input = SmallFleet(24, 41);
  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 3;
  BatchRunner runner(config);
  Rng rng(53);
  auto out = runner.Anonymize(input, rng);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const BatchReport& report = runner.report();
  size_t local_ins = 0, local_del = 0, global_ins = 0, global_del = 0;
  size_t candidates = 0;
  for (const auto& r : report.per_shard) {
    local_ins += r.local.edits.insertions;
    local_del += r.local.edits.deletions;
    global_ins += r.global.edits.insertions;
    global_del += r.global.edits.deletions;
    candidates += r.candidate_set_size;
  }
  EXPECT_EQ(report.combined.local.edits.insertions, local_ins);
  EXPECT_EQ(report.combined.local.edits.deletions, local_del);
  EXPECT_EQ(report.combined.global.edits.insertions, global_ins);
  EXPECT_EQ(report.combined.global.edits.deletions, global_del);
  EXPECT_EQ(report.combined.candidate_set_size, candidates);
  EXPECT_GE(report.wall_seconds, 0.0);
}

TEST(BatchRunnerTest, ReportsShardObjectIdsMatchingThePlan) {
  // The per-object streaming accountant charges exactly the ids a window
  // released, so the report must list every input id once, in shard order.
  const Dataset input = SmallFleet(20, 3);
  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 4;
  BatchRunner runner(config);
  Rng rng(7);
  auto out = runner.Anonymize(input, rng);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const auto& shard_ids = runner.report().shard_object_ids;
  const auto plan = PlanShards(input.size(), 4);
  ASSERT_EQ(shard_ids.size(), plan.size());
  size_t total = 0;
  for (size_t i = 0; i < plan.size(); ++i) {
    ASSERT_EQ(shard_ids[i].size(), plan[i].size());
    for (size_t j = 0; j < shard_ids[i].size(); ++j) {
      EXPECT_EQ(shard_ids[i][j], input[plan[i].begin + j].id());
    }
    total += shard_ids[i].size();
  }
  EXPECT_EQ(total, input.size());
}

TEST(WindowAuditTest, SharedAndPrivateModesReportIdenticalDisplacement) {
  // The audit's shared-index mode (one build, concurrent readers) and
  // private mode (one build per range) must agree bit for bit on every
  // displacement aggregate; only the build accounting may differ.
  const Dataset input = SmallFleet(20, 29);
  FrequencyRandomizer pipeline(SmallPipeline());
  Rng rng(7);
  auto published = pipeline.Anonymize(input, rng);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  WindowAuditConfig config;
  config.enabled = true;
  config.ranges = 4;

  WorkStealingPool pool(4);
  config.shared_index = true;
  const WindowAuditReport shared =
      RunWindowAudit(input, *published, config, &pool);
  config.shared_index = false;
  const WindowAuditReport priv =
      RunWindowAudit(input, *published, config, &pool);
  // Serial execution (no pool) of the same ranges must also agree.
  config.shared_index = true;
  const WindowAuditReport serial =
      RunWindowAudit(input, *published, config, nullptr);

  ASSERT_TRUE(shared.ran);
  ASSERT_TRUE(priv.ran);
  EXPECT_EQ(shared.index_builds, 1);
  EXPECT_EQ(priv.index_builds, 4);
  EXPECT_GT(shared.points_audited, 0u);
  for (const WindowAuditReport* other : {&priv, &serial}) {
    EXPECT_EQ(shared.points_audited, other->points_audited);
    EXPECT_EQ(shared.mean_displacement, other->mean_displacement);
    EXPECT_EQ(shared.max_displacement, other->max_displacement);
    EXPECT_EQ(shared.distance_evaluations, other->distance_evaluations);
  }
}

TEST(WindowAuditTest, DisabledOrEmptyAuditDoesNotRun) {
  const Dataset input = SmallFleet(4, 31);
  WindowAuditConfig config;  // enabled defaults to false
  EXPECT_FALSE(RunWindowAudit(input, input, config, nullptr).ran);
  config.enabled = true;
  EXPECT_FALSE(RunWindowAudit(Dataset(), input, config, nullptr).ran);
  EXPECT_FALSE(RunWindowAudit(input, Dataset(), config, nullptr).ran);
}

TEST(BatchRunnerTest, AuditReportFlowsThroughBatchReport) {
  const Dataset input = SmallFleet(12, 37);
  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 2;
  config.audit.enabled = true;
  BatchRunner runner(config);
  Rng rng(3);
  auto out = runner.Anonymize(input, rng);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(runner.report().audit.ran);
  EXPECT_EQ(runner.report().audit.index_builds, 1);
  EXPECT_GT(runner.report().audit.points_audited, 0u);
}

TEST(BatchRunnerTest, NameReflectsVariantAndShardCount) {
  BatchRunnerConfig config;
  config.pipeline = SmallPipeline();
  config.shards = 8;
  EXPECT_EQ(BatchRunner(config).name(), "GL[batch x8]");
  config.pipeline.epsilon_local = 0.0;
  config.shards = 2;
  EXPECT_EQ(BatchRunner(config).name(), "PureG[batch x2]");
}

}  // namespace
}  // namespace frt
