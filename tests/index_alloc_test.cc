// Steady-state allocation guard for the index hot path: KNearest with a
// caller-provided, warmed-up SearchContext must perform ZERO heap
// allocations, for every strategy and both grouping modes.
//
// Counting is done by replacing the global operator new/delete with
// malloc-backed versions that bump a counter. Under ASan/MSan the runtime
// owns the allocator, so there the test degrades to a pure smoke run
// (GTEST_SKIP) — the Release CI leg provides the real guarantee.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "common/rng.h"
#include "index/hierarchical_grid_index.h"
#include "index/search_context.h"
#include "index/segment_index.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FRT_ALLOC_COUNTING_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer) || \
    __has_feature(thread_sanitizer)
#define FRT_ALLOC_COUNTING_DISABLED 1
#endif
#endif

namespace {
uint64_t g_allocations = 0;
}  // namespace

#ifndef FRT_ALLOC_COUNTING_DISABLED

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !FRT_ALLOC_COUNTING_DISABLED

namespace frt {
namespace {

constexpr double kRegionSize = 10000.0;

std::vector<SegmentEntry> RandomSegments(size_t n) {
  Rng rng(4242);
  std::vector<SegmentEntry> out;
  out.reserve(n);
  for (SegmentHandle h = 0; h < n; ++h) {
    const Point a{rng.Uniform(0, kRegionSize), rng.Uniform(0, kRegionSize)};
    const Point b{std::clamp(a.x + rng.Uniform(-500, 500), 0.0, kRegionSize),
                  std::clamp(a.y + rng.Uniform(-500, 500), 0.0, kRegionSize)};
    out.push_back(
        SegmentEntry{h, static_cast<TrajId>(h % 64), Segment{a, b}});
  }
  return out;
}

TEST(IndexAllocTest, WarmContextQueriesAreAllocationFree) {
  const GridSpec grid(BBox::Of({0, 0}, {kRegionSize, kRegionSize}), 10);
  const auto segments = RandomSegments(20000);
  for (const SearchStrategy strategy :
       {SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
        SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
        SearchStrategy::kBottomUpDown}) {
    SCOPED_TRACE(std::string(SearchStrategyName(strategy)));
    auto index = MakeSegmentIndex(strategy, grid);
    ASSERT_TRUE(index->Build(segments).ok());

    SearchContext ctx;
    // The warm-up replays the exact query sequence measured afterwards
    // (same seed), so every scratch buffer provably reaches the high-water
    // mark the measured phase needs. Both kernel paths are driven: the
    // batched sweep additionally exercises the SoA lane buffer.
    const auto run_queries = [&](int count) {
      Rng rng(99);
      for (int i = 0; i < count; ++i) {
        const Point q{rng.Uniform(0, kRegionSize),
                      rng.Uniform(0, kRegionSize)};
        for (const GroupBy mode :
             {GroupBy::kSegment, GroupBy::kTrajectory}) {
          for (const bool batched : {true, false}) {
            SearchOptions options;
            options.k = 8;
            options.group_by = mode;
            options.use_batched_kernel = batched;
            const auto results = index->KNearest(q, options, &ctx);
            ASSERT_EQ(results.size(), 8u);
          }
        }
      }
    };

    // Warm-up: buffers grow to their high-water mark.
    run_queries(100);

#ifdef FRT_ALLOC_COUNTING_DISABLED
    run_queries(100);
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
    const uint64_t before = g_allocations;
    run_queries(100);
    EXPECT_EQ(g_allocations, before)
        << "steady-state KNearest allocated on the heap";
#endif
  }
}

// A context warmed before Compact() stays allocation-free after it: the
// arena only shrinks, so the context's stamp vector (keyed by arena slot)
// never needs to regrow.
TEST(IndexAllocTest, WarmContextSurvivesCompactAllocationFree) {
  const GridSpec grid(BBox::Of({0, 0}, {kRegionSize, kRegionSize}), 10);
  const auto segments = RandomSegments(20000);
  HierarchicalGridIndex index(grid, SearchStrategy::kBottomUpDown);
  ASSERT_TRUE(index.Build(Span<const SegmentEntry>(segments)).ok());
  // Churn cells onto the free list, then repack.
  for (SegmentHandle h = 0; h < segments.size(); h += 4) {
    ASSERT_TRUE(index.Remove(h).ok());
  }

  SearchContext ctx;
  const auto run_queries = [&](int count) {
    Rng rng(77);
    for (int i = 0; i < count; ++i) {
      const Point q{rng.Uniform(0, kRegionSize),
                    rng.Uniform(0, kRegionSize)};
      for (const bool batched : {true, false}) {
        SearchOptions options;
        options.k = 8;
        options.use_batched_kernel = batched;
        const auto results = index.KNearest(q, options, &ctx);
        ASSERT_EQ(results.size(), 8u);
      }
    }
  };

  run_queries(100);  // warm against the fragmented arena
  ASSERT_GT(index.Compact(), 0u);

#ifdef FRT_ALLOC_COUNTING_DISABLED
  run_queries(100);
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  const uint64_t before = g_allocations;
  run_queries(100);
  EXPECT_EQ(g_allocations, before)
      << "KNearest allocated after Compact() with a warm context";
#endif
}

}  // namespace
}  // namespace frt
