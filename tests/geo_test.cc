// Unit tests for src/geo: points, segments, boxes, MINdist, grids.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/bbox.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace frt {
namespace {

TEST(PointTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance2({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, Lerp) {
  const Point p = Lerp({0, 0}, {10, 20}, 0.5);
  EXPECT_DOUBLE_EQ(p.x, 5.0);
  EXPECT_DOUBLE_EQ(p.y, 10.0);
  EXPECT_EQ(Lerp({1, 2}, {3, 4}, 0.0), (Point{1, 2}));
  EXPECT_EQ(Lerp({1, 2}, {3, 4}, 1.0), (Point{3, 4}));
}

// --- Point-segment distance (paper Eq. 3) ---

TEST(SegmentTest, PerpendicularProjectionInside) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 3}, s), 3.0);
  const Point c = ClosestPointOnSegment({5, 3}, s);
  EXPECT_DOUBLE_EQ(c.x, 5.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
}

TEST(SegmentTest, ClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(PointSegmentDistance({-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({13, 4}, s), 5.0);
}

TEST(SegmentTest, DegenerateSegmentIsPoint) {
  const Segment s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 6}, s), 5.0);
}

TEST(SegmentTest, PointOnSegmentIsZero) {
  const Segment s{{0, 0}, {10, 10}};
  EXPECT_NEAR(PointSegmentDistance({5, 5}, s), 0.0, 1e-12);
}

TEST(SegmentTest, LengthAndMidpoint) {
  const Segment s{{0, 0}, {6, 8}};
  EXPECT_DOUBLE_EQ(s.Length(), 10.0);
  EXPECT_EQ(s.Midpoint(), (Point{3, 4}));
}

// --- BBox and MINdist (paper Eq. 4 / Def. 12) ---

TEST(BBoxTest, ExtendAndContains) {
  BBox b;
  EXPECT_TRUE(b.IsEmpty());
  b.Extend(Point{1, 2});
  b.Extend(Point{5, -3});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_TRUE(b.Contains({3, 0}));
  EXPECT_FALSE(b.Contains({6, 0}));
  EXPECT_DOUBLE_EQ(b.Width(), 4.0);
  EXPECT_DOUBLE_EQ(b.Height(), 5.0);
}

TEST(BBoxTest, MinDistInsideIsZero) {
  const BBox b = BBox::Of({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MinDistPointBBox({5, 5}, b), 0.0);
  EXPECT_DOUBLE_EQ(MinDistPointBBox({0, 0}, b), 0.0);  // boundary
}

TEST(BBoxTest, MinDistToEdgeAndCorner) {
  const BBox b = BBox::Of({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MinDistPointBBox({15, 5}, b), 5.0);   // right edge
  EXPECT_DOUBLE_EQ(MinDistPointBBox({5, -2}, b), 2.0);   // bottom edge
  EXPECT_DOUBLE_EQ(MinDistPointBBox({13, 14}, b), 5.0);  // corner 3-4-5
}

TEST(BBoxTest, MinDistLowerBoundsSegmentDistance) {
  // Theorem 4's foundation: MINdist(q, g) <= dist(q, s) for any s inside g.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const BBox b = BBox::Of({rng.Uniform(0, 50), rng.Uniform(0, 50)},
                            {rng.Uniform(50, 100), rng.Uniform(50, 100)});
    const Point q{rng.Uniform(-50, 150), rng.Uniform(-50, 150)};
    const Segment s{
        {rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)},
        {rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)}};
    ASSERT_LE(MinDistPointBBox(q, b), PointSegmentDistance(q, s) + 1e-9);
  }
}

TEST(BBoxTest, IntersectsAndDiagonal) {
  const BBox a = BBox::Of({0, 0}, {10, 10});
  const BBox b = BBox::Of({5, 5}, {15, 15});
  const BBox c = BBox::Of({11, 11}, {12, 12});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_NEAR(a.Diagonal(), std::sqrt(200.0), 1e-12);
}

// --- CellCoord ---

TEST(CellCoordTest, ParentChildRelations) {
  const CellCoord c{3, 5, 6};
  EXPECT_EQ(c.Parent(), (CellCoord{2, 2, 3}));
  EXPECT_EQ(c.Child(0), (CellCoord{4, 10, 12}));
  EXPECT_EQ(c.Child(1), (CellCoord{4, 11, 12}));
  EXPECT_EQ(c.Child(2), (CellCoord{4, 10, 13}));
  EXPECT_EQ(c.Child(3), (CellCoord{4, 11, 13}));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.Child(i).Parent(), c);
  }
}

TEST(CellCoordTest, RootIsOwnParent) {
  const CellCoord root{0, 0, 0};
  EXPECT_EQ(root.Parent(), root);
}

TEST(CellCoordTest, AncestorRelation) {
  const CellCoord root{0, 0, 0};
  const CellCoord mid{4, 7, 3};
  const CellCoord deep{8, 7 * 16 + 5, 3 * 16 + 9};
  EXPECT_TRUE(root.IsAncestorOf(mid));
  EXPECT_TRUE(root.IsAncestorOf(deep));
  EXPECT_TRUE(mid.IsAncestorOf(deep));
  EXPECT_FALSE(deep.IsAncestorOf(mid));
  EXPECT_TRUE(mid.IsAncestorOf(mid));
  EXPECT_FALSE(mid.IsAncestorOf(CellCoord{4, 6, 3}));
}

TEST(CellCoordTest, KeyIsUnique) {
  std::unordered_map<uint64_t, CellCoord> seen;
  for (int level = 0; level < 6; ++level) {
    const int n = 1 << level;
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) {
        const CellCoord c{level, x, y};
        auto [it, inserted] = seen.emplace(c.Key(), c);
        ASSERT_TRUE(inserted) << "collision at level " << level;
      }
    }
  }
}

// --- GridSpec ---

class GridSpecTest : public ::testing::Test {
 protected:
  GridSpec grid_{BBox::Of({0, 0}, {1024, 1024}), 6};  // finest 32x32
};

TEST_F(GridSpecTest, CellAtMapsUniformly) {
  EXPECT_EQ(grid_.CellAt({0, 0}, 5), (CellCoord{5, 0, 0}));
  EXPECT_EQ(grid_.CellAt({1023.9, 1023.9}, 5), (CellCoord{5, 31, 31}));
  EXPECT_EQ(grid_.CellAt({512, 512}, 1), (CellCoord{1, 1, 1}));
}

TEST_F(GridSpecTest, OutOfRangeClampsToBoundary) {
  EXPECT_EQ(grid_.CellAt({-100, 2000}, 5), (CellCoord{5, 0, 31}));
}

TEST_F(GridSpecTest, CellBoxContainsItsPoints) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.Uniform(0, 1024), rng.Uniform(0, 1024)};
    for (int level = 0; level < grid_.levels(); ++level) {
      const CellCoord c = grid_.CellAt(p, level);
      ASSERT_TRUE(grid_.CellBox(c).Contains(p));
    }
  }
}

TEST_F(GridSpecTest, CellBoxNesting) {
  const CellCoord c{4, 7, 9};
  const BBox inner = grid_.CellBox(c);
  const BBox outer = grid_.CellBox(c.Parent());
  EXPECT_GE(inner.min_x, outer.min_x);
  EXPECT_LE(inner.max_x, outer.max_x);
  EXPECT_GE(inner.min_y, outer.min_y);
  EXPECT_LE(inner.max_y, outer.max_y);
}

TEST_F(GridSpecTest, BestFitCellIsDeepestCommonCell) {
  // Points in the same finest cell -> best fit at the finest level.
  const CellCoord fine = grid_.BestFitCell({10, 10}, {20, 20});
  EXPECT_EQ(fine.level, grid_.finest_level());
  // Points in different halves -> only the root contains both.
  const CellCoord root = grid_.BestFitCell({10, 10}, {1000, 1000});
  EXPECT_EQ(root.level, 0);
}

TEST_F(GridSpecTest, BestFitCellContainsBothEndpoints) {
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const Point a{rng.Uniform(0, 1024), rng.Uniform(0, 1024)};
    const Point b{rng.Uniform(0, 1024), rng.Uniform(0, 1024)};
    const CellCoord c = grid_.BestFitCell(a, b);
    const BBox box = grid_.CellBox(c);
    ASSERT_TRUE(box.Contains(a));
    ASSERT_TRUE(box.Contains(b));
    // Definition 11: at the next finer level the endpoints separate (when
    // not already at the finest level).
    if (c.level < grid_.finest_level()) {
      ASSERT_NE(grid_.CellAt(a, c.level + 1), grid_.CellAt(b, c.level + 1));
    }
  }
}

}  // namespace
}  // namespace frt
