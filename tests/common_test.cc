// Unit tests for src/common: Status, Result, Rng, strings, FunctionRef,
// Span.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/function_ref.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/span.h"
#include "common/status.h"
#include "common/strings.h"

namespace frt {
namespace {

// ---------------- Status ----------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("key");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_EQ(t.message(), "key");
  // Copy is independent.
  t = Status::OK();
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int v) {
  FRT_RETURN_IF_ERROR(FailsWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

// ---------------- Result ----------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-7), -7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  FRT_ASSIGN_OR_RETURN(const int h, Half(v));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------- Rng ----------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GE(differing, 15);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::set<uint64_t> seen;
  int counts[5] = {0};
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{5});
    ASSERT_LT(v, 5u);
    seen.insert(v);
    ++counts[v];
  }
  EXPECT_EQ(seen.size(), 5u);
  for (const int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.08);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(19);
  const int n = 100000;
  const double mu = -4.0;
  const double b = 2.0;
  double sum = 0.0;
  double sum_abs_dev = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Laplace(mu, b);
    sum += v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, mu, 0.05);
  // E|X - mu| = b for Laplace.
  Rng rng2(19);
  for (int i = 0; i < n; ++i) {
    sum_abs_dev += std::fabs(rng2.Laplace(mu, b) - mu);
  }
  EXPECT_NEAR(sum_abs_dev / n, b, 0.05);
}

TEST(RngTest, LaplaceMedianAtMu) {
  Rng rng(23);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Laplace(10.0, 5.0) < 10.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.07);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream should not replay the parent's outputs.
  Rng b(31);
  b.Next();  // align with the Fork() consumption
  int equal = 0;
  for (int i = 0; i < 16; ++i) {
    if (child.Next() == b.Next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

// ---------------- strings ----------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t "), "");
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e3 "), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("RSC-0.5", "RSC"));
  EXPECT_FALSE(StartsWith("SC", "RSC"));
}

// ---------------- FunctionRef ----------------

int FreeTwice(int x) { return 2 * x; }

TEST(FunctionRefTest, DefaultIsNull) {
  FunctionRef<int(int)> f;
  EXPECT_FALSE(static_cast<bool>(f));
  FunctionRef<int(int)> g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(FunctionRefTest, BindsNamedLambda) {
  int calls = 0;
  auto add = [&calls](int x) {
    ++calls;
    return x + 1;
  };
  FunctionRef<int(int)> f = add;
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(41), 42);
  EXPECT_EQ(calls, 1);
}

TEST(FunctionRefTest, BindsConstLambdaAndFunctionPointer) {
  const auto square = [](int x) { return x * x; };
  FunctionRef<int(int)> f = square;
  EXPECT_EQ(f(7), 49);
  FunctionRef<int(int)> g = FreeTwice;
  EXPECT_EQ(g(21), 42);
}

TEST(FunctionRefTest, CopyRefersToSameCallable) {
  int hits = 0;
  auto bump = [&hits](int) {
    ++hits;
    return 0;
  };
  FunctionRef<int(int)> f = bump;
  FunctionRef<int(int)> g = f;
  (void)f(0);
  (void)g(0);
  EXPECT_EQ(hits, 2);
}

// ---------------- Span ----------------

TEST(SpanTest, DefaultIsEmpty) {
  Span<const int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.begin(), s.end());
}

TEST(SpanTest, ViewsVectorWithoutCopy) {
  std::vector<int> v = {1, 2, 3};
  Span<const int> s = v;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.data(), v.data());
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s.front(), 1);
  EXPECT_EQ(s.back(), 3);
  int sum = 0;
  for (const int x : s) sum += x;
  EXPECT_EQ(sum, 6);
}

TEST(SpanTest, MutableSpanWritesThrough) {
  std::vector<int> v = {1, 2, 3};
  Span<int> s = v;
  s[1] = 20;
  EXPECT_EQ(v[1], 20);
  Span<const int> sub(s.data() + 1, 2);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0], 20);
}

TEST(LoggingTest, ParseLogLevelAcceptsTheWholeRange) {
  ASSERT_TRUE(ParseLogLevel("0").has_value());
  EXPECT_EQ(*ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(*ParseLogLevel("1"), LogLevel::kInfo);
  EXPECT_EQ(*ParseLogLevel("2"), LogLevel::kWarning);
  EXPECT_EQ(*ParseLogLevel("3"), LogLevel::kError);
  EXPECT_EQ(*ParseLogLevel("4"), LogLevel::kOff);
}

TEST(LoggingTest, ParseLogLevelRejectsWhatAtoiSilentlyZeroed) {
  // The regression this locks in: atoi("garbage") == 0 used to turn any
  // malformed FRT_LOG_LEVEL into kDebug (the noisiest level). Every one
  // of these must now be rejected so the caller keeps its default.
  for (const char* bad : {"", "x", "1x", "x1", " 1", "1 ", "1.5", "-1",
                          "5", "007x", "2147483648999", "--2", "+ 2"}) {
    EXPECT_FALSE(ParseLogLevel(bad).has_value()) << "accepted: '" << bad
                                                 << "'";
  }
  EXPECT_FALSE(ParseLogLevel(nullptr).has_value());
}

}  // namespace
}  // namespace frt
