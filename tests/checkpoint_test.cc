// Coverage of the durable budget-ledger layer (src/service/checkpoint):
// snapshot encode/decode round-trips, strict rejection of corrupt or
// truncated snapshots, atomic CheckpointStore persistence, in-process
// crash/recover through ServiceDispatcher (the conservative-carry
// invariant: recovery can only under-grant, never over-grant), and the
// interval metrics exporter.

#include "service/checkpoint.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/dispatcher.h"
#include "service/metrics_exporter.h"
#include "stream/ingest.h"
#include "testing_util.h"

namespace frt {
namespace {

using frt::testing::ServiceCapture;
using frt::testing::SyntheticCsv;

constexpr uint64_t kSeed = 20260807;

/// Fresh unique directory under the test temp root.
std::string MakeStateDir() {
  std::string templ = ::testing::TempDir() + "frt_ckpt_XXXXXX";
  char* made = mkdtemp(templ.data());
  EXPECT_NE(made, nullptr);
  return templ;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ServiceCheckpoint SampleCheckpoint() {
  ServiceCheckpoint image;
  image.sequence = 41;
  image.total_budget = 4.0;
  image.per_object_budget = 1.5;
  FeedCheckpoint alpha;
  alpha.feed = "alpha";
  alpha.generations = 3;
  alpha.windows_closed = 17;
  alpha.wholesale_spent = 1.7999999999999998;  // exercises %.17g fidelity
  alpha.per_object_floor = 0.6;
  FeedCheckpoint spaced;
  spaced.feed = "beta feed with spaces";
  spaced.generations = 1;
  spaced.windows_closed = 2;
  spaced.wholesale_spent = 0.25;
  spaced.per_object_floor = 0.0;
  image.feeds = {alpha, spaced};
  return image;
}

// ---------------------------------------------------------------------------
// Format round-trip and strict rejection.

TEST(CheckpointFormatTest, EncodeDecodeRoundTrip) {
  const ServiceCheckpoint image = SampleCheckpoint();
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sequence, 41u);
  EXPECT_EQ(decoded->total_budget, 4.0);
  EXPECT_EQ(decoded->per_object_budget, 1.5);
  ASSERT_EQ(decoded->feeds.size(), 2u);
  EXPECT_EQ(decoded->feeds[0].feed, "alpha");
  EXPECT_EQ(decoded->feeds[0].generations, 3u);
  EXPECT_EQ(decoded->feeds[0].windows_closed, 17u);
  // Bit-exact: a recovered ledger must match the one that was persisted.
  EXPECT_EQ(decoded->feeds[0].wholesale_spent, 1.7999999999999998);
  EXPECT_EQ(decoded->feeds[0].per_object_floor, 0.6);
  EXPECT_EQ(decoded->feeds[1].feed, "beta feed with spaces");
  EXPECT_EQ(decoded->feeds[1].wholesale_spent, 0.25);
}

TEST(CheckpointFormatTest, EmptyFeedListRoundTrips) {
  ServiceCheckpoint image;
  image.sequence = 1;
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sequence, 1u);
  EXPECT_TRUE(decoded->feeds.empty());
}

TEST(CheckpointFormatTest, RejectsBadMagicAndVersion) {
  std::string text = EncodeCheckpoint(SampleCheckpoint());
  EXPECT_FALSE(DecodeCheckpoint("not-a-checkpoint 1\n").ok());
  std::string wrong_version = text;
  wrong_version.replace(wrong_version.find(" 1\n"), 3, " 9\n");
  EXPECT_FALSE(DecodeCheckpoint(wrong_version).ok());
  EXPECT_FALSE(DecodeCheckpoint("").ok());
}

TEST(CheckpointFormatTest, RejectsChecksumMismatch) {
  std::string text = EncodeCheckpoint(SampleCheckpoint());
  // Flip one payload byte; the checksum line no longer matches.
  const size_t pos = text.find("alpha");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = 'A';
  auto decoded = DecodeCheckpoint(text);
  EXPECT_FALSE(decoded.ok());
}

TEST(CheckpointFormatTest, RejectsTruncatedSnapshot) {
  const std::string text = EncodeCheckpoint(SampleCheckpoint());
  // Every proper prefix is invalid: a torn write can never be accepted.
  EXPECT_FALSE(DecodeCheckpoint(text.substr(0, text.size() / 2)).ok());
  const size_t checksum_at = text.rfind("checksum");
  ASSERT_NE(checksum_at, std::string::npos);
  EXPECT_FALSE(DecodeCheckpoint(text.substr(0, checksum_at)).ok());
  EXPECT_FALSE(DecodeCheckpoint(text.substr(0, text.size() - 1)).ok());
}

TEST(CheckpointFormatTest, RejectsTrailingGarbage) {
  std::string text = EncodeCheckpoint(SampleCheckpoint());
  EXPECT_FALSE(DecodeCheckpoint(text + "extra\n").ok());
}

TEST(CheckpointFormatTest, RejectsDuplicateFeedsAndBadValues) {
  ServiceCheckpoint dup = SampleCheckpoint();
  dup.feeds[1].feed = dup.feeds[0].feed;
  EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(dup)).ok());

  ServiceCheckpoint negative = SampleCheckpoint();
  negative.feeds[0].wholesale_spent = -0.5;
  EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(negative)).ok());

  // Malformed number in an otherwise well-formed (re-checksummed) image is
  // caught by the field parser, not just the checksum.
  std::string text = EncodeCheckpoint(SampleCheckpoint());
  const size_t pos = text.find("seq 41");
  ASSERT_NE(pos, std::string::npos);
  std::string broken = text.substr(0, pos) + "seq 4x1\n" +
                       text.substr(text.find('\n', pos) + 1);
  // Strip the now-stale checksum line and re-encode is overkill; the
  // checksum check fires first, which is equally a rejection.
  EXPECT_FALSE(DecodeCheckpoint(broken).ok());
}

// ---------------------------------------------------------------------------
// Atomic persistence.

TEST(CheckpointStoreTest, LoadOnFreshDirIsEmpty) {
  auto store = CheckpointStore::Open(MakeStateDir());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto loaded = store->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->has_value());
}

TEST(CheckpointStoreTest, OpenCreatesMissingDirectory) {
  const std::string dir = MakeStateDir() + "/nested/state";
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store->Write(SampleCheckpoint()).ok());
}

TEST(CheckpointStoreTest, WriteLoadRoundTripAndOverwrite) {
  auto store = CheckpointStore::Open(MakeStateDir());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ServiceCheckpoint image = SampleCheckpoint();
  ASSERT_TRUE(store->Write(image).ok());
  auto first = store->Load();
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->sequence, 41u);

  image.sequence = 42;
  image.feeds[0].wholesale_spent = 2.4;
  ASSERT_TRUE(store->Write(image).ok());
  auto second = store->Load();
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((*second)->sequence, 42u);
  EXPECT_EQ((*second)->feeds[0].wholesale_spent, 2.4);
  // The temp file never survives a successful write.
  EXPECT_NE(::access(store->path().c_str(), F_OK), -1);
  EXPECT_EQ(::access((store->path() + ".tmp").c_str(), F_OK), -1);
}

TEST(CheckpointStoreTest, SyncDirFailurePropagatesAsIOError) {
  // The durability contract is "rename THEN dir fsync": a crash between
  // them can lose the rename, so a failed dir sync must fail the Write —
  // it used to be silently discarded. Deleting the state dir out from
  // under the store makes the dir open (the first SyncDir step) fail
  // deterministically.
  const std::string dir = MakeStateDir();
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store->SyncDir().ok());
  ASSERT_EQ(::rmdir(dir.c_str()), 0) << "state dir should still be empty";
  const Status st = store->SyncDir();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // And through the full Write path: with the directory gone the write
  // must report the failure, never pretend the snapshot is durable.
  EXPECT_FALSE(store->Write(SampleCheckpoint()).ok());
}

TEST(CheckpointStoreTest, LoadRejectsCorruptSnapshot) {
  const std::string dir = MakeStateDir();
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store->Write(SampleCheckpoint()).ok());
  // Truncate the durable snapshot in place (a torn disk image).
  const std::string text = ReadFile(store->path());
  std::ofstream out(store->path(), std::ios::binary | std::ios::trunc);
  out << text.substr(0, text.size() / 2);
  out.close();
  EXPECT_FALSE(store->Load().ok());
}

// ---------------------------------------------------------------------------
// Dispatcher recovery: the conservative-carry invariant across restarts.

ServiceConfig DurableConfig(const std::string& state_dir) {
  ServiceConfig config;
  config.stream.window_size = 20;
  config.stream.batch.shards = 2;
  config.stream.batch.pipeline.m = 3;
  config.stream.batch.pipeline.epsilon_global = 0.5;
  config.stream.batch.pipeline.epsilon_local = 0.5;  // 1.0 per window
  config.pool_threads = 2;
  config.state_dir = state_dir;
  config.checkpoint_interval_ms = 1;
  return config;
}

std::vector<Trajectory> Arrivals(int n, int distinct_ids = 0) {
  std::istringstream in(SyntheticCsv(n, distinct_ids));
  std::vector<Trajectory> out;
  TrajectoryReader reader(in);
  for (;;) {
    auto next = reader.Next();
    EXPECT_TRUE(next.ok());
    if (!next->has_value()) break;
    out.push_back(std::move(**next));
  }
  return out;
}

TEST(CheckpointRecoveryTest, WholesaleSpendCarriesAcrossRestart) {
  const std::string dir = MakeStateDir();
  const std::vector<Trajectory> trajs = Arrivals(60);  // 3 windows of 20
  const std::vector<std::string> feeds = {"alpha", "beta"};

  // Run 1: budget 4.0, per-window epsilon 1.0 -> publishes all 3 windows,
  // leaving 3.0 spent per feed in the durable snapshot.
  {
    ServiceConfig config = DurableConfig(dir);
    config.stream.total_budget = 4.0;
    ServiceCapture capture;
    ServiceDispatcher service(config, capture.MakeSink());
    ASSERT_TRUE(service.Start(kSeed).ok());
    for (const Trajectory& t : trajs) {
      for (const auto& feed : feeds) ASSERT_TRUE(service.Offer(feed, t));
    }
    ASSERT_TRUE(service.Finish().ok());
    const ServiceReport& report = service.report();
    EXPECT_EQ(report.feeds_recovered, 0u);
    EXPECT_GE(report.checkpoints_written, 1u);
    EXPECT_EQ(report.windows_published, 6u);
    for (const auto& feed : report.feeds_report) {
      EXPECT_DOUBLE_EQ(feed.stream.epsilon_spent, 3.0);
    }
  }

  // The snapshot on disk carries exactly the run-1 ledgers.
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    auto loaded = store->Load();
    ASSERT_TRUE(loaded.ok() && loaded->has_value());
    ASSERT_EQ((*loaded)->feeds.size(), 2u);
    for (const auto& feed : (*loaded)->feeds) {
      EXPECT_DOUBLE_EQ(feed.wholesale_spent, 3.0);
      EXPECT_EQ(feed.windows_closed, 3u);
      EXPECT_EQ(feed.generations, 1u);
    }
  }

  // Run 2, same state dir and budget: recovery preloads 3.0 spent per
  // feed, so only ONE more window fits (3.0 + 1.0 <= 4.0); the rest are
  // refused. Total spend across both runs never exceeds the budget.
  {
    ServiceConfig config = DurableConfig(dir);
    config.stream.total_budget = 4.0;
    ServiceCapture capture;
    ServiceDispatcher service(config, capture.MakeSink());
    ASSERT_TRUE(service.Start(kSeed + 1).ok());
    for (const Trajectory& t : trajs) {
      for (const auto& feed : feeds) ASSERT_TRUE(service.Offer(feed, t));
    }
    ASSERT_TRUE(service.Finish().ok());
    const ServiceReport& report = service.report();
    EXPECT_EQ(report.feeds_recovered, 2u);
    EXPECT_EQ(report.windows_published, 2u);  // one per feed
    EXPECT_EQ(report.windows_refused, 4u);    // two per feed
    EXPECT_TRUE(ServiceHadRefusals(report));
    for (const auto& feed : report.feeds_report) {
      EXPECT_EQ(feed.sessions, 2u);  // generation continued, not reset
      EXPECT_DOUBLE_EQ(feed.stream.epsilon_spent, 4.0);
      EXPECT_LE(feed.stream.epsilon_spent, 4.0 + 1e-12);
    }
    // Recovered window indices continue where run 1 stopped.
    for (const auto& [name, feed] : capture.feeds) {
      ASSERT_EQ(feed.reports.size(), 1u) << name;
      EXPECT_EQ(feed.reports[0].index, 3u) << name;
    }
  }
}

TEST(CheckpointRecoveryTest, PerObjectFloorCarriesAcrossRestart) {
  const std::string dir = MakeStateDir();
  // Ids recycle every window: each window holds objects 0..19, so each
  // object's cumulative spend grows by 1.0 per published window.
  const std::vector<Trajectory> trajs = Arrivals(60, 20);

  // Run 1: per-object budget 1.5 -> the first window spends 1.0 per
  // object, the remaining windows are refused (1.0 + 1.0 > 1.5).
  {
    ServiceConfig config = DurableConfig(dir);
    config.stream.accounting = BudgetAccounting::kPerObject;
    config.stream.per_object_budget = 1.5;
    ServiceCapture capture;
    ServiceDispatcher service(config, capture.MakeSink());
    ASSERT_TRUE(service.Start(kSeed).ok());
    for (const Trajectory& t : trajs) ASSERT_TRUE(service.Offer("taxi", t));
    ASSERT_TRUE(service.Finish().ok());
    EXPECT_EQ(service.report().windows_published, 1u);
    ASSERT_EQ(service.report().feeds_report.size(), 1u);
    EXPECT_DOUBLE_EQ(service.report().feeds_report[0].stream.epsilon_spent,
                     1.0);
  }

  // Run 2: every object — including NEVER-seen ones — starts at the
  // recovered floor of 1.0, so no further window is admitted. A crash can
  // only under-grant.
  {
    ServiceConfig config = DurableConfig(dir);
    config.stream.accounting = BudgetAccounting::kPerObject;
    config.stream.per_object_budget = 1.5;
    ServiceCapture capture;
    ServiceDispatcher service(config, capture.MakeSink());
    ASSERT_TRUE(service.Start(kSeed + 1).ok());
    for (const Trajectory& t : trajs) ASSERT_TRUE(service.Offer("taxi", t));
    ASSERT_TRUE(service.Finish().ok());
    const ServiceReport& report = service.report();
    EXPECT_EQ(report.feeds_recovered, 1u);
    EXPECT_EQ(report.windows_published, 0u);
    EXPECT_EQ(report.windows_refused, 3u);
    ASSERT_EQ(report.feeds_report.size(), 1u);
    // Floor preserved: max per-object spend never exceeds the budget.
    EXPECT_DOUBLE_EQ(report.feeds_report[0].stream.epsilon_spent, 1.0);
    EXPECT_LE(report.feeds_report[0].stream.epsilon_spent, 1.5);
  }
}

TEST(CheckpointRecoveryTest, StartRefusesCorruptSnapshot) {
  const std::string dir = MakeStateDir();
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Write(SampleCheckpoint()).ok());
    const std::string text = ReadFile(store->path());
    std::ofstream out(store->path(), std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() - 4);
  }
  ServiceConfig config = DurableConfig(dir);
  ServiceCapture capture;
  ServiceDispatcher service(config, capture.MakeSink());
  // A snapshot that exists but cannot be trusted must fail startup loudly
  // instead of silently re-granting budget.
  EXPECT_FALSE(service.Start(kSeed).ok());
}

// ---------------------------------------------------------------------------
// Metrics exporter.

TEST(MetricsExporterTest, EmitsMachineReadableLines) {
  const std::string path = MakeStateDir() + "/metrics.log";
  MetricsExporter::Options options;
  options.path = path;
  options.interval_ms = 10;
  options.per_feed = true;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(exporter.per_feed());

  MetricsSnapshot snapshot;
  snapshot.seq = 7;
  snapshot.windows_published = 3;
  snapshot.trajectories_published = 60;
  snapshot.epsilon_spent_max = 1.8;
  snapshot.checkpoint_seq = 5;
  snapshot.checkpoints_written = 5;
  snapshot.checkpoint_errors = 2;
  snapshot.feeds_quarantined = 1;
  MetricsSnapshot::Feed feed;
  feed.feed = "alpha";
  feed.epsilon_spent = 1.8;
  feed.epsilon_remaining = 7.2;
  feed.windows_published = 3;
  snapshot.feeds_detail.push_back(feed);
  exporter.Publish(snapshot);

  // The exporter re-emits on every interval even without new snapshots.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  exporter.Stop();
  EXPECT_GE(exporter.lines_written(), 1u);

  const std::string log = ReadFile(path);
  EXPECT_NE(log.find("frt_metrics "), std::string::npos);
  EXPECT_NE(log.find("seq=7"), std::string::npos);
  EXPECT_NE(log.find("windows_published=3"), std::string::npos);
  EXPECT_NE(log.find("ckpt_seq=5"), std::string::npos);
  EXPECT_NE(log.find("ckpt_errors=2"), std::string::npos);
  EXPECT_NE(log.find("feeds_quarantined=1"), std::string::npos);
  EXPECT_NE(log.find("frt_feed "), std::string::npos);
  EXPECT_NE(log.find("feed=alpha"), std::string::npos);
  EXPECT_NE(log.find("eps_remaining=7.2"), std::string::npos);
}

TEST(MetricsExporterTest, EmitsStageHistogramLinesWhenEnabled) {
  const std::string path = MakeStateDir() + "/metrics.log";
  MetricsExporter::Options options;
  options.path = path;
  options.interval_ms = 10;
  options.histograms = true;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(exporter.histograms());

  MetricsSnapshot snapshot;
  snapshot.seq = 1;
  MetricsSnapshot::Stage stage;
  stage.stage = "anonymize";
  stage.count = 42;
  stage.p50_ms = 1.25;
  stage.p99_ms = 9.5;
  stage.max_ms = 12.0;
  stage.mean_ms = 2.0;
  snapshot.stages.push_back(stage);
  exporter.Publish(snapshot);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  exporter.Stop();

  const std::string log = ReadFile(path);
  EXPECT_NE(log.find("frt_stage "), std::string::npos);
  EXPECT_NE(log.find("stage=anonymize"), std::string::npos);
  EXPECT_NE(log.find("count=42"), std::string::npos);
  EXPECT_NE(log.find("p50_ms=1.250"), std::string::npos);
  EXPECT_NE(log.find("p99_ms=9.500"), std::string::npos);
}

TEST(MetricsExporterTest, StageLinesAbsentByDefault) {
  const std::string path = MakeStateDir() + "/metrics.log";
  MetricsExporter::Options options;
  options.path = path;
  options.interval_ms = 10;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_FALSE(exporter.histograms());

  MetricsSnapshot snapshot;
  snapshot.seq = 1;
  MetricsSnapshot::Stage stage;
  stage.stage = "anonymize";
  stage.count = 1;
  snapshot.stages.push_back(stage);
  exporter.Publish(snapshot);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  exporter.Stop();
  EXPECT_EQ(ReadFile(path).find("frt_stage "), std::string::npos);
}

TEST(MetricsExporterTest, StopFlushesFinalPartialIntervalSnapshot) {
  const std::string path = MakeStateDir() + "/metrics.log";
  MetricsExporter::Options options;
  options.path = path;
  // An interval far longer than the test: the loop never fires, so any
  // output must come from Stop()'s final flush.
  options.interval_ms = 60000;
  options.per_feed = true;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());

  MetricsSnapshot snapshot;
  snapshot.seq = 1;
  exporter.Publish(snapshot);
  snapshot.seq = 2;
  snapshot.windows_published = 9;
  MetricsSnapshot::Feed feed;
  feed.feed = "alpha";
  feed.epsilon_spent = 0.5;
  feed.epsilon_remaining = 1.5;
  snapshot.feeds_detail.push_back(feed);
  exporter.Publish(snapshot);
  exporter.Stop();

  // The final (latest) snapshot made it out, not the first.
  EXPECT_GE(exporter.lines_written(), 1u);
  const std::string log = ReadFile(path);
  EXPECT_NE(log.find("seq=2"), std::string::npos);
  EXPECT_NE(log.find("windows_published=9"), std::string::npos);
  EXPECT_NE(log.find("feed=alpha"), std::string::npos);
}

TEST(MetricsExporterTest, SetIntervalMsRetunesTheCadence) {
  const std::string path = MakeStateDir() + "/metrics.log";
  MetricsExporter::Options options;
  options.path = path;
  options.interval_ms = 60000;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_EQ(exporter.interval_ms(), 60000);

  MetricsSnapshot snapshot;
  snapshot.seq = 1;
  exporter.Publish(snapshot);
  // Retune from one-a-minute to 5 ms: the sleeping loop must pick the
  // new cadence up and start emitting well before the old deadline.
  exporter.SetIntervalMs(5);
  EXPECT_EQ(exporter.interval_ms(), 5);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (exporter.lines_written() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(exporter.lines_written(), 2u);
  exporter.Stop();
}

TEST(MetricsExporterTest, StopIsIdempotentAndStderrPathWorks) {
  MetricsExporter::Options options;
  options.path = "-";
  options.interval_ms = 1000;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  MetricsSnapshot snapshot;
  snapshot.seq = 1;
  exporter.Publish(snapshot);
  exporter.Stop();
  exporter.Stop();
  EXPECT_GE(exporter.lines_written(), 1u);
}

}  // namespace
}  // namespace frt
