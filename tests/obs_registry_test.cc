// obs::Registry: counter/gauge/histogram-cell semantics, the Prometheus
// text exposition contract (TYPE/HELP lines, label escaping, summary
// rendering, monotone counters across scrapes), and concurrent-writer
// safety of HistogramCell.

#include "obs/registry.h"

#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/histogram.h"

namespace frt::obs {
namespace {

/// All lines of `text` that start with `prefix`.
std::vector<std::string> LinesWithPrefix(const std::string& text,
                                         const std::string& prefix) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    if (line.rfind(prefix, 0) == 0) out.push_back(line);
    pos = end + 1;
  }
  return out;
}

TEST(RegistryTest, CounterIncrementsMonotonically) {
  Registry registry;
  Counter* c = registry.GetCounter("frt_test_events_total", "events");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0u);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(RegistryTest, ReRegistrationReturnsSameObject) {
  Registry registry;
  Counter* a = registry.GetCounter("frt_test_total", "first help");
  Counter* b = registry.GetCounter("frt_test_total", "second help");
  EXPECT_EQ(a, b);
  a->Inc(7);
  EXPECT_EQ(b->value(), 7u);
  // First help string wins.
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP frt_test_total first help"),
            std::string::npos);
  EXPECT_EQ(text.find("second help"), std::string::npos);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  Registry registry;
  ASSERT_NE(registry.GetCounter("frt_test_metric"), nullptr);
  EXPECT_EQ(registry.GetGauge("frt_test_metric"), nullptr);
  EXPECT_EQ(registry.GetHistogram("frt_test_metric"), nullptr);
  // The original registration is untouched by the failed lookups.
  EXPECT_NE(registry.GetCounter("frt_test_metric"), nullptr);
}

TEST(RegistryTest, GaugeIsLastWriteWins) {
  Registry registry;
  Gauge* g = registry.GetGauge("frt_test_depth", "queue depth");
  ASSERT_NE(g, nullptr);
  g->Set(3.5);
  g->Set(-1.0);
  EXPECT_EQ(g->value(), -1.0);
}

TEST(RegistryTest, LabelEscapeCoversSpecials) {
  EXPECT_EQ(LabelEscape("plain"), "plain");
  EXPECT_EQ(LabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(LabelEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(LabelEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(WithLabel("frt_stage_ms", "stage", "an\"on"),
            "frt_stage_ms{stage=\"an\\\"on\"}");
}

// ---- Prometheus text exposition conformance (satellite: the scrape the
// CI smoke and any real Prometheus server consume). ----

TEST(RegistryTest, ExpositionEmitsTypeAndHelpPerFamily) {
  Registry registry;
  registry.GetCounter("frt_req_total", "requests")->Inc(3);
  registry.GetGauge("frt_depth", "depth")->Set(2.0);
  registry.GetHistogram("frt_lat_ms", "latency")->Record(10.0);
  const std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# HELP frt_req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE frt_req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("frt_req_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE frt_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("frt_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE frt_lat_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("frt_lat_ms_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("frt_lat_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("frt_lat_ms{quantile=\"0.99\"}"), std::string::npos);
}

TEST(RegistryTest, ExpositionGroupsLabelVariantsUnderOneTypeLine) {
  Registry registry;
  registry.GetHistogram(WithLabel("frt_stage_ms", "stage", "anonymize"),
                        "per-stage latency")->Record(5.0);
  registry.GetHistogram(WithLabel("frt_stage_ms", "stage", "publish"),
                        "per-stage latency")->Record(7.0);
  const std::string text = registry.RenderPrometheus();
  // One TYPE line for the whole family, not one per label variant.
  EXPECT_EQ(LinesWithPrefix(text, "# TYPE frt_stage_ms").size(), 1u);
  EXPECT_NE(text.find("frt_stage_ms{stage=\"anonymize\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("frt_stage_ms_sum{stage=\"publish\"}"),
            std::string::npos);
  EXPECT_NE(text.find("frt_stage_ms_count{stage=\"anonymize\"} 1\n"),
            std::string::npos);
}

TEST(RegistryTest, ExpositionEscapesLabelValues) {
  Registry registry;
  registry.GetCounter(WithLabel("frt_feed_total", "feed", "a\"b\\c\nd"),
                      "per-feed")->Inc();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("frt_feed_total{feed=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
  // The raw newline must never appear inside a series line.
  EXPECT_EQ(text.find("c\nd"), std::string::npos);
}

TEST(RegistryTest, CountersAreMonotoneAcrossScrapes) {
  Registry registry;
  Counter* c = registry.GetCounter("frt_scrape_total", "scrapes");
  c->Inc(5);
  const std::string first = registry.RenderPrometheus();
  c->Inc(2);
  const std::string second = registry.RenderPrometheus();
  EXPECT_NE(first.find("frt_scrape_total 5\n"), std::string::npos);
  EXPECT_NE(second.find("frt_scrape_total 7\n"), std::string::npos);
}

TEST(RegistryTest, GaugeRendersInfinitiesInPrometheusSpelling) {
  Registry registry;
  registry.GetGauge("frt_inf")->Set(
      std::numeric_limits<double>::infinity());
  registry.GetGauge("frt_ninf")->Set(
      -std::numeric_limits<double>::infinity());
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("frt_inf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("frt_ninf -Inf\n"), std::string::npos);
}

// ---- HistogramCell: parity with the single-threaded Histogram and
// multi-writer safety. ----

TEST(HistogramCellTest, SnapshotMatchesPlainHistogram) {
  HistogramCell cell;
  Histogram reference;
  std::mt19937 rng(20260807);
  std::lognormal_distribution<double> d(1.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = d(rng);
    samples.push_back(v);
    cell.Record(v);
    reference.Record(v);
  }
  const Histogram snap = cell.Snapshot();
  EXPECT_EQ(snap.count(), reference.count());
  EXPECT_EQ(snap.min_ms(), reference.min_ms());
  EXPECT_EQ(snap.max_ms(), reference.max_ms());
  EXPECT_NEAR(snap.sum_ms(), reference.sum_ms(),
              1e-9 * reference.sum_ms());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(snap.Quantile(q), reference.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramCellTest, ConcurrentWritersLoseNoSamples) {
  HistogramCell cell;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&cell, t] {
      for (int i = 0; i < kPerThread; ++i) {
        cell.Record(0.5 + static_cast<double>((t * 31 + i) % 100));
      }
    });
  }
  for (auto& w : writers) w.join();
  const Histogram snap = cell.Snapshot();
  EXPECT_EQ(snap.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.min_ms(), 0.5);
  EXPECT_EQ(snap.max_ms(), 99.5);
}

TEST(SnapshotBoardTest, ReadSeesLatestCompleteSnapshot) {
  SnapshotBoard<std::vector<int>> board;
  EXPECT_EQ(board.Read(), nullptr);
  board.Publish(std::make_shared<const std::vector<int>>(
      std::vector<int>{1, 2, 3}));
  auto first = board.Read();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->size(), 3u);
  board.Publish(std::make_shared<const std::vector<int>>(
      std::vector<int>{4}));
  // The old snapshot stays valid for readers still holding it.
  EXPECT_EQ(first->at(0), 1);
  EXPECT_EQ(board.Read()->size(), 1u);
}

}  // namespace
}  // namespace frt::obs
