// Deterministic end-to-end regression: a fixed-seed synthetic workload
// through the GL pipeline and the batch runtime. Guards the properties every
// scaling PR must preserve — trajectory-count stability, exact epsilon
// accounting, run-to-run determinism, and single-shot/batch equivalence.

#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.h"
#include "runtime/batch_runner.h"
#include "synth/workload.h"
#include "testing_util.h"

namespace frt {
namespace {

constexpr uint64_t kWorkloadSeed = 424242;
constexpr uint64_t kPipelineSeed = 77;

class RuntimeE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(frt::testing::TaxiFleet(
        /*taxis=*/48, /*target_points=*/80, /*grid_cols_rows=*/14,
        kWorkloadSeed));
    ASSERT_FALSE(dataset_->empty());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static FrequencyRandomizerConfig PipelineConfig() {
    return frt::testing::SmallPipeline(/*m=*/8, /*epsilon_global=*/0.4,
                                       /*epsilon_local=*/0.6);
  }

  static const Dataset* dataset_;
};

const Dataset* RuntimeE2ETest::dataset_ = nullptr;

TEST_F(RuntimeE2ETest, WorkloadGenerationIsDeterministic) {
  const Dataset again =
      frt::testing::TaxiFleet(48, 80, 14, kWorkloadSeed);
  ASSERT_EQ(again.size(), dataset_->size());
  EXPECT_EQ(again.TotalPoints(), dataset_->TotalPoints());
  for (size_t i = 0; i < dataset_->size(); ++i) {
    EXPECT_EQ(again[i].points(), (*dataset_)[i].points());
  }
}

TEST_F(RuntimeE2ETest, GlPipelineIsStableAndAccountsExactly) {
  FrequencyRandomizer randomizer(PipelineConfig());
  Rng rng(kPipelineSeed);
  auto published = randomizer.Anonymize(*dataset_, rng);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  // Record-level method: trajectory count and ids survive anonymization.
  ASSERT_EQ(published->size(), dataset_->size());
  for (size_t i = 0; i < dataset_->size(); ++i) {
    EXPECT_EQ((*published)[i].id(), (*dataset_)[i].id());
  }

  // Sequential composition spends exactly eps_G + eps_L (Theorem 1).
  EXPECT_DOUBLE_EQ(randomizer.report().epsilon_spent, 1.0);

  // The mechanisms actually perturbed something.
  const RandomizerReport& report = randomizer.report();
  EXPECT_GT(report.candidate_set_size, 0u);
  EXPECT_GT(report.local.edits.insertions + report.local.edits.deletions +
                report.global.edits.insertions +
                report.global.edits.deletions,
            0u);

  // Identical seed => bit-identical published dataset.
  FrequencyRandomizer repeat(PipelineConfig());
  Rng rng2(kPipelineSeed);
  auto published2 = repeat.Anonymize(*dataset_, rng2);
  ASSERT_TRUE(published2.ok());
  ASSERT_EQ(published2->size(), published->size());
  for (size_t i = 0; i < published->size(); ++i) {
    EXPECT_EQ((*published2)[i].points(), (*published)[i].points());
  }
  EXPECT_EQ(repeat.report().local.edits.insertions,
            report.local.edits.insertions);
  EXPECT_EQ(repeat.report().global.edits.deletions,
            report.global.edits.deletions);
}

TEST_F(RuntimeE2ETest, BatchRunnerMatchesConcatenatedShardOutputs) {
  // BatchRunner(K) output sizes must be concatenation-equivalent: the batch
  // output is exactly the per-shard single-shot outputs, appended in shard
  // order, so sizes (and points) agree shard by shard.
  const int kShards = 4;
  BatchRunnerConfig config;
  config.pipeline = PipelineConfig();
  config.shards = kShards;
  BatchRunner runner(config);
  Rng rng(kPipelineSeed);
  auto batched = runner.Anonymize(*dataset_, rng);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), dataset_->size());

  Rng master(kPipelineSeed);
  const auto plan = PlanShards(dataset_->size(), kShards);
  size_t batched_points = 0;
  size_t concatenated_points = 0;
  std::vector<Rng> streams;
  for (size_t i = 0; i < plan.size(); ++i) streams.push_back(master.Fork());
  for (size_t i = 0; i < plan.size(); ++i) {
    Dataset shard;
    for (size_t j = plan[i].begin; j < plan[i].end; ++j) {
      ASSERT_TRUE(shard.Add((*dataset_)[j]).ok());
    }
    FrequencyRandomizer pipeline(PipelineConfig());
    auto out = pipeline.Anonymize(shard, streams[i]);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out->size(), plan[i].size());
    concatenated_points += out->TotalPoints();
    for (size_t j = plan[i].begin; j < plan[i].end; ++j) {
      batched_points += (*batched)[j].size();
      EXPECT_EQ((*batched)[j].size(), (*out)[j - plan[i].begin].size());
    }
  }
  EXPECT_EQ(batched->TotalPoints(), concatenated_points);
  EXPECT_EQ(batched_points, concatenated_points);

  // Epsilon accounting is identical to the single-shot run.
  EXPECT_DOUBLE_EQ(runner.report().epsilon_spent, 1.0);
  EXPECT_DOUBLE_EQ(runner.accountant().spent(), 1.0);
}

TEST_F(RuntimeE2ETest, BatchDeterminismAcrossRuns) {
  auto run = []() {
    BatchRunnerConfig config;
    config.pipeline = PipelineConfig();
    config.shards = 3;
    config.threads = 2;
    BatchRunner runner(config);
    Rng rng(kPipelineSeed);
    auto out = runner.Anonymize(*dataset_, rng);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return *std::move(out);
  };
  const Dataset a = run();
  const Dataset b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].points(), b[i].points());
  }
}

}  // namespace
}  // namespace frt
