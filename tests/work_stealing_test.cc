// Unit tests for runtime/work_stealing_pool.h and common/bounded_queue.h:
// completeness (every index exactly once), no deadlock on degenerate
// workloads, pool reuse, scheduling-independent results, BatchRunner
// equivalence between static and work-stealing dispatch, and queue
// FIFO/backpressure/close semantics.

#include "runtime/work_stealing_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "runtime/batch_runner.h"
#include "synth/workload.h"

namespace frt {
namespace {

TEST(WorkStealingPoolTest, ExecutesEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    WorkStealingPool pool(threads);
    const size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.Run(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(WorkStealingPoolTest, EmptyWorkloadDoesNotDeadlock) {
  WorkStealingPool pool(4);
  pool.Run(0, [](size_t) { FAIL() << "no task should run"; });
}

TEST(WorkStealingPoolTest, SingleItemWorkloadDoesNotDeadlock) {
  WorkStealingPool pool(8);
  std::atomic<int> hits{0};
  pool.Run(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(WorkStealingPoolTest, FewerTasksThanWorkers) {
  WorkStealingPool pool(8);
  std::atomic<int> hits{0};
  pool.Run(3, [&](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 3);
}

TEST(WorkStealingPoolTest, PoolIsReusableAcrossRuns) {
  WorkStealingPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + static_cast<size_t>(round % 7);
    std::atomic<size_t> sum{0};
    pool.Run(n, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(WorkStealingPoolTest, MergedOutputIdenticalUnderAnyThreadCount) {
  // Per-index result slots: the merged output vector must be a pure
  // function of the task definitions, never of the worker count.
  const size_t n = 257;
  auto run = [&](unsigned threads) {
    WorkStealingPool pool(threads);
    std::vector<uint64_t> slots(n, 0);
    pool.Run(n, [&](size_t i) { slots[i] = i * i + 17; });
    return slots;
  };
  const std::vector<uint64_t> base = run(1);
  for (const unsigned threads : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    EXPECT_EQ(base, run(threads)) << "threads " << threads;
  }
}

TEST(WorkStealingPoolTest, SkewedTasksAreRebalanced) {
  // One task blocks until every other task is done: whichever worker picks
  // it up stalls, and the rest of that worker's queue can only complete if
  // other workers steal it. Deadlocks (and times out) if stealing is
  // broken; checked via completion, not timing, so it is load-independent.
  WorkStealingPool pool(4);
  const size_t n = 64;
  // Indices are dealt round-robin and owners pop LIFO, so the last index
  // dealt to worker 0 is the first task worker 0 executes.
  const size_t blocker = ((n - 1) / pool.num_workers()) * pool.num_workers();
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  std::atomic<size_t> done{0};
  pool.Run(n, [&](size_t i) {
    if (i == blocker) {
      while (done.load(std::memory_order_acquire) < n - 1) {
        std::this_thread::yield();
      }
    }
    hits[i].fetch_add(1);
    done.fetch_add(1, std::memory_order_acq_rel);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_GT(pool.steal_count(), 0u);
}

Dataset SmallFleet(int taxis, uint64_t seed) {
  WorkloadConfig workload_config;
  workload_config.num_taxis = taxis;
  workload_config.target_points = 60;
  RoadGenConfig road_config;
  road_config.cols = 12;
  road_config.rows = 12;
  auto workload = GenerateTaxiWorkload(workload_config, road_config, seed);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return workload->dataset;
}

TEST(WorkStealingPoolTest, BatchRunnerOutputMatchesStaticDispatch) {
  // Dispatch policy moves work between threads, never between RNG streams,
  // so work-stealing and static batch runs are bit-identical.
  const Dataset input = SmallFleet(24, 7);
  auto run = [&](ShardDispatch dispatch, unsigned threads) {
    BatchRunnerConfig config;
    config.pipeline.m = 5;
    config.shards = 6;
    config.threads = threads;
    config.dispatch = dispatch;
    BatchRunner runner(config);
    Rng rng(404);
    auto out = runner.Anonymize(input, rng);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return *std::move(out);
  };
  const Dataset statically = run(ShardDispatch::kStatic, 2);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const Dataset stolen = run(ShardDispatch::kWorkStealing, threads);
    ASSERT_EQ(stolen.size(), statically.size()) << "threads " << threads;
    for (size_t i = 0; i < stolen.size(); ++i) {
      EXPECT_EQ(stolen[i].points(), statically[i].points())
          << "threads " << threads << ", trajectory " << i;
    }
  }
}

TEST(WorkStealingPoolTest, BatchRunnerReportsShardSkew) {
  const Dataset input = SmallFleet(24, 9);
  BatchRunnerConfig config;
  config.pipeline.m = 5;
  config.shards = 4;
  BatchRunner runner(config);
  Rng rng(5);
  auto out = runner.Anonymize(input, rng);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const BatchReport& report = runner.report();
  ASSERT_EQ(report.shard_wall_seconds.size(), 4u);
  EXPECT_LE(report.shard_wall_min, report.shard_wall_mean);
  EXPECT_LE(report.shard_wall_mean, report.shard_wall_max);
  double sum = 0.0;
  for (const double s : report.shard_wall_seconds) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(report.shard_wall_mean, sum / 4.0, 1e-12);
}

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  queue.Close();
  for (int i = 0; i < 5; ++i) {
    auto v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, PushAfterCloseFails) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.Push(1));
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  auto v = queue.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, BackpressureBlocksProducerUntilConsumed) {
  BoundedQueue<int> queue(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(queue.Push(i));
      pushed.fetch_add(1);
    }
  });
  // The producer can buffer at most `capacity` items ahead of the consumer.
  while (pushed.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(pushed.load(), 3);  // 2 queued + possibly 1 in flight
  for (int i = 0; i < 6; ++i) {
    auto v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 6);
}

TEST(BoundedQueueTest, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  consumer.join();
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> queue(16);
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        ASSERT_TRUE(queue.Push(p * kItemsEach + i));
      }
    });
  }
  std::atomic<long long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = queue.Pop()) {
        total.fetch_add(*v);
        count.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  const int n = kProducers * kItemsEach;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace frt
