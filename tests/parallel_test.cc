// Unit tests for common/parallel.h: edge-case sizes, thread clamping, and
// write-to-distinct-slots determinism.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace frt {
namespace {

TEST(ParallelForTest, ZeroItemsNeverInvokes) {
  std::atomic<int> calls{0};
  ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleItemRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  size_t index = 99;
  ParallelFor(
      1,
      [&](size_t i) {
        seen = std::this_thread::get_id();
        index = i;
      },
      8);
  EXPECT_EQ(seen, caller);  // n == 1 short-circuits to the calling thread
  EXPECT_EQ(index, 0u);
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  for (const size_t n : {2u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); }, 4);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ParallelForTest, FewerItemsThanThreads) {
  // Requesting far more workers than items must still visit each index
  // exactly once (workers are clamped to n).
  const size_t n = 3;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); }, 64);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, OversubscriptionCompletes) {
  // Many more workers than cores: the loop must neither deadlock nor skip.
  const size_t n = 10000;
  std::atomic<size_t> sum{0};
  ParallelFor(n, [&](size_t i) { sum.fetch_add(i + 1); }, 32);
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST(ParallelForTest, DistinctSlotWritesAreDeterministic) {
  // The documented usage pattern: each index writes only slot i. The result
  // must be identical across repeated runs and across thread counts.
  const size_t n = 512;
  auto run = [n](unsigned threads) {
    std::vector<uint64_t> out(n, 0);
    ParallelFor(
        n, [&](size_t i) { out[i] = i * 2654435761ULL + 17; }, threads);
    return out;
  };
  const std::vector<uint64_t> base = run(1);
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(5));
  EXPECT_EQ(base, run(16));
  EXPECT_EQ(base, run(0));  // hardware concurrency default
}

TEST(ParallelForTest, ExplicitSingleThreadPreservesOrder) {
  // workers <= 1 degrades to a plain sequential loop in index order.
  std::vector<size_t> order;
  ParallelFor(8, [&](size_t i) { order.push_back(i); }, 1);
  std::vector<size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace frt
