#!/usr/bin/env bash
# Crash/recover harness for the durable budget ledgers (ISSUE 6).
#
# Phase 0: malformed numeric flag values are usage errors naming the flag
#          (exit 2), never a silent zero budget.
# Phase 1: frt_serve is fed through a FIFO with checkpointing on, SIGKILLed
#          mid-stream, then restarted over the full feed with the same
#          --state-dir. The durable ledgers must carry: recovery is
#          reported, spend never shrinks, and the per-feed spend recorded
#          in the final checkpoint never exceeds the wholesale budget.
# Phase 2: kPerObject mode across a restart: the recovered per-object
#          floor keeps every object under --per-object-budget, so a window
#          that would push any object past it publishes nothing.
#
# Usage: kill_recover_test.sh /path/to/frt_serve

set -u

SERVE="${1:?usage: kill_recover_test.sh /path/to/frt_serve}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/frt_kill_recover_XXXXXX")"
SERVE_PID=""

cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Interleaved multi-feed CSV: feed,traj_id,x,y,t. 60 trajectories per feed
# (3 windows of 20), 24 points each, ids unique per feed. With
# --epsilon-global 0.5 --epsilon-local 0.5 each published window costs 1.0.
awk 'BEGIN {
  for (i = 0; i < 60; i++)
    for (f = 0; f < 2; f++) {
      x = 200 + (i * 137) % 1700; y = 300 + (i * 251) % 1500; t = 1000 + i
      for (j = 0; j < 24; j++) {
        printf "feed%d,%d,%f,%f,%d\n", f, i, x, y, t
        x += 35 + (j * 11) % 20; y += 25 + ((i + j) * 13) % 30; t += 60
      }
    }
}' > "$WORK/full.csv"

STREAM_FLAGS=(--window 20 --epsilon-global 0.5 --epsilon-local 0.5
              --shards 2 --seed 11 --checkpoint-interval-ms 20)
CKPT="$WORK/state/budget_ledgers.ckpt"

# --- Phase 0: strict flag parsing at the CLI boundary -----------------------
"$SERVE" --feeds "$WORK/full.csv" --output - --budget bogus \
  "${STREAM_FLAGS[@]}" >/dev/null 2> "$WORK/flag.err"
code=$?
[[ $code -eq 2 ]] || fail "invalid --budget exited $code, want 2"
grep -q -- "--budget" "$WORK/flag.err" ||
  fail "usage error does not name --budget: $(cat "$WORK/flag.err")"

# --- Phase 1: SIGKILL mid-stream, recover, never over-grant -----------------
BUDGET=4.0
mkfifo "$WORK/feed.fifo"
"$SERVE" --feeds "$WORK/feed.fifo" --output "$WORK/out1.csv" \
  --budget "$BUDGET" --state-dir "$WORK/state" \
  "${STREAM_FLAGS[@]}" 2> "$WORK/run1.err" &
SERVE_PID=$!

# Hold the write end open and feed enough for ~2 windows per feed.
exec 3> "$WORK/feed.fifo"
head -n 2000 "$WORK/full.csv" >&3

# Wait until at least one window per feed is durably spent, then SIGKILL.
spent_one() {
  [[ -s "$CKPT" ]] &&
    awk '$1 == "feed" && $4 + 0 >= 1 { n++ } END { exit n >= 2 ? 0 : 1 }' \
      "$CKPT"
}
for _ in $(seq 1 300); do
  spent_one && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "run 1 exited before the kill:
$(cat "$WORK/run1.err")"
  sleep 0.1
done
spent_one || fail "no durable spend after 30s: $(cat "$CKPT" 2>/dev/null)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
SERVE_PID=""
exec 3>&-

cp "$CKPT" "$WORK/ckpt.after_kill"

# Restart over the FULL feed with the same state dir.
"$SERVE" --feeds "$WORK/full.csv" --output "$WORK/out2.csv" \
  --budget "$BUDGET" --state-dir "$WORK/state" \
  "${STREAM_FLAGS[@]}" 2> "$WORK/run2.err"
code=$?
# 0 (everything fit) or 3 (budget refusals) are both legitimate outcomes;
# anything else is a recovery failure.
[[ $code -eq 0 || $code -eq 3 ]] || fail "run 2 exited $code:
$(cat "$WORK/run2.err")"
grep -q "recovered 2 feed(s)" "$WORK/run2.err" ||
  fail "run 2 did not recover both feeds: $(cat "$WORK/run2.err")"

# Ledger invariants: spend never shrinks across the restart, and the final
# durable spend per feed never exceeds the budget.
awk -v budget="$BUDGET" '
  NR == FNR { if ($1 == "feed") before[$6] = $4 + 0; next }
  $1 == "feed" {
    after = $4 + 0
    if (after + 1e-9 < before[$6]) {
      printf "feed %s spend shrank: %s -> %s\n", $6, before[$6], after
      bad = 1
    }
    if (after > budget + 1e-9) {
      printf "feed %s over budget: spent %s of %s\n", $6, after, budget
      bad = 1
    }
    checked++
  }
  END { exit (bad || checked != 2) ? 1 : 0 }
' "$WORK/ckpt.after_kill" "$CKPT" || fail "phase 1 ledger invariant violated:
--- after kill ---
$(cat "$WORK/ckpt.after_kill")
--- final ---
$(cat "$CKPT")"

# The budget covers 4 windows per feed and the feed holds only 3, so the
# restart always publishes at least one window (recovery must not
# over-charge into refusing everything).
awk '!/^#/ && NF' "$WORK/out2.csv" | grep -q . ||
  fail "run 2 published nothing after recovery"

# --- Phase 2: per-object floor carries across a restart ---------------------
# Ids recycle every 20 trajectories: each object reappears in every window,
# spending 1.0 per published window against a 1.5 per-object budget.
awk 'BEGIN {
  for (i = 0; i < 60; i++) {
    x = 200 + (i * 137) % 1700; y = 300 + (i * 251) % 1500; t = 1000 + i
    for (j = 0; j < 24; j++) {
      printf "taxi,%d,%f,%f,%d\n", i % 20, x, y, t
      x += 35 + (j * 11) % 20; y += 25 + ((i + j) * 13) % 30; t += 60
    }
  }
}' > "$WORK/recycled.csv"

PO_STATE="$WORK/state_po"
PO_CKPT="$PO_STATE/budget_ledgers.ckpt"
run_po() {
  "$SERVE" --feeds "$WORK/recycled.csv" --output "$1" \
    --per-object-budget 1.5 --state-dir "$PO_STATE" \
    "${STREAM_FLAGS[@]}" 2> "$2"
}

run_po "$WORK/out_po1.csv" "$WORK/po1.err"
[[ $? -eq 3 ]] || fail "per-object run 1 should refuse on budget (exit 3)"
awk '$1 == "feed" { exit ($5 + 0 > 1.5 + 1e-9) ? 1 : 0 }' "$PO_CKPT" ||
  fail "per-object floor exceeds budget after run 1: $(cat "$PO_CKPT")"

run_po "$WORK/out_po2.csv" "$WORK/po2.err"
[[ $? -eq 3 ]] || fail "per-object run 2 should refuse on budget (exit 3)"
grep -q "recovered 1 feed(s)" "$WORK/po2.err" ||
  fail "per-object run 2 did not recover: $(cat "$WORK/po2.err")"
# Every object starts at the recovered 1.0 floor; one more 1.0 window
# would cross 1.5, so nothing may publish.
[[ "$(awk '!/^#/ && NF' "$WORK/out_po2.csv" | wc -l)" -eq 0 ]] ||
  fail "per-object run 2 published past the recovered floor"
awk '$1 == "feed" { exit ($5 + 0 > 1.5 + 1e-9) ? 1 : 0 }' "$PO_CKPT" ||
  fail "per-object floor exceeds budget after run 2: $(cat "$PO_CKPT")"

echo "kill_recover_test: OK"
