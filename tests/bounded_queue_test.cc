// Dedicated suite for common/BoundedQueue: FIFO order, backpressure,
// close/drain semantics (producers observe the close, consumers drain the
// remaining items), the timed PopUntil outcomes, and the shutdown races the
// multi-feed dispatcher leans on (close while producers are blocked full,
// close racing a timed pop).

#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace frt {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BoundedQueueTest, TryPushAndTryPop) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  int out = 0;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.TryPop(&out));  // empty
  q.Close();
  EXPECT_FALSE(q.TryPush(4));  // closed
}

TEST(BoundedQueueTest, PushBlocksOnFullUntilPopped) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));
    pushed = true;
  });
  // The producer must be blocked: capacity is 1 and nothing was popped.
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseUnblocksFullProducerWhichObservesFailure) {
  // The shutdown race of a dispatcher aborting mid-stream: a producer
  // blocked in Push() on a full queue must return false (item dropped,
  // ownership stays with the producer), not hang and not enqueue.
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<int> result{-1};
  std::thread producer([&] { result = q.Push(2) ? 1 : 0; });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(result.load(), -1);  // still blocked
  q.Close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // observed the close
  // The item accepted before the close is still drained, then end.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, ConsumersDrainQueuedItemsAfterClose) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(i));
  q.Close();
  q.Close();  // idempotent
  EXPECT_TRUE(q.closed());
  for (int i = 0; i < 4; ++i) {
    auto item = q.Pop();
    ASSERT_TRUE(item.has_value()) << "item " << i << " lost to the close";
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(q.Pop().has_value());
  // PopUntil agrees: closed-and-drained beats any deadline.
  int out = 0;
  EXPECT_EQ(q.PopUntil(steady_clock::now() + milliseconds(50), &out),
            QueuePop::kClosed);
}

TEST(BoundedQueueTest, PopUntilTimesOutOnOpenEmptyQueue) {
  BoundedQueue<int> q(4);
  int out = 0;
  const auto start = steady_clock::now();
  EXPECT_EQ(q.PopUntil(start + milliseconds(30), &out), QueuePop::kTimeout);
  EXPECT_GE(steady_clock::now() - start, milliseconds(30));
}

TEST(BoundedQueueTest, PopUntilReturnsItemArrivingBeforeDeadline) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(milliseconds(10));
    EXPECT_TRUE(q.Push(42));
  });
  int out = 0;
  EXPECT_EQ(q.PopUntil(steady_clock::now() + milliseconds(5000), &out),
            QueuePop::kItem);
  EXPECT_EQ(out, 42);
  producer.join();
}

TEST(BoundedQueueTest, PopUntilDistinguishesCloseFromTimeout) {
  // A consumer parked on a long deadline must wake promptly on Close()
  // and report kClosed, never kTimeout — conflating the two would make a
  // dispatcher treat "stream over" as "feed slow" and spin forever.
  BoundedQueue<int> q(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(10));
    q.Close();
  });
  int out = 0;
  const auto start = steady_clock::now();
  EXPECT_EQ(q.PopUntil(start + std::chrono::seconds(60), &out),
            QueuePop::kClosed);
  EXPECT_LT(steady_clock::now() - start, std::chrono::seconds(10));
  closer.join();
}

TEST(BoundedQueueTest, MultiProducerMultiConsumerDrainsEverythingOnClose) {
  // Stress the close/drain contract: every item a Push() accepted is seen
  // by exactly one consumer; items rejected at close stay with producers.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(16);
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.Push(p * kPerProducer + i)) accepted.fetch_add(1);
      }
    });
  }
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (q.Pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CloseRacingProducersLosesNoAcceptedItem) {
  // Close fires mid-stream while producers are still pushing: whatever
  // Push() accepted must be drainable, whatever it rejected must not
  // appear. Run several rounds to shake out interleavings.
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> q(4);
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          if (q.Push(i)) accepted.fetch_add(1);
        }
      });
    }
    std::atomic<int> consumed{0};
    std::thread consumer([&] {
      while (q.Pop().has_value()) consumed.fetch_add(1);
    });
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    q.Close();
    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_EQ(consumed.load(), accepted.load()) << "round " << round;
  }
}

TEST(BoundedQueueTest, ZeroCapacityIsRemappedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.Push(7));
  EXPECT_EQ(q.Pop().value(), 7);
}

}  // namespace
}  // namespace frt
