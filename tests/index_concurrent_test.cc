// Concurrent-reader equivalence suite: the exactness guard for the
// shared-index concurrency contract (index/segment_index.h).
//
// KNearest is documented read-only and thread-safe between mutations: all
// per-query state lives in the caller's SearchContext and the only shared
// write is a relaxed atomic counter. These tests drive N threads through
// ONE shared index and assert the results are bit-identical (exact double
// equality, not tolerance) to a serial pass — across every search strategy
// and both grouping modes — and bit-identical to threads using private
// index copies. Run under TSan in CI, where any stray shared write the
// stamp refactor missed becomes a hard failure.
//
// Also here: the batched-kernel A/B guard (SoA sweep vs scalar reference,
// same doubles and same distance_evaluations) and the Compact() exactness
// guard (same results, same eval counts, fewer arena slots).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/hierarchical_grid_index.h"
#include "index/search_context.h"
#include "index/segment_index.h"

namespace frt {
namespace {

constexpr double kRegionSize = 10000.0;
constexpr size_t kNumThreads = 8;

GridSpec TestGrid() {
  return GridSpec(BBox::Of({0, 0}, {kRegionSize, kRegionSize}), 10);
}

std::vector<SegmentEntry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<SegmentEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point a{rng.Uniform(0, kRegionSize), rng.Uniform(0, kRegionSize)};
    const Point b{std::clamp(a.x + rng.Uniform(-600.0, 600.0), 0.0,
                             kRegionSize),
                  std::clamp(a.y + rng.Uniform(-600.0, 600.0), 0.0,
                             kRegionSize)};
    entries.push_back(SegmentEntry{static_cast<SegmentHandle>(i),
                                   static_cast<TrajId>(i % 97),
                                   Segment{a, b}});
  }
  return entries;
}

std::vector<Point> RandomQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queries.push_back(
        {rng.Uniform(0, kRegionSize), rng.Uniform(0, kRegionSize)});
  }
  return queries;
}

/// Flattened (handle, dist) answer sheet for a query sequence; compared
/// with exact equality so any numeric or ordering divergence fails.
struct AnswerSheet {
  std::vector<SegmentHandle> handles;
  std::vector<double> dists;
  std::vector<size_t> counts;

  void Record(Span<const Neighbor> hits) {
    counts.push_back(hits.size());
    for (const Neighbor& n : hits) {
      handles.push_back(n.entry.handle);
      dists.push_back(n.dist);
    }
  }
};

void ExpectIdentical(const AnswerSheet& got, const AnswerSheet& want,
                     const std::string& label) {
  ASSERT_EQ(got.counts, want.counts) << label;
  ASSERT_EQ(got.handles, want.handles) << label;
  ASSERT_EQ(got.dists.size(), want.dists.size()) << label;
  for (size_t i = 0; i < got.dists.size(); ++i) {
    // Bit-identical, not approximately equal.
    ASSERT_EQ(got.dists[i], want.dists[i]) << label << " at " << i;
  }
}

const SearchStrategy kAllStrategies[] = {
    SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
    SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
    SearchStrategy::kBottomUpDown,
};
const GroupBy kAllModes[] = {GroupBy::kSegment, GroupBy::kTrajectory};

class ConcurrentReaderTest
    : public ::testing::TestWithParam<SearchStrategy> {};

// N threads share one index; per-thread answer sheets over disjoint query
// ranges must equal the serial pass over the same ranges, bit for bit.
TEST_P(ConcurrentReaderTest, SharedIndexMatchesSerialBitIdentical) {
  const auto entries = RandomEntries(4000, 17);
  const auto queries = RandomQueries(400, 23);
  const auto index = MakeSegmentIndex(GetParam(), TestGrid());
  ASSERT_TRUE(index->Build(Span<const SegmentEntry>(entries)).ok());

  for (const GroupBy mode : kAllModes) {
    SearchOptions options;
    options.k = 8;
    options.group_by = mode;

    const size_t per_thread = queries.size() / kNumThreads;
    const uint64_t evals_start = index->distance_evaluations();
    std::vector<AnswerSheet> serial(kNumThreads);
    {
      SearchContext ctx;
      for (size_t t = 0; t < kNumThreads; ++t) {
        for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
          serial[t].Record(index->KNearest(queries[i], options, &ctx));
        }
      }
    }
    const uint64_t serial_evals =
        index->distance_evaluations() - evals_start;

    std::vector<AnswerSheet> concurrent(kNumThreads);
    std::vector<std::thread> threads;
    threads.reserve(kNumThreads);
    for (size_t t = 0; t < kNumThreads; ++t) {
      threads.emplace_back([&, t] {
        SearchContext ctx;  // one context per thread (the contract)
        for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
          concurrent[t].Record(index->KNearest(queries[i], options, &ctx));
        }
      });
    }
    for (std::thread& th : threads) th.join();

    const std::string label =
        std::string(SearchStrategyName(GetParam())) +
        (mode == GroupBy::kSegment ? "/segment" : "/trajectory");
    for (size_t t = 0; t < kNumThreads; ++t) {
      ExpectIdentical(concurrent[t], serial[t], label);
    }
    // Same queries -> same per-query eval counts; the relaxed-atomic total
    // is exact because additions commute.
    EXPECT_EQ(index->distance_evaluations(), evals_start + 2 * serial_evals)
        << label;
  }
}

// Threads reading the shared index produce the same bits as threads that
// each build a private copy — the shared-vs-private A/B the runtime's
// window audit (and --no-shared-index) relies on.
TEST_P(ConcurrentReaderTest, SharedMatchesPrivateCopies) {
  const auto entries = RandomEntries(3000, 31);
  const auto queries = RandomQueries(240, 37);
  const auto shared = MakeSegmentIndex(GetParam(), TestGrid());
  ASSERT_TRUE(shared->Build(Span<const SegmentEntry>(entries)).ok());

  SearchOptions options;
  options.k = 6;
  options.group_by = GroupBy::kSegment;

  const size_t per_thread = queries.size() / kNumThreads;
  std::vector<AnswerSheet> from_shared(kNumThreads);
  std::vector<AnswerSheet> from_private(kNumThreads);
  std::vector<std::thread> threads;
  threads.reserve(kNumThreads);
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      SearchContext ctx;
      for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        from_shared[t].Record(shared->KNearest(queries[i], options, &ctx));
      }
      const auto mine = MakeSegmentIndex(GetParam(), TestGrid());
      ASSERT_TRUE(mine->Build(Span<const SegmentEntry>(entries)).ok());
      for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        from_private[t].Record(mine->KNearest(queries[i], options, &ctx));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kNumThreads; ++t) {
    ExpectIdentical(from_shared[t], from_private[t],
                    std::string(SearchStrategyName(GetParam())));
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ConcurrentReaderTest,
                         ::testing::ValuesIn(kAllStrategies));

// ---------------- batched kernel A/B ----------------

class BatchedKernelTest : public ::testing::TestWithParam<SearchStrategy> {};

// The SoA sweep and the scalar reference share one arithmetic kernel; the
// results AND the distance_evaluations counter must be bit-identical.
TEST_P(BatchedKernelTest, BatchedMatchesScalarBitIdentical) {
  const auto entries = RandomEntries(5000, 41);
  const auto queries = RandomQueries(300, 43);
  const auto index = MakeSegmentIndex(GetParam(), TestGrid());
  ASSERT_TRUE(index->Build(Span<const SegmentEntry>(entries)).ok());

  for (const GroupBy mode : kAllModes) {
    SearchContext ctx;
    SearchOptions options;
    options.k = 8;
    options.group_by = mode;

    options.use_batched_kernel = true;
    const uint64_t before_batched = index->distance_evaluations();
    AnswerSheet batched;
    for (const Point& q : queries) {
      batched.Record(index->KNearest(q, options, &ctx));
    }
    const uint64_t batched_evals =
        index->distance_evaluations() - before_batched;

    options.use_batched_kernel = false;
    const uint64_t before_scalar = index->distance_evaluations();
    AnswerSheet scalar;
    for (const Point& q : queries) {
      scalar.Record(index->KNearest(q, options, &ctx));
    }
    const uint64_t scalar_evals =
        index->distance_evaluations() - before_scalar;

    const std::string label =
        std::string(SearchStrategyName(GetParam())) +
        (mode == GroupBy::kSegment ? "/segment" : "/trajectory");
    ExpectIdentical(batched, scalar, label);
    EXPECT_EQ(batched_evals, scalar_evals) << label;
  }
}

// With a filter, the batched path computes all lanes but must count and
// offer only eligible candidates — identical to the scalar loop.
TEST_P(BatchedKernelTest, FilteredSearchesMatch) {
  const auto entries = RandomEntries(2000, 47);
  const auto queries = RandomQueries(150, 53);
  const auto index = MakeSegmentIndex(GetParam(), TestGrid());
  ASSERT_TRUE(index->Build(Span<const SegmentEntry>(entries)).ok());

  const auto even_traj = [](const SegmentEntry& e) {
    return e.traj % 2 == 0;
  };
  SearchContext ctx;
  SearchOptions options;
  options.k = 5;
  options.filter = even_traj;

  options.use_batched_kernel = true;
  const uint64_t b0 = index->distance_evaluations();
  AnswerSheet batched;
  for (const Point& q : queries) {
    batched.Record(index->KNearest(q, options, &ctx));
  }
  const uint64_t batched_evals = index->distance_evaluations() - b0;

  options.use_batched_kernel = false;
  const uint64_t s0 = index->distance_evaluations();
  AnswerSheet scalar;
  for (const Point& q : queries) {
    scalar.Record(index->KNearest(q, options, &ctx));
  }
  const uint64_t scalar_evals = index->distance_evaluations() - s0;

  ExpectIdentical(batched, scalar,
                  std::string(SearchStrategyName(GetParam())));
  EXPECT_EQ(batched_evals, scalar_evals);
  for (const SegmentHandle h : batched.handles) {
    EXPECT_EQ(entries[h].traj % 2, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(HgStrategies, BatchedKernelTest,
                         ::testing::Values(SearchStrategy::kTopDown,
                                           SearchStrategy::kBottomUp,
                                           SearchStrategy::kBottomUpDown));

// ---------------- Compact() ----------------

TEST(CompactTest, ReclaimsFreeSlotsAndPreservesResultsExactly) {
  auto entries = RandomEntries(3000, 59);
  const auto queries = RandomQueries(200, 61);
  HierarchicalGridIndex index(TestGrid(), SearchStrategy::kBottomUpDown);
  ASSERT_TRUE(index.Build(Span<const SegmentEntry>(entries)).ok());

  // Churn: removing segments empties cells onto the free list.
  Rng rng(67);
  std::vector<SegmentHandle> live;
  for (const SegmentEntry& e : entries) live.push_back(e.handle);
  for (int i = 0; i < 1200; ++i) {
    const size_t pick =
        static_cast<size_t>(rng.Uniform(0, static_cast<double>(live.size())));
    ASSERT_TRUE(index.Remove(live[pick]).ok());
    live[pick] = live.back();
    live.pop_back();
  }
  ASSERT_GT(index.Fragmentation(), 0.0);
  const size_t slots_before = index.ArenaSlots();

  SearchOptions options;
  options.k = 8;
  SearchContext ctx;
  AnswerSheet before;
  const uint64_t evals0 = index.distance_evaluations();
  for (const Point& q : queries) {
    before.Record(index.KNearest(q, options, &ctx));
  }
  const uint64_t evals_before = index.distance_evaluations() - evals0;

  const size_t reclaimed = index.Compact();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(index.ArenaSlots(), slots_before - reclaimed);
  EXPECT_EQ(index.Fragmentation(), 0.0);
  EXPECT_EQ(index.compactions(), 1u);
  EXPECT_EQ(index.size(), live.size());

  AnswerSheet after;
  const uint64_t evals1 = index.distance_evaluations();
  for (const Point& q : queries) {
    after.Record(index.KNearest(q, options, &ctx));
  }
  const uint64_t evals_after = index.distance_evaluations() - evals1;

  // Stable renumbering preserves traversal order: same bits, same work.
  ExpectIdentical(after, before, "compact");
  EXPECT_EQ(evals_after, evals_before);

  // A second Compact with nothing to reclaim is a no-op.
  EXPECT_EQ(index.Compact(), 0u);
  EXPECT_EQ(index.compactions(), 1u);

  // The index stays fully updatable after compaction.
  const SegmentEntry extra{999999, 7, Segment{{42, 42}, {43, 43}}};
  ASSERT_TRUE(index.Insert(extra).ok());
  ASSERT_TRUE(index.Remove(extra.handle).ok());
}

TEST(CompactTest, ConcurrentReadersAfterCompactMatchSerial) {
  auto entries = RandomEntries(2500, 71);
  const auto queries = RandomQueries(160, 73);
  HierarchicalGridIndex index(TestGrid(), SearchStrategy::kBottomUpDown);
  ASSERT_TRUE(index.Build(Span<const SegmentEntry>(entries)).ok());
  for (size_t i = 0; i < entries.size(); i += 3) {
    ASSERT_TRUE(index.Remove(entries[i].handle).ok());
  }
  ASSERT_GT(index.Compact(), 0u);

  SearchOptions options;
  options.k = 8;
  const size_t per_thread = queries.size() / kNumThreads;
  std::vector<AnswerSheet> serial(kNumThreads);
  {
    SearchContext ctx;
    for (size_t t = 0; t < kNumThreads; ++t) {
      for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        serial[t].Record(index.KNearest(queries[i], options, &ctx));
      }
    }
  }
  std::vector<AnswerSheet> concurrent(kNumThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      SearchContext ctx;
      for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        concurrent[t].Record(index.KNearest(queries[i], options, &ctx));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kNumThreads; ++t) {
    ExpectIdentical(concurrent[t], serial[t], "post-compact");
  }
}

}  // namespace
}  // namespace frt
