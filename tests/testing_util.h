// Shared fixture builders for the FRT test suites. Extracted from
// stream_e2e_test, batch_runner_test, and runtime_e2e_test so the synthetic
// feeds, taxi fleets, and capture sinks the suites drive cannot drift
// apart as tests are added.

#ifndef FRT_TESTS_TESTING_UTIL_H_
#define FRT_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <istream>
#include <map>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "service/dispatcher.h"
#include "stream/stream_runner.h"
#include "synth/workload.h"
#include "traj/dataset.h"

namespace frt::testing {

/// Deterministic synthetic feed: trajectory i is a drifting walk in a ~2 km
/// box; lengths vary with i so shard workloads are skewed. Lengths are
/// realistic (>= 24 samples): trajectories short enough for the deletion
/// mechanism to empty entirely would vanish from the CSV serialization,
/// which is a property of the paper's pipeline, not of the streaming
/// machinery under test.
///
/// With `distinct_ids` == 0 every arrival gets a fresh id (a partition-like
/// feed). With `distinct_ids` > 0 ids recycle modulo it, so every object
/// reappears arrivals/distinct_ids times — the pattern that separates
/// wholesale from per-object budget accounting. Ids stay unique within any
/// window of up to distinct_ids arrivals.
inline std::string SyntheticCsv(int arrivals, int distinct_ids = 0) {
  std::ostringstream out;
  out << "# traj_id,x,y,t\n";
  for (int i = 0; i < arrivals; ++i) {
    const int id = distinct_ids > 0 ? i % distinct_ids : i;
    const int points = 24 + (i * 7) % 17;
    double x = 200.0 + (i * 137) % 1700;
    double y = 300.0 + (i * 251) % 1500;
    int64_t t = 1000 + i;
    for (int j = 0; j < points; ++j) {
      out << id << ',' << x << ',' << y << ',' << t << '\n';
      x += 35.0 + (j * 11) % 20;
      y += 25.0 + ((i + j) * 13) % 30;
      t += 60;
    }
  }
  return out.str();
}

/// Deterministic synthetic taxi fleet on a grid city.
inline Dataset TaxiFleet(int taxis, int target_points, int grid_cols_rows,
                         uint64_t seed) {
  WorkloadConfig workload_config;
  workload_config.num_taxis = taxis;
  workload_config.target_points = target_points;
  RoadGenConfig road_config;
  road_config.cols = grid_cols_rows;
  road_config.rows = grid_cols_rows;
  auto workload = GenerateTaxiWorkload(workload_config, road_config, seed);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return workload->dataset;
}

/// Pipeline config with the given signature size and stage budgets.
inline FrequencyRandomizerConfig SmallPipeline(int m = 5,
                                               double epsilon_global = 0.5,
                                               double epsilon_local = 0.5) {
  FrequencyRandomizerConfig config;
  config.m = m;
  config.epsilon_global = epsilon_global;
  config.epsilon_local = epsilon_local;
  return config;
}

/// Structural equality of two datasets (ids, sizes, and points).
inline bool DatasetsEqual(const Dataset& a, const Dataset& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id() != b[i].id()) return false;
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!(a[i][j] == b[i][j])) return false;
    }
  }
  return true;
}

/// Window sink that records everything the stream publishes, window by
/// window.
struct SinkCapture {
  std::vector<TrajId> ids;
  std::vector<std::vector<TimedPoint>> points;
  /// Published trajectory ids of each window, in window order.
  std::vector<std::vector<TrajId>> window_ids;
  std::vector<WindowReport> reports;
  size_t windows = 0;

  WindowSink MakeSink() {
    return [this](const Dataset& published,
                  const WindowReport& report) -> Status {
      ++windows;
      reports.push_back(report);
      std::vector<TrajId> this_window;
      for (const auto& t : published.trajectories()) {
        ids.push_back(t.id());
        this_window.push_back(t.id());
        points.push_back(t.points());
      }
      window_ids.push_back(std::move(this_window));
      return Status::OK();
    };
  }
};

/// Per-feed capture of everything a multi-feed service publishes. The
/// ServiceSink runs on the dispatcher thread only; published_windows is
/// additionally readable from other threads (under mu) so tests can wait
/// for asynchronous publications (deadline closure, idle eviction) without
/// finishing the service.
struct ServiceCapture {
  struct Feed {
    std::vector<TrajId> ids;
    std::vector<std::vector<TimedPoint>> points;
    std::vector<std::vector<TrajId>> window_ids;
    std::vector<WindowReport> reports;
  };
  std::map<std::string, Feed> feeds;
  std::mutex mu;
  std::condition_variable cv;
  size_t published_windows = 0;

  ServiceSink MakeSink() {
    return [this](const std::string& feed, const Dataset& published,
                  const WindowReport& report) -> Status {
      std::lock_guard<std::mutex> lock(mu);
      Feed& f = feeds[feed];
      f.reports.push_back(report);
      std::vector<TrajId> this_window;
      for (const auto& t : published.trajectories()) {
        f.ids.push_back(t.id());
        this_window.push_back(t.id());
        f.points.push_back(t.points());
      }
      f.window_ids.push_back(std::move(this_window));
      ++published_windows;
      cv.notify_all();
      return Status::OK();
    };
  }

  /// Blocks until at least `n` windows were published (or the timeout
  /// hits; returns false then).
  bool WaitForWindows(size_t n, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, timeout,
                       [&] { return published_windows >= n; });
  }

  /// Structural equality of one feed's published stream against another
  /// capture's (ids, window boundaries, and every point bit-for-bit).
  static bool FeedsEqual(const Feed& a, const Feed& b) {
    return a.ids == b.ids && a.window_ids == b.window_ids &&
           a.points == b.points;
  }
};

/// A live feed for deadline tests: an istream whose reader blocks until
/// the writer appends more bytes or ends the feed — what stdin on a quiet
/// pipe does, without needing a real pipe.
class BlockingFeed {
 public:
  BlockingFeed() : stream_(&buf_) {}

  std::istream& stream() { return stream_; }

  /// Appends bytes; a blocked reader wakes and consumes them.
  void Append(const std::string& bytes) { buf_.Append(bytes); }

  /// Ends the feed: the reader sees EOF once the bytes are drained.
  void End() { buf_.End(); }

 private:
  class Buf : public std::streambuf {
   public:
    void Append(const std::string& bytes) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        data_.append(bytes);
      }
      cv_.notify_all();
    }
    void End() {
      {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
      }
      cv_.notify_all();
    }

   protected:
    int_type underflow() override {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return pos_ < data_.size() || closed_; });
      if (pos_ >= data_.size()) return traits_type::eof();
      chunk_.assign(data_, pos_, data_.size() - pos_);
      pos_ = data_.size();
      setg(chunk_.data(), chunk_.data(), chunk_.data() + chunk_.size());
      return traits_type::to_int_type(chunk_[0]);
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::string data_;
    size_t pos_ = 0;
    bool closed_ = false;
    std::string chunk_;
  };

  Buf buf_;
  std::istream stream_;
};

}  // namespace frt::testing

#endif  // FRT_TESTS_TESTING_UTIL_H_
