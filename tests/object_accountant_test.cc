// Property-style tests for dp/object_accountant.h: random spend/refuse
// sequences driven against a brute-force reference ledger. The invariants
// locked here are the ones the streaming guarantee rests on — no object's
// true cumulative spend ever exceeds the budget, unbounded retention
// matches the reference decision-for-decision, bounded retention only ever
// errs on the refusing side, and the aggregate counters stay exact even
// while per-object ledgers are being evicted.

#include "dp/object_accountant.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace frt {
namespace {

constexpr double kBudget = 3.0;
constexpr double kTol = 1e-9;

// Brute-force reference: the true cumulative spend of every object, charged
// only when the driver decides a window was admitted.
using ReferenceLedger = std::unordered_map<TrajId, double>;

// Would the exact (never-evicting) accountant admit this window?
bool ReferenceAdmits(const ReferenceLedger& reference,
                     const std::vector<TrajId>& ids, double epsilon,
                     double budget) {
  for (const TrajId id : ids) {
    auto it = reference.find(id);
    const double spent = it == reference.end() ? 0.0 : it->second;
    if (spent + epsilon > budget + 1e-12) return false;
  }
  return true;
}

// Distinct random ids from [0, id_space), random size in [1, max_ids].
std::vector<TrajId> RandomIds(Rng& rng, int id_space, int max_ids) {
  std::vector<TrajId> all(id_space);
  std::iota(all.begin(), all.end(), 0);
  std::shuffle(all.begin(), all.end(), rng);
  const size_t k = 1 + rng.UniformInt(static_cast<uint64_t>(max_ids));
  all.resize(std::min(all.size(), k));
  return all;
}

double RandomEpsilon(Rng& rng) {
  constexpr double kChoices[] = {0.25, 0.5, 1.0, 1.5};
  return kChoices[rng.UniformInt(4ull)];
}

TEST(ObjectAccountantTest, UnboundedRetentionMatchesReferenceExactly) {
  Rng rng(20260730);
  ObjectBudgetAccountant accountant(kBudget);
  ReferenceLedger reference;
  size_t admitted = 0, refused = 0;
  double aggregate = 0.0;

  for (int round = 0; round < 600; ++round) {
    const std::vector<TrajId> ids = RandomIds(rng, 40, 12);
    const double epsilon = RandomEpsilon(rng);
    const bool want = ReferenceAdmits(reference, ids, epsilon, kBudget);
    const Status status = accountant.SpendWindow(ids, epsilon);
    ASSERT_EQ(status.ok(), want)
        << "round " << round << ": " << status.ToString();
    if (want) {
      ++admitted;
      aggregate += epsilon * static_cast<double>(ids.size());
      for (const TrajId id : ids) reference[id] += epsilon;
    } else {
      ++refused;
      EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    }
    // Ledgers agree id-for-id, and no object ever exceeds the budget.
    for (const auto& [id, spent] : reference) {
      EXPECT_NEAR(accountant.spent(id), spent, kTol) << "object " << id;
      EXPECT_LE(spent, kBudget + kTol);
    }
    EXPECT_EQ(accountant.windows_admitted(), admitted);
    EXPECT_NEAR(accountant.aggregate_epsilon(), aggregate, 1e-6);
  }
  // The sequence actually exercised both outcomes. (Total admissions are
  // capacity-bounded: 40 ids x budget 3.0 of epsilon mass.)
  EXPECT_GT(admitted, 15u);
  EXPECT_GT(refused, 50u);
  double reference_max = 0.0;
  for (const auto& [id, spent] : reference) {
    reference_max = std::max(reference_max, spent);
  }
  EXPECT_NEAR(accountant.max_spent(), reference_max, kTol);
  EXPECT_EQ(accountant.evicted_objects(), 0u);
}

TEST(ObjectAccountantTest, BoundedRetentionIsConservativeAndAggregatesExact) {
  // A small tracked-id cap over a much larger id space forces constant
  // eviction. The accountant may refuse windows the exact reference would
  // admit (over-charging returning evictees with the floor), but it must
  // NEVER admit a window the reference refuses — and its exact aggregates
  // must keep matching the driver's own tallies.
  Rng rng(987654321);
  ObjectBudgetAccountant accountant(kBudget);
  accountant.set_max_tracked_objects(16);
  ReferenceLedger reference;  // true spends of admitted windows only
  size_t admitted = 0;
  size_t conservative_refusals = 0;
  double aggregate = 0.0;

  for (int round = 0; round < 1500; ++round) {
    const std::vector<TrajId> ids = RandomIds(rng, 200, 10);
    const double epsilon = RandomEpsilon(rng);
    const bool reference_admits =
        ReferenceAdmits(reference, ids, epsilon, kBudget);
    const bool accountant_admits = accountant.SpendWindow(ids, epsilon).ok();
    // Conservative: admitted-by-accountant implies admitted-by-reference.
    if (accountant_admits) {
      EXPECT_TRUE(reference_admits) << "round " << round
                                    << ": unsound admission under eviction";
      ++admitted;
      aggregate += epsilon * static_cast<double>(ids.size());
      for (const TrajId id : ids) reference[id] += epsilon;
    } else if (reference_admits) {
      ++conservative_refusals;  // allowed: utility loss, not a leak
    }
    // The believed spend dominates the true spend (floor only over-charges),
    // so no object's true spend can ever exceed the budget.
    for (const TrajId id : ids) {
      auto it = reference.find(id);
      const double true_spent = it == reference.end() ? 0.0 : it->second;
      EXPECT_GE(accountant.spent(id) + kTol, true_spent) << "object " << id;
      EXPECT_LE(true_spent, kBudget + kTol) << "object " << id;
    }
    // Aggregates stay exact while ledgers come and go.
    EXPECT_EQ(accountant.windows_admitted(), admitted);
    EXPECT_NEAR(accountant.aggregate_epsilon(), aggregate, 1e-6);
    EXPECT_LE(accountant.tracked_objects(), 16u);
  }
  // Eviction actually happened, and max_spent stayed within the budget and
  // above the true maximum (it is exact for the windows actually charged).
  EXPECT_GT(accountant.evicted_objects(), 0u);
  // The tiny cap makes the floor ratchet quickly (every evicted generation
  // raises it), so admissions dry up early — that is the conservatism under
  // test, not a bug. Enough were admitted to exercise the charge path.
  EXPECT_GT(admitted, 10u);
  double reference_max = 0.0;
  for (const auto& [id, spent] : reference) {
    reference_max = std::max(reference_max, spent);
  }
  EXPECT_LE(accountant.max_spent(), kBudget + kTol);
  EXPECT_GE(accountant.max_spent() + kTol, reference_max);
  // Bounded retention only refused extra windows, never admitted extra.
  EXPECT_GT(conservative_refusals, 0u);
}

TEST(ObjectAccountantTest, FilterAdmissibleThenSpendAlwaysSucceeds) {
  // The streaming runner's eviction path: filter the exhausted objects
  // out, then spend for the admissible remainder — the spend must succeed
  // by construction, and the classification must match the reference.
  Rng rng(13572468);
  ObjectBudgetAccountant accountant(kBudget);
  ReferenceLedger reference;
  size_t windows_with_eviction = 0;

  for (int round = 0; round < 400; ++round) {
    const std::vector<TrajId> ids = RandomIds(rng, 30, 8);
    const double epsilon = RandomEpsilon(rng);
    std::vector<TrajId> admissible, exhausted;
    accountant.FilterAdmissible(ids, epsilon, &admissible, &exhausted);
    ASSERT_EQ(admissible.size() + exhausted.size(), ids.size());
    for (const TrajId id : admissible) {
      EXPECT_LE(reference[id] + epsilon, kBudget + 1e-12) << "object " << id;
    }
    for (const TrajId id : exhausted) {
      EXPECT_GT(reference[id] + epsilon, kBudget + 1e-12) << "object " << id;
    }
    if (!exhausted.empty()) ++windows_with_eviction;
    if (admissible.empty()) continue;
    ASSERT_TRUE(accountant.SpendWindow(admissible, epsilon).ok())
        << "round " << round;
    for (const TrajId id : admissible) reference[id] += epsilon;
  }
  EXPECT_GT(windows_with_eviction, 20u);
  for (const auto& [id, spent] : reference) {
    EXPECT_LE(spent, kBudget + kTol) << "object " << id;
  }
}

TEST(ObjectAccountantTest, NonEnforcingTracksButNeverRefuses) {
  ObjectBudgetAccountant accountant;  // track only
  EXPECT_FALSE(accountant.enforcing());
  const std::vector<TrajId> ids = {1, 2, 3};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(accountant.SpendWindow(ids, 1.0).ok());
  }
  EXPECT_NEAR(accountant.spent(1), 10.0, kTol);
  EXPECT_NEAR(accountant.max_spent(), 10.0, kTol);
  EXPECT_EQ(accountant.remaining(7),
            std::numeric_limits<double>::infinity());
  std::vector<TrajId> admissible, exhausted;
  accountant.FilterAdmissible(ids, 100.0, &admissible, &exhausted);
  EXPECT_EQ(admissible.size(), 3u);
  EXPECT_TRUE(exhausted.empty());
}

TEST(ObjectAccountantTest, RejectsNonPositiveSpendWithoutRecording) {
  ObjectBudgetAccountant accountant(kBudget);
  EXPECT_FALSE(accountant.SpendWindow({1, 2}, 0.0).ok());
  EXPECT_FALSE(accountant.SpendWindow({1, 2}, -1.0).ok());
  EXPECT_EQ(accountant.windows_admitted(), 0u);
  EXPECT_NEAR(accountant.spent(1), 0.0, kTol);
}

TEST(ObjectAccountantTest, RefusedWindowRecordsNothing) {
  // Transactionality: a refusal must not charge ANY id in the window, not
  // even the ones that could have afforded it.
  ObjectBudgetAccountant accountant(1.0);
  ASSERT_TRUE(accountant.SpendWindow({1}, 1.0).ok());  // id 1 exhausted
  EXPECT_FALSE(accountant.SpendWindow({1, 2, 3}, 1.0).ok());
  EXPECT_NEAR(accountant.spent(2), 0.0, kTol);
  EXPECT_NEAR(accountant.spent(3), 0.0, kTol);
  EXPECT_EQ(accountant.windows_admitted(), 1u);
  // A window of only fresh ids still fits afterwards.
  EXPECT_TRUE(accountant.SpendWindow({2, 3}, 1.0).ok());
}

TEST(ObjectAccountantTest, EvictedFloorChargesReturningEvictees) {
  ObjectBudgetAccountant accountant(kBudget);
  // Three spends of 1.0 on disjoint ids, then cap to 1 tracked id: two
  // ledgers fold into the floor.
  ASSERT_TRUE(accountant.SpendWindow({1}, 1.0).ok());
  ASSERT_TRUE(accountant.SpendWindow({2}, 1.0).ok());
  ASSERT_TRUE(accountant.SpendWindow({3}, 2.0).ok());
  accountant.set_max_tracked_objects(1);
  EXPECT_EQ(accountant.tracked_objects(), 1u);
  EXPECT_EQ(accountant.evicted_objects(), 2u);
  // The floor is the max evicted spend; every unknown id now reports it.
  EXPECT_NEAR(accountant.evicted_floor(), 1.0, kTol);
  EXPECT_NEAR(accountant.spent(1), 1.0, kTol);   // evicted -> floor
  EXPECT_NEAR(accountant.spent(99), 1.0, kTol);  // never seen -> floor
  // A returning evictee is charged on top of the floor.
  ASSERT_TRUE(accountant.SpendWindow({2}, 1.0).ok());
  EXPECT_NEAR(accountant.spent(2), 2.0, kTol);
  // max_spent stays exact through all of it.
  EXPECT_NEAR(accountant.max_spent(), 2.0, kTol);
}

}  // namespace
}  // namespace frt
