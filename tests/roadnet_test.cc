// Unit tests for src/roadnet: graph, shortest paths, HMM map matching,
// route comparison.

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.h"
#include "roadnet/graph.h"
#include "roadnet/map_matcher.h"
#include "roadnet/route_compare.h"
#include "roadnet/shortest_path.h"
#include "synth/road_gen.h"

namespace frt {
namespace {

// A 3x3 lattice with unit spacing 100.
RoadNetwork MakeLattice(int n = 3, double spacing = 100.0) {
  RoadNetwork net;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      net.AddNode(Point{c * spacing, r * spacing});
    }
  }
  auto id = [n](int c, int r) { return r * n + c; };
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (c + 1 < n) {
        EXPECT_TRUE(net.AddEdge(id(c, r), id(c + 1, r)).ok());
      }
      if (r + 1 < n) {
        EXPECT_TRUE(net.AddEdge(id(c, r), id(c, r + 1)).ok());
      }
    }
  }
  net.Build();
  return net;
}

TEST(GraphTest, BasicTopology) {
  RoadNetwork net = MakeLattice();
  EXPECT_EQ(net.NumNodes(), 9u);
  EXPECT_EQ(net.NumEdges(), 12u);
  EXPECT_TRUE(net.IsConnected());
  EXPECT_TRUE(net.HasEdge(0, 1));
  EXPECT_FALSE(net.HasEdge(0, 4));
  EXPECT_EQ(net.Adjacent(4).size(), 4u);  // center node
}

TEST(GraphTest, RejectsBadEdges) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({1, 0});
  EXPECT_TRUE(net.AddEdge(a, b).ok());
  EXPECT_FALSE(net.AddEdge(a, a).ok());          // self loop
  EXPECT_FALSE(net.AddEdge(a, b).ok());          // parallel
  EXPECT_FALSE(net.AddEdge(a, 99).ok());         // out of range
}

TEST(GraphTest, NearestNodeAndEdge) {
  RoadNetwork net = MakeLattice();
  EXPECT_EQ(net.NearestNode({10, 10}), 0);
  EXPECT_EQ(net.NearestNode({190, 210}), 8);
  const EdgeId e = net.NearestEdge({50, 5});
  const Segment s = net.EdgeSegment(e);
  EXPECT_LE(PointSegmentDistance({50, 5}, s), 5.0 + 1e-9);
}

TEST(GraphTest, EdgesNearFindsAllWithinRadius) {
  RoadNetwork net = MakeLattice();
  const auto near = net.EdgesNear({50, 0}, 10.0);
  ASSERT_EQ(near.size(), 1u);  // only the bottom-left horizontal edge
  const auto wide = net.EdgesNear({100, 100}, 120.0);
  EXPECT_GE(wide.size(), 4u);
}

TEST(GraphTest, DisconnectedDetection) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({10, 0});
  net.AddNode({100, 0});
  EXPECT_TRUE(net.AddEdge(0, 1).ok());
  net.Build();
  EXPECT_FALSE(net.IsConnected());
}

// --- shortest paths ---

TEST(ShortestPathTest, LatticeManhattan) {
  RoadNetwork net = MakeLattice();
  auto p = ShortestPath(net, 0, 8);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->length, 400.0);
  EXPECT_EQ(p->nodes.front(), 0);
  EXPECT_EQ(p->nodes.back(), 8);
  EXPECT_EQ(p->edges.size(), p->nodes.size() - 1);
}

TEST(ShortestPathTest, TrivialAndInvalid) {
  RoadNetwork net = MakeLattice();
  auto self = ShortestPath(net, 4, 4);
  ASSERT_TRUE(self.ok());
  EXPECT_DOUBLE_EQ(self->length, 0.0);
  EXPECT_EQ(self->nodes.size(), 1u);
  EXPECT_FALSE(ShortestPath(net, 0, 99).ok());
}

TEST(ShortestPathTest, UnreachableIsNotFound) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({10, 0});
  net.Build();
  EXPECT_TRUE(ShortestPath(net, 0, 1).status().IsNotFound());
}

TEST(ShortestPathTest, MatchesDijkstraOnRandomNetwork) {
  RoadGenConfig cfg;
  cfg.cols = 8;
  cfg.rows = 8;
  auto net = GenerateRoadNetwork(cfg, /*seed=*/3);
  ASSERT_TRUE(net.ok());
  // Reference: textbook Dijkstra without heuristic.
  auto dijkstra = [&](NodeId src, NodeId dst) {
    std::vector<double> dist(net->NumNodes(), 1e300);
    using QE = std::pair<double, NodeId>;
    std::priority_queue<QE, std::vector<QE>, std::greater<QE>> q;
    dist[src] = 0;
    q.push({0, src});
    while (!q.empty()) {
      auto [d, u] = q.top();
      q.pop();
      if (d > dist[u]) continue;
      for (const auto& arc : net->Adjacent(u)) {
        if (d + arc.length < dist[arc.to]) {
          dist[arc.to] = d + arc.length;
          q.push({dist[arc.to], arc.to});
        }
      }
    }
    return dist[dst];
  };
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId a = rng.UniformInt(uint64_t{net->NumNodes()});
    const NodeId b = rng.UniformInt(uint64_t{net->NumNodes()});
    auto p = ShortestPath(*net, a, b);
    ASSERT_TRUE(p.ok());
    ASSERT_NEAR(p->length, dijkstra(a, b), 1e-6);
  }
}

TEST(ShortestPathTest, BoundedDistancesRespectBound) {
  RoadNetwork net = MakeLattice(5, 100.0);
  const auto dist = BoundedDistances(net, 0, 250.0);
  for (const auto& [node, d] : dist) {
    EXPECT_LE(d, 250.0);
  }
  EXPECT_TRUE(dist.count(0));
  EXPECT_DOUBLE_EQ(dist.at(0), 0.0);
  EXPECT_DOUBLE_EQ(dist.at(1), 100.0);
  EXPECT_DOUBLE_EQ(dist.at(6), 200.0);  // (1,1)
  EXPECT_EQ(dist.count(24), 0u);        // far corner (800) out of bound
}

// --- HMM map matching ---

TEST(MapMatcherTest, CleanTraceOnLatticeRecoversRoute) {
  RoadNetwork net = MakeLattice(5, 500.0);
  // Drive along the bottom row: nodes 0,1,2,3,4.
  Trajectory traj(0);
  for (int i = 0; i <= 8; ++i) {
    traj.Append(Point{i * 250.0, 4.0}, i * 60);
  }
  HmmMapMatcher matcher(&net);
  const MatchResult result = matcher.Match(traj);
  ASSERT_FALSE(result.route_edges.empty());
  // The true route consists of the 4 bottom-row edges.
  std::vector<EdgeId> truth;
  for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
    const Segment s = net.EdgeSegment(e);
    if (s.a.y < 1.0 && s.b.y < 1.0) truth.push_back(e);
  }
  const RouteScores scores = CompareRoutes(net, truth, result.route_edges);
  EXPECT_GE(scores.recall, 0.99);
  EXPECT_GE(scores.precision, 0.99);
}

TEST(MapMatcherTest, NoisyTraceStillMatches) {
  RoadNetwork net = MakeLattice(5, 500.0);
  Rng rng(42);
  Trajectory traj(0);
  for (int i = 0; i <= 8; ++i) {
    traj.Append(Point{i * 250.0 + rng.Normal(0, 30),
                      rng.Normal(0, 30)},
                i * 60);
  }
  HmmMapMatcher matcher(&net);
  const MatchResult result = matcher.Match(traj);
  std::vector<EdgeId> truth;
  for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
    const Segment s = net.EdgeSegment(e);
    if (s.a.y < 1.0 && s.b.y < 1.0) truth.push_back(e);
  }
  const RouteScores scores = CompareRoutes(net, truth, result.route_edges);
  EXPECT_GE(scores.f_score, 0.8);
}

TEST(MapMatcherTest, EmptyTrajectoryYieldsEmptyRoute) {
  RoadNetwork net = MakeLattice();
  HmmMapMatcher matcher(&net);
  const MatchResult result = matcher.Match(Trajectory(0));
  EXPECT_TRUE(result.route_edges.empty());
  EXPECT_TRUE(result.matched_edges.empty());
}

TEST(MapMatcherTest, FarAwayPointsAreUnmatched) {
  RoadNetwork net = MakeLattice(3, 100.0);
  Trajectory traj(0);
  traj.Append(Point{5000, 5000}, 0);  // far outside candidate radius
  traj.Append(Point{50, 2}, 60);
  HmmMapMatcher matcher(&net);
  const MatchResult result = matcher.Match(traj);
  EXPECT_EQ(result.matched_edges[0], -1);
  EXPECT_NE(result.matched_edges[1], -1);
}

// --- route comparison ---

TEST(RouteCompareTest, IdenticalRoutesScorePerfect) {
  RoadNetwork net = MakeLattice();
  const std::vector<EdgeId> route{0, 1, 2};
  const RouteScores s = CompareRoutes(net, route, route);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f_score, 1.0);
  EXPECT_DOUBLE_EQ(s.rmf, 0.0);
}

TEST(RouteCompareTest, DisjointRoutesScoreZero) {
  RoadNetwork net = MakeLattice();
  const RouteScores s = CompareRoutes(net, {0, 1}, {5, 6});
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f_score, 0.0);
  // All recovered length is wrong and all truth is missed.
  EXPECT_GT(s.rmf, 1.0);
}

TEST(RouteCompareTest, RmfCanExceedOne) {
  RoadNetwork net = MakeLattice();
  // Recover a superset: everything right plus lots of wrong edges.
  const RouteScores s = CompareRoutes(net, {0}, {0, 1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_GT(s.rmf, 1.0);
}

TEST(RouteCompareTest, EmptyTruthYieldsZeros) {
  RoadNetwork net = MakeLattice();
  const RouteScores s = CompareRoutes(net, {}, {0, 1});
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.rmf, 0.0);
}

TEST(RouteCompareTest, PointAccuracy) {
  EXPECT_DOUBLE_EQ(PointAccuracy({0, 0, 1, 2}, {0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(PointAccuracy({3, 3}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(PointAccuracy({}, {0}), 0.0);
  // Points with no ground-truth edge (-1) are excluded.
  EXPECT_DOUBLE_EQ(PointAccuracy({-1, 0}, {0}), 1.0);
}

}  // namespace
}  // namespace frt
