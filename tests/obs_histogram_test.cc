// obs::Histogram: quantile error bounds against exact sorted samples
// across several distributions, merge algebra, and the memory/clamping
// contract.

#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace frt::obs {
namespace {

/// Exact percentile with the dispatcher's historical convention:
/// rank = q*(n-1) rounded to nearest, value = that order statistic.
double ExactPercentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  const double rank = q * static_cast<double>(samples.size() - 1);
  const size_t k = static_cast<size_t>(rank + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<ptrdiff_t>(k),
                   samples.end());
  return samples[k];
}

/// Relative error with an absolute floor: at sub-2-microsecond scale the
/// 1 us recording resolution dominates and relative error is meaningless.
void ExpectQuantileClose(const Histogram& h,
                         const std::vector<double>& samples, double q) {
  const double exact = ExactPercentile(samples, q);
  const double approx = h.Quantile(q);
  const double tolerance = std::max(0.05 * std::abs(exact), 2e-3);
  EXPECT_NEAR(approx, exact, tolerance)
      << "q=" << q << " exact=" << exact << " approx=" << approx;
}

class DistributionTest : public ::testing::TestWithParam<const char*> {};

std::vector<double> MakeSamples(const std::string& kind, size_t n,
                                uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<double> samples;
  samples.reserve(n);
  if (kind == "uniform") {
    std::uniform_real_distribution<double> d(0.01, 250.0);
    for (size_t i = 0; i < n; ++i) samples.push_back(d(rng));
  } else if (kind == "exponential") {
    std::exponential_distribution<double> d(1.0 / 20.0);
    for (size_t i = 0; i < n; ++i) samples.push_back(d(rng));
  } else if (kind == "lognormal") {
    std::lognormal_distribution<double> d(1.5, 1.2);
    for (size_t i = 0; i < n; ++i) samples.push_back(d(rng));
  } else {  // bimodal: fast path ~2 ms, slow tail ~150 ms
    std::normal_distribution<double> fast(2.0, 0.3);
    std::normal_distribution<double> slow(150.0, 25.0);
    std::bernoulli_distribution pick(0.9);
    for (size_t i = 0; i < n; ++i) {
      samples.push_back(std::abs(pick(rng) ? fast(rng) : slow(rng)));
    }
  }
  return samples;
}

TEST_P(DistributionTest, QuantilesWithinFivePercentOfExact) {
  for (const uint32_t seed : {1u, 7u, 42u}) {
    const std::vector<double> samples = MakeSamples(GetParam(), 20000, seed);
    Histogram h;
    for (const double s : samples) h.Record(s);
    ASSERT_EQ(h.count(), samples.size());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      ExpectQuantileClose(h, samples, q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, DistributionTest,
                         ::testing::Values("uniform", "exponential",
                                           "lognormal", "bimodal"));

TEST(HistogramTest, EmptyHistogramReadsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.min_ms(), 0.0);
  EXPECT_EQ(h.max_ms(), 0.0);
  EXPECT_EQ(h.mean_ms(), 0.0);
}

TEST(HistogramTest, ExactStatsTrackedExactly) {
  Histogram h;
  h.Record(1.5);
  h.Record(0.25);
  h.Record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min_ms(), 0.25);
  EXPECT_DOUBLE_EQ(h.max_ms(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 101.75);
  EXPECT_NEAR(h.mean_ms(), 101.75 / 3.0, 1e-12);
}

TEST(HistogramTest, SingleValueQuantilesClampToExactExtremes) {
  Histogram h;
  h.Record(37.123);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 37.123);
  }
}

TEST(HistogramTest, NegativeAndZeroClampToZeroBucket) {
  Histogram h;
  h.Record(-5.0);
  h.Record(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, RecordNCountsAllOccurrences) {
  Histogram h;
  h.RecordN(10.0, 99);
  h.RecordN(1000.0, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Quantile(0.5), 10.0, 0.5);
  EXPECT_NEAR(h.Quantile(1.0), 1000.0, 50.0);
}

TEST(HistogramTest, MergeIsCommutative) {
  std::mt19937 rng(3);
  std::exponential_distribution<double> d(0.1);
  Histogram a, b;
  std::vector<double> all;
  for (int i = 0; i < 5000; ++i) {
    const double va = d(rng), vb = d(rng);
    a.Record(va);
    b.Record(vb);
    all.push_back(va);
    all.push_back(vb);
  }
  Histogram ab = a;
  ab.Merge(b);
  Histogram ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_DOUBLE_EQ(ab.min_ms(), ba.min_ms());
  EXPECT_DOUBLE_EQ(ab.max_ms(), ba.max_ms());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(ab.Quantile(q), ba.Quantile(q)) << "q=" << q;
    ExpectQuantileClose(ab, all, q);
  }
}

TEST(HistogramTest, MergeIsAssociative) {
  std::mt19937 rng(11);
  std::lognormal_distribution<double> d(0.5, 1.0);
  Histogram a, b, c;
  for (int i = 0; i < 3000; ++i) {
    a.Record(d(rng));
    b.Record(d(rng));
    c.Record(d(rng));
  }
  Histogram left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Histogram bc = b;     // a + (b + c)
  bc.Merge(c);
  Histogram right = a;
  right.Merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.sum_ms(), right.sum_ms());
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(left.Quantile(q), right.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.Record(5.0);
  a.Record(9.0);
  Histogram merged = a;
  merged.Merge(empty);
  EXPECT_EQ(merged.count(), a.count());
  EXPECT_DOUBLE_EQ(merged.Quantile(0.5), a.Quantile(0.5));
  Histogram other = empty;
  other.Merge(a);
  EXPECT_EQ(other.count(), a.count());
  EXPECT_DOUBLE_EQ(other.min_ms(), a.min_ms());
}

TEST(HistogramTest, HugeValuesClampIntoLastBucketExactMaxSurvives) {
  Histogram h;
  const double huge = 1e18;  // beyond the 2^62-tick table range
  h.Record(huge);
  h.Record(1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max_ms(), huge);
  // The quantile clamps into [min, max] even though the bucket midpoint
  // saturated.
  EXPECT_LE(h.Quantile(1.0), huge);
  EXPECT_GE(h.Quantile(1.0), 1.0);
}

TEST(HistogramTest, MemoryIsBoundedRegardlessOfSampleCount) {
  // O(1) memory claim: the counts table never grows with samples.
  EXPECT_LE(Histogram::kNumBuckets * sizeof(uint64_t), 16u * 1024u);
  Histogram h;
  for (int i = 0; i < 200000; ++i) h.Record(static_cast<double>(i % 977));
  EXPECT_EQ(h.count(), 200000u);
}

}  // namespace
}  // namespace frt::obs
