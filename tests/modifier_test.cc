// Tests for core/modifier: intra-trajectory (Def. 9/10) and
// inter-trajectory (Def. 7/8) modification correctness — the perturbed
// frequency distributions must hold exactly on the modified data, with
// minimal utility loss, under every search strategy.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/modifier.h"
#include "traj/quantizer.h"

namespace frt {
namespace {

constexpr double kSize = 2000.0;

class IntraModifierTest : public ::testing::TestWithParam<SearchStrategy> {
 protected:
  IntraModifierTest() : quantizer_(BBox::Of({0, 0}, {kSize, kSize}), 11) {}

  Quantizer quantizer_;
};

TEST_P(IntraModifierTest, InsertionRaisesFrequencyExactly) {
  Trajectory t(1);
  for (int i = 0; i < 10; ++i) t.Append(Point{i * 150.0, 0.0}, i * 60);
  quantizer_.RegisterPoint({700, 300});
  const LocationKey q_key = quantizer_.KeyOf({700, 300});

  EditableTrajectory et(t);
  IntraTrajectoryModifier modifier(&quantizer_, GetParam());
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&et, {{q_key, +3}}, &stats).ok());

  const Trajectory out = et.Materialize();
  EXPECT_EQ(out.size(), 13u);
  EXPECT_EQ(ComputePointFrequency(out, quantizer_).at(q_key), 3);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.deletions, 0u);
  // Loss = sum of distances from q=(700,300) to its 3 nearest segments on
  // y=0: the perpendicular hit on [600,750] plus the two clamped endpoint
  // distances.
  const double expected = 300.0 + std::sqrt(300.0 * 300 + 50.0 * 50) +
                          std::sqrt(300.0 * 300 + 100.0 * 100);
  EXPECT_NEAR(stats.utility_loss, expected, 1e-6);
}

TEST_P(IntraModifierTest, DeletionLowersFrequencyExactly) {
  Trajectory t(1);
  t.Append({0, 0}, 0);
  for (int i = 0; i < 4; ++i) t.Append(Point{500, 500}, 60 + i);  // dwell x4
  t.Append({1000, 1000}, 300);
  const LocationKey key = quantizer_.KeyOf({500, 500});

  EditableTrajectory et(t);
  IntraTrajectoryModifier modifier(&quantizer_, GetParam());
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&et, {{key, -2}}, &stats).ok());

  const Trajectory out = et.Materialize();
  EXPECT_EQ(ComputePointFrequency(out, quantizer_).at(key), 2);
  EXPECT_EQ(stats.deletions, 2u);
  // Deleting interior dwell repeats reconnects identical points: zero loss.
  EXPECT_NEAR(stats.utility_loss, 0.0, 1.0);
}

TEST_P(IntraModifierTest, DeleteAllOccurrences) {
  Trajectory t(1);
  t.Append({0, 0}, 0);
  t.Append({500, 500}, 60);
  t.Append({800, 0}, 120);
  t.Append({500, 500}, 180);
  t.Append({1500, 100}, 240);
  const LocationKey key = quantizer_.KeyOf({500, 500});
  EditableTrajectory et(t);
  IntraTrajectoryModifier modifier(&quantizer_, GetParam());
  ModifierStats stats;
  // Request more deletions than occurrences: clamp to "all gone".
  ASSERT_TRUE(modifier.Apply(&et, {{key, -10}}, &stats).ok());
  const Trajectory out = et.Materialize();
  EXPECT_EQ(ComputePointFrequency(out, quantizer_).count(key), 0u);
  EXPECT_EQ(out.size(), 3u);
}

TEST_P(IntraModifierTest, MixedDeltasAllSatisfied) {
  Trajectory t(1);
  for (int i = 0; i < 20; ++i) {
    t.Append(Point{100.0 * (i % 7), 100.0 * (i / 7)}, i * 60);
  }
  quantizer_.RegisterDataset([&] {
    Dataset d;
    (void)d.Add(t);
    return d;
  }());
  const PointFrequency before = ComputePointFrequency(t, quantizer_);
  // Take three existing keys: raise one, lower one, keep one.
  auto it = before.begin();
  const LocationKey raise = (it++)->first;
  const LocationKey lower = (it++)->first;
  FrequencyDelta delta{{raise, +2}, {lower, -1}};

  EditableTrajectory et(t);
  IntraTrajectoryModifier modifier(&quantizer_, GetParam());
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&et, delta, &stats).ok());
  const PointFrequency after =
      ComputePointFrequency(et.Materialize(), quantizer_);
  EXPECT_EQ(after.at(raise), before.at(raise) + 2);
  const int64_t lower_after =
      after.count(lower) > 0 ? after.at(lower) : 0;
  EXPECT_EQ(lower_after, before.at(lower) - 1);
}

TEST_P(IntraModifierTest, InsertionPicksNearestSegment) {
  // One segment is clearly closest to q; the first insertion must use it.
  Trajectory t(1);
  t.Append({0, 0}, 0);
  t.Append({400, 0}, 60);
  t.Append({400, 1000}, 120);
  quantizer_.RegisterPoint({200, 50});
  const LocationKey key = quantizer_.KeyOf({200, 50});
  EditableTrajectory et(t);
  IntraTrajectoryModifier modifier(&quantizer_, GetParam());
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&et, {{key, +1}}, &stats).ok());
  const Trajectory out = et.Materialize();
  ASSERT_EQ(out.size(), 4u);
  // Inserted between (0,0) and (400,0).
  EXPECT_EQ(quantizer_.KeyOf(out[1].p), key);
  EXPECT_NEAR(stats.utility_loss, 50.0, 1.0);
}

TEST_P(IntraModifierTest, TinyTrajectoriesHandled) {
  quantizer_.RegisterPoint({100, 100});
  const LocationKey key = quantizer_.KeyOf({100, 100});
  IntraTrajectoryModifier modifier(&quantizer_, GetParam());
  // Empty trajectory: insertions append.
  EditableTrajectory empty(Trajectory(1));
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&empty, {{key, +2}}, &stats).ok());
  EXPECT_EQ(empty.NumPoints(), 2u);
  // Single point: insertion appends after it.
  Trajectory single(2);
  single.Append({500, 500}, 0);
  EditableTrajectory et(single);
  ASSERT_TRUE(modifier.Apply(&et, {{key, +1}}, &stats).ok());
  EXPECT_EQ(et.NumPoints(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, IntraModifierTest,
    ::testing::Values(SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
                      SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
                      SearchStrategy::kBottomUpDown),
    [](const ::testing::TestParamInfo<SearchStrategy>& info) {
      std::string name(SearchStrategyName(info.param));
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

// ---------------- inter-trajectory ----------------

class InterModifierTest : public ::testing::TestWithParam<SearchStrategy> {
 protected:
  InterModifierTest()
      : quantizer_(BBox::Of({0, 0}, {kSize, kSize}), 11),
        grid_(BBox::Of({-10, -10}, {kSize + 10, kSize + 10}), 10) {}

  // Five horizontal trajectories at different heights; the key point sits
  // at (500, 0) on trajectory 0 only.
  std::vector<EditableTrajectory> MakeWorld() {
    std::vector<EditableTrajectory> world;
    for (int i = 0; i < 5; ++i) {
      Trajectory t(i);
      for (int j = 0; j < 6; ++j) {
        t.Append(Point{j * 300.0, i * 400.0}, j * 60);
      }
      world.emplace_back(t);
    }
    return world;
  }

  TrajectoryFrequency CurrentTf(const std::vector<EditableTrajectory>& w) {
    Dataset d;
    for (const auto& et : w) (void)d.Add(et.Materialize());
    return ComputeTrajectoryFrequency(d, quantizer_);
  }

  Quantizer quantizer_;
  GridSpec grid_;
};

TEST_P(InterModifierTest, TfIncreaseInsertsIntoNearestTrajectories) {
  auto world = MakeWorld();
  quantizer_.RegisterPoint({600, 0});  // an actual point of trajectory 0
  const LocationKey key = quantizer_.KeyOf({600, 0});
  ASSERT_EQ(CurrentTf(world)[key], 1);  // only trajectory 0

  InterTrajectoryModifier modifier(&quantizer_, GetParam(), grid_);
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&world, {{key, +2}}, &stats).ok());
  EXPECT_EQ(CurrentTf(world)[key], 3);
  EXPECT_EQ(stats.insertions, 2u);
  // The nearest non-containing trajectories are rows 1 and 2 (y=400, 800):
  // each insertion costs the vertical distance.
  EXPECT_NEAR(stats.utility_loss, 400.0 + 800.0, 1e-6);
  // Trajectory 0 must not receive a second copy.
  EXPECT_EQ(ComputePointFrequency(world[0].Materialize(), quantizer_)
                .at(key),
            1);
}

TEST_P(InterModifierTest, TfDecreaseDeletesCompletely) {
  auto world = MakeWorld();
  // Plant the key on three trajectories with different deletion costs.
  const Point q{1000, 123};
  quantizer_.RegisterPoint(q);
  const LocationKey key = quantizer_.KeyOf(q);
  // Traj 0: cheap (collinear-ish dwell); traj 1 and 2: offset points.
  {
    auto n = world[0].InsertInto(world[0].Head(), q);
    ASSERT_TRUE(n.ok());
  }
  {
    auto n = world[1].InsertInto(world[1].Head(), q);
    ASSERT_TRUE(n.ok());
    auto n2 = world[2].InsertInto(world[2].Head(), q);
    ASSERT_TRUE(n2.ok());
  }
  ASSERT_EQ(CurrentTf(world)[key], 3);

  InterTrajectoryModifier modifier(&quantizer_, GetParam(), grid_);
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&world, {{key, -2}}, &stats).ok());
  EXPECT_EQ(CurrentTf(world)[key], 1);
  EXPECT_EQ(stats.deletions, 2u);
}

TEST_P(InterModifierTest, MultipleKeysProcessedIndependently) {
  auto world = MakeWorld();
  quantizer_.RegisterPoint({300, 0});
  quantizer_.RegisterPoint({300, 1600});
  const LocationKey a = quantizer_.KeyOf({300, 0});      // on traj 0 only
  const LocationKey b = quantizer_.KeyOf({300, 1600});   // on traj 4 only
  InterTrajectoryModifier modifier(&quantizer_, GetParam(), grid_);
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&world, {{a, +1}, {b, -1}}, &stats).ok());
  const auto tf = CurrentTf(world);
  EXPECT_EQ(tf.at(a), 2);
  EXPECT_EQ(tf.count(b), 0u);
}

TEST_P(InterModifierTest, InsertShortfallWhenAllContainPoint) {
  auto world = MakeWorld();
  // Put the key on every trajectory; then ask for more.
  const Point q{700, 50};
  quantizer_.RegisterPoint(q);
  const LocationKey key = quantizer_.KeyOf(q);
  for (auto& et : world) {
    ASSERT_TRUE(et.InsertInto(et.Head(), q).ok());
  }
  InterTrajectoryModifier modifier(&quantizer_, GetParam(), grid_);
  ModifierStats stats;
  ASSERT_TRUE(modifier.Apply(&world, {{key, +3}}, &stats).ok());
  // No eligible trajectory: TF stays |D| (the Round clamp in Algorithm 1
  // makes this unreachable in the pipeline, but the modifier must be safe).
  EXPECT_EQ(CurrentTf(world)[key], 5);
  EXPECT_EQ(stats.insertions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, InterModifierTest,
    ::testing::Values(SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
                      SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
                      SearchStrategy::kBottomUpDown),
    [](const ::testing::TestParamInfo<SearchStrategy>& info) {
      std::string name(SearchStrategyName(info.param));
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

}  // namespace
}  // namespace frt
