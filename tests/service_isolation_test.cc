// Per-feed budget isolation property: one feed exhausting its budget must
// never change another feed's published windows — not the window
// boundaries, not the refusal pattern, not a single coordinate. The test
// compares each feed's multiplexed output bit-for-bit against a SOLO run
// of the same feed at the same master seed, across accounting modes,
// interleavings, and pool sizes.
//
// Why this holds by construction: a FeedSession derives its RNG stream
// from (master seed, feed id, generation) and forks per window in close
// order, its accountants are private, and windows of one feed execute
// strictly sequentially — so nothing a hog feed does (exhaust budgets,
// hold workers busy, interleave arrivals) can reach another feed's
// bytes. This suite is the regression lock on that argument.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "service/dispatcher.h"
#include "stream/ingest.h"
#include "testing_util.h"

namespace frt {
namespace {

using frt::testing::ServiceCapture;
using frt::testing::SyntheticCsv;

constexpr uint64_t kSeed = 20260730;

/// Per-feed arrival sequences. The hog's ids recycle aggressively so its
/// per-object (or wholesale) budget runs dry mid-stream; the victims use
/// fresh ids throughout.
struct Feeds {
  std::vector<std::string> names;
  std::vector<std::vector<Trajectory>> arrivals;  // parallel to names
};

std::vector<Trajectory> ParseTrajectories(const std::string& csv) {
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  std::vector<Trajectory> out;
  for (;;) {
    auto next = reader.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    out.push_back(std::move(**next));
  }
  return out;
}

Feeds MakeFeeds(int victims, int arrivals_per_feed) {
  Feeds feeds;
  // The hog: ids recycle modulo 5, so with a per-object budget of 2.0 at
  // eps 1.0/window every object is exhausted after 2 appearances.
  feeds.names.push_back("hog");
  feeds.arrivals.push_back(
      ParseTrajectories(SyntheticCsv(arrivals_per_feed, 5)));
  for (int v = 0; v < victims; ++v) {
    feeds.names.push_back("victim" + std::to_string(v));
    feeds.arrivals.push_back(
        ParseTrajectories(SyntheticCsv(arrivals_per_feed)));
  }
  return feeds;
}

ServiceConfig IsolationConfig(BudgetAccounting accounting) {
  ServiceConfig config;
  config.stream.window_size = 5;
  config.stream.batch.shards = 2;
  config.stream.batch.pipeline.m = 3;
  config.stream.batch.pipeline.epsilon_global = 0.5;
  config.stream.batch.pipeline.epsilon_local = 0.5;
  config.stream.accounting = accounting;
  if (accounting == BudgetAccounting::kPerObject) {
    config.stream.per_object_budget = 2.0;
  } else {
    config.stream.total_budget = 2.0;
  }
  config.pool_threads = 4;
  return config;
}

/// Runs a subset of the feeds through one service. `interleave` 0 deals
/// arrivals round-robin across feeds; 1 deals them in blocks of 7; 2
/// plays whole feeds back-to-back.
std::unique_ptr<ServiceCapture> RunService(
    const Feeds& feeds, const std::vector<size_t>& which,
    BudgetAccounting accounting, int interleave) {
  auto capture = std::make_unique<ServiceCapture>();
  ServiceDispatcher service(IsolationConfig(accounting),
                            capture->MakeSink());
  EXPECT_TRUE(service.Start(kSeed).ok());
  if (interleave == 2) {
    for (const size_t f : which) {
      for (const Trajectory& t : feeds.arrivals[f]) {
        EXPECT_TRUE(service.Offer(feeds.names[f], t));
      }
    }
  } else {
    const size_t block = interleave == 0 ? 1 : 7;
    size_t offset = 0;
    bool any = true;
    while (any) {
      any = false;
      for (const size_t f : which) {
        const auto& arrivals = feeds.arrivals[f];
        for (size_t i = offset; i < std::min(offset + block, arrivals.size());
             ++i) {
          EXPECT_TRUE(service.Offer(feeds.names[f], arrivals[i]));
          any = true;
        }
      }
      offset += block;
    }
  }
  EXPECT_TRUE(service.Finish().ok());
  return capture;
}

class ServiceIsolationTest
    : public ::testing::TestWithParam<BudgetAccounting> {};

TEST_P(ServiceIsolationTest, HogExhaustionNeverTouchesOtherFeeds) {
  const BudgetAccounting accounting = GetParam();
  const Feeds feeds = MakeFeeds(/*victims=*/3, /*arrivals_per_feed=*/30);
  const std::vector<size_t> all = {0, 1, 2, 3};

  // Solo baselines: each feed served alone at the same master seed.
  std::vector<std::unique_ptr<ServiceCapture>> solo;
  for (const size_t f : all) {
    solo.push_back(RunService(feeds, {f}, accounting, 2));
  }
  // The hog really must be refusing by itself, or the test proves nothing.
  {
    const ServiceCapture::Feed& hog = solo[0]->feeds.at("hog");
    size_t hog_windows = hog.reports.size();
    EXPECT_LT(hog_windows, 6u)
        << "hog exhausted no budget; tighten the fixture";
  }

  for (const int interleave : {0, 1, 2}) {
    const auto multiplexed = RunService(feeds, all, accounting, interleave);
    for (const size_t f : all) {
      const std::string& name = feeds.names[f];
      const ServiceCapture::Feed& solo_feed = solo[f]->feeds.at(name);
      ASSERT_TRUE(multiplexed->feeds.count(name) > 0)
          << name << " vanished when multiplexed";
      const ServiceCapture::Feed& multi_feed = multiplexed->feeds.at(name);
      EXPECT_TRUE(ServiceCapture::FeedsEqual(solo_feed, multi_feed))
          << "feed " << name << " (interleave " << interleave
          << ") is not bit-identical to its solo run";
      // Refusal pattern is part of the isolation contract too.
      ASSERT_EQ(multi_feed.reports.size(), solo_feed.reports.size());
      for (size_t w = 0; w < solo_feed.reports.size(); ++w) {
        EXPECT_EQ(multi_feed.reports[w].index, solo_feed.reports[w].index);
        EXPECT_NEAR(multi_feed.reports[w].epsilon_total,
                    solo_feed.reports[w].epsilon_total, 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AccountingModes, ServiceIsolationTest,
                         ::testing::Values(BudgetAccounting::kWholesale,
                                           BudgetAccounting::kPerObject));

TEST_P(ServiceIsolationTest, QuarantinedFeedNeverTouchesOtherFeeds) {
  // The ingress tier quarantining one feed mid-stream (corrupt frame on
  // its connection) is a fault, not a budget event — but the isolation
  // contract is the same: every sibling's published bytes must stay
  // bit-identical to a solo run. The quarantined feed's output simply
  // stops at the fault.
  const BudgetAccounting accounting = GetParam();
  const Feeds feeds = MakeFeeds(/*victims=*/3, /*arrivals_per_feed=*/30);

  std::vector<std::unique_ptr<ServiceCapture>> solo;
  for (const size_t f : {1, 2, 3}) {
    solo.push_back(RunService(feeds, {f}, accounting, 2));
  }

  auto capture = std::make_unique<ServiceCapture>();
  ServiceDispatcher service(IsolationConfig(accounting),
                            capture->MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  // Round-robin arrivals; the hog's stream is declared untrusted after
  // half its arrivals landed (some already published, some in backlog).
  const size_t n = feeds.arrivals[0].size();
  for (size_t i = 0; i < n; ++i) {
    for (const size_t f : {0, 1, 2, 3}) {
      if (f == 0 && i >= n / 2) continue;  // connection torn down
      ASSERT_TRUE(service.Offer(feeds.names[f], feeds.arrivals[f][i]));
    }
    if (i == n / 2) {
      ASSERT_TRUE(service.OfferQuarantine("hog", "frame CRC mismatch"));
    }
  }
  ASSERT_TRUE(service.Finish().ok());

  const ServiceReport& report = service.report();
  EXPECT_EQ(report.feeds_quarantined, 1u);
  for (size_t v = 0; v < 3; ++v) {
    const std::string& name = feeds.names[v + 1];
    const ServiceCapture::Feed& solo_feed = solo[v]->feeds.at(name);
    ASSERT_TRUE(capture->feeds.count(name) > 0)
        << name << " vanished when a sibling was quarantined";
    EXPECT_TRUE(
        ServiceCapture::FeedsEqual(solo_feed, capture->feeds.at(name)))
        << "feed " << name
        << " is not bit-identical to its solo run after a sibling "
           "quarantine";
  }
  // The hog's published prefix (before the fault) must itself be a prefix
  // of ITS solo run — quarantine truncates, never perturbs.
  const auto hog_solo = RunService(feeds, {0}, accounting, 2);
  const ServiceCapture::Feed& hog_solo_feed = hog_solo->feeds.at("hog");
  if (capture->feeds.count("hog") > 0) {
    const ServiceCapture::Feed& hog_multi = capture->feeds.at("hog");
    ASSERT_LE(hog_multi.window_ids.size(), hog_solo_feed.window_ids.size());
    for (size_t w = 0; w < hog_multi.window_ids.size(); ++w) {
      EXPECT_EQ(hog_multi.window_ids[w], hog_solo_feed.window_ids[w]);
    }
    ASSERT_LE(hog_multi.points.size(), hog_solo_feed.points.size());
    for (size_t t = 0; t < hog_multi.points.size(); ++t) {
      EXPECT_EQ(hog_multi.points[t], hog_solo_feed.points[t]);
    }
  }
}

}  // namespace
}  // namespace frt
