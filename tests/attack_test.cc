// Tests for src/attack: the re-identification linker and the recovery
// attack driver.

#include <gtest/gtest.h>

#include "attack/linker.h"
#include "attack/recovery_attack.h"
#include "baselines/signature_closure.h"
#include "synth/workload.h"

namespace frt {
namespace {

class AttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig wcfg;
    wcfg.num_taxis = 24;
    wcfg.target_points = 130;
    RoadGenConfig rcfg;
    rcfg.cols = 10;
    rcfg.rows = 10;
    auto w = GenerateTaxiWorkload(wcfg, rcfg, 33);
    ASSERT_TRUE(w.ok());
    workload_ = new Workload(std::move(*w));
  }
  static void TearDownTestSuite() { delete workload_; }
  static Workload* workload_;
};

Workload* AttackTest::workload_ = nullptr;

TEST_F(AttackTest, SelfLinkingIsNearPerfect) {
  Linker linker(workload_->dataset.Bounds());
  linker.Train(workload_->dataset);
  // Publishing the raw data: every signature type should re-identify
  // almost everyone (paper: >80% linkage on raw trajectories).
  EXPECT_GE(linker.LinkingAccuracy(workload_->dataset,
                                   SignatureType::kSpatial),
            0.95);
  EXPECT_GE(linker.LinkingAccuracy(workload_->dataset,
                                   SignatureType::kSpatioTemporal),
            0.95);
  EXPECT_GE(linker.LinkingAccuracy(workload_->dataset,
                                   SignatureType::kSequential),
            0.9);
  // Temporal profiles overlap more across users but still beat chance by a
  // wide margin.
  EXPECT_GE(linker.LinkingAccuracy(workload_->dataset,
                                   SignatureType::kTemporal),
            10.0 / workload_->dataset.size());
}

TEST_F(AttackTest, ShuffledIdsScoreAtChanceLevel) {
  Linker linker(workload_->dataset.Bounds());
  linker.Train(workload_->dataset);
  // Swap ids pairwise: prediction can't match the (wrong) claimed id.
  Dataset shuffled;
  const size_t n = workload_->dataset.size();
  for (size_t i = 0; i < n; ++i) {
    Trajectory t = workload_->dataset[i];
    t.set_id(workload_->dataset[(i + 1) % n].id());
    ASSERT_TRUE(shuffled.Add(std::move(t)).ok());
  }
  EXPECT_LE(linker.LinkingAccuracy(shuffled, SignatureType::kSpatial),
            0.05);
}

TEST_F(AttackTest, RemovingSignaturesLowersSpatialLinkage) {
  Linker linker(workload_->dataset.Bounds());
  linker.Train(workload_->dataset);
  const double raw =
      linker.LinkingAccuracy(workload_->dataset, SignatureType::kSpatial);
  SignatureClosureConfig cfg;
  cfg.m = 10;
  SignatureClosure sc(cfg);
  Rng rng(1);
  auto anon = sc.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(anon.ok());
  const double after =
      linker.LinkingAccuracy(*anon, SignatureType::kSpatial);
  // At this tiny scale (24 users) residual non-signature structure can
  // still link most users, so only the direction is asserted here; the
  // Table II magnitudes are reproduced at scale by bench_table2.
  EXPECT_LE(after, raw);
}

TEST_F(AttackTest, LinkPredictionsAlignWithAccuracy) {
  Linker linker(workload_->dataset.Bounds());
  linker.Train(workload_->dataset);
  const auto predicted =
      linker.Link(workload_->dataset, SignatureType::kSpatial);
  ASSERT_EQ(predicted.size(), workload_->dataset.size());
  size_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == workload_->dataset[i].id()) ++correct;
  }
  EXPECT_DOUBLE_EQ(
      linker.LinkingAccuracy(workload_->dataset, SignatureType::kSpatial),
      static_cast<double>(correct) / predicted.size());
}

TEST_F(AttackTest, EmptyPublishedDatasetScoresZero) {
  Linker linker(workload_->dataset.Bounds());
  linker.Train(workload_->dataset);
  EXPECT_DOUBLE_EQ(
      linker.LinkingAccuracy(Dataset{}, SignatureType::kSpatial), 0.0);
}

TEST_F(AttackTest, SignatureTypeLabels) {
  EXPECT_EQ(SignatureTypeLabel(SignatureType::kSpatial), "LAs");
  EXPECT_EQ(SignatureTypeLabel(SignatureType::kTemporal), "LAt");
  EXPECT_EQ(SignatureTypeLabel(SignatureType::kSpatioTemporal), "LAst");
  EXPECT_EQ(SignatureTypeLabel(SignatureType::kSequential), "LAsq");
}

// ---------------- recovery ----------------

TEST_F(AttackTest, RawDataIsHighlyRecoverable) {
  const RecoveryScores scores =
      EvaluateRecovery(*workload_, workload_->dataset);
  EXPECT_EQ(scores.evaluated, workload_->dataset.size());
  // The published points lie on the true routes: map-matching should
  // reconstruct most of them (the paper's premise for the recovery risk).
  EXPECT_GE(scores.recall, 0.7);
  EXPECT_GE(scores.precision, 0.7);
  EXPECT_GE(scores.accuracy, 0.7);
  EXPECT_LE(scores.rmf, 0.7);
}

TEST_F(AttackTest, ForeignIdsAreSkipped) {
  Dataset foreign;
  Trajectory t(9999);  // no ground truth for this id
  t.Append({100, 100}, 0);
  t.Append({600, 100}, 60);
  ASSERT_TRUE(foreign.Add(std::move(t)).ok());
  const RecoveryScores scores = EvaluateRecovery(*workload_, foreign);
  EXPECT_EQ(scores.evaluated, 0u);
  EXPECT_DOUBLE_EQ(scores.f_score, 0.0);
}

TEST_F(AttackTest, EmptyTrajectoriesRecoverNothing) {
  Dataset empties;
  for (size_t i = 0; i < workload_->dataset.size(); ++i) {
    ASSERT_TRUE(empties.Add(Trajectory(workload_->dataset[i].id())).ok());
  }
  const RecoveryScores scores = EvaluateRecovery(*workload_, empties);
  EXPECT_EQ(scores.evaluated, workload_->dataset.size());
  EXPECT_DOUBLE_EQ(scores.recall, 0.0);
  EXPECT_DOUBLE_EQ(scores.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(scores.rmf, 1.0);  // everything missed, nothing added
}

}  // namespace
}  // namespace frt
