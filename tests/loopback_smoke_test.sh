#!/usr/bin/env bash
# Loopback smoke of the distributed ingress tier (ISSUE 8) and the
# admin introspection plane (ISSUE 10).
#
# One frt_serve aggregator listens on a Unix socket and three frt_edge
# processes stream framed trajectories into it. Edge A is clean; edge B
# injects one corrupt payload byte (after the CRC was computed) into its
# second trajectory frame; edge C is clean again so the aggregator stays
# alive for admin scrapes after the quarantine. The aggregator must:
#
#   - quarantine edge B's feed (per-feed quarantine report + exit 3),
#   - publish edge A's and C's feeds completely and untouched,
#   - record "frame_read" / "frame_decode" ingress spans in the trace,
#   - serve /metrics, /healthz, and /feedz mid-run on --admin-listen,
#     with eps_remaining non-increasing across scrapes and the
#     quarantined feed visible in /feedz.
#
# Usage: loopback_smoke_test.sh /path/to/frt_serve /path/to/frt_edge

set -u

SERVE="${1:?usage: loopback_smoke_test.sh /path/to/frt_serve /path/to/frt_edge}"
EDGE="${2:?usage: loopback_smoke_test.sh /path/to/frt_serve /path/to/frt_edge}"
PYTHON="${PYTHON:-python3}"
HERE="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
TRACE_SUMMARY="$HERE/../tools/trace_summary.py"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/frt_loopback_XXXXXX")"
SERVE_PID=""

cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- serve.log ----" >&2
  cat "$WORK/serve.log" >&2 2>/dev/null
  echo "---- edge_a.log ----" >&2
  cat "$WORK/edge_a.log" >&2 2>/dev/null
  echo "---- edge_b.log ----" >&2
  cat "$WORK/edge_b.log" >&2 2>/dev/null
  echo "---- edge_c.log ----" >&2
  cat "$WORK/edge_c.log" >&2 2>/dev/null
  exit 1
}

# Two single-feed CSVs: 8 trajectories of 6 points each, windows of 2.
make_feed() {
  awk -v feed="$1" 'BEGIN {
    for (i = 0; i < 8; i++) {
      x = 100 + (i * 113) % 900; y = 200 + (i * 211) % 700; t = 100 + i
      for (j = 0; j < 6; j++) {
        printf "%s,%d,%f,%f,%d\n", feed, i, x, y, t
        x += 17 + j; y += 13 + j; t += 30
      }
    }
  }'
}
make_feed alpha > "$WORK/a.csv"
make_feed beta  > "$WORK/b.csv"
make_feed gamma > "$WORK/c.csv"

SOCK="$WORK/agg.sock"
ADMIN_SOCK="$WORK/admin.sock"
FLAGS=(--window 2 --epsilon-global 0.5 --epsilon-local 0.5 --shards 2
       --seed 17 --budget 100)

# One HTTP/1.0 GET over the admin Unix socket; prints the response body.
admin_get() {
  "$PYTHON" - "$ADMIN_SOCK" "$1" <<'PY'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.settimeout(5)
s.connect(sys.argv[1])
s.sendall(("GET %s HTTP/1.0\r\n\r\n" % sys.argv[2]).encode())
data = b""
while True:
    chunk = s.recv(4096)
    if not chunk:
        break
    data += chunk
parts = data.split(b"\r\n\r\n", 1)
sys.stdout.write(parts[1].decode() if len(parts) > 1 else "")
PY
}

# ---- Aggregator: 3 edge connections, trace + admin plane armed, fast
# introspection ticks so scrapes see fresh per-feed state. ----
"$SERVE" --listen "unix:$SOCK" --listen-conns 3 --output "$WORK/merged.csv" \
         --trace-out "$WORK/trace.json" \
         --admin-listen "unix:$ADMIN_SOCK" \
         --metrics "$WORK/metrics.log" --metrics-interval-ms 50 \
         --metrics-per-feed "${FLAGS[@]}" \
         2> "$WORK/serve.log" &
SERVE_PID=$!

for _ in $(seq 50); do
  [[ -S "$SOCK" && -S "$ADMIN_SOCK" ]] && break
  sleep 0.1
done
[[ -S "$SOCK" ]] || fail "aggregator never bound $SOCK"
[[ -S "$ADMIN_SOCK" ]] || fail "aggregator never bound $ADMIN_SOCK"

# ---- Edge A: clean run, must exit 0. ----
"$EDGE" --feeds "$WORK/a.csv" --connect "unix:$SOCK" --hello edge-a \
        "${FLAGS[@]}" 2> "$WORK/edge_a.log"
EDGE_A_EXIT=$?
[[ "$EDGE_A_EXIT" -eq 0 ]] || fail "clean edge exited $EDGE_A_EXIT, want 0"

# ---- Admin scrape #1 (mid-run, after alpha published). ----
for _ in $(seq 50); do
  admin_get /feedz > "$WORK/feedz1.json" 2>/dev/null
  grep -q '"feed":"alpha"' "$WORK/feedz1.json" && break
  sleep 0.1
done
grep -q '"feed":"alpha"' "$WORK/feedz1.json" \
  || fail "alpha never appeared in /feedz"
HEALTH1="$(admin_get /healthz)"
[[ "$HEALTH1" == "ok" ]] || fail "/healthz said '$HEALTH1', want ok"
admin_get /metrics > "$WORK/metrics1.prom"
grep -q "^# TYPE frt_serve_windows_published_total counter" \
    "$WORK/metrics1.prom" || fail "/metrics missing serve counters"
grep -q "^frt_ingress_frames_total " "$WORK/metrics1.prom" \
  || fail "/metrics missing ingress counters"

# ---- Edge B: corrupts its 2nd trajectory frame mid-stream. The
# aggregator tears the connection down at the CRC mismatch; depending on
# how much the kernel buffered, edge B sees the cut as a failed write
# (exit 1) or not at all (exit 0) — both are fine, the aggregator's view
# is what this test asserts. ----
"$EDGE" --feeds "$WORK/b.csv" --connect "unix:$SOCK" --hello edge-b \
        --inject-corrupt-frame 2 "${FLAGS[@]}" 2> "$WORK/edge_b.log"
EDGE_B_EXIT=$?
[[ "$EDGE_B_EXIT" -eq 0 || "$EDGE_B_EXIT" -eq 1 ]] \
  || fail "corrupt edge exited $EDGE_B_EXIT, want 0 or 1"
grep -q "injected corrupt payload byte" "$WORK/edge_b.log" \
  || fail "edge B never injected its fault"

# ---- Admin scrape #2: the quarantined feed shows up in /feedz, alpha's
# eps_remaining never increased, and the scrape counters are monotone. ----
for _ in $(seq 50); do
  admin_get /feedz > "$WORK/feedz2.json" 2>/dev/null
  "$PYTHON" -c '
import json, sys
d = json.load(open(sys.argv[1]))
sys.exit(0 if any(f["feed"] == "beta" and f["quarantined"]
                  for f in d["feed"]) else 1)' "$WORK/feedz2.json" \
    2>/dev/null && break
  sleep 0.1
done
admin_get /metrics > "$WORK/metrics2.prom"
"$PYTHON" - "$WORK/feedz1.json" "$WORK/feedz2.json" \
    "$WORK/metrics1.prom" "$WORK/metrics2.prom" <<'PY' \
  || fail "admin scrape invariants violated"
import json, sys

first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))

def feeds(d):
    return {f["feed"]: f for f in d["feed"]}

f1, f2 = feeds(first), feeds(second)
assert "beta" in f2 and f2["beta"]["quarantined"], \
    "quarantined beta missing from /feedz: %r" % f2
assert f2["beta"]["quarantine_reason"], "quarantine reason empty"
# Budget only ever drains: eps_remaining is non-increasing and
# eps_spent non-decreasing across scrapes, per feed.
for name in set(f1) & set(f2):
    assert float(f2[name]["eps_remaining"]) <= float(
        f1[name]["eps_remaining"]), name
    assert float(f2[name]["eps_spent"]) >= float(f1[name]["eps_spent"]), name
assert f2["alpha"]["windows_published"] == 4, f2["alpha"]

def counter(path, name):
    for line in open(path):
        if line.startswith(name + " "):
            return int(line.split()[1])
    raise AssertionError("%s missing from %s" % (name, path))

for name in ("frt_serve_windows_published_total",
             "frt_ingress_frames_total", "frt_admin_requests_total"):
    assert counter(sys.argv[4], name) >= counter(sys.argv[3], name), name
assert counter(sys.argv[4], "frt_serve_feeds_quarantined_total") == 1
PY

# ---- Edge C: clean again — the quarantine stayed contained. ----
"$EDGE" --feeds "$WORK/c.csv" --connect "unix:$SOCK" --hello edge-c \
        "${FLAGS[@]}" 2> "$WORK/edge_c.log"
EDGE_C_EXIT=$?
[[ "$EDGE_C_EXIT" -eq 0 ]] || fail "clean edge C exited $EDGE_C_EXIT, want 0"

wait "$SERVE_PID"
SERVE_EXIT=$?
SERVE_PID=""
[[ "$SERVE_EXIT" -eq 3 ]] \
  || fail "aggregator exited $SERVE_EXIT, want 3 (quarantine)"

# ---- Quarantine is per-feed: beta named and cut off, alpha complete. ----
grep -q "^quarantine: feed beta: .*CRC" "$WORK/serve.log" \
  || fail "missing per-feed quarantine report for beta"
grep -q "feed beta: .*\[quarantined\]" "$WORK/serve.log" \
  || fail "beta's feed report line is not tagged [quarantined]"
grep -q "1 feed(s) quarantined" "$WORK/serve.log" \
  || fail "missing quarantine summary line"
grep -q "quarantine" "$WORK/edge_a.log" \
  && fail "clean edge A mentions quarantine"
# Alpha: all 8 trajectories in 4 windows of 2 (the anonymizer rewrites
# points, so assert at the window/trajectory level, not line counts).
grep -q "feed alpha: 4 windows published (8 trajs)" "$WORK/serve.log" \
  || fail "alpha did not publish its full 4 windows"
grep -q "feed gamma: 4 windows published (8 trajs)" "$WORK/serve.log" \
  || fail "gamma did not publish its full 4 windows"
# Beta's corrupt frame was its 2nd: one trajectory arrived pre-fault,
# never enough to close a window of 2, so nothing of beta publishes.
grep -q "feed beta: 0 windows published (0 trajs)" "$WORK/serve.log" \
  || fail "quarantined beta still published windows"
ALPHA_LINES=$(grep -c "^alpha," "$WORK/merged.csv")
BETA_LINES=$(grep -c "^beta," "$WORK/merged.csv" || true)
[[ "$ALPHA_LINES" -gt 0 ]] || fail "no alpha output in merged.csv"
[[ "$BETA_LINES" -eq 0 ]] \
  || fail "beta wrote $BETA_LINES merged lines after its quarantine"

# ---- Ingress spans made it into the trace. ----
"$PYTHON" "$TRACE_SUMMARY" "$WORK/trace.json" \
    --require frame_read,frame_decode \
  || fail "trace is missing ingress spans"

echo "PASS: loopback smoke (quarantine contained to beta; alpha complete)"
