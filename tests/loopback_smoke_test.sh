#!/usr/bin/env bash
# Loopback smoke of the distributed ingress tier (ISSUE 8).
#
# One frt_serve aggregator listens on a Unix socket and two frt_edge
# processes stream framed trajectories into it. Edge A is clean; edge B
# injects one corrupt payload byte (after the CRC was computed) into its
# second trajectory frame, so the aggregator must:
#
#   - quarantine edge B's feed (per-feed quarantine report + exit 3),
#   - publish edge A's feed completely and untouched,
#   - record "frame_read" / "frame_decode" ingress spans in the trace.
#
# Usage: loopback_smoke_test.sh /path/to/frt_serve /path/to/frt_edge

set -u

SERVE="${1:?usage: loopback_smoke_test.sh /path/to/frt_serve /path/to/frt_edge}"
EDGE="${2:?usage: loopback_smoke_test.sh /path/to/frt_serve /path/to/frt_edge}"
PYTHON="${PYTHON:-python3}"
HERE="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
TRACE_SUMMARY="$HERE/../tools/trace_summary.py"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/frt_loopback_XXXXXX")"
SERVE_PID=""

cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "---- serve.log ----" >&2
  cat "$WORK/serve.log" >&2 2>/dev/null
  echo "---- edge_a.log ----" >&2
  cat "$WORK/edge_a.log" >&2 2>/dev/null
  echo "---- edge_b.log ----" >&2
  cat "$WORK/edge_b.log" >&2 2>/dev/null
  exit 1
}

# Two single-feed CSVs: 8 trajectories of 6 points each, windows of 2.
make_feed() {
  awk -v feed="$1" 'BEGIN {
    for (i = 0; i < 8; i++) {
      x = 100 + (i * 113) % 900; y = 200 + (i * 211) % 700; t = 100 + i
      for (j = 0; j < 6; j++) {
        printf "%s,%d,%f,%f,%d\n", feed, i, x, y, t
        x += 17 + j; y += 13 + j; t += 30
      }
    }
  }'
}
make_feed alpha > "$WORK/a.csv"
make_feed beta  > "$WORK/b.csv"

SOCK="$WORK/agg.sock"
FLAGS=(--window 2 --epsilon-global 0.5 --epsilon-local 0.5 --shards 2
       --seed 17 --budget 100)

# ---- Aggregator: 2 edge connections, trace armed. ----
"$SERVE" --listen "unix:$SOCK" --listen-conns 2 --output "$WORK/merged.csv" \
         --trace-out "$WORK/trace.json" "${FLAGS[@]}" \
         2> "$WORK/serve.log" &
SERVE_PID=$!

for _ in $(seq 50); do
  [[ -S "$SOCK" ]] && break
  sleep 0.1
done
[[ -S "$SOCK" ]] || fail "aggregator never bound $SOCK"

# ---- Edge A: clean run, must exit 0. ----
"$EDGE" --feeds "$WORK/a.csv" --connect "unix:$SOCK" --hello edge-a \
        "${FLAGS[@]}" 2> "$WORK/edge_a.log"
EDGE_A_EXIT=$?
[[ "$EDGE_A_EXIT" -eq 0 ]] || fail "clean edge exited $EDGE_A_EXIT, want 0"

# ---- Edge B: corrupts its 2nd trajectory frame mid-stream. The
# aggregator tears the connection down at the CRC mismatch; depending on
# how much the kernel buffered, edge B sees the cut as a failed write
# (exit 1) or not at all (exit 0) — both are fine, the aggregator's view
# is what this test asserts. ----
"$EDGE" --feeds "$WORK/b.csv" --connect "unix:$SOCK" --hello edge-b \
        --inject-corrupt-frame 2 "${FLAGS[@]}" 2> "$WORK/edge_b.log"
EDGE_B_EXIT=$?
[[ "$EDGE_B_EXIT" -eq 0 || "$EDGE_B_EXIT" -eq 1 ]] \
  || fail "corrupt edge exited $EDGE_B_EXIT, want 0 or 1"
grep -q "injected corrupt payload byte" "$WORK/edge_b.log" \
  || fail "edge B never injected its fault"

wait "$SERVE_PID"
SERVE_EXIT=$?
SERVE_PID=""
[[ "$SERVE_EXIT" -eq 3 ]] \
  || fail "aggregator exited $SERVE_EXIT, want 3 (quarantine)"

# ---- Quarantine is per-feed: beta named and cut off, alpha complete. ----
grep -q "^quarantine: feed beta: .*CRC" "$WORK/serve.log" \
  || fail "missing per-feed quarantine report for beta"
grep -q "feed beta: .*\[quarantined\]" "$WORK/serve.log" \
  || fail "beta's feed report line is not tagged [quarantined]"
grep -q "1 feed(s) quarantined" "$WORK/serve.log" \
  || fail "missing quarantine summary line"
grep -q "quarantine" "$WORK/edge_a.log" \
  && fail "clean edge A mentions quarantine"
# Alpha: all 8 trajectories in 4 windows of 2 (the anonymizer rewrites
# points, so assert at the window/trajectory level, not line counts).
grep -q "feed alpha: 4 windows published (8 trajs)" "$WORK/serve.log" \
  || fail "alpha did not publish its full 4 windows"
# Beta's corrupt frame was its 2nd: one trajectory arrived pre-fault,
# never enough to close a window of 2, so nothing of beta publishes.
grep -q "feed beta: 0 windows published (0 trajs)" "$WORK/serve.log" \
  || fail "quarantined beta still published windows"
ALPHA_LINES=$(grep -c "^alpha," "$WORK/merged.csv")
BETA_LINES=$(grep -c "^beta," "$WORK/merged.csv" || true)
[[ "$ALPHA_LINES" -gt 0 ]] || fail "no alpha output in merged.csv"
[[ "$BETA_LINES" -eq 0 ]] \
  || fail "beta wrote $BETA_LINES merged lines after its quarantine"

# ---- Ingress spans made it into the trace. ----
"$PYTHON" "$TRACE_SUMMARY" "$WORK/trace.json" \
    --require frame_read,frame_decode \
  || fail "trace is missing ingress spans"

echo "PASS: loopback smoke (quarantine contained to beta; alpha complete)"
