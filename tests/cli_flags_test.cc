// Locks the strict numeric CLI flag parsing in tools/cli_common.h: a
// malformed value ("oops", "1.5x", "") must be a reported usage error
// naming the offending flag — never the silent zero atof/atoi would
// produce (a zero budget that refuses every window with no diagnostic).

#include "cli_common.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace frt::cli {
namespace {

/// Runs one shared-flag parser over `--flag value` and returns the
/// outcome; `args` accumulates whatever was parsed.
template <typename Args, typename Parser>
FlagParse ParseOne(Parser parser, const std::string& flag,
                   const std::string& value, Args* args) {
  std::string f = flag;
  std::string v = value;
  char* argv[] = {f.data(), v.data()};
  int i = 0;
  return parser(2, argv, &i, args);
}

TEST(CliFlagsTest, StrictDoubleRejectsGarbageAndTrailingJunk) {
  double out = 99.0;
  EXPECT_FALSE(ParseFlagDouble("--budget", "oops", &out));
  EXPECT_FALSE(ParseFlagDouble("--budget", "1.5x", &out));
  EXPECT_FALSE(ParseFlagDouble("--budget", "", &out));
  EXPECT_FALSE(ParseFlagDouble("--budget", "1.5 2", &out));
  EXPECT_EQ(out, 99.0);  // never clobbered on failure
  EXPECT_TRUE(ParseFlagDouble("--budget", "1.5", &out));
  EXPECT_EQ(out, 1.5);
  EXPECT_TRUE(ParseFlagDouble("--budget", "-0.25", &out));
  EXPECT_EQ(out, -0.25);
}

TEST(CliFlagsTest, StrictIntRejectsGarbageAndTrailingJunk) {
  int64_t out = 99;
  EXPECT_FALSE(ParseFlagInt64("--window", "oops", &out));
  EXPECT_FALSE(ParseFlagInt64("--window", "12x", &out));
  EXPECT_FALSE(ParseFlagInt64("--window", "1.5", &out));
  EXPECT_FALSE(ParseFlagInt64("--window", "", &out));
  EXPECT_EQ(out, 99);
  EXPECT_TRUE(ParseFlagInt64("--window", "-3", &out));
  EXPECT_EQ(out, -3);

  uint64_t uout = 99;
  EXPECT_FALSE(ParseFlagUint64("--seed", "-3", &uout));  // no wraparound
  EXPECT_FALSE(ParseFlagUint64("--seed", "7up", &uout));
  EXPECT_EQ(uout, 99u);
  EXPECT_TRUE(ParseFlagUint64("--seed", "7", &uout));
  EXPECT_EQ(uout, 7u);
}

TEST(CliFlagsTest, PipelineFlagsErrorInsteadOfSilentZero) {
  PipelineArgs args;
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--epsilon-global", "oops", &args),
            FlagParse::kError);
  EXPECT_EQ(args.epsilon_global, 0.5);  // default untouched
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--epsilon-local", "0.3x", &args),
            FlagParse::kError);
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--m", "ten", &args),
            FlagParse::kError);
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--m", "0", &args),
            FlagParse::kError);  // range-checked, not just syntax
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--shards", "2x", &args),
            FlagParse::kError);
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--seed", "0xbeef", &args),
            FlagParse::kError);
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--epsilon-global", "0.75", &args),
            FlagParse::kConsumed);
  EXPECT_EQ(args.epsilon_global, 0.75);
}

TEST(CliFlagsTest, SharedIndexFlagPairTogglesAndPropagates) {
  PipelineArgs args;
  EXPECT_TRUE(args.shared_index);  // shared is the default
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--no-shared-index", "", &args),
            FlagParse::kConsumed);
  EXPECT_FALSE(args.shared_index);
  EXPECT_EQ(ParseOne(ParsePipelineFlag, "--shared-index", "", &args),
            FlagParse::kConsumed);
  EXPECT_TRUE(args.shared_index);

  // The choice reaches the streaming batch config's window audit.
  FrequencyRandomizerConfig pipeline;
  ASSERT_TRUE(MakePipelineConfig(args, &pipeline));
  StreamArgs stream;
  StreamRunnerConfig stream_config;
  args.shared_index = false;
  ASSERT_TRUE(MakeStreamConfig(stream, args, pipeline, &stream_config));
  EXPECT_TRUE(stream_config.batch.audit.enabled);
  EXPECT_FALSE(stream_config.batch.audit.shared_index);
  EXPECT_EQ(stream_config.batch.audit.index_levels, pipeline.index_levels);
  args.shared_index = true;
  ASSERT_TRUE(MakeStreamConfig(stream, args, pipeline, &stream_config));
  EXPECT_TRUE(stream_config.batch.audit.shared_index);
}

TEST(CliFlagsTest, StreamFlagsErrorInsteadOfSilentZero) {
  StreamArgs args;
  EXPECT_EQ(ParseOne(ParseStreamFlag, "--window", "big", &args),
            FlagParse::kError);
  EXPECT_EQ(args.window, 1000u);
  EXPECT_EQ(ParseOne(ParseStreamFlag, "--budget", "3..0", &args),
            FlagParse::kError);
  EXPECT_EQ(args.budget, 0.0);
  EXPECT_EQ(ParseOne(ParseStreamFlag, "--per-object-budget", "x", &args),
            FlagParse::kError);
  EXPECT_EQ(ParseOne(ParseStreamFlag, "--close-after-ms", "-1", &args),
            FlagParse::kError);
  EXPECT_EQ(ParseOne(ParseStreamFlag, "--window", "40", &args),
            FlagParse::kConsumed);
  EXPECT_EQ(args.window, 40u);
  EXPECT_EQ(ParseOne(ParseStreamFlag, "--budget", "3.0", &args),
            FlagParse::kConsumed);
  EXPECT_EQ(args.budget, 3.0);
}

TEST(CliFlagsTest, DurabilityFlagsParseAndValidate) {
  DurabilityArgs args;
  EXPECT_EQ(ParseOne(ParseDurabilityFlag, "--state-dir", "/tmp/s", &args),
            FlagParse::kConsumed);
  EXPECT_EQ(args.state_dir, "/tmp/s");
  EXPECT_EQ(
      ParseOne(ParseDurabilityFlag, "--checkpoint-interval-ms", "0", &args),
      FlagParse::kError);
  EXPECT_EQ(
      ParseOne(ParseDurabilityFlag, "--checkpoint-interval-ms", "5s", &args),
      FlagParse::kError);
  EXPECT_EQ(args.checkpoint_interval_ms, 1000);
  EXPECT_EQ(ParseOne(ParseDurabilityFlag, "--metrics", "-", &args),
            FlagParse::kConsumed);
  EXPECT_EQ(
      ParseOne(ParseDurabilityFlag, "--metrics-interval-ms", "250", &args),
      FlagParse::kConsumed);
  EXPECT_EQ(args.metrics_interval_ms, 250);
  // --metrics-per-feed is a bare flag: no value consumed.
  {
    std::string f = "--metrics-per-feed";
    char* argv[] = {f.data()};
    int i = 0;
    EXPECT_EQ(ParseDurabilityFlag(1, argv, &i, &args),
              FlagParse::kConsumed);
    EXPECT_EQ(i, 0);
    EXPECT_TRUE(args.metrics_per_feed);
  }
  MetricsExporter::Options options = MakeMetricsOptions(args);
  EXPECT_EQ(options.path, "-");
  EXPECT_EQ(options.interval_ms, 250);
  EXPECT_TRUE(options.per_feed);
  // Flags from other families fall through untouched.
  EXPECT_EQ(ParseOne(ParseDurabilityFlag, "--window", "40", &args),
            FlagParse::kNotMine);
}

TEST(CliFlagsTest, ObservabilityFlagsParseAndValidate) {
  ObservabilityArgs args;
  EXPECT_EQ(ParseOne(ParseObservabilityFlag, "--trace-out", "t.json", &args),
            FlagParse::kConsumed);
  EXPECT_EQ(args.trace_out, "t.json");
  EXPECT_EQ(
      ParseOne(ParseObservabilityFlag, "--trace-buffer-events", "0", &args),
      FlagParse::kError);  // capacity must be >= 1
  EXPECT_EQ(
      ParseOne(ParseObservabilityFlag, "--trace-buffer-events", "4k", &args),
      FlagParse::kError);
  EXPECT_EQ(args.trace_buffer_events, uint64_t{1} << 16);  // default kept
  EXPECT_EQ(
      ParseOne(ParseObservabilityFlag, "--trace-buffer-events", "4096", &args),
      FlagParse::kConsumed);
  EXPECT_EQ(args.trace_buffer_events, 4096u);
  // --metrics-histograms is a bare flag: no value consumed.
  {
    std::string f = "--metrics-histograms";
    char* argv[] = {f.data()};
    int i = 0;
    EXPECT_EQ(ParseObservabilityFlag(1, argv, &i, &args),
              FlagParse::kConsumed);
    EXPECT_EQ(i, 0);
    EXPECT_TRUE(args.metrics_histograms);
  }
  DurabilityArgs durability;
  MetricsExporter::Options options = MakeMetricsOptions(durability, args);
  EXPECT_TRUE(options.histograms);
  // Histogram lines stay off unless the flag was given.
  EXPECT_FALSE(MakeMetricsOptions(durability).histograms);
  // Flags from other families fall through untouched.
  EXPECT_EQ(ParseOne(ParseObservabilityFlag, "--metrics", "-", &args),
            FlagParse::kNotMine);
}

TEST(CliFlagsTest, MissingValueIsAnError) {
  StreamArgs args;
  std::string f = "--budget";
  char* argv[] = {f.data()};
  int i = 0;
  EXPECT_EQ(ParseStreamFlag(1, argv, &i, &args), FlagParse::kError);
}

}  // namespace
}  // namespace frt::cli
