// Unit tests for src/traj: trajectory model, dataset, quantizer, CSV I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "traj/dataset.h"
#include "traj/io.h"
#include "traj/quantizer.h"
#include "traj/trajectory.h"

namespace frt {
namespace {

Trajectory MakeTraj(TrajId id, std::initializer_list<Point> pts) {
  Trajectory t(id);
  int64_t ts = 1000;
  for (const Point& p : pts) {
    t.Append(p, ts);
    ts += 60;
  }
  return t;
}

TEST(TrajectoryTest, BasicAccessors) {
  Trajectory t = MakeTraj(7, {{0, 0}, {3, 4}, {3, 10}});
  EXPECT_EQ(t.id(), 7);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.NumSegments(), 2u);
  EXPECT_DOUBLE_EQ(t.Length(), 11.0);
  EXPECT_EQ(t.SegmentAt(0).a, (Point{0, 0}));
  EXPECT_EQ(t.SegmentAt(1).b, (Point{3, 10}));
}

TEST(TrajectoryTest, EmptyAndSingle) {
  Trajectory e(1);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.NumSegments(), 0u);
  EXPECT_DOUBLE_EQ(e.Length(), 0.0);
  EXPECT_DOUBLE_EQ(e.Diameter(), 0.0);
  Trajectory s = MakeTraj(2, {{5, 5}});
  EXPECT_EQ(s.NumSegments(), 0u);
  EXPECT_DOUBLE_EQ(s.Diameter(), 0.0);
}

TEST(TrajectoryTest, DiameterExactSmall) {
  Trajectory t = MakeTraj(1, {{0, 0}, {1, 1}, {10, 0}, {2, 2}});
  EXPECT_DOUBLE_EQ(t.Diameter(), 10.0);
}

TEST(TrajectoryTest, DiameterLargeTrajectoryMatchesBruteForce) {
  Trajectory t(1);
  Rng rng(44);
  for (int i = 0; i < 500; ++i) {
    t.Append(Point{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i);
  }
  double brute = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    for (size_t j = i + 1; j < t.size(); ++j) {
      brute = std::max(brute, Distance(t[i].p, t[j].p));
    }
  }
  // The 8-direction extreme heuristic is near-exact for scattered points.
  EXPECT_NEAR(t.Diameter(), brute, brute * 0.02);
}

TEST(TrajectoryTest, BoundsCoverAllPoints) {
  Trajectory t = MakeTraj(1, {{-5, 2}, {8, -1}, {3, 9}});
  const BBox b = t.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, -5);
  EXPECT_DOUBLE_EQ(b.max_x, 8);
  EXPECT_DOUBLE_EQ(b.min_y, -1);
  EXPECT_DOUBLE_EQ(b.max_y, 9);
}

TEST(DatasetTest, AddAndLookup) {
  Dataset d;
  ASSERT_TRUE(d.Add(MakeTraj(10, {{0, 0}, {1, 1}})).ok());
  ASSERT_TRUE(d.Add(MakeTraj(20, {{2, 2}})).ok());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(*d.IndexOf(20), 1u);
  EXPECT_FALSE(d.IndexOf(30).ok());
  EXPECT_EQ(d.TotalPoints(), 3u);
  EXPECT_DOUBLE_EQ(d.AvgLength(), 1.5);
}

TEST(DatasetTest, DuplicateIdRejected) {
  Dataset d;
  ASSERT_TRUE(d.Add(MakeTraj(1, {{0, 0}})).ok());
  EXPECT_EQ(d.Add(MakeTraj(1, {{1, 1}})).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatasetTest, CloneIsDeep) {
  Dataset d;
  ASSERT_TRUE(d.Add(MakeTraj(1, {{0, 0}, {1, 1}})).ok());
  Dataset c = d.Clone();
  c[0].mutable_points()[0].p = Point{99, 99};
  EXPECT_EQ(d[0][0].p, (Point{0, 0}));
}

// --- Quantizer ---

class QuantizerTest : public ::testing::Test {
 protected:
  Quantizer q_{BBox::Of({0, 0}, {1024, 1024}), 11};  // 1m cells
};

TEST_F(QuantizerTest, NearbyPointsShareKey) {
  // 1024 levels-1 => 1024x1024 cells over 1024m: 1m cells.
  EXPECT_EQ(q_.KeyOf({100.1, 200.2}), q_.KeyOf({100.4, 200.8}));
  EXPECT_NE(q_.KeyOf({100.1, 200.2}), q_.KeyOf({103.0, 200.2}));
}

TEST_F(QuantizerTest, RepresentativeIsCentroidOfObservations) {
  q_.RegisterPoint({100.2, 200.2});
  q_.RegisterPoint({100.8, 200.8});
  const Point rep = q_.PointOf(q_.KeyOf({100.5, 200.5}));
  EXPECT_NEAR(rep.x, 100.5, 1e-9);
  EXPECT_NEAR(rep.y, 200.5, 1e-9);
}

TEST_F(QuantizerTest, UnseenKeyFallsBackToCellCenter) {
  const LocationKey key = q_.KeyOf({500.3, 600.7});
  const Point rep = q_.PointOf(key);
  EXPECT_EQ(q_.KeyOf(rep), key);
}

TEST_F(QuantizerTest, RepresentativeStaysInCell) {
  q_.RegisterPoint({77.1, 33.9});
  q_.RegisterPoint({77.9, 33.1});
  const LocationKey key = q_.KeyOf({77.5, 33.5});
  EXPECT_EQ(q_.KeyOf(q_.PointOf(key)), key);
}

TEST_F(QuantizerTest, PointFrequencyCounts) {
  Trajectory t = MakeTraj(
      1, {{10.2, 10.2}, {50, 50}, {10.4, 10.4}, {10.3, 10.1}, {90, 90}});
  const PointFrequency pf = ComputePointFrequency(t, q_);
  EXPECT_EQ(pf.at(q_.KeyOf({10.3, 10.3})), 3);
  EXPECT_EQ(pf.at(q_.KeyOf({50, 50})), 1);
  EXPECT_EQ(pf.size(), 3u);
}

TEST_F(QuantizerTest, TrajectoryFrequencyCountsDistinctTrajectories) {
  Dataset d;
  ASSERT_TRUE(d.Add(MakeTraj(1, {{10, 10}, {10.2, 10.2}, {50, 50}})).ok());
  ASSERT_TRUE(d.Add(MakeTraj(2, {{10.1, 10.1}})).ok());
  ASSERT_TRUE(d.Add(MakeTraj(3, {{90, 90}})).ok());
  const TrajectoryFrequency tf = ComputeTrajectoryFrequency(d, q_);
  // Repeats within trajectory 1 count once toward TF.
  EXPECT_EQ(tf.at(q_.KeyOf({10, 10})), 2);
  EXPECT_EQ(tf.at(q_.KeyOf({50, 50})), 1);
  EXPECT_EQ(tf.at(q_.KeyOf({90, 90})), 1);
}

TEST_F(QuantizerTest, UnpackRoundTrip) {
  const LocationKey key = q_.KeyOf({123.4, 567.8});
  const CellCoord c = Quantizer::Unpack(key);
  EXPECT_EQ(c.Key(), key);
  EXPECT_EQ(c.level, q_.snap_level());
}

// --- CSV I/O ---

TEST(IoTest, SaveLoadRoundTrip) {
  Dataset d;
  ASSERT_TRUE(d.Add(MakeTraj(3, {{1.5, 2.25}, {3.125, 4}})).ok());
  ASSERT_TRUE(d.Add(MakeTraj(9, {{-7, 0.5}})).ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "frt_io_test.csv").string();
  ASSERT_TRUE(SaveDatasetCsv(d, path).ok());
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].id(), 3);
  EXPECT_EQ((*loaded)[0].size(), 2u);
  EXPECT_NEAR((*loaded)[0][1].p.x, 3.125, 1e-3);
  EXPECT_EQ((*loaded)[1].id(), 9);
  EXPECT_EQ((*loaded)[1][0].t, 1000);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadDatasetCsv("/nonexistent/frt.csv").status().IsIOError());
}

TEST(IoTest, MalformedLineIsError) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "frt_io_bad.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1,2.0,3.0\n", f);  // missing the timestamp field
    std::fclose(f);
  }
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, CommentsAndBlankLinesSkipped) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "frt_io_cmt.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# header\n\n5,1.0,2.0,100\n5,2.0,3.0,200\n", f);
    std::fclose(f);
  }
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frt
