// Tests for src/index: structural unit tests of the hierarchical grid and a
// parameterized property suite asserting that every search strategy (UG,
// HGt, HGb, HG+) returns results cost-equivalent to the linear scan, under
// both grouping modes, with filters, and across dynamic updates — including
// a randomized interleaved-update property test with reused SearchContexts,
// the exactness guard for the arena/epoch layout.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "index/hierarchical_grid_index.h"
#include "index/search_context.h"
#include "index/segment_index.h"

namespace frt {
namespace {

constexpr double kRegionSize = 10000.0;

GridSpec TestGrid() {
  return GridSpec(BBox::Of({0, 0}, {kRegionSize, kRegionSize}), 10);
}

SegmentEntry RandomSegment(SegmentHandle handle, TrajId traj, Rng& rng,
                           double max_len = 600.0) {
  const Point a{rng.Uniform(0, kRegionSize), rng.Uniform(0, kRegionSize)};
  const Point b{a.x + rng.Uniform(-max_len, max_len),
                a.y + rng.Uniform(-max_len, max_len)};
  return SegmentEntry{
      handle, traj,
      Segment{a, {std::clamp(b.x, 0.0, kRegionSize),
                  std::clamp(b.y, 0.0, kRegionSize)}}};
}

std::vector<double> Dists(const std::vector<Neighbor>& v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (const auto& n : v) out.push_back(n.dist);
  return out;
}

void ExpectSameDistances(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  const auto gd = Dists(got);
  const auto wd = Dists(want);
  for (size_t i = 0; i < gd.size(); ++i) {
    ASSERT_NEAR(gd[i], wd[i], 1e-7) << label << " at rank " << i;
  }
}

// ---------------- structural tests (hierarchical grid) ----------------

TEST(HierarchicalGridTest, BestFitAssignment) {
  HierarchicalGridIndex index(TestGrid(), SearchStrategy::kBottomUpDown);
  // A tiny segment lands in a deep cell; a region-spanning one at the root.
  SegmentEntry tiny{1, 0, Segment{{10, 10}, {12, 12}}};
  SegmentEntry wide{2, 0, Segment{{100, 100}, {9900, 9900}}};
  ASSERT_TRUE(index.Insert(tiny).ok());
  ASSERT_TRUE(index.Insert(wide).ok());
  const CellCoord tiny_cell = index.BestFit(tiny.geom);
  EXPECT_EQ(tiny_cell.level, 9);
  EXPECT_EQ(index.BestFit(wide.geom).level, 0);
  const auto tiny_segs = index.CellSegments(tiny_cell);
  ASSERT_EQ(tiny_segs.size(), 1u);
  EXPECT_EQ(tiny_segs[0].handle, 1u);
  const auto root_segs = index.CellSegments(CellCoord{0, 0, 0});
  ASSERT_EQ(root_segs.size(), 1u);
  EXPECT_EQ(root_segs[0].handle, 2u);
  EXPECT_TRUE(index.CellSegments(CellCoord{5, 3, 3}).empty());
}

TEST(HierarchicalGridTest, ParentLinksSkipEmptyLevels) {
  HierarchicalGridIndex index(TestGrid(), SearchStrategy::kBottomUpDown);
  SegmentEntry deep{1, 0, Segment{{10, 10}, {12, 12}}};
  ASSERT_TRUE(index.Insert(deep).ok());
  const CellCoord cell = index.BestFit(deep.geom);
  // With only root and this cell materialized, the parent is the root.
  EXPECT_EQ(index.CellParent(cell), (CellCoord{0, 0, 0}));
  EXPECT_EQ(index.NumCells(), 2u);
  // Insert a mid-level ancestor: the deep cell reparents beneath it.
  SegmentEntry mid{2, 0, Segment{{5, 5}, {1200, 1200}}};
  ASSERT_TRUE(index.Insert(mid).ok());
  const CellCoord mid_cell = index.BestFit(mid.geom);
  ASSERT_GT(mid_cell.level, 0);
  ASSERT_LT(mid_cell.level, cell.level);
  EXPECT_EQ(index.CellParent(cell), mid_cell);
  EXPECT_EQ(index.CellParent(mid_cell), (CellCoord{0, 0, 0}));
}

TEST(HierarchicalGridTest, RemoveSplicesEmptyCells) {
  HierarchicalGridIndex index(TestGrid(), SearchStrategy::kBottomUpDown);
  SegmentEntry deep{1, 0, Segment{{10, 10}, {12, 12}}};
  SegmentEntry mid{2, 0, Segment{{5, 5}, {1200, 1200}}};
  ASSERT_TRUE(index.Insert(deep).ok());
  ASSERT_TRUE(index.Insert(mid).ok());
  ASSERT_EQ(index.NumCells(), 3u);
  // Removing the mid segment splices its cell; deep reattaches to root.
  ASSERT_TRUE(index.Remove(2).ok());
  EXPECT_EQ(index.NumCells(), 2u);
  EXPECT_EQ(index.CellParent(index.BestFit(deep.geom)),
            (CellCoord{0, 0, 0}));
  ASSERT_TRUE(index.Remove(1).ok());
  EXPECT_EQ(index.NumCells(), 1u);  // root only
  EXPECT_EQ(index.size(), 0u);
}

TEST(HierarchicalGridTest, DuplicateHandleRejected) {
  HierarchicalGridIndex index(TestGrid(), SearchStrategy::kBottomUpDown);
  SegmentEntry e{1, 0, Segment{{10, 10}, {12, 12}}};
  ASSERT_TRUE(index.Insert(e).ok());
  EXPECT_EQ(index.Insert(e).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(index.Remove(99).IsNotFound());
}

TEST(HierarchicalGridTest, EmptyIndexReturnsNothing) {
  HierarchicalGridIndex index(TestGrid(), SearchStrategy::kBottomUpDown);
  SearchOptions options;
  options.k = 3;
  EXPECT_TRUE(index.KNearest({100, 100}, options).empty());
}

TEST(HierarchicalGridTest, PruningReducesDistanceEvaluations) {
  Rng rng(17);
  HierarchicalGridIndex hg(TestGrid(), SearchStrategy::kBottomUpDown);
  auto linear = MakeSegmentIndex(SearchStrategy::kLinear, TestGrid());
  for (SegmentHandle h = 0; h < 5000; ++h) {
    const SegmentEntry e = RandomSegment(h, h % 100, rng);
    ASSERT_TRUE(hg.Insert(e).ok());
    ASSERT_TRUE(linear->Insert(e).ok());
  }
  SearchOptions options;
  options.k = 5;
  for (int i = 0; i < 20; ++i) {
    const Point q{rng.Uniform(0, kRegionSize), rng.Uniform(0, kRegionSize)};
    (void)hg.KNearest(q, options);
    (void)linear->KNearest(q, options);
  }
  // The hierarchical index must evaluate far fewer exact distances.
  EXPECT_LT(hg.distance_evaluations(),
            linear->distance_evaluations() / 5);
}

// ---------------- parameterized equivalence suite ----------------

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(StrategyEquivalenceTest, MatchesLinearOnRandomData) {
  Rng rng(101);
  auto linear = MakeSegmentIndex(SearchStrategy::kLinear, TestGrid());
  auto index = MakeSegmentIndex(GetParam(), TestGrid());
  for (SegmentHandle h = 0; h < 2000; ++h) {
    const SegmentEntry e = RandomSegment(h, h % 50, rng);
    ASSERT_TRUE(linear->Insert(e).ok());
    ASSERT_TRUE(index->Insert(e).ok());
  }
  for (const size_t k : {1u, 3u, 10u, 40u}) {
    for (int trial = 0; trial < 25; ++trial) {
      const Point q{rng.Uniform(0, kRegionSize),
                    rng.Uniform(0, kRegionSize)};
      SearchOptions options;
      options.k = k;
      const auto want = linear->KNearest(q, options);
      const auto got = index->KNearest(q, options);
      ExpectSameDistances(got, want,
                          std::string(SearchStrategyName(GetParam())) +
                              " k=" + std::to_string(k));
    }
  }
}

TEST_P(StrategyEquivalenceTest, TrajectoryGroupingMatchesLinear) {
  Rng rng(202);
  auto linear = MakeSegmentIndex(SearchStrategy::kLinear, TestGrid());
  auto index = MakeSegmentIndex(GetParam(), TestGrid());
  for (SegmentHandle h = 0; h < 1500; ++h) {
    const SegmentEntry e = RandomSegment(h, h % 30, rng);
    ASSERT_TRUE(linear->Insert(e).ok());
    ASSERT_TRUE(index->Insert(e).ok());
  }
  for (const size_t k : {1u, 5u, 20u}) {
    for (int trial = 0; trial < 15; ++trial) {
      const Point q{rng.Uniform(0, kRegionSize),
                    rng.Uniform(0, kRegionSize)};
      SearchOptions options;
      options.k = k;
      options.group_by = GroupBy::kTrajectory;
      const auto want = linear->KNearest(q, options);
      const auto got = index->KNearest(q, options);
      ExpectSameDistances(got, want, "traj mode");
      // Distinct trajectories only.
      std::unordered_set<TrajId> trajs;
      for (const auto& n : got) {
        ASSERT_TRUE(trajs.insert(n.entry.traj).second);
      }
    }
  }
}

TEST_P(StrategyEquivalenceTest, FilterExcludesIneligibleSegments) {
  Rng rng(303);
  auto index = MakeSegmentIndex(GetParam(), TestGrid());
  auto linear = MakeSegmentIndex(SearchStrategy::kLinear, TestGrid());
  for (SegmentHandle h = 0; h < 800; ++h) {
    const SegmentEntry e = RandomSegment(h, h % 10, rng);
    ASSERT_TRUE(index->Insert(e).ok());
    ASSERT_TRUE(linear->Insert(e).ok());
  }
  const auto not_traj3 = [](const SegmentEntry& e) { return e.traj != 3; };
  SearchOptions options;
  options.k = 10;
  options.filter = not_traj3;
  for (int trial = 0; trial < 10; ++trial) {
    const Point q{rng.Uniform(0, kRegionSize), rng.Uniform(0, kRegionSize)};
    const auto got = index->KNearest(q, options);
    const auto want = linear->KNearest(q, options);
    ExpectSameDistances(got, want, "filtered");
    for (const auto& n : got) ASSERT_NE(n.entry.traj, 3);
  }
}

TEST_P(StrategyEquivalenceTest, StaysCorrectAcrossUpdates) {
  Rng rng(404);
  auto linear = MakeSegmentIndex(SearchStrategy::kLinear, TestGrid());
  auto index = MakeSegmentIndex(GetParam(), TestGrid());
  std::vector<SegmentHandle> live;
  SegmentHandle next = 0;
  for (int round = 0; round < 6; ++round) {
    // Insert a batch.
    for (int i = 0; i < 300; ++i) {
      const SegmentEntry e = RandomSegment(next, next % 20, rng);
      ASSERT_TRUE(linear->Insert(e).ok());
      ASSERT_TRUE(index->Insert(e).ok());
      live.push_back(next);
      ++next;
    }
    // Remove a random half of the live set.
    for (size_t i = 0; i < live.size() / 2; ++i) {
      const size_t pick = rng.UniformInt(uint64_t{live.size()});
      ASSERT_TRUE(linear->Remove(live[pick]).ok());
      ASSERT_TRUE(index->Remove(live[pick]).ok());
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(index->size(), linear->size());
    // Verify queries.
    SearchOptions options;
    options.k = 7;
    for (int trial = 0; trial < 8; ++trial) {
      const Point q{rng.Uniform(0, kRegionSize),
                    rng.Uniform(0, kRegionSize)};
      ExpectSameDistances(index->KNearest(q, options),
                          linear->KNearest(q, options),
                          "after updates round " + std::to_string(round));
    }
  }
}

TEST_P(StrategyEquivalenceTest, KLargerThanPopulationReturnsAll) {
  Rng rng(505);
  auto index = MakeSegmentIndex(GetParam(), TestGrid());
  for (SegmentHandle h = 0; h < 12; ++h) {
    ASSERT_TRUE(index->Insert(RandomSegment(h, h, rng)).ok());
  }
  SearchOptions options;
  options.k = 100;
  EXPECT_EQ(index->KNearest({500, 500}, options).size(), 12u);
}

TEST_P(StrategyEquivalenceTest, ResultsSortedAscending) {
  Rng rng(606);
  auto index = MakeSegmentIndex(GetParam(), TestGrid());
  for (SegmentHandle h = 0; h < 500; ++h) {
    ASSERT_TRUE(index->Insert(RandomSegment(h, h % 9, rng)).ok());
  }
  SearchOptions options;
  options.k = 20;
  const auto result = index->KNearest({5000, 5000}, options);
  for (size_t i = 0; i + 1 < result.size(); ++i) {
    ASSERT_LE(result[i].dist, result[i + 1].dist + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalenceTest,
    ::testing::Values(SearchStrategy::kUniformGrid,
                      SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
                      SearchStrategy::kBottomUpDown),
    [](const ::testing::TestParamInfo<SearchStrategy>& info) {
      std::string name(SearchStrategyName(info.param));
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

// ---------------- randomized interleaved-update property test ------------
//
// The exactness guard for the arena/epoch-stamp layout: on randomized
// segment sets with interleaved Insert/Remove, every strategy must return
// results identical to kLinear — under both GroupBy modes, with and
// without a filter, and with each index's SearchContext reused across all
// queries (so stale scratch state from a previous query, mode, or k would
// be caught immediately).
TEST(StrategyEquivalencePropertyTest, InterleavedUpdatesAllModesReusedCtx) {
  Rng rng(7777);
  const std::vector<SearchStrategy> all = {
      SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
      SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
      SearchStrategy::kBottomUpDown};
  std::vector<std::unique_ptr<SegmentIndex>> indexes;
  // One long-lived context per index, shared by every query below.
  std::vector<std::unique_ptr<SearchContext>> contexts;
  for (const SearchStrategy s : all) {
    indexes.push_back(MakeSegmentIndex(s, TestGrid()));
    contexts.push_back(std::make_unique<SearchContext>());
  }
  SegmentIndex& linear = *indexes[0];
  SearchContext& linear_ctx = *contexts[0];

  std::vector<SegmentHandle> live;
  SegmentHandle next = 0;
  for (int round = 0; round < 10; ++round) {
    // Interleave: a burst of inserts, then a random batch of removals.
    const size_t inserts = 50 + rng.UniformInt(uint64_t{200});
    for (size_t i = 0; i < inserts; ++i) {
      const SegmentEntry e = RandomSegment(next, next % 23, rng);
      for (auto& index : indexes) {
        ASSERT_TRUE(index->Insert(e).ok());
      }
      live.push_back(next);
      ++next;
    }
    const size_t removals = rng.UniformInt(uint64_t{live.size() / 2 + 1});
    for (size_t i = 0; i < removals; ++i) {
      const size_t pick = rng.UniformInt(uint64_t{live.size()});
      for (auto& index : indexes) {
        ASSERT_TRUE(index->Remove(live[pick]).ok());
      }
      live[pick] = live.back();
      live.pop_back();
    }
    for (auto& index : indexes) ASSERT_EQ(index->size(), live.size());

    const TrajId banned = static_cast<TrajId>(round % 23);
    const auto not_banned = [banned](const SegmentEntry& e) {
      return e.traj != banned;
    };
    for (const size_t k : {1u, 4u, 17u}) {
      for (const GroupBy mode :
           {GroupBy::kSegment, GroupBy::kTrajectory}) {
        for (const bool filtered : {false, true}) {
          const Point q{rng.Uniform(0, kRegionSize),
                        rng.Uniform(0, kRegionSize)};
          SearchOptions options;
          options.k = k;
          options.group_by = mode;
          if (filtered) options.filter = not_banned;
          const auto want = linear.KNearest(q, options, &linear_ctx);
          const std::vector<Neighbor> want_copy(want.begin(), want.end());
          for (size_t s = 1; s < indexes.size(); ++s) {
            const auto got =
                indexes[s]->KNearest(q, options, contexts[s].get());
            const std::string label =
                std::string(SearchStrategyName(all[s])) + " round " +
                std::to_string(round) + " k=" + std::to_string(k) +
                (mode == GroupBy::kTrajectory ? " traj" : " seg") +
                (filtered ? " filtered" : "");
            ASSERT_EQ(got.size(), want_copy.size()) << label;
            for (size_t i = 0; i < got.size(); ++i) {
              ASSERT_NEAR(got[i].dist, want_copy[i].dist, 1e-7)
                  << label << " at rank " << i;
              if (filtered) {
                ASSERT_NE(got[i].entry.traj, banned) << label;
              }
            }
            if (mode == GroupBy::kTrajectory) {
              std::unordered_set<TrajId> trajs;
              for (const auto& n : got) {
                ASSERT_TRUE(trajs.insert(n.entry.traj).second) << label;
              }
            }
          }
        }
      }
    }
  }
}

// Bulk Build must be equivalent to element-wise Insert (same contents,
// same query results) and reject duplicate handles.
TEST(StrategyEquivalencePropertyTest, BulkBuildMatchesInserts) {
  Rng rng(8888);
  std::vector<SegmentEntry> entries;
  for (SegmentHandle h = 0; h < 1200; ++h) {
    entries.push_back(RandomSegment(h, h % 40, rng));
  }
  for (const SearchStrategy s :
       {SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
        SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
        SearchStrategy::kBottomUpDown}) {
    auto bulk = MakeSegmentIndex(s, TestGrid());
    ASSERT_TRUE(bulk->Build(entries).ok());
    auto incremental = MakeSegmentIndex(s, TestGrid());
    for (const auto& e : entries) ASSERT_TRUE(incremental->Insert(e).ok());
    ASSERT_EQ(bulk->size(), incremental->size());
    SearchOptions options;
    options.k = 12;
    for (int trial = 0; trial < 10; ++trial) {
      const Point q{rng.Uniform(0, kRegionSize),
                    rng.Uniform(0, kRegionSize)};
      ExpectSameDistances(bulk->KNearest(q, options),
                          incremental->KNearest(q, options),
                          std::string(SearchStrategyName(s)) + " bulk");
    }
    EXPECT_EQ(bulk->Build(Span<const SegmentEntry>(entries.data(), 1))
                  .code(),
              StatusCode::kAlreadyExists);
  }
}

TEST(SearchStrategyTest, Names) {
  EXPECT_EQ(SearchStrategyName(SearchStrategy::kLinear), "Linear");
  EXPECT_EQ(SearchStrategyName(SearchStrategy::kUniformGrid), "UG");
  EXPECT_EQ(SearchStrategyName(SearchStrategy::kTopDown), "HGt");
  EXPECT_EQ(SearchStrategyName(SearchStrategy::kBottomUp), "HGb");
  EXPECT_EQ(SearchStrategyName(SearchStrategy::kBottomUpDown), "HG+");
}

TEST(IndexTrajectoryTest, InsertsAllSegments) {
  Trajectory t(5);
  t.Append({100, 100}, 0);
  t.Append({200, 100}, 60);
  t.Append({200, 200}, 120);
  auto index = MakeSegmentIndex(SearchStrategy::kBottomUpDown, TestGrid());
  EXPECT_EQ(IndexTrajectory(t, index.get(), 1000), 2u);
  EXPECT_EQ(index->size(), 2u);
}

}  // namespace
}  // namespace frt
