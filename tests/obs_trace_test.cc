// TraceRecorder: emit/drain round-trips, exact drop counters on ring
// overflow, concurrent emitters (exercised under ASan/TSan in CI), and
// the Chrome trace-event JSON exporter.

#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/trace_export.h"

namespace frt::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// The recorder is a process-wide singleton; every test leaves it
/// stopped so suites stay order-independent.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { (void)TraceRecorder::Get().Stop(); }
};

void EmitOne(const char* name, SpanCategory cat, std::string_view feed,
             int64_t dur_us = 5) {
  const Clock::time_point end = Clock::now();
  EmitSpan(name, cat, feed, end - std::chrono::microseconds(dur_us), end);
}

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  EXPECT_FALSE(TraceEnabled());
  EmitOne("ghost", SpanCategory::kPool, "");
  { ScopedSpan span("ghost2", SpanCategory::kPool); }
  const TraceDump dump = TraceRecorder::Get().Stop();
  EXPECT_TRUE(dump.events.empty());
  EXPECT_EQ(dump.dropped, 0u);
}

TEST_F(TraceTest, EmitDrainRoundTrip) {
  ASSERT_TRUE(TraceRecorder::Get().Start({/*buffer_events=*/1024}));
  EXPECT_TRUE(TraceEnabled());
  EXPECT_FALSE(TraceRecorder::Get().Start({1024}))
      << "double Start must be refused";
  const Clock::time_point t0 = Clock::now();
  EmitSpan("anonymize", SpanCategory::kAnonymize, "alpha", t0,
           t0 + std::chrono::microseconds(250));
  EmitSpan("checkpoint_write", SpanCategory::kDurability, "", t0,
           t0 + std::chrono::milliseconds(3));
  const TraceDump dump = TraceRecorder::Get().Stop();
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.dropped, 0u);
  EXPECT_EQ(dump.events[0].name, "anonymize");
  EXPECT_EQ(dump.events[0].feed, "alpha");
  EXPECT_EQ(dump.events[0].category, SpanCategory::kAnonymize);
  EXPECT_NEAR(static_cast<double>(dump.events[0].dur_ns), 250e3, 1.0);
  EXPECT_EQ(dump.events[1].name, "checkpoint_write");
  EXPECT_TRUE(dump.events[1].feed.empty());
  EXPECT_NEAR(static_cast<double>(dump.events[1].dur_ns), 3e6, 1.0);
  EXPECT_FALSE(TraceEnabled());
}

TEST_F(TraceTest, StopIsIdempotentAndRestartable) {
  ASSERT_TRUE(TraceRecorder::Get().Start({256}));
  EmitOne("first_session", SpanCategory::kPool, "");
  TraceDump first = TraceRecorder::Get().Stop();
  ASSERT_EQ(first.events.size(), 1u);
  EXPECT_TRUE(TraceRecorder::Get().Stop().events.empty());
  // A later session must not resurrect the first session's events.
  ASSERT_TRUE(TraceRecorder::Get().Start({256}));
  EmitOne("second_session", SpanCategory::kPool, "");
  TraceDump second = TraceRecorder::Get().Stop();
  ASSERT_EQ(second.events.size(), 1u);
  EXPECT_EQ(second.events[0].name, "second_session");
}

TEST_F(TraceTest, DropCounterIsExactOnOverflow) {
  constexpr size_t kCapacity = 64;  // the enforced minimum
  constexpr size_t kEmitted = 300;
  ASSERT_TRUE(TraceRecorder::Get().Start({kCapacity}));
  const Clock::time_point base = Clock::now();
  for (size_t i = 0; i < kEmitted; ++i) {
    EmitSpan("overflow", SpanCategory::kPool, "",
             base + std::chrono::microseconds(i),
             base + std::chrono::microseconds(i + 1));
  }
  const TraceDump dump = TraceRecorder::Get().Stop();
  EXPECT_EQ(dump.events.size(), kCapacity);
  EXPECT_EQ(dump.dropped, kEmitted - kCapacity);
  ASSERT_EQ(dump.threads.size(), 1u);
  EXPECT_EQ(dump.threads[0].dropped, kEmitted - kCapacity);
  // Overwrite-oldest: the survivors are the newest kCapacity events.
  for (size_t i = 1; i < dump.events.size(); ++i) {
    EXPECT_LT(dump.events[i - 1].start_ns, dump.events[i].start_ns);
  }
  const int64_t oldest_expected_ns =
      dump.events.back().start_ns -
      static_cast<int64_t>((kCapacity - 1) * 1000);
  EXPECT_EQ(dump.events.front().start_ns, oldest_expected_ns);
}

TEST_F(TraceTest, LongNamesAndFeedsTruncateSafely) {
  ASSERT_TRUE(TraceRecorder::Get().Start({64}));
  const std::string long_name(100, 'n');
  const std::string long_feed(100, 'f');
  EmitOne(long_name.c_str(), SpanCategory::kIngest, long_feed);
  const TraceDump dump = TraceRecorder::Get().Stop();
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].name, std::string(23, 'n'));
  EXPECT_EQ(dump.events[0].feed, std::string(15, 'f'));
}

TEST_F(TraceTest, ThreadNamesAndTidsSurviveDrain) {
  ASSERT_TRUE(TraceRecorder::Get().Start({256}));
  SetTraceThreadName("main-thread");
  EmitOne("main_span", SpanCategory::kWindow, "");
  std::thread worker([] {
    SetTraceThreadName("worker-7");
    EmitOne("worker_span", SpanCategory::kPool, "");
  });
  worker.join();
  const TraceDump dump = TraceRecorder::Get().Stop();
  ASSERT_EQ(dump.events.size(), 2u);
  ASSERT_EQ(dump.threads.size(), 2u);
  EXPECT_NE(dump.threads[0].tid, dump.threads[1].tid);
  std::vector<std::string> names;
  for (const TraceThreadInfo& t : dump.threads) names.push_back(t.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "main-thread"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "worker-7"), names.end());
}

TEST_F(TraceTest, ConcurrentEmittersAccountForEveryEvent) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  constexpr size_t kCapacity = 1024;  // forces overflow in every ring
  ASSERT_TRUE(TraceRecorder::Get().Start({kCapacity}));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      SetTraceThreadName("emitter-" + std::to_string(t));
      for (size_t i = 0; i < kPerThread; ++i) {
        EmitOne("burst", SpanCategory::kPool, "feed");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const TraceDump dump = TraceRecorder::Get().Stop();
  // Quiesced drain: kept + dropped accounts for every emitted event.
  EXPECT_EQ(dump.events.size() + dump.dropped, kThreads * kPerThread);
  EXPECT_EQ(dump.events.size(), kThreads * kCapacity);
  EXPECT_EQ(dump.threads.size(), kThreads);
  for (const TraceThreadInfo& t : dump.threads) {
    EXPECT_EQ(t.dropped, kPerThread - kCapacity);
  }
}

TEST_F(TraceTest, StopWhileEmittersRunIsSafe) {
  // Writers keep emitting straight through Stop(): nothing may crash,
  // tear (the seqlock skips torn slots), or deadlock. ASan/TSan CI jobs
  // give this test its teeth.
  ASSERT_TRUE(TraceRecorder::Get().Start({128}));
  std::atomic<bool> quit{false};
  std::atomic<uint64_t> emitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!quit.load(std::memory_order_relaxed)) {
        EmitOne("live", SpanCategory::kPool, "f");
        emitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (emitted.load(std::memory_order_relaxed) < 1000) {
    std::this_thread::yield();
  }
  const TraceDump dump = TraceRecorder::Get().Stop();
  quit.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(TraceEnabled());
  EXPECT_LE(dump.events.size(), 4u * 128u);
  for (const TraceEvent& e : dump.events) {
    EXPECT_EQ(e.name, "live");  // no torn slot ever decodes as garbage
    EXPECT_GE(e.dur_ns, 0);
  }
}

TEST_F(TraceTest, ChromeExportShapesValidJson) {
  ASSERT_TRUE(TraceRecorder::Get().Start({256}));
  SetTraceThreadName("exporter-test");
  EmitOne("anonymize", SpanCategory::kAnonymize, "feed\"quoted");
  const TraceDump dump = TraceRecorder::Get().Stop();
  const std::string json = ChromeTraceJson(dump);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"anonymize\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  // The quote in the feed id must have been escaped.
  EXPECT_NE(json.find("feed\\\"quoted"), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "/obs_trace_export_test.json";
  ASSERT_TRUE(WriteChromeTrace(dump, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents(json.size(), '\0');
  const size_t read = std::fread(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(read, json.size());
  EXPECT_EQ(contents, json);
}

TEST_F(TraceTest, ScopedSpanEmitsOnDestruction) {
  ASSERT_TRUE(TraceRecorder::Get().Start({64}));
  {
    ScopedSpan span("scoped_work", SpanCategory::kIngest, "beta");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const TraceDump dump = TraceRecorder::Get().Stop();
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].name, "scoped_work");
  EXPECT_EQ(dump.events[0].feed, "beta");
  EXPECT_GE(dump.events[0].dur_ns, 150 * 1000);
}

}  // namespace
}  // namespace frt::obs
