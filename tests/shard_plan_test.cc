// Unit tests for runtime/shard_plan.h.

#include "runtime/shard_plan.h"

#include <gtest/gtest.h>

#include <cstddef>

namespace frt {
namespace {

// The invariants every plan must satisfy: contiguous coverage of [0, n),
// no empty shards, and sizes differing by at most one.
void CheckPlan(size_t n, int shards) {
  const auto plan = PlanShards(n, shards);
  if (n == 0) {
    EXPECT_TRUE(plan.empty());
    return;
  }
  const size_t expected_k =
      shards < 1 ? 1
                 : (static_cast<size_t>(shards) > n
                        ? n
                        : static_cast<size_t>(shards));
  ASSERT_EQ(plan.size(), expected_k);
  size_t cursor = 0;
  size_t min_size = n;
  size_t max_size = 0;
  for (const auto& range : plan) {
    EXPECT_EQ(range.begin, cursor);
    EXPECT_GT(range.end, range.begin);
    cursor = range.end;
    min_size = range.size() < min_size ? range.size() : min_size;
    max_size = range.size() > max_size ? range.size() : max_size;
  }
  EXPECT_EQ(cursor, n);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlanTest, EmptyInput) { CheckPlan(0, 4); }

TEST(ShardPlanTest, SingleShard) { CheckPlan(10, 1); }

TEST(ShardPlanTest, EvenSplit) {
  CheckPlan(12, 4);
  const auto plan = PlanShards(12, 4);
  for (const auto& range : plan) EXPECT_EQ(range.size(), 3u);
}

TEST(ShardPlanTest, RemainderSpreadOverLeadingShards) {
  const auto plan = PlanShards(10, 4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].size(), 3u);
  EXPECT_EQ(plan[1].size(), 3u);
  EXPECT_EQ(plan[2].size(), 2u);
  EXPECT_EQ(plan[3].size(), 2u);
}

TEST(ShardPlanTest, MoreShardsThanItemsClampsToItems) {
  CheckPlan(3, 100);
  EXPECT_EQ(PlanShards(3, 100).size(), 3u);
}

TEST(ShardPlanTest, NonPositiveShardCountClampsToOne) {
  CheckPlan(5, 0);
  CheckPlan(5, -7);
  EXPECT_EQ(PlanShards(5, 0).size(), 1u);
}

TEST(ShardPlanTest, Sweep) {
  for (size_t n : {1u, 2u, 17u, 100u, 1001u}) {
    for (int k : {1, 2, 3, 8, 64}) CheckPlan(n, k);
  }
}

}  // namespace
}  // namespace frt
