// Fixed-seed end-to-end regression of the streaming subsystem: a 10k-
// trajectory synthetic feed through frt's windowed anonymization service.
// Locks the acceptance behavior: the concatenation of published windows
// preserves the input trajectory count and order, the cross-window ledger
// composes sequentially and refuses windows once --budget is exhausted,
// and the whole run is deterministic across thread counts and repeats.

#include "stream/stream_runner.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "stream/ingest.h"
#include "testing_util.h"

namespace frt {
namespace {

using frt::testing::SinkCapture;
using frt::testing::SyntheticCsv;

constexpr uint64_t kSeed = 20260730;

StreamRunnerConfig SmallConfig(size_t window, double budget) {
  StreamRunnerConfig config;
  config.window_size = window;
  config.total_budget = budget;
  config.batch.shards = 4;
  config.batch.pipeline.m = 3;
  config.batch.pipeline.epsilon_global = 0.5;
  config.batch.pipeline.epsilon_local = 0.5;
  return config;
}

TEST(StreamE2ETest, TenThousandTrajectoriesWindowed) {
  const int kTrajectories = 10000;
  const std::string csv = SyntheticCsv(kTrajectories);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunner runner(SmallConfig(1000, 0.0));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());

  // Concatenated output matches the input trajectory count, in order.
  const StreamReport& report = runner.report();
  EXPECT_EQ(report.trajectories_in, static_cast<size_t>(kTrajectories));
  EXPECT_EQ(report.trajectories_published, static_cast<size_t>(kTrajectories));
  EXPECT_EQ(report.windows_published, 10u);
  EXPECT_EQ(report.windows_refused, 0u);
  ASSERT_EQ(capture.ids.size(), static_cast<size_t>(kTrajectories));
  for (int i = 0; i < kTrajectories; ++i) {
    EXPECT_EQ(capture.ids[i], i);
  }
  // At this seed no trajectory is emptied by the deletion mechanism, so
  // the CSV concatenation of the published windows also carries all 10k.
  size_t emptied = 0;
  for (const auto& points : capture.points) {
    if (points.empty()) ++emptied;
  }
  EXPECT_EQ(emptied, 0u);

  // The ledger sums eps_G + eps_L per window, sequentially.
  EXPECT_NEAR(report.epsilon_spent, 10.0, 1e-9);
  EXPECT_EQ(runner.accountant().ledger().size(), 10u);
  ASSERT_EQ(report.windows.size(), 10u);
  for (const auto& w : report.windows) {
    EXPECT_NEAR(w.epsilon_spent, 1.0, 1e-9);
    EXPECT_EQ(w.trajectories, 1000u);
    EXPECT_EQ(w.batch.shards_run, 4);
  }
}

TEST(StreamE2ETest, BudgetExhaustionRefusesLaterWindows) {
  // 5 windows of eps 1.0 against a total budget of 2.5: windows 0 and 1
  // publish, windows 2..4 are refused and never reach the sink.
  const std::string csv = SyntheticCsv(500);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunner runner(SmallConfig(100, 2.5));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());

  const StreamReport& report = runner.report();
  EXPECT_EQ(report.windows_closed, 5u);
  EXPECT_EQ(report.windows_published, 2u);
  EXPECT_EQ(report.windows_refused, 3u);
  EXPECT_EQ(report.trajectories_published, 200u);
  EXPECT_EQ(report.trajectories_refused, 300u);
  EXPECT_NEAR(report.epsilon_spent, 2.0, 1e-9);
  EXPECT_NEAR(runner.accountant().remaining(), 0.5, 1e-9);
  // Only the first two windows' trajectories were published.
  ASSERT_EQ(capture.ids.size(), 200u);
  EXPECT_EQ(capture.ids.front(), 0);
  EXPECT_EQ(capture.ids.back(), 199);
  // Even the whole input was still drained (the service keeps consuming).
  EXPECT_EQ(report.trajectories_in, 500u);
}

TEST(StreamE2ETest, StopWhenExhaustedEndsRunAtFirstRefusal) {
  // With stop_when_exhausted the run terminates at the first refused
  // window instead of draining the feed — the termination path a
  // never-ending feed needs.
  const std::string csv = SyntheticCsv(500);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunnerConfig config = SmallConfig(100, 2.5);
  config.stop_when_exhausted = true;
  StreamRunner runner(config);
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());
  const StreamReport& report = runner.report();
  EXPECT_EQ(report.windows_published, 2u);
  EXPECT_EQ(report.windows_refused, 1u);  // the refusal that stopped the run
  EXPECT_EQ(capture.ids.size(), 200u);
  // The tail of the feed was never pulled through the pipeline.
  EXPECT_LT(report.trajectories_in, 500u);
}

TEST(StreamE2ETest, ExactBudgetPublishesEveryWindow) {
  const std::string csv = SyntheticCsv(300);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunner runner(SmallConfig(100, 3.0));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());
  EXPECT_EQ(runner.report().windows_published, 3u);
  EXPECT_EQ(runner.report().windows_refused, 0u);
  EXPECT_NEAR(runner.accountant().remaining(), 0.0, 1e-9);
}

TEST(StreamE2ETest, DeterministicAcrossThreadCountsAndRepeats) {
  const std::string csv = SyntheticCsv(400);
  auto run = [&](unsigned threads) {
    std::istringstream in(csv);
    TrajectoryReader reader(in);
    StreamRunnerConfig config = SmallConfig(100, 0.0);
    config.batch.threads = threads;
    StreamRunner runner(config);
    SinkCapture capture;
    Rng rng(kSeed);
    auto sink = capture.MakeSink();
    EXPECT_TRUE(runner.Run(reader, sink, rng).ok());
    return capture;
  };
  const SinkCapture base = run(1);
  ASSERT_EQ(base.ids.size(), 400u);
  for (const unsigned threads : {1u, 4u, 8u}) {
    const SinkCapture other = run(threads);
    ASSERT_EQ(other.ids.size(), base.ids.size()) << "threads " << threads;
    EXPECT_EQ(other.ids, base.ids) << "threads " << threads;
    EXPECT_EQ(other.points, base.points) << "threads " << threads;
  }
}

TEST(StreamE2ETest, FinalPartialWindowIsPublished) {
  const std::string csv = SyntheticCsv(250);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunner runner(SmallConfig(100, 0.0));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());
  const StreamReport& report = runner.report();
  EXPECT_EQ(report.windows_published, 3u);
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_EQ(report.windows[0].trajectories, 100u);
  EXPECT_EQ(report.windows[1].trajectories, 100u);
  EXPECT_EQ(report.windows[2].trajectories, 50u);
  EXPECT_EQ(capture.ids.size(), 250u);
}

TEST(StreamE2ETest, ParseErrorFailsRunWithoutPublishingPartialWindow) {
  // A malformed line mid-stream fails the run; the trailing partial window
  // assembled before the bad line must be neither published nor charged to
  // the ledger (complete windows closed earlier stay published).
  std::string csv = SyntheticCsv(150);
  csv += "151,not_a_number,2.0,3\n";
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunner runner(SmallConfig(100, 0.0));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  Status st = runner.Run(reader, sink, rng);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(runner.report().windows_published, 1u);
  EXPECT_EQ(capture.ids.size(), 100u);
  EXPECT_NEAR(runner.accountant().spent(), 1.0, 1e-9);
}

TEST(StreamE2ETest, DuplicateIdWithinWindowIsRejected) {
  std::istringstream in(
      "5,1.0,2.0,1\n5,2.0,3.0,2\n6,4.0,5.0,3\n5,6.0,7.0,4\n");
  TrajectoryReader reader(in);
  StreamRunner runner(SmallConfig(10, 0.0));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  Status st = runner.Run(reader, sink, rng);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

}  // namespace
}  // namespace frt
