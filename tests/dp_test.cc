// Tests for src/dp: Laplace mechanism (including the non-zero-mean variant
// of Theorem 2), post-processing rounding, the privacy accountant, and an
// empirical differential-privacy ratio check.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dp/accountant.h"
#include "dp/laplace.h"

namespace frt {
namespace {

TEST(LaplaceMechanismTest, ValidatesParameters) {
  EXPECT_TRUE(LaplaceMechanism(1.0, 0.5).Validate().ok());
  EXPECT_FALSE(LaplaceMechanism(0.0, 0.5).Validate().ok());
  EXPECT_FALSE(LaplaceMechanism(1.0, 0.0).Validate().ok());
  EXPECT_FALSE(LaplaceMechanism(1.0, -1.0).Validate().ok());
}

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  EXPECT_DOUBLE_EQ(LaplaceMechanism(1.0, 0.5).Scale(), 2.0);
  EXPECT_DOUBLE_EQ(LaplaceMechanism(2.0, 4.0).Scale(), 0.5);
}

TEST(LaplaceMechanismTest, ZeroMeanNoiseStatistics) {
  LaplaceMechanism mech(1.0, 1.0);  // scale 1
  Rng rng(1);
  const int n = 100000;
  double sum = 0.0;
  double sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = mech.SampleNoise(rng);
    sum += x;
    sum_abs += std::fabs(x);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_abs / n, 1.0, 0.02);  // E|X| = scale for Laplace(0, b)
}

TEST(LaplaceMechanismTest, NonZeroMeanShiftsCenter) {
  // The paper's Stage-1 draw: Lap(-f, 1/eps) makes negative noise far more
  // likely than positive for f >> scale.
  LaplaceMechanism mech(1.0, 2.0);  // scale 0.5
  Rng rng(2);
  const double f = 10.0;
  int negative = 0;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double noise = mech.SampleNoise(rng, -f);
    if (noise < 0) ++negative;
    sum += noise;
  }
  EXPECT_NEAR(sum / n, -f, 0.05);
  EXPECT_GT(static_cast<double>(negative) / n, 0.99);
}

TEST(LaplaceMechanismTest, PerturbAddsNoiseAroundMean) {
  LaplaceMechanism mech(1.0, 1.0);
  Rng rng(3);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += mech.Perturb(rng, 100.0, -7.0);
  EXPECT_NEAR(sum / n, 93.0, 0.1);
}

// --- post-processing ---

TEST(RoundingTest, RoundToInt) {
  EXPECT_EQ(RoundToInt(2.4), 2);
  EXPECT_EQ(RoundToInt(2.5), 3);
  EXPECT_EQ(RoundToInt(-2.5), -3);
  EXPECT_EQ(RoundToInt(0.0), 0);
}

TEST(RoundingTest, RoundToIntRangeClamps) {
  EXPECT_EQ(RoundToIntRange(-3.7, 0, 100), 0);
  EXPECT_EQ(RoundToIntRange(150.2, 0, 100), 100);
  EXPECT_EQ(RoundToIntRange(42.4, 0, 100), 42);
}

TEST(RoundingTest, RoundToNonNegative) {
  EXPECT_EQ(RoundToNonNegativeInt(-0.6), 0);
  EXPECT_EQ(RoundToNonNegativeInt(-100.0), 0);
  EXPECT_EQ(RoundToNonNegativeInt(3.6), 4);
}

// --- accountant ---

TEST(AccountantTest, TracksSequentialComposition) {
  PrivacyAccountant acc;  // unbounded
  EXPECT_TRUE(acc.Spend(0.5, "global").ok());
  EXPECT_TRUE(acc.Spend(0.5, "local").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 1.0);
  ASSERT_EQ(acc.ledger().size(), 2u);
  EXPECT_EQ(acc.ledger()[0].label, "global");
  EXPECT_FALSE(acc.enforcing());
}

TEST(AccountantTest, LedgerCapKeepsSpentAndEnforcementExact) {
  PrivacyAccountant acc(10.0);
  acc.set_max_ledger_entries(4);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(acc.Spend(0.25, "w" + std::to_string(i)).ok());
    EXPECT_LE(acc.ledger().size(), 4u);
  }
  // Trimming drops entries, never spend: the total and the remaining
  // budget reflect all 32 spends, and enforcement still fires on them.
  EXPECT_DOUBLE_EQ(acc.spent(), 8.0);
  EXPECT_DOUBLE_EQ(acc.remaining(), 2.0);
  ASSERT_EQ(acc.ledger().size(), 4u);
  EXPECT_EQ(acc.ledger()[0].label, "w28");  // oldest retained
  EXPECT_EQ(acc.ledger()[3].label, "w31");
  EXPECT_EQ(acc.Spend(2.5, "over").code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(acc.Spend(2.0, "fits").ok());
  EXPECT_NEAR(acc.remaining(), 0.0, 1e-12);

  // PreloadSpent trims too: a recovered feed with a capped ledger still
  // carries its full spend.
  PrivacyAccountant carried(10.0);
  carried.set_max_ledger_entries(1);
  carried.PreloadSpent(8.0, "recovered from checkpoint");
  ASSERT_TRUE(carried.Spend(1.0, "next").ok());
  EXPECT_EQ(carried.ledger().size(), 1u);
  EXPECT_DOUBLE_EQ(carried.spent(), 9.0);
  EXPECT_EQ(carried.Spend(1.5, "over").code(),
            StatusCode::kFailedPrecondition);
}

TEST(AccountantTest, EnforcesBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Spend(0.6, "a").ok());
  EXPECT_DOUBLE_EQ(acc.remaining(), 0.4);
  // Over budget: rejected and not recorded.
  EXPECT_EQ(acc.Spend(0.5, "b").code(), StatusCode::kFailedPrecondition);
  EXPECT_DOUBLE_EQ(acc.spent(), 0.6);
  EXPECT_TRUE(acc.Spend(0.4, "c").ok());
  EXPECT_NEAR(acc.remaining(), 0.0, 1e-12);
}

TEST(AccountantTest, RejectsNonPositiveSpend) {
  PrivacyAccountant acc;
  EXPECT_FALSE(acc.Spend(0.0, "x").ok());
  EXPECT_FALSE(acc.Spend(-1.0, "x").ok());
}

// --- empirical DP ratio check (Theorem 2) ---
//
// For the counting query f(D) in {c, c+1} (adjacent datasets), a mechanism
// is eps-DP when P[M(c) = o] <= e^eps * P[M(c+1) = o] for every output o.
// We verify the histogram ratio empirically for the *shifted* Laplace
// mechanism with rounding post-processing, at a tolerance accounting for
// sampling error.

class ShiftedLaplaceDpCheck : public ::testing::TestWithParam<double> {};

TEST_P(ShiftedLaplaceDpCheck, RatioBoundedByExpEpsilon) {
  const double epsilon = GetParam();
  const double mu_shift = -5.0;  // arbitrary non-zero mean, as in Stage-1
  LaplaceMechanism mech(1.0, epsilon);
  Rng rng(42);

  const int64_t c = 20;
  const int n = 400000;
  std::unordered_map<int64_t, double> hist_a;
  std::unordered_map<int64_t, double> hist_b;
  for (int i = 0; i < n; ++i) {
    hist_a[RoundToNonNegativeInt(
        mech.Perturb(rng, static_cast<double>(c), mu_shift))] += 1.0;
    hist_b[RoundToNonNegativeInt(
        mech.Perturb(rng, static_cast<double>(c + 1), mu_shift))] += 1.0;
  }
  const double bound = std::exp(epsilon);
  size_t checked = 0;
  for (const auto& [out, count_a] : hist_a) {
    auto it = hist_b.find(out);
    if (it == hist_b.end()) continue;
    // Only well-populated bins: sparse bins are sampling noise.
    if (count_a < 500 || it->second < 500) continue;
    const double ratio = count_a / it->second;
    EXPECT_LE(ratio, bound * 1.25) << "output " << out;
    EXPECT_GE(ratio, 1.0 / (bound * 1.25)) << "output " << out;
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ShiftedLaplaceDpCheck,
                         ::testing::Values(0.5, 1.0, 2.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "eps" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10));
                         });

}  // namespace
}  // namespace frt
