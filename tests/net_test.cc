// Wire framing and ingress transport coverage (src/net): frame encode /
// decode round trips (bit-identical doubles included), strict header and
// payload validation, endpoint parsing, UDS and TCP loopbacks with
// partial-read semantics, and the IngressServer's two-tier quarantine
// contract — framing faults kill the connection and quarantine every feed
// it delivered, semantic faults quarantine only the feed named in the
// payload while the stream keeps going.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/ingress.h"
#include "net/socket.h"
#include "traj/trajectory.h"

namespace frt::net {
namespace {

Trajectory MakeTrajectory(TrajId id, size_t points) {
  Trajectory t(id);
  for (size_t i = 0; i < points; ++i) {
    // Deliberately awkward doubles: round-tripping must be bit-exact, not
    // printf-exact.
    t.Append({0.1 * static_cast<double>(i) + 1e-13, -7.25e3 / (1.0 + i)},
             static_cast<int64_t>(i) * 37);
  }
  return t;
}

// ---------------------------------------------------------------- frame

TEST(FrameTest, Crc32MatchesKnownVector) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(FrameTest, FrameRoundTrips) {
  std::string wire;
  AppendFrame(&wire, FrameType::kHello, "edge-7");
  ASSERT_GE(wire.size(), kFrameHeaderSize);
  auto header = DecodeFrameHeader(wire.data());
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, FrameType::kHello);
  EXPECT_EQ(header->version, kFrameVersion);
  ASSERT_EQ(header->payload_len, 6u);
  const std::string_view payload(wire.data() + kFrameHeaderSize, 6);
  EXPECT_TRUE(VerifyFramePayload(*header, payload).ok());
  EXPECT_EQ(payload, "edge-7");
}

TEST(FrameTest, HeaderRejectsFramingFaults) {
  std::string wire;
  AppendFrame(&wire, FrameType::kTrajectory, "x");
  auto corrupt = [&](size_t offset, char value) {
    std::string bad = wire;
    bad[offset] = value;
    return DecodeFrameHeader(bad.data());
  };
  EXPECT_FALSE(corrupt(0, 'X').ok()) << "bad magic must be rejected";
  EXPECT_FALSE(corrupt(4, 99).ok()) << "unknown version must be rejected";
  EXPECT_FALSE(corrupt(5, 0).ok()) << "unknown type must be rejected";
  EXPECT_FALSE(corrupt(6, 1).ok()) << "reserved bits must be zero";
  // Oversized length: rewrite the u32 at offset 8.
  std::string bad = wire;
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&bad[8], &huge, sizeof(huge));
  const auto oversized = DecodeFrameHeader(bad.data());
  ASSERT_FALSE(oversized.ok());
  EXPECT_TRUE(oversized.status().IsInvalidArgument());
}

TEST(FrameTest, CrcDetectsPayloadCorruption) {
  std::string wire;
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("alpha", MakeTrajectory(3, 4)));
  auto header = DecodeFrameHeader(wire.data());
  ASSERT_TRUE(header.ok());
  std::string payload = wire.substr(kFrameHeaderSize);
  payload[payload.size() / 2] ^= static_cast<char>(0xFF);
  const Status st = VerifyFramePayload(*header, payload);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

TEST(FrameTest, TrajectoryPayloadRoundTripsBitIdentically) {
  const Trajectory original = MakeTrajectory(12345678901LL, 9);
  const std::string payload = EncodeTrajectoryPayload("feed/α", original);
  auto decoded = DecodeTrajectoryPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->feed, "feed/α");
  EXPECT_EQ(decoded->trajectory.id(), original.id());
  ASSERT_EQ(decoded->trajectory.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    // Bit-pattern equality, stricter than operator== (which NaNs would
    // break): the solo-vs-multiplexed bit-identity must survive the wire.
    uint64_t ax = 0, bx = 0, ay = 0, by = 0;
    std::memcpy(&ax, &original.points()[i].p.x, 8);
    std::memcpy(&bx, &decoded->trajectory.points()[i].p.x, 8);
    std::memcpy(&ay, &original.points()[i].p.y, 8);
    std::memcpy(&by, &decoded->trajectory.points()[i].p.y, 8);
    EXPECT_EQ(ax, bx);
    EXPECT_EQ(ay, by);
    EXPECT_EQ(original.points()[i].t, decoded->trajectory.points()[i].t);
  }
}

TEST(FrameTest, TrajectoryPayloadDecodeIsStrict) {
  const std::string good =
      EncodeTrajectoryPayload("beta", MakeTrajectory(1, 2));
  EXPECT_FALSE(DecodeTrajectoryPayload("").ok());
  EXPECT_FALSE(DecodeTrajectoryPayload(good.substr(0, good.size() - 1)).ok())
      << "truncated payload must be rejected";
  EXPECT_FALSE(DecodeTrajectoryPayload(good + std::string(1, '\0')).ok())
      << "trailing bytes must be rejected";
  // Empty feed id.
  const std::string empty_feed =
      EncodeTrajectoryPayload("", MakeTrajectory(1, 2));
  EXPECT_FALSE(DecodeTrajectoryPayload(empty_feed).ok());
  // Point count that disagrees with the remaining bytes: bump the u32
  // count that sits after the feed block and the i64 id.
  std::string bad_count = good;
  const size_t count_offset = 2 + 4 /* "beta" */ + 8;
  uint32_t count = 0;
  std::memcpy(&count, bad_count.data() + count_offset, 4);
  ++count;
  std::memcpy(&bad_count[count_offset], &count, 4);
  const auto mismatched = DecodeTrajectoryPayload(bad_count);
  ASSERT_FALSE(mismatched.ok());
  // The feed id was readable, so the error names it — that is what lets
  // the ingress quarantine just this feed.
  EXPECT_NE(mismatched.status().ToString().find("beta"), std::string::npos)
      << mismatched.status().ToString();
}

// -------------------------------------------------------------- endpoint

TEST(SocketTest, ParseEndpointAcceptsBothFamilies) {
  auto unix_ep = ParseEndpoint("unix:/tmp/frt test.sock");
  ASSERT_TRUE(unix_ep.ok());
  EXPECT_EQ(unix_ep->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep->path, "/tmp/frt test.sock");
  auto tcp_ep = ParseEndpoint("tcp:127.0.0.1:9042");
  ASSERT_TRUE(tcp_ep.ok());
  EXPECT_EQ(tcp_ep->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep->host, "127.0.0.1");
  EXPECT_EQ(tcp_ep->port, 9042);
}

TEST(SocketTest, ParseEndpointRejectsMalformedSpecs) {
  for (const char* spec :
       {"", "unix:", "tcp:", "tcp:localhost", "tcp:localhost:",
        "tcp::1234", "tcp:host:notaport", "tcp:host:70000", "tcp:host:-1",
        "tcp:host:12x", "http:foo", "/tmp/plain-path"}) {
    EXPECT_FALSE(ParseEndpoint(spec).ok()) << "accepted: " << spec;
  }
}

// -------------------------------------------------------- loopback I/O

std::string TestSocketPath(const char* tag) {
  return ::testing::TempDir() + "frt_net_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(SocketTest, UnixLoopbackRoundTripAndCleanEof) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("rt");
  auto listener = ListenOn(endpoint);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  std::thread client([&] {
    auto conn = ConnectTo(endpoint);
    ASSERT_TRUE(conn.ok());
    const std::string msg = "ping";
    ASSERT_TRUE(WriteAll(conn->fd(), msg.data(), msg.size()).ok());
    // Destructor closes: the server sees clean EOF after 4 bytes.
  });
  auto accepted = Accept(*listener);
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(accepted->valid());
  char buf[4];
  auto got = ReadFull(accepted->fd(), buf, 4);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  EXPECT_EQ(std::string(buf, 4), "ping");
  auto eof = ReadFull(accepted->fd(), buf, 4);
  ASSERT_TRUE(eof.ok()) << eof.status().ToString();
  EXPECT_FALSE(*eof) << "clean EOF before the first byte must not error";
  client.join();
  UnlinkIfUnix(endpoint);
}

TEST(SocketTest, DisconnectMidMessageIsAnError) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("cut");
  auto listener = ListenOn(endpoint);
  ASSERT_TRUE(listener.ok());
  std::thread client([&] {
    auto conn = ConnectTo(endpoint);
    ASSERT_TRUE(conn.ok());
    const std::string partial = "abc";  // promises nothing, sends 3 bytes
    ASSERT_TRUE(WriteAll(conn->fd(), partial.data(), partial.size()).ok());
  });
  auto accepted = Accept(*listener);
  ASSERT_TRUE(accepted.ok());
  char buf[8];
  auto got = ReadFull(accepted->fd(), buf, 8);  // wants 8, peer sent 3
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError()) << got.status().ToString();
  client.join();
  UnlinkIfUnix(endpoint);
}

TEST(SocketTest, TcpLoopbackWithEphemeralPort) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = 0;  // kernel-assigned
  auto listener = ListenOn(endpoint);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  auto port = LocalPort(*listener);
  ASSERT_TRUE(port.ok());
  ASSERT_GT(*port, 0);
  Endpoint target = endpoint;
  target.port = *port;
  std::thread client([&] {
    auto conn = ConnectTo(target);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    std::string wire;
    AppendFrame(&wire, FrameType::kBye, {});
    ASSERT_TRUE(WriteAll(conn->fd(), wire.data(), wire.size()).ok());
  });
  auto accepted = Accept(*listener);
  ASSERT_TRUE(accepted.ok());
  char header_buf[kFrameHeaderSize];
  auto got = ReadFull(accepted->fd(), header_buf, kFrameHeaderSize);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  auto header = DecodeFrameHeader(header_buf);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kBye);
  client.join();
}

// --------------------------------------------------------------- ingress

struct IngressHarness {
  std::mutex mu;
  std::vector<std::pair<std::string, TrajId>> offered;
  std::vector<std::pair<std::string, std::string>> quarantined;

  OfferFn offer() {
    return [this](std::string feed, Trajectory t) {
      std::lock_guard<std::mutex> lock(mu);
      offered.emplace_back(std::move(feed), t.id());
      return true;
    };
  }
  QuarantineFn quarantine() {
    return [this](const std::string& feed, const std::string& reason) {
      std::lock_guard<std::mutex> lock(mu);
      quarantined.emplace_back(feed, reason);
    };
  }
};

/// One scripted edge connection: sends `wire` and closes.
void SendWire(const Endpoint& endpoint, const std::string& wire) {
  auto conn = ConnectTo(endpoint);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ASSERT_TRUE(WriteAll(conn->fd(), wire.data(), wire.size()).ok());
}

TEST(IngressTest, CleanSessionOffersEverythingAndQuarantinesNothing) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("clean");
  IngressHarness harness;
  IngressServer::Options options;
  options.endpoint = endpoint;
  options.max_connections = 1;
  IngressServer server(options, harness.offer(), harness.quarantine());
  ASSERT_TRUE(server.Start().ok());

  std::string wire;
  AppendFrame(&wire, FrameType::kHello, "edge-test");
  for (TrajId id = 0; id < 5; ++id) {
    AppendFrame(&wire, FrameType::kTrajectory,
                EncodeTrajectoryPayload(id % 2 == 0 ? "even" : "odd",
                                        MakeTrajectory(id, 3)));
  }
  AppendFrame(&wire, FrameType::kBye, {});
  SendWire(endpoint, wire);
  server.Wait();

  EXPECT_TRUE(harness.quarantined.empty());
  ASSERT_EQ(harness.offered.size(), 5u);
  EXPECT_EQ(harness.offered[0].first, "even");
  EXPECT_EQ(harness.offered[1].first, "odd");
  EXPECT_EQ(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().trajectories, 5u);
  EXPECT_EQ(server.stats().quarantine_events, 0u);
}

TEST(IngressTest, CorruptFrameQuarantinesEveryFeedOnTheConnection) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("crc");
  IngressHarness harness;
  IngressServer::Options options;
  options.endpoint = endpoint;
  options.max_connections = 1;
  IngressServer server(options, harness.offer(), harness.quarantine());
  ASSERT_TRUE(server.Start().ok());

  std::string wire;
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("a", MakeTrajectory(1, 3)));
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("b", MakeTrajectory(2, 3)));
  // Third frame: payload byte flipped after the CRC — a framing fault.
  std::string corrupt;
  AppendFrame(&corrupt, FrameType::kTrajectory,
              EncodeTrajectoryPayload("a", MakeTrajectory(3, 3)));
  corrupt[kFrameHeaderSize] ^= static_cast<char>(0xFF);
  wire += corrupt;
  // A frame after the fault must never be delivered.
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("c", MakeTrajectory(4, 3)));
  SendWire(endpoint, wire);
  server.Wait();

  EXPECT_EQ(harness.offered.size(), 2u);
  std::set<std::string> quarantined_feeds;
  for (const auto& [feed, reason] : harness.quarantined) {
    quarantined_feeds.insert(feed);
    EXPECT_NE(reason.find("CRC"), std::string::npos) << reason;
  }
  EXPECT_EQ(quarantined_feeds, (std::set<std::string>{"a", "b"}))
      << "every feed the connection delivered — and nothing after the "
         "fault — must be quarantined";
}

TEST(IngressTest, SemanticDecodeFaultQuarantinesOnlyTheNamedFeed) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("sem");
  IngressHarness harness;
  IngressServer::Options options;
  options.endpoint = endpoint;
  options.max_connections = 1;
  IngressServer server(options, harness.offer(), harness.quarantine());
  ASSERT_TRUE(server.Start().ok());

  std::string wire;
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("good", MakeTrajectory(1, 3)));
  // CRC-clean frame whose payload lies about its point count: semantic
  // fault, feed id readable -> only "bad" is quarantined, stream goes on.
  std::string lying = EncodeTrajectoryPayload("bad", MakeTrajectory(2, 3));
  const size_t count_offset = 2 + 3 /* "bad" */ + 8;
  uint32_t count = 0;
  std::memcpy(&count, lying.data() + count_offset, 4);
  ++count;
  std::memcpy(&lying[count_offset], &count, 4);
  AppendFrame(&wire, FrameType::kTrajectory, lying);
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("good", MakeTrajectory(3, 3)));
  AppendFrame(&wire, FrameType::kBye, {});
  SendWire(endpoint, wire);
  server.Wait();

  ASSERT_EQ(harness.offered.size(), 2u);
  EXPECT_EQ(harness.offered[0].second, 1);
  EXPECT_EQ(harness.offered[1].second, 3);
  ASSERT_EQ(harness.quarantined.size(), 1u);
  EXPECT_EQ(harness.quarantined[0].first, "bad");
}

TEST(IngressTest, DisconnectWithoutByeQuarantinesDeliveredFeeds) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("nobye");
  IngressHarness harness;
  IngressServer::Options options;
  options.endpoint = endpoint;
  options.max_connections = 1;
  IngressServer server(options, harness.offer(), harness.quarantine());
  ASSERT_TRUE(server.Start().ok());

  std::string wire;
  AppendFrame(&wire, FrameType::kHello, "dying-edge");
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("f", MakeTrajectory(1, 3)));
  SendWire(endpoint, wire);  // closes without a kBye
  server.Wait();

  EXPECT_EQ(harness.offered.size(), 1u);
  ASSERT_EQ(harness.quarantined.size(), 1u);
  EXPECT_EQ(harness.quarantined[0].first, "f");
  EXPECT_NE(harness.quarantined[0].second.find("dying-edge"),
            std::string::npos)
      << harness.quarantined[0].second;
}

TEST(IngressTest, TruncatedFrameMidHeaderQuarantines) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("trunc");
  IngressHarness harness;
  IngressServer::Options options;
  options.endpoint = endpoint;
  options.max_connections = 1;
  IngressServer server(options, harness.offer(), harness.quarantine());
  ASSERT_TRUE(server.Start().ok());

  std::string wire;
  AppendFrame(&wire, FrameType::kTrajectory,
              EncodeTrajectoryPayload("t", MakeTrajectory(1, 3)));
  std::string full;
  AppendFrame(&full, FrameType::kTrajectory,
              EncodeTrajectoryPayload("t", MakeTrajectory(2, 3)));
  wire += full.substr(0, kFrameHeaderSize / 2);  // dies mid-header
  SendWire(endpoint, wire);
  server.Wait();

  EXPECT_EQ(harness.offered.size(), 1u);
  ASSERT_EQ(harness.quarantined.size(), 1u);
  EXPECT_EQ(harness.quarantined[0].first, "t");
}

TEST(IngressTest, StopUnblocksWaitWithoutConnections) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = TestSocketPath("stop");
  IngressHarness harness;
  IngressServer::Options options;
  options.endpoint = endpoint;  // max_connections = 0: accept until Stop
  IngressServer server(options, harness.offer(), harness.quarantine());
  ASSERT_TRUE(server.Start().ok());
  std::thread stopper([&] { server.Stop(); });
  server.Wait();  // must return promptly
  stopper.join();
  EXPECT_EQ(server.stats().connections, 0u);
  EXPECT_TRUE(harness.offered.empty());
}

}  // namespace
}  // namespace frt::net
