// Fixed-seed end-to-end coverage of the sliding-window streaming refactor:
// stride < window overlap semantics, per-object budget accounting with and
// without eviction of exhausted objects, the wholesale-vs-per-object A/B
// (identical feed, budget, and seed — per-object publishes strictly more
// windows while no object ever exceeds the budget, checked against a
// brute-force per-object tally), and the refusal condition frt_stream maps
// to exit code 3.

#include "stream/stream_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/ingest.h"
#include "testing_util.h"

namespace frt {
namespace {

using frt::testing::SinkCapture;
using frt::testing::SyntheticCsv;

constexpr uint64_t kSeed = 20260731;

StreamRunnerConfig BaseConfig(size_t window, size_t stride) {
  StreamRunnerConfig config;
  config.window_size = window;
  config.window_stride = stride;
  config.batch.shards = 4;
  config.batch.pipeline.m = 3;
  config.batch.pipeline.epsilon_global = 0.5;
  config.batch.pipeline.epsilon_local = 0.5;
  return config;
}

// Feed where object 0 reappears in every window while the other
// `fresh_per_window` objects of each window are new ids — the shape where
// per-object eviction shines: only the recurring object ever exhausts.
std::string RecurringLeaderCsv(int windows, int fresh_per_window) {
  std::ostringstream out;
  out << "# traj_id,x,y,t\n";
  int arrival = 0;
  for (int w = 0; w < windows; ++w) {
    for (int k = 0; k < fresh_per_window + 1; ++k, ++arrival) {
      const int id = k == 0 ? 0 : 1000 + w * fresh_per_window + (k - 1);
      const int points = 24 + (arrival * 7) % 17;
      double x = 200.0 + (arrival * 137) % 1700;
      double y = 300.0 + (arrival * 251) % 1500;
      int64_t t = 1000 + arrival;
      for (int j = 0; j < points; ++j) {
        out << id << ',' << x << ',' << y << ',' << t << '\n';
        x += 35.0 + (j * 11) % 20;
        y += 25.0 + ((arrival + j) * 13) % 30;
        t += 60;
      }
    }
  }
  return out.str();
}

TEST(SlidingWindowTest, StrideSmallerThanWindowOverlaps) {
  // 33 arrivals, window 10, stride 5: closed windows cover arrivals
  // [0,10) [5,15) [10,20) [15,25) [20,30), then the trailing partial
  // window picks up the uncovered tail [25,33).
  const std::string csv = SyntheticCsv(33);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunner runner(BaseConfig(10, 5));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());

  const StreamReport& report = runner.report();
  EXPECT_EQ(report.trajectories_in, 33u);
  EXPECT_EQ(report.windows_closed, 6u);
  EXPECT_EQ(report.windows_published, 6u);
  EXPECT_EQ(report.windows_refused, 0u);
  EXPECT_FALSE(StreamHadRefusals(report));
  ASSERT_EQ(capture.window_ids.size(), 6u);
  for (size_t w = 0; w < 5; ++w) {
    ASSERT_EQ(capture.window_ids[w].size(), 10u) << "window " << w;
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_EQ(capture.window_ids[w][j],
                static_cast<TrajId>(w * 5 + j));
    }
  }
  ASSERT_EQ(capture.window_ids[5].size(), 8u);
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(capture.window_ids[5][j], static_cast<TrajId>(25 + j));
  }
  // Overlap re-publishes trajectories: 5 full windows x 10 + trailing 8.
  EXPECT_EQ(report.trajectories_published, 58u);
}

TEST(SlidingWindowTest, StrideEqualToWindowMatchesTumblingDefault) {
  const std::string csv = SyntheticCsv(40);
  auto run = [&](size_t stride) {
    std::istringstream in(csv);
    TrajectoryReader reader(in);
    StreamRunner runner(BaseConfig(10, stride));
    SinkCapture capture;
    Rng rng(kSeed);
    auto sink = capture.MakeSink();
    EXPECT_TRUE(runner.Run(reader, sink, rng).ok());
    return capture;
  };
  const SinkCapture explicit_stride = run(10);
  const SinkCapture default_stride = run(0);  // 0 = tumbling default
  ASSERT_EQ(explicit_stride.ids.size(), 40u);
  EXPECT_EQ(explicit_stride.ids, default_stride.ids);
  EXPECT_EQ(explicit_stride.points, default_stride.points);
}

TEST(SlidingWindowTest, DuplicateIdInsideOverlappingWindowIsRejected) {
  // Ids recycle every 15 arrivals but the window spans 20, so the very
  // first window contains a duplicate — the ring buffer must reject it
  // like the tumbling assembler always has.
  const std::string csv = SyntheticCsv(30, 15);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunner runner(BaseConfig(20, 5));
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  Status st = runner.Run(reader, sink, rng);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(SlidingWindowTest, PerObjectPublishesStrictlyMoreWindowsThanWholesale) {
  // 1000 arrivals over 200 recycling ids, window 100: the two id
  // populations {0..99} and {100..199} alternate windows, so each object
  // sits in 5 of the 10 windows. Identical feed, budget (3.0), and seed:
  //   wholesale  — every window bills the one ledger; 3 windows publish.
  //   per-object — a window is refused only when ITS objects exhaust;
  //                windows 0..5 publish (each object then at 3.0), 6..9
  //                are refused. Strictly more under the same guarantee.
  const std::string csv = SyntheticCsv(1000, 200);
  const double kBudget = 3.0;

  auto run = [&](BudgetAccounting accounting, SinkCapture* capture,
                 StreamReport* report, double* max_object_eps) {
    std::istringstream in(csv);
    TrajectoryReader reader(in);
    StreamRunnerConfig config = BaseConfig(100, 0);
    config.accounting = accounting;
    if (accounting == BudgetAccounting::kWholesale) {
      config.total_budget = kBudget;
    } else {
      config.per_object_budget = kBudget;
    }
    StreamRunner runner(config);
    Rng rng(kSeed);
    auto sink = capture->MakeSink();
    ASSERT_TRUE(runner.Run(reader, sink, rng).ok());
    *report = runner.report();
    *max_object_eps = runner.object_accountant().max_spent();
  };

  SinkCapture wholesale_capture, per_object_capture;
  StreamReport wholesale_report, per_object_report;
  double wholesale_max = 0.0, per_object_max = 0.0;
  run(BudgetAccounting::kWholesale, &wholesale_capture, &wholesale_report,
      &wholesale_max);
  run(BudgetAccounting::kPerObject, &per_object_capture, &per_object_report,
      &per_object_max);

  EXPECT_EQ(wholesale_report.windows_published, 3u);
  EXPECT_EQ(wholesale_report.windows_refused, 7u);
  EXPECT_EQ(per_object_report.windows_published, 6u);
  EXPECT_EQ(per_object_report.windows_refused, 4u);
  // The acceptance bar: strictly more windows, same budget, same seed.
  EXPECT_GT(per_object_report.windows_published,
            wholesale_report.windows_published);
  EXPECT_TRUE(StreamHadRefusals(wholesale_report));
  EXPECT_TRUE(StreamHadRefusals(per_object_report));

  // Brute-force per-object tally over what was ACTUALLY published: each
  // window appearance cost eps_G + eps_L = 1.0. No object may exceed the
  // budget, and the accountant's ledgers must agree with the tally.
  std::unordered_map<TrajId, double> tally;
  for (const auto& window : per_object_capture.window_ids) {
    for (const TrajId id : window) tally[id] += 1.0;
  }
  ASSERT_FALSE(tally.empty());
  double tally_max = 0.0;
  for (const auto& [id, spent] : tally) {
    EXPECT_LE(spent, kBudget + 1e-9) << "object " << id;
    tally_max = std::max(tally_max, spent);
  }
  EXPECT_NEAR(per_object_max, tally_max, 1e-9);
  EXPECT_NEAR(per_object_report.epsilon_spent, tally_max, 1e-9);
  // The wholesale ledger tracked alongside shows the pessimism gap: six
  // windows' sequential sum vs the true per-object maximum.
  EXPECT_NEAR(per_object_report.epsilon_wholesale_equivalent, 6.0, 1e-9);
}

TEST(SlidingWindowTest, EvictExhaustedDropsOnlyTheExhaustedObject) {
  // Object 0 leads every window; everyone else is fresh. Budget 2.0 at
  // eps 1.0/window: without eviction, windows 2 and 3 are refused whole;
  // with eviction, only object 0 is dropped and 9 trajectories still
  // publish per window.
  const std::string csv = RecurringLeaderCsv(/*windows=*/4,
                                             /*fresh_per_window=*/9);
  const double kBudget = 2.0;

  auto run = [&](bool evict, SinkCapture* capture, StreamReport* report,
                 const char* label) {
    std::istringstream in(csv);
    TrajectoryReader reader(in);
    StreamRunnerConfig config = BaseConfig(10, 0);
    config.accounting = BudgetAccounting::kPerObject;
    config.per_object_budget = kBudget;
    config.evict_exhausted = evict;
    StreamRunner runner(config);
    Rng rng(kSeed);
    auto sink = capture->MakeSink();
    ASSERT_TRUE(runner.Run(reader, sink, rng).ok()) << label;
    *report = runner.report();
    // Whatever the mode, object 0 never exceeds its budget.
    EXPECT_LE(runner.object_accountant().spent(0), kBudget + 1e-9) << label;
  };

  SinkCapture refusing_capture, evicting_capture;
  StreamReport refusing_report, evicting_report;
  run(false, &refusing_capture, &refusing_report, "refusing");
  run(true, &evicting_capture, &evicting_report, "evicting");

  // Without eviction: whole windows drop once object 0 is exhausted.
  EXPECT_EQ(refusing_report.windows_published, 2u);
  EXPECT_EQ(refusing_report.windows_refused, 2u);
  EXPECT_EQ(refusing_report.trajectories_refused, 20u);
  EXPECT_EQ(refusing_report.trajectories_evicted, 0u);
  EXPECT_TRUE(StreamHadRefusals(refusing_report));

  // With eviction: every window publishes; only object 0's trajectory is
  // dropped from windows 2 and 3.
  EXPECT_EQ(evicting_report.windows_published, 4u);
  EXPECT_EQ(evicting_report.windows_refused, 0u);
  EXPECT_EQ(evicting_report.trajectories_evicted, 2u);
  EXPECT_EQ(evicting_report.trajectories_published, 38u);
  // Eviction still counts as dropping data on budget — exit code 3.
  EXPECT_TRUE(StreamHadRefusals(evicting_report));
  ASSERT_EQ(evicting_capture.window_ids.size(), 4u);
  for (size_t w = 0; w < 4; ++w) {
    const auto& ids = evicting_capture.window_ids[w];
    const bool has_leader =
        std::find(ids.begin(), ids.end(), TrajId{0}) != ids.end();
    EXPECT_EQ(has_leader, w < 2) << "window " << w;
    EXPECT_EQ(ids.size(), w < 2 ? 10u : 9u) << "window " << w;
  }
  ASSERT_EQ(evicting_report.windows.size(), 4u);
  EXPECT_EQ(evicting_report.windows[2].trajectories_evicted, 1u);
  EXPECT_EQ(evicting_report.windows[3].trajectories_evicted, 1u);
}

TEST(SlidingWindowTest, SlidingWindowsChargePerAppearance) {
  // Overlap means re-publication: with window 10 / stride 5 an object is
  // released by up to two windows, and the per-object ledger must bill
  // both appearances. 20 arrivals -> windows [0,10) [5,15) [10,20);
  // objects 5..9 appear twice.
  const std::string csv = SyntheticCsv(20);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunnerConfig config = BaseConfig(10, 5);
  config.accounting = BudgetAccounting::kPerObject;
  config.per_object_budget = 10.0;  // ample: nothing refused
  StreamRunner runner(config);
  SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());

  std::unordered_map<TrajId, double> tally;
  for (const auto& window : capture.window_ids) {
    for (const TrajId id : window) tally[id] += 1.0;
  }
  for (const auto& [id, spent] : tally) {
    EXPECT_NEAR(runner.object_accountant().spent(id), spent, 1e-9)
        << "object " << id;
  }
  EXPECT_NEAR(runner.object_accountant().max_spent(), 2.0, 1e-9);
  EXPECT_EQ(runner.report().windows_refused, 0u);
}

}  // namespace
}  // namespace frt
