// Statistical verification of dp/laplace.h: the noise actually DRAWN must
// follow the analytic Laplace law the privacy proofs assume. Earlier tests
// checked plumbing (scale arithmetic, means, an empirical ratio bound);
// nothing verified the distribution itself. Here samples are binned into
// equal-probability cells of the analytic CDF and tested with a fixed-seed
// chi-square at a generous threshold — plus a power check proving the test
// would catch a wrong sampler (Gaussian noise of matched variance fails by
// orders of magnitude).

#include "dp/laplace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace frt {
namespace {

// Inverse CDF of Laplace(mu, b).
double LaplaceQuantile(double u, double mu, double b) {
  return u < 0.5 ? mu + b * std::log(2.0 * u)
                 : mu - b * std::log(2.0 * (1.0 - u));
}

// Chi-square statistic of `samples` against `bins` equal-probability cells
// of Laplace(mu, b). Expected count per cell is samples.size()/bins, well
// above the >=5 rule of thumb for every configuration below.
double LaplaceChiSquare(const std::vector<double>& samples, double mu,
                        double b, int bins) {
  std::vector<double> edges;  // interior edges, ascending
  edges.reserve(bins - 1);
  for (int i = 1; i < bins; ++i) {
    edges.push_back(
        LaplaceQuantile(static_cast<double>(i) / bins, mu, b));
  }
  std::vector<double> counts(bins, 0.0);
  for (const double x : samples) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    counts[static_cast<size_t>(it - edges.begin())] += 1.0;
  }
  const double expected =
      static_cast<double>(samples.size()) / static_cast<double>(bins);
  double chi2 = 0.0;
  for (const double c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  return chi2;
}

constexpr int kSamples = 200000;
constexpr int kBins = 40;
// Very generous: the statistic concentrates near df = 39; 120 is far past
// the 1 - 1e-9 quantile (~118 by Wilson–Hilferty), and the seed is fixed
// anyway, so this can only fail if the sampler (or Rng) changes shape.
constexpr double kThreshold = 120.0;

TEST(DpStatisticalTest, ZeroMeanNoiseMatchesAnalyticLaplaceCdf) {
  for (const double epsilon : {0.5, 1.0, 2.0}) {
    LaplaceMechanism mech(1.0, epsilon);
    Rng rng(20260730);
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) {
      samples.push_back(mech.SampleNoise(rng));
    }
    const double chi2 =
        LaplaceChiSquare(samples, 0.0, mech.Scale(), kBins);
    EXPECT_LT(chi2, kThreshold) << "epsilon " << epsilon;
  }
}

TEST(DpStatisticalTest, ShiftedNoiseMatchesAnalyticLaplaceCdf) {
  // The paper's Theorem-2 draw: Lap(mu, sensitivity/epsilon) with a
  // non-zero center. The shift must move the location only — the shape
  // (and hence the privacy ratio bound) must stay exactly Laplace.
  const double kMu = -7.5;
  LaplaceMechanism mech(2.0, 1.0);  // scale 2
  Rng rng(424242);
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    samples.push_back(mech.SampleNoise(rng, kMu));
  }
  EXPECT_LT(LaplaceChiSquare(samples, kMu, mech.Scale(), kBins),
            kThreshold);
}

TEST(DpStatisticalTest, PerturbIsValuePlusLaplaceNoise) {
  // Perturb(value) must distribute as Laplace centered at value: same
  // chi-square against the CDF translated by the query answer.
  const double kValue = 321.5;
  LaplaceMechanism mech(1.0, 0.5);  // scale 2
  Rng rng(777);
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    samples.push_back(mech.Perturb(rng, kValue));
  }
  EXPECT_LT(LaplaceChiSquare(samples, kValue, mech.Scale(), kBins),
            kThreshold);
}

TEST(DpStatisticalTest, TailMassDecaysAtTheLaplaceRate) {
  // P[|X| > t] = exp(-t/b) exactly for Laplace(0, b) — the tail law the
  // epsilon guarantee leans on. Check a few tail depths at 10% relative
  // tolerance (fixed seed; expected counts >= ~900 at the deepest tail).
  LaplaceMechanism mech(1.0, 1.0);  // scale 1
  Rng rng(13579);
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    samples.push_back(mech.SampleNoise(rng));
  }
  for (const double t : {1.0, 2.0, 3.0, 5.0}) {
    size_t beyond = 0;
    for (const double x : samples) {
      if (std::fabs(x) > t) ++beyond;
    }
    const double expected = std::exp(-t);
    const double observed =
        static_cast<double>(beyond) / static_cast<double>(kSamples);
    EXPECT_NEAR(observed, expected, 0.1 * expected) << "tail depth " << t;
  }
}

TEST(DpStatisticalTest, ChiSquareHasPowerToRejectGaussianNoise) {
  // Power check: Gaussian noise with the SAME variance as Laplace(0, 1)
  // (stddev sqrt(2)) must blow far past the threshold, so a silently
  // swapped sampler could not pass the suite.
  Rng rng(97531);
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    samples.push_back(rng.Normal(0.0, std::sqrt(2.0)));
  }
  EXPECT_GT(LaplaceChiSquare(samples, 0.0, 1.0, kBins),
            20.0 * kThreshold);
}

}  // namespace
}  // namespace frt
